"""Figure 12 — Timing-window pruning of expected crosstalk.

Runs the window-aware expected-delta analysis on a windowed variant of
ckt256 and compares against the constant-alignment estimate.  Expected
shape: worst-case identical; the window-pruned expected exposure is a
small fraction of the constant-alignment one (most aggressor
transitions miss the clock edge's sensitivity window), and narrows as
the sensitivity width shrinks.
"""

from __future__ import annotations

import dataclasses

from conftest import emit
from repro.bench import generate_design, spec_by_name
from repro.core.flow import build_physical_design
from repro.reporting import ExperimentRecord
from repro.timing.arrival import analyze_clock_timing
from repro.timing.crosstalk import analyze_crosstalk, analyze_crosstalk_windows

SENSITIVITIES = (10.0, 30.0, 60.0, 120.0, 240.0)


def _run(tech) -> ExperimentRecord:
    spec = dataclasses.replace(spec_by_name("ckt256"), name="ckt256w",
                               aggressor_windows=True)
    design = generate_design(spec)
    phys = build_physical_design(design, tech)
    ext = phys.extraction
    timing = analyze_clock_timing(ext.network, tech)

    record = ExperimentRecord(
        "fig12", "timing-window pruning of expected crosstalk (ckt256w)",
        "sensitivity window (ps)", "mean expected delta (ps)")
    plain = analyze_crosstalk(ext.network, ext.wires, alignment=0.5)
    n = len(plain.sinks)
    record.series_named("constant_alignment_0.5").add(
        0, sum(s.expected for s in plain.sinks) / n)
    series = record.series_named("window_pruned")
    for width in SENSITIVITIES:
        pruned = analyze_crosstalk_windows(ext.network, ext.wires, timing,
                                           design.clock_period,
                                           sensitivity=width)
        series.add(width, sum(s.expected for s in pruned.sinks) / n)
    record.series_named("worst_mean").add(
        0, sum(s.worst for s in plain.sinks) / n)
    return record


def test_fig12_window_pruning(benchmark, capsys, tech):
    record = benchmark.pedantic(_run, args=(tech,), rounds=1, iterations=1)
    emit(capsys, record.render())
    pruned = record.series["window_pruned"]
    constant = record.series["constant_alignment_0.5"].ys[0]
    # Monotone in the sensitivity width, and far below the constant
    # estimate at realistic widths.
    assert pruned.ys == sorted(pruned.ys)
    assert pruned.ys[0] < 0.2 * constant
