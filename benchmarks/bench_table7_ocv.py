"""Table 7 — Graph-based (AOCV) pessimism vs Monte Carlo.

Times the smart implementation three ways per design: nominal skew,
Monte-Carlo mu+3sigma, and the AOCV-derated bound (5% base, depth-
normalised).  Expected shape: nominal < MC 3-sigma < AOCV bound, with
the AOCV/MC gap (graph pessimism) a modest multiple — and flat OCV
visibly worse than AOCV, which is why AOCV exists.
"""

from __future__ import annotations

from conftest import TABLE_DESIGNS, emit
from repro.core import Policy
from repro.reporting import Table
from repro.timing.ocv import OcvDerates, analyze_ocv


def _build(matrix) -> Table:
    table = Table(
        "Table 7: nominal vs Monte-Carlo vs derated skew (smart impl.)",
        ["design", "nominal (ps)", "MC 3sig (ps)", "AOCV (ps)",
         "flat OCV (ps)", "aocv/mc"])
    for name in TABLE_DESIGNS:
        flow = matrix.flow(name, Policy.SMART)
        network = flow.physical.extraction.network
        a = flow.analyses
        aocv = analyze_ocv(network, matrix.tech, OcvDerates(base=0.05))
        flat = analyze_ocv(network, matrix.tech,
                           OcvDerates(base=0.05, aocv=False))
        table.add_row(name, a.timing.skew, a.mc.skew_3sigma,
                      aocv.skew_ocv, flat.skew_ocv,
                      aocv.skew_ocv / a.mc.skew_3sigma)
    return table


def test_table7_ocv_pessimism(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build, args=(matrix,), rounds=1,
                               iterations=1)
    emit(capsys, table.render())
    for row in table.rows:
        nominal = float(row[1])
        mc = float(row[2])
        aocv = float(row[3])
        flat = float(row[4])
        assert nominal < mc < aocv * 1.5  # ordering (AOCV covers MC loosely)
        assert aocv < flat                # AOCV recovers flat pessimism
