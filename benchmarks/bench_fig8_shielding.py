"""Figure 8 — Spacing NDRs vs. grounded shielding.

Shielding is the other classic SI fix: grounded wires on both adjacent
tracks eliminate aggressor coupling entirely, at the cost of two tracks
and static coupling to the shields.  This experiment runs the greedy
optimizer with and without shields in its move set, on two designs.

Expected shape: both variants are feasible; shielding buys *complete*
per-wire coupling removal, so the shield-enabled optimizer needs fewer
protected wires — but each shield is more expensive in tracks, so its
NDR-track footprint is comparable or higher.  Power lands within a few
percent either way (the paper's point survives the mechanism swap:
selectivity, not the specific rule, is where the power goes).
"""

from __future__ import annotations

from conftest import emit
from repro.core import Policy
from repro.reporting import Table

DESIGNS = ("ckt256", "ckt512")


def _build(matrix) -> Table:
    table = Table(
        "Fig 8: spacing rules vs grounded shields (greedy, same budgets)",
        ["design", "variant", "P (uW)", "protected wires", "shields",
         "track cost (um)", "feasible"])
    for name in DESIGNS:
        for policy in (Policy.SMART, Policy.SMART_SHIELD):
            flow = matrix.flow(name, policy)
            routing = flow.physical.routing
            hist = flow.rule_histogram
            upgraded = sum(hist.values()) - hist.get("W1S1", 0)
            shields = routing.num_shielded()
            table.add_row(name,
                          "shield-enabled" if policy == Policy.SMART_SHIELD
                          else "spacing-only SI",
                          flow.clock_power,
                          upgraded + shields,
                          shields,
                          flow.ndr_track_cost,
                          "yes" if flow.feasible else "NO")
    return table


def test_fig8_shielding_vs_spacing(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build, args=(matrix,), rounds=1, iterations=1)
    emit(capsys, table.render())
    for name in DESIGNS:
        smart = matrix.flow(name, Policy.SMART)
        shield = matrix.flow(name, Policy.SMART_SHIELD)
        assert smart.feasible and shield.feasible
        # The two mechanisms land within a few percent in power.
        assert abs(shield.clock_power - smart.clock_power) \
            < 0.08 * smart.clock_power
        # The shield variant actually used shields somewhere.
        assert shield.physical.routing.num_shielded() > 0
