"""Figure 9 — Multi-corner signoff of the smart implementation.

Re-times each design's smart-NDR implementation at the SS/TT/FF
corners.  Expected shape: latency spreads ~1.4x between FF and SS,
skew stays a small fraction of latency at every corner (balanced trees
stay balanced under global shifts), and the slow corner keeps positive
slew headroom — i.e. the selective assignment did not eat the corner
margin that uniform NDR would have provided.
"""

from __future__ import annotations

from conftest import TABLE_DESIGNS, emit
from repro.core import Policy
from repro.reporting import Table
from repro.timing.corners import analyze_corners


def _build(matrix) -> Table:
    table = Table(
        "Fig 9: smart implementation across process corners",
        ["design", "FF lat (ps)", "TT lat (ps)", "SS lat (ps)",
         "worst skew", "worst slew", "slew viol"])
    for name in TABLE_DESIGNS:
        flow = matrix.flow(name, Policy.SMART)
        report = analyze_corners(flow.physical.extraction.network,
                                 matrix.tech)
        table.add_row(
            name,
            report.timings["FF"].latency,
            report.timings["TT"].latency,
            report.timings["SS"].latency,
            report.worst_skew,
            report.worst_slew,
            report.slew_violations(),
        )
    return table


def test_fig9_corner_signoff(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build, args=(matrix,), rounds=1, iterations=1)
    emit(capsys, table.render())
    for row in table.rows:
        ff = float(row[1].replace(",", ""))
        ss = float(row[3].replace(",", ""))
        assert 1.2 < ss / ff < 1.8
        assert int(row[6]) == 0  # slew clean at every corner
