"""Table 2 — Clock switched capacitance and power per policy.

The headline table: for every design, total switched capacitance and
clock power of NO-NDR / ALL-NDR / SMART / SMART-ML, plus the smart
policies' power saving over ALL-NDR.  Expected shape: ALL-NDR pays a
double-digit percentage over NO-NDR; SMART lands within a few percent
of NO-NDR while staying feasible; SMART-ML between SMART and ALL-NDR.
"""

from __future__ import annotations

from conftest import TABLE_DESIGNS, TABLE_POLICIES, emit
from repro.core import Policy
from repro.reporting import Table


def _build_table(matrix) -> Table:
    table = Table(
        "Table 2: switched capacitance (fF) / clock power (uW) per policy",
        ["design", "no-ndr P", "all-ndr P", "smart P", "smart-ml P",
         "all-ndr ovh %", "smart save %", "ml save %", "smart feas"])
    # Declare the full sub-matrix up front: missing cells run as one
    # batch through the FlowRunner (parallel under REPRO_BENCH_JOBS).
    matrix.ensure(TABLE_DESIGNS, TABLE_POLICIES)
    for name in TABLE_DESIGNS:
        flows = {p: matrix.flow(name, p) for p in TABLE_POLICIES}
        p_no = flows[Policy.NO_NDR].clock_power
        p_all = flows[Policy.ALL_NDR].clock_power
        p_smart = flows[Policy.SMART].clock_power
        p_ml = flows[Policy.SMART_ML].clock_power
        table.add_row(
            name,
            p_no,
            p_all,
            p_smart,
            p_ml,
            100.0 * (p_all - p_no) / p_no,
            100.0 * (p_all - p_smart) / p_all,
            100.0 * (p_all - p_ml) / p_all,
            "yes" if flows[Policy.SMART].feasible else "NO",
        )
    return table


def test_table2_power_per_policy(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build_table, args=(matrix,),
                               rounds=1, iterations=1)
    emit(capsys, table.render())

    # Shape assertions: the paper's ordering must hold on every design.
    for row in table.rows:
        p_no, p_all, p_smart = (float(row[i].replace(",", ""))
                                for i in (1, 2, 3))
        assert p_no < p_all
        assert p_smart < p_all
