"""Figure 4 — Per-sink delta-delay distribution per policy.

Histogrammed as percentiles of the worst-case crosstalk delta delay
across sinks, for NO-NDR / ALL-NDR / SMART on one design.  Expected
shape: the NO-NDR distribution crosses the budget; ALL-NDR compresses
the whole distribution ~2-3x; SMART lands just inside the budget — its
distribution sits *between* ALL-NDR's and the budget line, because the
cheapest fixes are shared-trunk upgrades whose benefit reaches every
sink (the compression is global, but bought with a small minority of
wires).
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.core import Policy
from repro.reporting import ExperimentRecord

DESIGN = "ckt256"
PERCENTILES = (10, 25, 50, 75, 90, 99, 100)


def _distributions(matrix) -> ExperimentRecord:
    record = ExperimentRecord(
        "fig4", f"delta-delay distribution per policy on {DESIGN}",
        "percentile", "worst-case delta delay (ps)")
    for policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART):
        flow = matrix.flow(DESIGN, policy)
        deltas = np.array([s.worst for s in flow.analyses.crosstalk.sinks])
        series = record.series_named(policy.value)
        for p in PERCENTILES:
            series.add(p, float(np.percentile(deltas, p)))
    budget = matrix.targets_for(DESIGN).max_worst_delta
    record.series_named("budget").add(100, budget)
    return record


def test_fig4_delta_delay_distribution(benchmark, capsys, matrix):
    record = benchmark.pedantic(_distributions, args=(matrix,),
                                rounds=1, iterations=1)
    emit(capsys, record.render())

    no_ndr = dict(record.series["no-ndr"].as_rows())
    all_ndr = dict(record.series["all-ndr"].as_rows())
    smart = dict(record.series["smart"].as_rows())
    budget = record.series["budget"].ys[0]

    # Tail: no-NDR crosses the budget, the others do not.
    assert no_ndr[100] > budget
    assert all_ndr[100] <= budget
    assert smart[100] <= budget
    # ALL-NDR compresses the whole distribution.
    assert all_ndr[50] < no_ndr[50]
    # SMART stops at "good enough": its distribution sits between the
    # all-NDR one and the budget line.
    assert smart[50] >= all_ndr[50] * 0.9
    assert smart[100] >= all_ndr[100] * 0.9
    assert smart[100] < 0.8 * no_ndr[100]
