"""Shared machinery for the experiment benchmarks.

The expensive artefact — the full (design x policy) flow matrix — is
computed once per session, lazily, and shared by every table/figure
module.  Budgets follow the reproduction protocol: each design's
robustness targets are pegged to its own all-NDR reference run
(15% slack), which is the paper's operational definition of "as robust
as all-NDR".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import pytest

from repro import perf
from repro.bench import benchmark_suite, generate_design, spec_by_name
from repro.core import (FlowResult, NdrClassifierGuide, Policy,
                        RobustnessTargets, run_flow, targets_from_reference)
from repro.tech import Technology, default_technology

#: Designs used by the full-suite tables (largest capped for CI runtime).
TABLE_DESIGNS = ("ckt64", "ckt128", "ckt256", "ckt512", "ckt1024", "ckt2048")
TABLE_POLICIES = (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART,
                  Policy.SMART_ML)
ML_TRAIN_DESIGNS = ("ckt64", "ckt128", "ckt256")


@dataclass
class SuiteMatrix:
    """Lazily filled cache of flow runs and per-design targets."""

    tech: Technology
    targets: dict[str, RobustnessTargets] = field(default_factory=dict)
    flows: dict[tuple[str, str], FlowResult] = field(default_factory=dict)
    _guide: Optional[NdrClassifierGuide] = None

    def targets_for(self, design_name: str) -> RobustnessTargets:
        if design_name not in self.targets:
            design = generate_design(spec_by_name(design_name))
            reference = run_flow(design, self.tech, policy=Policy.ALL_NDR)
            self.targets[design_name] = targets_from_reference(
                reference.analyses, self.tech)
        return self.targets[design_name]

    def guide(self) -> NdrClassifierGuide:
        if self._guide is None:
            guide = NdrClassifierGuide(seed=5)
            guide.fit_designs(
                [generate_design(spec_by_name(n)) for n in ML_TRAIN_DESIGNS],
                self.tech)
            self._guide = guide
        return self._guide

    def flow(self, design_name: str, policy: Policy) -> FlowResult:
        key = (design_name, policy.value)
        if key not in self.flows:
            design = generate_design(spec_by_name(design_name))
            kwargs = {}
            if policy == Policy.SMART_ML:
                kwargs["guide"] = self.guide()
            self.flows[key] = run_flow(
                design, self.tech, policy=policy,
                targets=self.targets_for(design_name), **kwargs)
        return self.flows[key]


def pytest_addoption(parser):
    parser.addoption(
        "--profile-phases", action="store_true", default=False,
        help="record and print per-phase flow timings (repro.perf)")


def pytest_configure(config):
    if config.getoption("--profile-phases"):
        perf.enable()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    timer = perf.active()
    if config.getoption("--profile-phases") and timer is not None:
        terminalreporter.write_line("")
        terminalreporter.write_line(timer.report("bench phase timings"))


_MATRIX: Optional[SuiteMatrix] = None


@pytest.fixture(scope="session")
def matrix() -> SuiteMatrix:
    global _MATRIX
    if _MATRIX is None:
        _MATRIX = SuiteMatrix(tech=default_technology())
    return _MATRIX


@pytest.fixture(scope="session")
def tech() -> Technology:
    return default_technology()


def emit(capsys, text: str) -> None:
    """Print experiment output through pytest's capture."""
    with capsys.disabled():
        print()
        print(text)


def suite_specs():
    return [spec for spec in benchmark_suite() if spec.name in TABLE_DESIGNS]
