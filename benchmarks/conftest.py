"""Shared machinery for the experiment benchmarks.

The expensive artefact — the full (design x policy) flow matrix — is a
declarative :class:`~repro.runner.RunMatrix` executed once per session
by the :class:`~repro.runner.FlowRunner` and shared by every
table/figure module.  Budgets follow the reproduction protocol: each
design's robustness targets are pegged to its own all-NDR reference run
(15% slack) — a deduplicated upstream job of the runner — which is the
paper's operational definition of "as robust as all-NDR".

Set ``REPRO_BENCH_JOBS=N`` to fan the matrix out over ``N`` worker
processes; results are identical to the serial run (flows are
deterministic and every cell is content-addressed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

import pytest

from repro import obs
from repro.designs import benchmark_suite, generate_design, spec_by_name
from repro.core import FlowResult, NdrClassifierGuide, Policy, RobustnessTargets
from repro.runner import FlowRunner, JobSpec

#: Designs used by the full-suite tables (largest capped for CI runtime).
TABLE_DESIGNS = ("ckt64", "ckt128", "ckt256", "ckt512", "ckt1024", "ckt2048")
#: The corpus slice beyond the synthetic suite: one hierarchical SoC,
#: one gated multi-domain SoC, one imported floorplan (smallest of each
#: family, capped for CI runtime).
CORPUS_DESIGNS = ("soc_h64", "soc_g128", "imp_uart")
TABLE_POLICIES = (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART,
                  Policy.SMART_ML)
ML_TRAIN_DESIGNS = ("ckt64", "ckt128", "ckt256")

#: The reproduction protocol's budget slack over the all-NDR reference.
PROTOCOL_SLACK = 0.15


def bench_jobs() -> int:
    """Worker processes for the bench matrix (``REPRO_BENCH_JOBS``)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@dataclass
class SuiteMatrix:
    """The session's flow matrix, scheduled through the FlowRunner."""

    runner: FlowRunner
    flows: dict[tuple[str, str], FlowResult] = field(default_factory=dict)
    _guide: Optional[NdrClassifierGuide] = None

    @property
    def tech(self):
        return self.runner.tech

    def targets_for(self, design_name: str) -> RobustnessTargets:
        return self.runner.targets_for(design_name, slack=PROTOCOL_SLACK)

    def guide(self) -> NdrClassifierGuide:
        if self._guide is None:
            guide = NdrClassifierGuide(seed=5)
            guide.fit_designs(
                [generate_design(spec_by_name(n)) for n in ML_TRAIN_DESIGNS],
                self.tech, jobs=bench_jobs(), store=self.runner.store)
            self._guide = guide
            self.runner.guide = guide
        return self._guide

    def ensure(self, designs: Sequence[str],
               policies: Sequence[Policy]) -> None:
        """Declare and execute a (designs x policies) sub-matrix.

        Missing cells run as one batch — in parallel when
        ``REPRO_BENCH_JOBS`` is set — instead of one hand-loop
        iteration at a time.
        """
        wanted = [(d, p) for d in designs for p in policies]
        missing = [JobSpec(design=d, policy=p, slack=PROTOCOL_SLACK)
                   for d, p in wanted if (d, p.value) not in self.flows]
        if not missing:
            return
        if any(job.policy == Policy.SMART_ML for job in missing):
            self.guide()  # fit before workers fork
        results = self.runner.run(missing, jobs=bench_jobs(),
                                  return_flows=True)
        for result in results:
            key = (result.job.design, result.job.policy.value)
            self.flows[key] = result.flow

    def flow(self, design_name: str, policy: Policy) -> FlowResult:
        key = (design_name, policy.value)
        if key not in self.flows:
            self.ensure((design_name,), (policy,))
        return self.flows[key]


def pytest_addoption(parser):
    # pytest owns --trace (its pdb hook), so the obs flag gets a
    # bench- prefix here even though the repro CLI spells it --trace.
    parser.addoption(
        "--bench-trace", nargs="?", const="", default=None, metavar="PATH",
        help="record an obs trace of the bench session; print the phase "
             "breakdown and write trace JSONL to PATH (bare --bench-trace "
             "skips the file)")
    parser.addoption(
        "--profile-phases", action="store_true", default=False,
        help="deprecated alias for bare --bench-trace")


def _trace_opt(config) -> Optional[str]:
    trace = config.getoption("--bench-trace")
    if trace is None and config.getoption("--profile-phases"):
        trace = ""
    return trace


def pytest_configure(config):
    if _trace_opt(config) is not None:
        obs.enable("bench")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tracer = obs.active()
    trace = _trace_opt(config)
    if trace is None or tracer is None:
        return
    from repro.obs.report import phase_breakdown

    terminalreporter.write_line("")
    terminalreporter.write_line(phase_breakdown(tracer).render())
    if trace:
        from repro.obs.export import export_jsonl

        out = export_jsonl(tracer, path=trace)
        terminalreporter.write_line(f"trace written to {out}")


_MATRIX: Optional[SuiteMatrix] = None


@pytest.fixture(scope="session")
def matrix() -> SuiteMatrix:
    # Artifact reuse within the session (shared builds, deduped
    # references) without trusting a stale persistent cache from an
    # older code state: the store lives in a fresh temp dir unless the
    # user explicitly points REPRO_CACHE_DIR somewhere durable.
    global _MATRIX
    if _MATRIX is None:
        import tempfile

        store = (os.environ.get("REPRO_CACHE_DIR")
                 or tempfile.mkdtemp(prefix="repro-bench-artifacts-"))
        _MATRIX = SuiteMatrix(runner=FlowRunner(store=store,
                                                jobs=bench_jobs()))
    return _MATRIX


@pytest.fixture(scope="session")
def tech():
    from repro.tech import default_technology
    return default_technology()


def emit(capsys, text: str) -> None:
    """Print experiment output through pytest's capture."""
    with capsys.disabled():
        print()
        print(text)


def suite_specs():
    return [spec for spec in benchmark_suite() if spec.name in TABLE_DESIGNS]


def corpus_specs():
    """The hierarchical/gated/imported slice of the corpus."""
    return [spec_by_name(name) for name in CORPUS_DESIGNS]
