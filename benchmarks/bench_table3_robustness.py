"""Table 3 — Robustness per policy.

For every design and policy: nominal skew, Monte-Carlo mu+3sigma skew,
worst crosstalk delta delay, worst slew, and EM violations — against
the design's reference-pegged budgets.  Expected shape: NO-NDR violates
(delta delay and/or EM) on every design; ALL-NDR meets everything it
can; SMART and SMART-ML meet every budget.
"""

from __future__ import annotations

from conftest import TABLE_DESIGNS, TABLE_POLICIES, emit
from repro.reporting import Table


def _build_table(matrix) -> Table:
    table = Table(
        "Table 3: robustness per policy (budget in '[]')",
        ["design", "policy", "skew ps", "3sig ps", "dd ps", "slew ps",
         "EM viol", "feasible"])
    matrix.ensure(TABLE_DESIGNS, TABLE_POLICIES)
    for name in TABLE_DESIGNS:
        targets = matrix.targets_for(name)
        for policy in TABLE_POLICIES:
            flow = matrix.flow(name, policy)
            a = flow.analyses
            table.add_row(
                name,
                policy.value,
                a.timing.skew,
                f"{a.mc.skew_3sigma:.2f} [{targets.max_skew_3sigma:.2f}]",
                f"{a.crosstalk.worst_delta:.2f} [{targets.max_worst_delta:.2f}]",
                a.timing.worst_slew,
                int(a.em.num_violations),
                "yes" if flow.feasible else "NO",
            )
    return table


def test_table3_robustness_per_policy(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build_table, args=(matrix,),
                               rounds=1, iterations=1)
    emit(capsys, table.render())

    from repro.core import Policy

    # Shape assertions: no-NDR must fail somewhere; smart must pass
    # everywhere.
    for name in TABLE_DESIGNS:
        assert not matrix.flow(name, Policy.NO_NDR).feasible
        assert matrix.flow(name, Policy.SMART).feasible
        assert matrix.flow(name, Policy.SMART_ML).feasible
