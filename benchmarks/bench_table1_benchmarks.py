"""Table 1 — Benchmark statistics.

Reproduces the evaluation setup table: per design, the sink count, die
size, aggressor nets, synthesized tree structure (depth, buffers,
stages), routed clock wirelength and nominal timing at default rules.
"""

from __future__ import annotations

from conftest import corpus_specs, emit, suite_specs
from repro.designs import generate_design
from repro.core.flow import build_physical_design
from repro.reporting import Table
from repro.timing import analyze_clock_timing


def _build_table(tech, specs, title) -> Table:
    table = Table(
        title,
        ["design", "sinks", "die (um)", "aggr nets", "tree depth",
         "buffers", "stages", "clk WL (um)", "latency (ps)", "skew (ps)"])
    for spec in specs:
        design = generate_design(spec)
        phys = build_physical_design(design, tech)
        timing = analyze_clock_timing(phys.extraction.network, tech)
        depth = max(phys.tree.depth(leaf.node_id)
                    for leaf in phys.tree.leaves())
        table.add_row(
            spec.name,
            spec.n_sinks,
            f"{spec.die_edge:.0f}",
            spec.n_aggressors,
            depth,
            sum(1 for n in phys.tree if n.buffer is not None),
            len(phys.extraction.network.stages),
            phys.routing.clock_wirelength(),
            timing.latency,
            timing.skew,
        )
    return table


def test_table1_benchmark_statistics(benchmark, capsys, tech):
    table = benchmark.pedantic(
        _build_table,
        args=(tech, suite_specs(),
              "Table 1: benchmark statistics (default-rule routing)"),
        rounds=1, iterations=1)
    emit(capsys, table.render())
    assert len(table.rows) == len(suite_specs())


def test_table1_corpus_extension(benchmark, capsys, tech):
    """The same statistics over the hierarchical/gated/imported slice."""
    table = benchmark.pedantic(
        _build_table,
        args=(tech, corpus_specs(),
              "Table 1 (ext): corpus families (default-rule routing)"),
        rounds=1, iterations=1)
    emit(capsys, table.render())
    assert len(table.rows) == len(corpus_specs())
