"""Scaling benchmark — sparse batched engine vs dense per-stage kernels.

The point of the ``numpy-sparse`` backend is to hold the analysis-engine
speedup when designs outgrow the per-stage dense kernels: 16k–64k sinks
mean thousands of stages, and a Python loop over per-stage numpy calls
drowns the vectorisation.  This benchmark climbs the size ladder
(ckt1024 → ckt4096 → ckt16384), measures each backend's engine compile
+ full analysis + one optimizer iteration in a *subprocess* (so
``ru_maxrss`` is a clean per-backend high-water mark, not polluted by
the parent's design build), and records the results in
``BENCH_scaling.json`` at the repo root.

The physical build itself (CTS + route + trim + extract) is backend-
independent; the parent builds each rung once and ships it to the
children via pickle.

Run the full ladder with ``pytest benchmarks/bench_scaling.py``; the
ckt16384 rung is opt-in via ``-m slow`` (it builds for ~40 s before the
timed section starts).
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

SCALING_JSON = Path(__file__).resolve().parent.parent / "BENCH_scaling.json"
BACKENDS = ("numpy-dense", "numpy-sparse")

#: Per-rung memo so the smoke test and the ladder test share one build.
_RUNG_CACHE: dict[str, dict] = {}


# -- child: one backend, one design, measured in isolation --------------------


def _child_main(pickle_path: str, backend_name: str) -> None:
    """Measure one backend on one pre-built design; JSON on stdout."""
    import time

    from repro import obs
    from repro.core.optimizer import SmartNdrOptimizer
    from repro.core.targets import RobustnessTargets
    from repro.engine import AnalysisEngine
    from repro.reliability.em import DEFAULT_EM_FACTOR

    with open(pickle_path, "rb") as fh:
        physical = pickle.load(fh)
    tech = physical.tech
    freq = physical.design.clock_freq
    targets = RobustnessTargets.for_period(physical.design.clock_period,
                                           tech.max_slew)

    t0 = time.perf_counter()
    engine = AnalysisEngine(physical.extraction, physical.tree, tech,
                            freq, targets, backend=backend_name)
    compile_s = time.perf_counter() - t0
    kernel = engine.kernel

    def sweep(fn, reps=3):
        """Best-of-N full-sweep time (caches dropped before each rep)."""
        best = float("inf")
        for _ in range(reps):
            kernel.invalidate_caches()
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    static_s = sweep(lambda: kernel.static_timing(tech))
    xtalk_s = sweep(lambda: kernel.crosstalk(alignment=targets.alignment))
    em_s = sweep(lambda: kernel.em(tech.vdd, freq,
                                   em_factor=DEFAULT_EM_FACTOR))
    mc_s = sweep(lambda: kernel.monte_carlo(engine.frozen), reps=2)
    analyze_s = static_s + xtalk_s + em_s + mc_s

    t0 = time.perf_counter()
    opt = SmartNdrOptimizer(physical.tree, physical.routing, tech,
                            targets, freq, max_iterations=1,
                            use_engine=backend_name)
    opt.run()
    opt_iter_s = time.perf_counter() - t0

    json.dump({
        "backend": backend_name,
        "compile_s": round(compile_s, 4),
        "static_s": round(static_s, 4),
        "xtalk_s": round(xtalk_s, 4),
        "em_s": round(em_s, 4),
        "mc_s": round(mc_s, 4),
        "analyze_s": round(analyze_s, 4),
        "opt_iter_s": round(opt_iter_s, 4),
        "total_s": round(compile_s + analyze_s + opt_iter_s, 4),
        "peak_rss_bytes": obs.peak_rss_bytes(),
    }, sys.stdout)


if __name__ == "__main__":
    _child_main(sys.argv[1], sys.argv[2])
    sys.exit(0)


# -- parent: build once, fan out per backend ----------------------------------


def _repo_env() -> dict[str, str]:
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_rung(design_name: str) -> dict:
    """Build one ladder rung, then measure every backend on it."""
    if design_name in _RUNG_CACHE:
        return _RUNG_CACHE[design_name]
    from repro.bench import generate_design, spec_by_name
    from repro.core.flow import build_physical_design
    from repro.tech import default_technology

    spec = spec_by_name(design_name)
    physical = build_physical_design(generate_design(spec),
                                     default_technology())
    n_stages = len(physical.extraction.network.stages)

    backends = {}
    with tempfile.TemporaryDirectory(prefix="repro-scaling-") as tmp:
        pkl = os.path.join(tmp, f"{design_name}.pkl")
        with open(pkl, "wb") as fh:
            pickle.dump(physical, fh, protocol=pickle.HIGHEST_PROTOCOL)
        for backend in BACKENDS:
            proc = subprocess.run(
                [sys.executable, os.path.abspath(__file__), pkl, backend],
                capture_output=True, text=True, env=_repo_env(), check=False)
            assert proc.returncode == 0, \
                f"{design_name}/{backend} child failed:\n{proc.stderr}"
            backends[backend] = json.loads(proc.stdout)

    dense, sparse = backends["numpy-dense"], backends["numpy-sparse"]
    # The re-rank sweep (static timing + crosstalk) is what the
    # optimizer recomputes after every candidate churn — the hot loop
    # the batched arenas were built for.  The full-bundle ratio is
    # floored by work both backends share (result-object construction,
    # the Monte-Carlo matrix FLOPs), so it is recorded separately.
    rerank_speedup = ((dense["static_s"] + dense["xtalk_s"])
                      / max(sparse["static_s"] + sparse["xtalk_s"], 1e-9))
    analyze_speedup = dense["analyze_s"] / max(sparse["analyze_s"], 1e-9)
    rung = {
        "design": design_name,
        "n_sinks": spec.n_sinks,
        "n_stages": n_stages,
        "backends": backends,
        "rerank_speedup": round(rerank_speedup, 2),
        "analyze_speedup": round(analyze_speedup, 2),
    }
    _RUNG_CACHE[design_name] = rung
    _record(rung)
    return rung


def _record(rung: dict) -> None:
    """Merge one rung into ``BENCH_scaling.json`` (keyed by design)."""
    payload = {}
    if SCALING_JSON.exists():
        payload = json.loads(SCALING_JSON.read_text(encoding="utf-8"))
    rungs = {r["design"]: r for r in payload.get("rungs", [])}
    rungs[rung["design"]] = rung
    payload["rungs"] = sorted(rungs.values(), key=lambda r: r["n_sinks"])
    SCALING_JSON.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")


def _emit_rung(capsys, rung: dict) -> None:
    from conftest import emit

    lines = [f"{rung['design']} ({rung['n_sinks']} sinks, "
             f"{rung['n_stages']} stages): "
             f"re-rank speedup {rung['rerank_speedup']:.1f}x, "
             f"full-bundle {rung['analyze_speedup']:.1f}x"]
    for name, r in rung["backends"].items():
        lines.append(
            f"  {name:<12} compile {r['compile_s']:.3f}s  "
            f"static {r['static_s']:.3f}s  xtalk {r['xtalk_s']:.3f}s  "
            f"em {r['em_s']:.3f}s  mc {r['mc_s']:.3f}s  "
            f"opt-iter {r['opt_iter_s']:.3f}s  "
            f"peak-rss {r['peak_rss_bytes'] / 1e6:.0f}MB")
    emit(capsys, "\n".join(lines))


# -- the ladder ---------------------------------------------------------------


def test_scaling_smoke_ckt1024(capsys):
    """CI rung: the sparse backend beats dense already at 1k sinks."""
    rung = _run_rung("ckt1024")
    _emit_rung(capsys, rung)
    sparse = rung["backends"]["numpy-sparse"]
    assert rung["rerank_speedup"] >= 2.0, rung
    assert rung["analyze_speedup"] >= 1.0, rung
    # Wall budget: this rung must stay cheap enough for every-PR CI.
    assert sparse["total_s"] < 30.0, rung


def test_scaling_speedup_holds_at_ckt4096(capsys):
    """The tentpole claim: ≥5x re-rank speedup at 4k sinks, sub-quadratic RSS."""
    small = _run_rung("ckt1024")
    large = _run_rung("ckt4096")
    _emit_rung(capsys, large)
    assert large["rerank_speedup"] >= 5.0, large
    assert large["analyze_speedup"] >= 1.0, large

    # Peak RSS must grow sub-quadratically in sink count (dense
    # membership/incidence matrices were the quadratic term this PR
    # removed).  16x sinks => far less than 256x memory; the interpreter
    # floor makes the observed ratio much smaller still.
    ratio = (large["backends"]["numpy-sparse"]["peak_rss_bytes"]
             / max(small["backends"]["numpy-sparse"]["peak_rss_bytes"], 1))
    size_ratio = large["n_sinks"] / small["n_sinks"]
    assert ratio < size_ratio ** 2, (small, large)


@pytest.mark.slow
def test_scaling_holds_at_ckt16384(capsys):
    """16k sinks: compile + full analysis + one optimizer iteration < 60 s."""
    rung = _run_rung("ckt16384")
    _emit_rung(capsys, rung)
    sparse = rung["backends"]["numpy-sparse"]
    assert sparse["total_s"] < 60.0, rung
    assert rung["rerank_speedup"] >= 5.0, rung
