"""Figure 11 — Clock gating on top of smart NDR.

Sweeps the gated subtrees' enable probability on the smart-NDR
implementation and reports effective clock power.  Expected shape: at
enable 1.0 the ICG overhead makes gating a small net loss; power falls
roughly linearly with enable; at enable ~0.2, gating saves several
times more power than rule selection did — the two techniques compose
(NDR selection prunes the capacitance, gating prunes the toggling).
"""

from __future__ import annotations

from conftest import emit
from repro.core import Policy
from repro.power import analyze_power
from repro.power.gating import analyze_gated_power, uniform_gating_plan
from repro.reporting import ExperimentRecord

DESIGN = "ckt512"
ENABLES = (1.0, 0.8, 0.6, 0.4, 0.2)


def _sweep(matrix) -> ExperimentRecord:
    record = ExperimentRecord(
        "fig11", f"clock gating x smart NDR on {DESIGN}",
        "enable probability", "clock power (uW)")
    flow = matrix.flow(DESIGN, Policy.SMART)
    extraction = flow.physical.extraction
    freq = flow.physical.design.clock_freq
    plain = analyze_power(extraction, matrix.tech, freq)
    record.series_named("ungated").add(1.0, plain.p_total)
    network = extraction.network
    series = record.series_named("gated")
    for enable in ENABLES:
        plan = uniform_gating_plan(network, enable=enable, min_flops=4)
        report = analyze_gated_power(extraction, matrix.tech, freq, plan)
        series.add(enable, report.p_total)
    record.series_named("gates").add(0, len(
        uniform_gating_plan(network, 0.5, 4)))
    return record


def test_fig11_gating_sweep(benchmark, capsys, matrix):
    record = benchmark.pedantic(_sweep, args=(matrix,), rounds=1,
                                iterations=1)
    emit(capsys, record.render())
    gated = dict(record.series["gated"].as_rows())
    ungated = record.series["ungated"].ys[0]
    # Full-enable gating is a small net loss (ICG overhead).
    assert ungated < gated[1.0] < 1.1 * ungated
    # Deep gating is a big win.
    assert gated[0.2] < 0.6 * ungated
    # Monotone in enable.
    values = [gated[e] for e in ENABLES]
    assert values == sorted(values, reverse=True)
