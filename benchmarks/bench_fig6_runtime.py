"""Figure 6 — Runtime scaling of the flow.

Wall-clock time of the full flow per policy vs. design size.  Expected
shape: uniform policies scale near-linearly in sink count; the greedy
optimizer pays a small constant number of analyze/re-trim iterations on
top (a few x); the ML-guided variant cuts the greedy gap by replacing
the sensitivity loop with one prediction plus a short repair pass.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import emit
from repro.core import Policy
from repro.reporting import ExperimentRecord

DESIGNS = ("ckt64", "ckt128", "ckt256", "ckt512", "ckt1024")

#: Before/after record of the optimizer inner-loop speedup (engine off
#: vs on), written next to the repo's other top-level artefacts.
RUNTIME_JSON = Path(__file__).resolve().parent.parent \
    / "BENCH_opt_runtime.json"


def _collect(matrix) -> ExperimentRecord:
    record = ExperimentRecord(
        "fig6", "flow runtime vs design size",
        "sinks", "runtime (s)")
    from repro.bench import spec_by_name

    for name in DESIGNS:
        sinks = spec_by_name(name).n_sinks
        for policy in (Policy.ALL_NDR, Policy.SMART, Policy.SMART_ML):
            flow = matrix.flow(name, policy)
            record.series_named(policy.value).add(sinks, flow.runtime)
    return record


def test_fig6_runtime_scaling(benchmark, capsys, matrix):
    record = benchmark.pedantic(_collect, args=(matrix,),
                                rounds=1, iterations=1)
    emit(capsys, record.render())

    smart = record.series["smart"]
    all_ndr = record.series["all-ndr"]
    # Smart pays an iteration overhead over the uniform flow but stays
    # within a small constant factor at every size.
    for (_, t_all), (_, t_smart) in zip(all_ndr.as_rows(), smart.as_rows()):
        assert t_smart < 40.0 * max(t_all, 1e-3)  # static: ok[U002] 1ms runtime floor, not a conversion
    # Near-linear scaling: 16x sinks should cost far less than 100x time.
    assert smart.ys[-1] < 120.0 * max(smart.ys[0], 1e-3)  # static: ok[U002] 1ms runtime floor, not a conversion


def test_fig6_optimizer_inner_loop_speedup(capsys, matrix):
    """Incremental engine vs legacy full-rebuild loop on the largest design.

    Both runs start from identical fresh physical builds and must make
    identical decisions; only the wall time may differ.  The before /
    after pair is recorded in ``BENCH_opt_runtime.json``.
    """
    from repro.bench import generate_design, spec_by_name
    from repro.core.flow import build_physical_design
    from repro.core.optimizer import SmartNdrOptimizer

    name = DESIGNS[-1]
    spec = spec_by_name(name)
    targets = matrix.targets_for(name)
    freq = generate_design(spec).clock_freq

    def timed_run(use_engine: bool):
        phys = build_physical_design(generate_design(spec), matrix.tech)
        opt = SmartNdrOptimizer(phys.tree, phys.routing, matrix.tech,
                                targets, freq, use_engine=use_engine)
        start = time.perf_counter()
        result = opt.run()
        return time.perf_counter() - start, result

    before_s, legacy = timed_run(use_engine=False)
    after_s, engine = timed_run(use_engine=True)

    # Identical results: same upgrade decisions, same final metrics.
    assert engine.upgraded == legacy.upgraded
    assert engine.iterations == legacy.iterations
    assert abs(engine.analyses.power.p_total
               - legacy.analyses.power.p_total) < 1e-6
    assert abs(engine.analyses.mc.skew_3sigma
               - legacy.analyses.mc.skew_3sigma) < 1e-6

    speedup = before_s / max(after_s, 1e-9)
    payload = {
        "design": name,
        "n_sinks": spec.n_sinks,
        "iterations": engine.iterations,
        "num_upgraded": engine.num_upgraded,
        "before_s": round(before_s, 3),
        "after_s": round(after_s, 3),
        "speedup": round(speedup, 2),
    }
    RUNTIME_JSON.write_text(json.dumps(payload, indent=2) + "\n",
                            encoding="utf-8")
    emit(capsys, f"optimizer inner loop on {name}: "
                 f"{before_s:.2f}s -> {after_s:.2f}s ({speedup:.1f}x)")
    assert speedup >= 3.0, payload
