"""Figure 6 — Runtime scaling of the flow.

Wall-clock time of the full flow per policy vs. design size.  Expected
shape: uniform policies scale near-linearly in sink count; the greedy
optimizer pays a small constant number of analyze/re-trim iterations on
top (a few x); the ML-guided variant cuts the greedy gap by replacing
the sensitivity loop with one prediction plus a short repair pass.
"""

from __future__ import annotations

from conftest import emit
from repro.core import Policy
from repro.reporting import ExperimentRecord

DESIGNS = ("ckt64", "ckt128", "ckt256", "ckt512", "ckt1024")


def _collect(matrix) -> ExperimentRecord:
    record = ExperimentRecord(
        "fig6", "flow runtime vs design size",
        "sinks", "runtime (s)")
    from repro.bench import spec_by_name

    for name in DESIGNS:
        sinks = spec_by_name(name).n_sinks
        for policy in (Policy.ALL_NDR, Policy.SMART, Policy.SMART_ML):
            flow = matrix.flow(name, policy)
            record.series_named(policy.value).add(sinks, flow.runtime)
    return record


def test_fig6_runtime_scaling(benchmark, capsys, matrix):
    record = benchmark.pedantic(_collect, args=(matrix,),
                                rounds=1, iterations=1)
    emit(capsys, record.render())

    smart = record.series["smart"]
    all_ndr = record.series["all-ndr"]
    # Smart pays an iteration overhead over the uniform flow but stays
    # within a small constant factor at every size.
    for (_, t_all), (_, t_smart) in zip(all_ndr.as_rows(), smart.as_rows()):
        assert t_smart < 40.0 * max(t_all, 1e-3)
    # Near-linear scaling: 16x sinks should cost far less than 100x time.
    assert smart.ys[-1] < 120.0 * max(smart.ys[0], 1e-3)
