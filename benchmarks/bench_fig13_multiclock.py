"""Figure 13 — Two clock domains weaving through one die.

Splits ckt256 into two interleaved clock domains routed into the same
track space, so each tree sees the other as an activity-1.0 aggressor,
and compares policies per domain.  Expected shape: NO-NDR fails (the
other clock is the worst aggressor there is); uniform ALL-NDR is not
guaranteed to pass either (the second domain's trunks hit EM corners);
SMART passes both domains at a power near the NO-NDR point — and the
combined story matches the single-clock headline.
"""

from __future__ import annotations

from conftest import emit
from repro.bench import generate_design, spec_by_name
from repro.core import Policy
from repro.core.multiclock import run_multiclock_flow, split_domains
from repro.reporting import Table

DESIGN = "ckt256"


def _build(matrix):
    from repro.core import targets_from_reference

    # Reference-pegged per-domain budgets: the standard protocol, run
    # against the multiclock ALL-NDR build.
    design = generate_design(spec_by_name(DESIGN))
    domains = split_domains(design, 2, interleave=True)
    reference = run_multiclock_flow(design, domains, matrix.tech,
                                    policy=Policy.ALL_NDR)
    targets = {d.domain.name: targets_from_reference(d.analyses, matrix.tech)
               for d in reference.domains}

    table = Table(
        f"Fig 13: two interleaved clock domains on {DESIGN}",
        ["policy", "domain", "P (uW)", "dd ps", "3sig ps", "EM viol",
         "feasible"])
    results = {}
    for policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART):
        design = generate_design(spec_by_name(DESIGN))
        domains = split_domains(design, 2, interleave=True)
        result = run_multiclock_flow(design, domains, matrix.tech,
                                     policy=policy, targets=targets)
        results[policy] = result
        for d in result.domains:
            a = d.analyses
            table.add_row(policy.value, d.domain.name, d.clock_power,
                          a.crosstalk.worst_delta, a.mc.skew_3sigma,
                          int(a.em.num_violations),
                          "yes" if d.feasible else "NO")
    _build.results = results
    return table


def test_fig13_multiclock(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build, args=(matrix,), rounds=1,
                               iterations=1)
    emit(capsys, table.render())
    results = _build.results
    assert not results[Policy.NO_NDR].all_feasible
    assert results[Policy.SMART].all_feasible
    # Selective assignment beats uniform NDR on combined power.
    assert results[Policy.SMART].total_power < \
        results[Policy.ALL_NDR].total_power
