"""Figure 7 — Ablations of the smart optimizer's design choices.

Three ablations on one design, against the same budgets:

* **rule-set** — restrict the optimizer's upgrade space to width-only
  or spacing-only rules.  Expected: each missing axis gets bought some
  other, more expensive way.  Spacing-only cannot fix EM with rules, so
  the flow's re-synthesis fallback triples the buffer count to shrink
  the trunk charge — costing more than uniform all-NDR.  Width-only
  reaches the delta-delay budget only through shared-resistance
  reduction, so inefficient per femtofarad that it upgrades essentially
  every wire.  The full lattice needs neither workaround.
* **congestion price (lambda_track)** — with the track price at zero,
  spacing upgrades look free and the optimizer stamps more of them
  (higher track cost for the same feasibility).
* **feature importance** — which wire features the trained guide
  actually uses (upstream resistance / coupling exposure should rank
  near the top).
"""

from __future__ import annotations

import dataclasses

from conftest import emit
from repro.bench import generate_design, spec_by_name
from repro.core import Policy, run_flow
from repro.reporting import Table

DESIGN = "ckt256"


def _restricted_tech(tech, keep_names):
    rules = tuple(r for r in tech.rules if r.name.value in keep_names)
    return dataclasses.replace(tech, rules=rules)


def _run(tech, matrix, lambda_track=0.05):
    design = generate_design(spec_by_name(DESIGN))
    return run_flow(design, tech, policy=Policy.SMART,
                    targets=matrix.targets_for(DESIGN),
                    lambda_track=lambda_track)


def _build(matrix):
    tech = matrix.tech
    variants = {
        "full lattice": _run(tech, matrix),
        "width-only rules": _run(
            _restricted_tech(tech, {"W1S1", "W2S1", "W4S2"}), matrix),
        "spacing-only rules": _run(
            _restricted_tech(tech, {"W1S1", "W1S2"}), matrix),
        "lambda_track=0": _run(tech, matrix, lambda_track=0.0),
    }
    table = Table(
        f"Fig 7 (ablation): optimizer variants on {DESIGN}",
        ["variant", "power (uW)", "upgraded", "stages", "ndr track (um)",
         "feasible"])
    for label, flow in variants.items():
        hist = flow.rule_histogram
        upgraded = sum(hist.values()) - hist.get("W1S1", 0)
        table.add_row(label, flow.clock_power, upgraded,
                      len(flow.physical.extraction.network.stages),
                      flow.ndr_track_cost,
                      "yes" if flow.feasible else "NO")
    return table, variants


def test_fig7_ablations(benchmark, capsys, matrix):
    table, variants = benchmark.pedantic(_build, args=(matrix,),
                                         rounds=1, iterations=1)
    guide = matrix.guide()
    importances = sorted(guide.stats.feature_importances.items(),
                         key=lambda kv: -kv[1])[:6]
    text = table.render() + "\n\nGuide feature importances (top 6):\n" + \
        "\n".join(f"  {name:>18}: {value:.3f}" for name, value in importances)
    emit(capsys, text)

    full = variants["full lattice"]
    assert full.feasible
    # Spacing alone cannot fix EM with rules: feasibility is only
    # reached through the flow's re-synthesis fallback (many more
    # buffered stages), at a power cost above the full lattice.
    space = variants["spacing-only rules"]
    assert len(space.physical.extraction.network.stages) > \
        2 * len(full.physical.extraction.network.stages)
    assert space.clock_power > 1.15 * full.clock_power
    # Width alone only gets there by going (nearly) uniform: far more
    # upgrades and materially more power than the full lattice.
    full_hist = full.rule_histogram
    width_hist = variants["width-only rules"].rule_histogram
    full_up = sum(full_hist.values()) - full_hist.get("W1S1", 0)
    width_up = sum(width_hist.values()) - width_hist.get("W1S1", 0)
    assert width_up > 5 * full_up
    assert variants["width-only rules"].clock_power > \
        1.1 * full.clock_power
    # Pricing tracks reduces NDR track consumption.
    assert full.ndr_track_cost <= \
        variants["lambda_track=0"].ndr_track_cost
