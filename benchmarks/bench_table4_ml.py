"""Table 4 — Classifier quality and the ML-vs-greedy power gap.

The guide trains on the greedy optimizer's decisions on the three
smallest designs and is evaluated on the larger ones:

* **label agreement** — how often the classifier predicts the same rule
  the greedy teacher would choose on the held-out design;
* **upgrade precision/recall** — on the binary "did the wire get any
  NDR" question;
* **power gap** — ML-guided power relative to greedy-smart power.

Expected shape: agreement well above the majority-class baseline,
recall high (missing a needed NDR is what the repair pass must fix),
power gap a few percent.
"""

from __future__ import annotations

import numpy as np

from conftest import ML_TRAIN_DESIGNS, emit
from repro.bench import generate_design, spec_by_name
from repro.core import Policy
from repro.core.mlguide import RULE_CLASSES
from repro.ml.metrics import accuracy, precision, recall
from repro.reporting import Table

EVAL_DESIGNS = ("ckt512", "ckt1024")


def _teacher_labels(matrix, name):
    """(wire id -> rule name) chosen by the greedy optimizer."""
    flow = matrix.flow(name, Policy.SMART)
    routing = flow.physical.routing
    return {w.wire_id: w.rule.name.value for w in routing.clock_wires}


def _build_table(matrix) -> Table:
    guide = matrix.guide()
    table = Table(
        "Table 4: ML guide vs greedy teacher "
        f"(trained on {', '.join(ML_TRAIN_DESIGNS)})",
        ["eval design", "wires", "agreement", "upgrade prec", "upgrade rec",
         "greedy P (uW)", "ml P (uW)", "gap %", "ml feas"])
    for name in EVAL_DESIGNS:
        teacher = _teacher_labels(matrix, name)
        ml_flow = matrix.flow(name, Policy.SMART_ML)
        greedy_flow = matrix.flow(name, Policy.SMART)

        predictions = guide.predict_rules(
            greedy_flow.physical.tree, greedy_flow.physical.routing,
            matrix.tech, generate_design(spec_by_name(name)).clock_freq)

        common = sorted(set(teacher) & set(predictions))
        label_of = {r: i for i, r in enumerate(RULE_CLASSES)}
        y_true = np.array([label_of[teacher[w]] for w in common])
        y_pred = np.array([label_of[predictions[w]] for w in common])
        up_true = (y_true > 0).astype(int)
        up_pred = (y_pred > 0).astype(int)

        p_greedy = greedy_flow.clock_power
        p_ml = ml_flow.clock_power
        table.add_row(
            name,
            len(common),
            accuracy(y_true, y_pred),
            precision(up_true, up_pred),
            recall(up_true, up_pred),
            p_greedy,
            p_ml,
            100.0 * (p_ml - p_greedy) / p_greedy,
            "yes" if ml_flow.feasible else "NO",
        )
    return table


def test_table4_ml_guide_quality(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build_table, args=(matrix,),
                               rounds=1, iterations=1)
    emit(capsys, table.render())
    for row in table.rows:
        agreement = float(row[2])
        assert agreement > 0.6  # far above chance over 5 classes
        assert row[8] == "yes"  # repair pass guarantees feasibility
