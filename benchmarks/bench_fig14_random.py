"""Figure 14 — Does *where* the NDRs go matter?

The sanity experiment behind the paper's premise: give a random policy
the same upgrade budget the smart optimizer used (same number of wires
to full NDR, five seeds) and check whether it meets the constraints.
Expected shape: random placement at the matched count fails on every
seed (the EM trunks and the worst-coupled wires are a tiny, specific
subset), while smart passes — selectivity is about *which* wires, not
how many.
"""

from __future__ import annotations

from conftest import bench_jobs, emit
from repro.core import Policy
from repro.reporting import Table
from repro.runner import JobSpec

DESIGN = "ckt256"
SEEDS = (1, 2, 3, 4, 5)


def _build(matrix):
    smart = matrix.flow(DESIGN, Policy.SMART)
    hist = smart.rule_histogram
    n_wires = sum(hist.values())
    upgraded = n_wires - hist.get("W1S1", 0)
    fraction = upgraded / n_wires

    table = Table(
        f"Fig 14: random vs smart at matched upgrade count on {DESIGN} "
        f"({upgraded} wires)",
        ["policy", "seed", "P (uW)", "dd ps", "3sig ps", "EM viol",
         "feasible"])
    a = smart.analyses
    table.add_row("smart", "-", smart.clock_power, a.crosstalk.worst_delta,
                  a.mc.skew_3sigma, int(a.em.num_violations),
                  "yes" if smart.feasible else "NO")
    # One random cell per seed, declared as a job matrix: all five
    # share the cached build and the smart cell's reference job.
    cells = [JobSpec(design=DESIGN, policy=Policy.RANDOM, slack=0.15,
                     random_fraction=fraction, random_seed=seed)
             for seed in SEEDS]
    random_flows = [r.flow for r in matrix.runner.run(
        cells, jobs=bench_jobs(), return_flows=True)]
    for seed, flow in zip(SEEDS, random_flows):
        a = flow.analyses
        table.add_row("random", seed, flow.clock_power,
                      a.crosstalk.worst_delta, a.mc.skew_3sigma,
                      int(a.em.num_violations),
                      "yes" if flow.feasible else "NO")
    _build.random_flows = random_flows
    _build.smart = smart
    return table


def test_fig14_random_baseline(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build, args=(matrix,), rounds=1,
                               iterations=1)
    emit(capsys, table.render())
    assert _build.smart.feasible
    # Random placement at the same budget misses the point: most seeds
    # fail (allow at most one lucky seed).
    feasible_random = sum(1 for f in _build.random_flows if f.feasible)
    assert feasible_random <= 1
