"""Table 5 — Delay-model accuracy study (Elmore vs D2M).

Rule assignment runs on Elmore (additive + monotone, which the greedy
relies on); this table quantifies what that costs in absolute accuracy
by re-timing every design under the two-moment D2M estimate.  Expected
shape: D2M latency 15-30% below Elmore (Elmore's classic pessimism on
resistive paths), skew of the *same implementation* comparable under
both metrics (balanced trees stay balanced), and — the point — the
policy ordering (smart < all-NDR power at equal feasibility) unchanged,
since decisions depend on deltas, not absolutes.
"""

from __future__ import annotations

from conftest import TABLE_DESIGNS, emit
from repro.core import Policy
from repro.reporting import Table
from repro.timing import analyze_clock_timing


def _build(matrix) -> Table:
    table = Table(
        "Table 5: Elmore vs D2M timing of the smart implementation",
        ["design", "elmore lat (ps)", "d2m lat (ps)", "ratio",
         "elmore skew", "d2m skew"])
    for name in TABLE_DESIGNS:
        flow = matrix.flow(name, Policy.SMART)
        network = flow.physical.extraction.network
        elmore = analyze_clock_timing(network, matrix.tech)
        d2m = analyze_clock_timing(network, matrix.tech, delay_model="d2m")
        table.add_row(name, elmore.latency, d2m.latency,
                      d2m.latency / elmore.latency,
                      elmore.skew, d2m.skew)
    return table


def test_table5_delay_model_accuracy(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build, args=(matrix,), rounds=1, iterations=1)
    emit(capsys, table.render())
    for row in table.rows:
        ratio = float(row[3])
        assert 0.6 < ratio < 1.0
