"""Figure 10 — Useful-skew repair on top of the smart implementation.

Fabricates a synthetic setup-slack profile with failing paths on the
smart-NDR implementation, schedules capture-side offsets against the
implementable delay-buffer quantum, builds them, and measures the paths
against real clock arrivals.

Expected shape: every failing path repaired (measured slack >= 0), the
corrected-frame skew back under a few ps, and the implementation cost —
delay buffers plus trim capacitance — well under 1% of clock power.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.bench import generate_design, spec_by_name
from repro.core import Policy, run_flow
from repro.cts.refine import refine_skew
from repro.cts.usefulskew import (TimingPath, apply_useful_skew,
                                  delay_buffer_quantum, schedule_offsets)
from repro.reporting import ExperimentRecord

DESIGN = "ckt256"
N_FAILING = 8


def _run(matrix) -> ExperimentRecord:
    record = ExperimentRecord(
        "fig10", f"useful-skew repair on {DESIGN} (smart implementation)",
        "path index", "setup slack (ps)")
    # A private physical build: useful-skew insertion mutates the tree,
    # so the shared matrix flows must not be touched.
    flow = run_flow(generate_design(spec_by_name(DESIGN)), matrix.tech,
                    policy=Policy.SMART,
                    targets=matrix.targets_for(DESIGN))
    phys = flow.physical
    base_timing = flow.analyses.timing
    pins = [s.pin.full_name for s in base_timing.sinks]

    rng = np.random.default_rng(9)
    paths = []
    for i in range(N_FAILING):
        launch, capture = rng.choice(len(pins), size=2, replace=False)
        paths.append(TimingPath(pins[launch], pins[capture],
                                float(rng.uniform(-20.0, -4.0))))

    quantum = max(delay_buffer_quantum(matrix.tech, leaf.sink_pin.cap,
                                       phys.tree.edge_length(leaf.node_id))
                  for leaf in phys.tree.sinks())
    offsets = schedule_offsets(paths, max_offset=2.5 * quantum,
                               capture_only=True, min_positive=quantum)
    effective = apply_useful_skew(phys.tree, matrix.tech, offsets)
    result = refine_skew(phys.tree, phys.routing, matrix.tech,
                         offsets=effective)

    base = {s.pin.full_name: s.arrival for s in base_timing.sinks}
    now = {s.pin.full_name: s.arrival for s in result.timing.sinks}
    common = float(np.median([now[p] - base[p] for p in base]))
    shift = {p: (now[p] - base[p]) - common for p in base}

    before = record.series_named("before")
    after = record.series_named("after")
    for i, path in enumerate(paths):
        before.add(i, path.slack)
        after.add(i, path.slack + shift[path.capture_pin]
                  - shift[path.launch_pin])
    record.series_named("cost").add(0, result.added_pad_cap)
    record.series_named("corrected_skew").add(0, result.final_skew)
    return record


def test_fig10_useful_skew_repair(benchmark, capsys, matrix):
    record = benchmark.pedantic(_run, args=(matrix,), rounds=1, iterations=1)
    emit(capsys, record.render())
    for slack in record.series["after"].ys:
        assert slack >= -1.0  # every failing path repaired (tolerance 1 ps)
    assert record.series["corrected_skew"].ys[0] < 5.0
