"""Figure 5 — Smart-NDR savings vs. aggressor density.

Sweeps the signal-net density around the clock (aggressors per sink) on
a fixed-size design and reports the smart policy's power saving over
ALL-NDR.  Expected shape: at low density almost no wire needs
protection and savings approach the full all-NDR overhead; as density
rises, more wires must be upgraded and the savings shrink — smart
converges toward all-NDR (the crossover where uniform NDR stops being
wasteful).
"""

from __future__ import annotations

import dataclasses

from conftest import emit
from repro.bench import generate_design, spec_by_name
from repro.core import Policy, run_flow, targets_from_reference
from repro.reporting import ExperimentRecord

BASE = "ckt128"
DENSITIES = (0.5, 1.0, 2.0, 4.0, 6.0)


def _sweep(tech) -> ExperimentRecord:
    record = ExperimentRecord(
        "fig5", f"smart savings vs aggressor density ({BASE} geometry)",
        "aggressor nets per sink", "value")
    base_spec = spec_by_name(BASE)
    for density in DENSITIES:
        spec = dataclasses.replace(base_spec,
                                   name=f"{BASE}_d{density}",
                                   aggressors_per_sink=density)
        reference = run_flow(generate_design(spec), tech,
                             policy=Policy.ALL_NDR)
        targets = targets_from_reference(reference.analyses, tech)
        all_ndr = run_flow(generate_design(spec), tech,
                           policy=Policy.ALL_NDR, targets=targets)
        smart = run_flow(generate_design(spec), tech,
                         policy=Policy.SMART, targets=targets)
        saving = 100.0 * (all_ndr.clock_power - smart.clock_power) \
            / all_ndr.clock_power
        hist = smart.rule_histogram
        upgraded = 1.0 - hist.get("W1S1", 0) / sum(hist.values())
        record.series_named("smart_saving_pct").add(density, saving)
        record.series_named("upgraded_fraction").add(density, upgraded)
        record.series_named("smart_feasible").add(
            density, 1.0 if smart.feasible else 0.0)
    return record


def test_fig5_density_sweep(benchmark, capsys, tech):
    record = benchmark.pedantic(_sweep, args=(tech,),
                                rounds=1, iterations=1)
    emit(capsys, record.render())

    savings = record.series["smart_saving_pct"].ys
    upgraded = record.series["upgraded_fraction"].ys
    # Shape: savings positive at the sparse end, decreasing trend toward
    # the dense end; upgraded fraction grows with density.
    assert savings[0] > 5.0
    assert savings[-1] < savings[0]
    assert upgraded[-1] > upgraded[0]
    assert all(f == 1.0  # static: ok[U001] exact 0/1 feasibility flag
               for f in record.series["smart_feasible"].ys)
