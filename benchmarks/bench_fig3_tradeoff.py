"""Figure 3 — Power vs. robustness-budget trade-off curve.

Sweeps the robustness budget (as a multiple of the all-NDR reference)
on one mid-size design and records, per point, the smart optimizer's
power and the fraction of wires it upgraded.  Expected shape: a knee —
with loose budgets almost nothing is upgraded and power sits at the
no-NDR floor; tightening toward the all-NDR reference point upgrades a
growing minority of wires; power stays well below the all-NDR line
until budgets get within a few percent of what all-NDR achieves.
"""

from __future__ import annotations

from conftest import bench_jobs, emit
from repro.core import Policy
from repro.reporting import ExperimentRecord
from repro.runner import JobSpec

DESIGN = "ckt256"
SLACKS = (0.60, 0.40, 0.25, 0.15, 0.10)


def _sweep(matrix) -> ExperimentRecord:
    record = ExperimentRecord(
        "fig3", f"power vs budget tightness on {DESIGN}",
        "budget slack over all-NDR reference", "value")
    p_all = matrix.flow(DESIGN, Policy.ALL_NDR).clock_power
    p_no = matrix.flow(DESIGN, Policy.NO_NDR).clock_power

    # The sweep is a declarative run matrix: one smart cell per slack,
    # all pegged to the same deduplicated all-NDR reference job and
    # sharing one cached default-rule build.
    cells = [JobSpec(design=DESIGN, policy=Policy.SMART, slack=slack)
             for slack in SLACKS]
    results = matrix.runner.run(cells, jobs=bench_jobs())
    for slack, result in zip(SLACKS, results):
        hist = result.rule_histogram
        total = sum(hist.values())
        upgraded_frac = 1.0 - hist.get("W1S1", 0) / total
        record.series_named("power_uw").add(slack, result.summary["power_uw"])
        record.series_named("upgraded_fraction").add(slack, upgraded_frac)
        record.series_named("feasible").add(
            slack, 1.0 if result.feasible else 0.0)
    record.series_named("all_ndr_power").add(0.0, p_all)
    record.series_named("no_ndr_power").add(0.0, p_no)
    return record


def test_fig3_budget_tradeoff(benchmark, capsys, matrix):
    record = benchmark.pedantic(_sweep, args=(matrix,),
                                rounds=1, iterations=1)
    emit(capsys, record.render())

    power = record.series["power_uw"]
    frac = record.series["upgraded_fraction"]
    # Monotone shape: tighter budget -> more upgrades, more power.
    assert frac.ys[0] <= frac.ys[-1]
    assert power.ys[0] <= power.ys[-1] * 1.02
    # Even at the tightest point, smart stays below the all-NDR line.
    p_all = record.series["all_ndr_power"].ys[0]
    assert max(power.ys) < p_all
