"""Figure 3 — Power vs. robustness-budget trade-off curve.

Sweeps the robustness budget (as a multiple of the all-NDR reference)
on one mid-size design and records, per point, the smart optimizer's
power and the fraction of wires it upgraded.  Expected shape: a knee —
with loose budgets almost nothing is upgraded and power sits at the
no-NDR floor; tightening toward the all-NDR reference point upgrades a
growing minority of wires; power stays well below the all-NDR line
until budgets get within a few percent of what all-NDR achieves.
"""

from __future__ import annotations

import dataclasses

from conftest import emit
from repro.bench import generate_design, spec_by_name
from repro.core import Policy, run_flow
from repro.reporting import ExperimentRecord

DESIGN = "ckt256"
SLACKS = (0.60, 0.40, 0.25, 0.15, 0.10)


def _sweep(matrix) -> ExperimentRecord:
    record = ExperimentRecord(
        "fig3", f"power vs budget tightness on {DESIGN}",
        "budget slack over all-NDR reference", "value")
    base_targets = matrix.targets_for(DESIGN)
    reference = matrix.flow(DESIGN, Policy.ALL_NDR)
    p_all = reference.clock_power
    p_no = matrix.flow(DESIGN, Policy.NO_NDR).clock_power

    for slack in SLACKS:
        # Rebuild targets at this slack from the same reference metrics.
        scale = (1.0 + slack) / 1.15  # base targets carry 15% slack
        targets = dataclasses.replace(
            base_targets,
            max_worst_delta=base_targets.max_worst_delta * scale,
            max_skew_3sigma=base_targets.max_skew_3sigma * scale)
        design = generate_design(spec_by_name(DESIGN))
        flow = run_flow(design, matrix.tech, policy=Policy.SMART,
                        targets=targets)
        hist = flow.rule_histogram
        total = sum(hist.values())
        upgraded_frac = 1.0 - hist.get("W1S1", 0) / total
        record.series_named("power_uw").add(slack, flow.clock_power)
        record.series_named("upgraded_fraction").add(slack, upgraded_frac)
        record.series_named("feasible").add(slack, 1.0 if flow.feasible else 0.0)
    record.series_named("all_ndr_power").add(0.0, p_all)
    record.series_named("no_ndr_power").add(0.0, p_no)
    return record


def test_fig3_budget_tradeoff(benchmark, capsys, matrix):
    record = benchmark.pedantic(_sweep, args=(matrix,),
                                rounds=1, iterations=1)
    emit(capsys, record.render())

    power = record.series["power_uw"]
    frac = record.series["upgraded_fraction"]
    # Monotone shape: tighter budget -> more upgrades, more power.
    assert frac.ys[0] <= frac.ys[-1]
    assert power.ys[0] <= power.ys[-1] * 1.02
    # Even at the tightest point, smart stays below the all-NDR line.
    p_all = record.series["all_ndr_power"].ys[0]
    assert max(power.ys) < p_all
