"""Table 6 — Macro-blocked floorplans.

The suite's macro variants (ckt256m/ckt512m) drop 3-4 hard macros on
the die: placement keep-outs, routing keep-outs, and detours for every
wire that would have crossed them.  Expected shape: wirelength grows a
few percent (detours), skew stays trimmed, and the smart-vs-all-NDR
ordering is unchanged — the method is floorplan-agnostic.
"""

from __future__ import annotations

from conftest import emit
from repro.bench import generate_design, spec_by_name
from repro.core import Policy, run_flow, targets_from_reference
from repro.reporting import Table

DESIGNS = ("ckt256m", "ckt512m")
BASELINES = {"ckt256m": "ckt256", "ckt512m": "ckt512"}


def _build(matrix) -> Table:
    table = Table(
        "Table 6: policies on macro-blocked floorplans",
        ["design", "macros", "policy", "P (uW)", "clk WL (um)",
         "skew ps", "dd ps", "feasible"])
    rows = {}
    for name in DESIGNS:
        design = generate_design(spec_by_name(name))
        reference = run_flow(generate_design(spec_by_name(name)),
                             matrix.tech, policy=Policy.ALL_NDR)
        targets = targets_from_reference(reference.analyses, matrix.tech)
        for policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART):
            flow = run_flow(generate_design(spec_by_name(name)),
                            matrix.tech, policy=policy, targets=targets)
            rows[(name, policy)] = flow
            a = flow.analyses
            table.add_row(name, len(design.blockages), policy.value,
                          flow.clock_power,
                          flow.physical.routing.clock_wirelength(),
                          a.timing.skew, a.crosstalk.worst_delta,
                          "yes" if flow.feasible else "NO")
    _build.rows = rows  # stash for the assertions
    return table


def test_table6_blocked_floorplans(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build, args=(matrix,), rounds=1, iterations=1)
    emit(capsys, table.render())
    rows = _build.rows
    for name in DESIGNS:
        assert not rows[(name, Policy.NO_NDR)].feasible
        assert rows[(name, Policy.SMART)].feasible
        assert rows[(name, Policy.SMART)].clock_power < \
            rows[(name, Policy.ALL_NDR)].clock_power
        # Skew trimmed despite the detours.
        assert rows[(name, Policy.SMART)].analyses.timing.skew < 5.0
