"""Table 6 — Macro-blocked floorplans.

The suite's macro variants (ckt256m/ckt512m) drop 3-4 hard macros on
the die: placement keep-outs, routing keep-outs, and detours for every
wire that would have crossed them.  Expected shape: wirelength grows a
few percent (detours), skew stays trimmed, and the smart-vs-all-NDR
ordering is unchanged — the method is floorplan-agnostic.
"""

from __future__ import annotations

from conftest import bench_jobs, emit
from repro.core import Policy
from repro.reporting import Table
from repro.runner import RunMatrix

DESIGNS = ("ckt256m", "ckt512m")
BASELINES = {"ckt256m": "ckt256", "ckt512m": "ckt512"}
POLICIES = (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART)


def _build(matrix) -> Table:
    table = Table(
        "Table 6: policies on macro-blocked floorplans",
        ["design", "macros", "policy", "P (uW)", "clk WL (um)",
         "skew ps", "dd ps", "feasible"])
    # The whole experiment is one declarative matrix; the runner
    # computes each macro variant's all-NDR reference once as a shared
    # upstream job instead of once per hand-loop iteration.
    results = matrix.runner.run(
        RunMatrix(designs=DESIGNS, policies=POLICIES, slacks=(0.15,)),
        jobs=bench_jobs(), return_flows=True)
    rows = {}
    for result in results:
        flow = result.flow
        rows[(result.job.design, result.job.policy)] = flow
        a = flow.analyses
        table.add_row(result.job.design,
                      len(flow.physical.design.blockages),
                      result.job.policy.value, flow.clock_power,
                      flow.physical.routing.clock_wirelength(),
                      a.timing.skew, a.crosstalk.worst_delta,
                      "yes" if flow.feasible else "NO")
    _build.rows = rows  # stash for the assertions
    return table


def test_table6_blocked_floorplans(benchmark, capsys, matrix):
    table = benchmark.pedantic(_build, args=(matrix,), rounds=1, iterations=1)
    emit(capsys, table.render())
    rows = _build.rows
    for name in DESIGNS:
        assert not rows[(name, Policy.NO_NDR)].feasible
        assert rows[(name, Policy.SMART)].feasible
        assert rows[(name, Policy.SMART)].clock_power < \
            rows[(name, Policy.ALL_NDR)].clock_power
        # Skew trimmed despite the detours.
        assert rows[(name, Policy.SMART)].analyses.timing.skew < 5.0
