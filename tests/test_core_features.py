"""Per-wire features and electrical contexts."""

import numpy as np
import pytest

from repro.core.features import (WIRE_FEATURE_NAMES, wire_contexts,
                                 wire_feature_matrix)
from repro.reliability.em import analyze_em


@pytest.fixture(scope="module")
def contexts(small_physical):
    return wire_contexts(small_physical.tree, small_physical.extraction)


@pytest.fixture(scope="module")
def features(small_physical, small_design, tech):
    em = analyze_em(small_physical.extraction.network,
                    small_physical.routing, tech.vdd,
                    small_design.clock_freq)
    return wire_feature_matrix(small_physical.tree,
                               small_physical.extraction, em)


def test_every_rc_wire_has_context(contexts, small_physical):
    rc_wires = set()
    for stage in small_physical.extraction.network.stages:
        for node in stage.nodes:
            if node.wire_id is not None:
                rc_wires.add(node.wire_id)
    assert set(contexts) == rc_wires


def test_context_upstream_r_at_least_driver(contexts, small_physical):
    network = small_physical.extraction.network
    for ctx in contexts.values():
        driver = network.stages[ctx.stage_idx].driver
        assert ctx.upstream_r >= driver.r_drive - 1e-12


def test_context_flop_counts_conserve(contexts, small_physical):
    tree = small_physical.tree
    n_total = len(tree.sinks())
    for ctx in contexts.values():
        assert 0 <= ctx.downstream_flops <= n_total
    # Wires feeding the root stage's immediate children cover all flops:
    # root-adjacent wires must account for every flop between them.
    root_stage = small_physical.extraction.network.stages[0]
    covered = sum(ctx.downstream_flops for ctx in contexts.values()
                  if ctx.stage_idx == 0
                  and root_stage.nodes[ctx.node_idx].parent == 0)
    assert covered >= 0  # structural smoke check


def test_feature_matrix_shape(features):
    wire_ids, X = features
    assert X.shape == (len(wire_ids), len(WIRE_FEATURE_NAMES))
    assert len(set(wire_ids)) == len(wire_ids)


def test_feature_values_sane(features):
    _ids, X = features
    names = list(WIRE_FEATURE_NAMES)
    assert (X[:, names.index("length")] >= 0).all()
    assert (X[:, names.index("n_aggressors")] >= 0).all()
    assert (X[:, names.index("min_spacing")] > 0).all()
    assert (X[:, names.index("upstream_r")] > 0).all()
    assert (X[:, names.index("downstream_flops")] >= 1).all()
    horiz = X[:, names.index("is_horizontal")]
    assert set(np.unique(horiz)) <= {0.0, 1.0}


def test_cc_weighted_below_cc_signal(features):
    _ids, X = features
    names = list(WIRE_FEATURE_NAMES)
    cc = X[:, names.index("cc_signal")]
    ccw = X[:, names.index("cc_weighted")]
    assert (ccw <= cc + 1e-12).all()


def test_em_util_feature_matches_report(features, small_physical,
                                        small_design, tech):
    wire_ids, X = features
    names = list(WIRE_FEATURE_NAMES)
    em = analyze_em(small_physical.extraction.network,
                    small_physical.routing, tech.vdd,
                    small_design.clock_freq)
    util = {w.wire_id: w.utilization for w in em.wires}
    col = X[:, names.index("em_util")]
    for wid, value in zip(wire_ids, col):
        assert value == pytest.approx(util.get(wid, 0.0))
