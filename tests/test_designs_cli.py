"""The ``repro designs`` CLI group and corpus selectors in ``suite``."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_designs_subcommands():
    parser = build_parser()
    args = parser.parse_args(["designs", "list", "--family", "gated"])
    assert args.command == "designs" and args.designs_command == "list"
    args = parser.parse_args(["designs", "validate", "ckt64", "family:*"])
    assert args.refs == ["ckt64", "family:*"]


def test_designs_list_renders_families(capsys):
    assert main(["designs", "list"]) == 0
    out = capsys.readouterr().out
    for token in ("synthetic", "hierarchical", "gated", "imported",
                  "ckt64", "soc_h256", "imp_uart"):
        assert token in out


def test_designs_list_json_one_family(capsys):
    assert main(["designs", "list", "--family", "imported", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [row["design"] for row in rows] == ["imp_uart", "imp_noc"]
    assert all(row["family"] == "imported" for row in rows)


def test_designs_show_json(capsys):
    assert main(["designs", "show", "soc_g128", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["family"] == "gated"
    assert payload["spec"]["n_domains"] == 2
    assert len(payload["fingerprint"]) == 64


def test_designs_show_unknown_suggests(capsys):
    with pytest.raises(KeyError, match="ckt256"):
        main(["designs", "show", "ckt258"])


def test_designs_gen_writes_outputs(tmp_path, capsys):
    out = tmp_path / "d.json"
    deflite = tmp_path / "d.dl.json"
    assert main(["designs", "gen", "soc_h64",
                 "--out", str(out), "--deflite", str(deflite)]) == 0
    assert out.exists() and deflite.exists()
    assert json.loads(deflite.read_text())["deflite"] == 1
    assert "64 sinks" in capsys.readouterr().out


def test_designs_import_and_validate(tmp_path, capsys):
    deflite = tmp_path / "d.dl.json"
    assert main(["designs", "gen", "imp_uart", "--deflite",
                 str(deflite)]) == 0
    built = tmp_path / "built.json"
    assert main(["designs", "import", str(deflite),
                 "--name", "uart_copy", "--out", str(built)]) == 0
    out = capsys.readouterr().out
    assert "uart_copy" in out and built.exists()
    assert main(["designs", "validate", str(deflite), "ckt64",
                 "family:imported"]) == 0
    out = capsys.readouterr().out
    assert "ckt64: ok" in out and "imp_noc: ok" in out


def test_designs_import_rejects_corrupt(tmp_path, capsys):
    doc = {"deflite": 1, "name": "bad", "die": [0, 0, 10, 10],
           "clock": {"period_ps": 1000.0, "source_xy": [5.0, 0.0]},
           "pins": [{"name": "ff_0", "xy": [50.0, 5.0]}]}
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(doc))
    assert main(["designs", "import", str(path)]) == 1
    assert "import-geometry" in capsys.readouterr().out
    assert main(["designs", "validate", str(path)]) == 1


def test_suite_accepts_selectors(capsys):
    assert main(["suite", "--designs", "imp_uart", "--json",
                 "--no-cache"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [row["design"] for row in rows] == ["imp_uart"]
    assert rows[0]["sinks"] == 48
