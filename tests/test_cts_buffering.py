"""Buffer insertion: levels, symmetry, sizing, trims."""

import pytest

from repro.cts.buffering import insert_buffers
from repro.cts.embedding import embed_zero_skew
from repro.cts.topology import build_topology
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.design import Design
from repro.tech import default_technology


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def _tree(n, tech, spread=400.0):
    design = Design(name="t", die=Rect(0, 0, spread, spread))
    for i in range(n):
        x = (i * 37) % 97 * spread / 97.0
        y = (i * 61) % 89 * spread / 89.0
        design.add_flop(f"ff{i}", Point(x, y), clock_pin_cap=1.8)
    tree = build_topology(design.clock_sinks)
    embed_zero_skew(tree, tech)
    return tree


def test_root_always_buffered(tech):
    tree = _tree(32, tech)
    result = insert_buffers(tree, tech)
    assert 0 in result.buffer_levels
    assert tree.root.buffer is not None


def test_every_path_crosses_every_level(tech):
    tree = _tree(48, tech)
    result = insert_buffers(tree, tech)
    for sink in tree.sinks():
        depths = {tree.depth(n.node_id)
                  for n in tree.path_to_root(sink.node_id)
                  if n.buffer is not None}
        assert depths == set(result.buffer_levels)


def test_buffer_count_matches_levels(tech):
    tree = _tree(32, tech)
    result = insert_buffers(tree, tech)
    by_level = {}
    for node in tree:
        if node.buffer is not None:
            by_level.setdefault(tree.depth(node.node_id), 0)
            by_level[tree.depth(node.node_id)] += 1
    assert sum(by_level.values()) == result.num_buffers
    assert set(by_level) == set(result.buffer_levels)


def test_levels_above_shallowest_leaf(tech):
    tree = _tree(48, tech)
    result = insert_buffers(tree, tech)
    min_leaf = min(tree.depth(leaf.node_id) for leaf in tree.leaves())
    assert all(level < min_leaf for level in result.buffer_levels)


def test_stage_cap_budget_respected(tech):
    tree = _tree(64, tech)
    budget = 100.0
    result = insert_buffers(tree, tech, max_stage_cap=budget)
    # Trims can push above the wire budget, but not unboundedly.
    assert result.worst_stage_cap < 2.5 * budget


def test_smaller_budget_more_buffers(tech):
    tree_a = _tree(64, tech)
    tree_b = _tree(64, tech)
    a = insert_buffers(tree_a, tech, max_stage_cap=150.0)
    b = insert_buffers(tree_b, tech, max_stage_cap=60.0)
    assert b.num_buffers >= a.num_buffers


def test_trims_nonnegative(tech):
    tree = _tree(32, tech)
    insert_buffers(tree, tech)
    for node in tree:
        assert node.base_pad >= 0.0
        assert node.base_snake >= 0.0
        if node.buffer is None:
            assert node.base_pad == 0.0 and node.base_snake == 0.0


def test_per_level_delay_equalized(tech):
    """After sizing+trim, same-level stage driver delays match closely."""
    tree = _tree(64, tech)
    insert_buffers(tree, tech)

    # Recompute each buffered node's stage load (wires + pins + child
    # buffer inputs + own trims) and its driver delay.
    rule = tech.default_rule
    lh = tech.layer_for(True)
    lv = tech.layer_for(False)
    unit_c = (lh.isolated_cap_per_um(rule.width_on(lh))
              + lv.isolated_cap_per_um(rule.width_on(lv))) / 2.0

    def stage_load(nid):
        total = tree.node(nid).load_pad + tree.node(nid).root_snake_c
        stack = list(tree.node(nid).children)
        while stack:
            cid = stack.pop()
            child = tree.node(cid)
            total += unit_c * tree.edge_length(cid)
            if child.buffer is not None:
                total += child.buffer.c_in
                continue
            if child.is_sink:
                total += child.sink_pin.cap
            stack.extend(child.children)
        return total

    by_level = {}
    for node in tree:
        if node.buffer is None:
            continue
        load = stage_load(node.node_id)
        snake_delay = node.root_snake_r * (
            load - node.root_snake_c / 2.0 - node.load_pad)
        delay = node.buffer.delay(load) + snake_delay
        by_level.setdefault(tree.depth(node.node_id), []).append(delay)

    for level, delays in by_level.items():
        if len(delays) < 2:
            continue
        spread = max(delays) - min(delays)
        # The equalisation is exact under its own cap model; allow a few
        # ps for the snake-delay approximation in this recomputation.
        assert spread < 5.0, f"level {level} spread {spread:.2f} ps"
