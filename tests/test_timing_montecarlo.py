"""Monte-Carlo variation engine."""

import dataclasses

import numpy as np
import pytest

from repro.extract import extract
from repro.tech import default_technology, rule_by_name
from repro.tech.variation import VariationModel
from repro.timing.arrival import analyze_clock_timing
from repro.timing.montecarlo import run_monte_carlo


def _mc(phys, tech, n=100, seed=7):
    ext = phys.extraction
    return run_monte_carlo(ext.network, ext.wires, phys.routing, tech,
                           n_samples=n, seed=seed)


def test_shapes_and_stats(small_physical, tech):
    mc = _mc(small_physical, tech, n=80)
    assert mc.n_samples == 80
    assert mc.arrivals.shape == (len(small_physical.tree.sinks()), 80)
    assert mc.skew_samples.shape == (80,)
    assert mc.mean_skew > 0.0
    assert mc.skew_3sigma >= mc.mean_skew
    assert mc.skew_quantile(0.5) <= mc.skew_quantile(0.99)


def test_seed_determinism(small_physical, tech):
    a = _mc(small_physical, tech, seed=3)
    b = _mc(small_physical, tech, seed=3)
    c = _mc(small_physical, tech, seed=4)
    assert np.array_equal(a.skew_samples, b.skew_samples)
    assert not np.array_equal(a.skew_samples, c.skew_samples)


def test_zero_variation_reproduces_static_timing(small_physical, tech):
    """With all sigmas at zero, every sample equals the nominal analysis."""
    zero = dataclasses.replace(
        tech, variation=VariationModel(width_sigma=0.0,
                                       width_rand_sigma=0.0,
                                       thickness_sigma=0.0,
                                       buffer_d2d_sigma=0.0,
                                       buffer_rand_sigma=0.0))
    mc = _mc(small_physical, zero, n=5)
    timing = analyze_clock_timing(small_physical.extraction.network, tech)
    assert np.ptp(mc.skew_samples) == pytest.approx(0.0, abs=1e-9)
    assert mc.mean_skew == pytest.approx(timing.skew, rel=1e-9, abs=1e-9)
    assert mc.mean_latency == pytest.approx(timing.latency, rel=1e-9)


def test_sample_count_validation(small_physical, tech):
    ext = small_physical.extraction
    with pytest.raises(ValueError):
        run_monte_carlo(ext.network, ext.wires, small_physical.routing,
                        tech, n_samples=1)


def test_quantile_validation(small_physical, tech):
    mc = _mc(small_physical, tech, n=10)
    with pytest.raises(ValueError):
        mc.skew_quantile(1.5)


def test_arrival_sigma_positive(small_physical, tech):
    mc = _mc(small_physical, tech)
    sigma = mc.arrival_sigma()
    assert sigma.shape == (len(mc.sink_names),)
    assert (sigma > 0.0).all()


def _wide_vs_base_3sigma(make_physical, variation):
    """(base, all-W2S1) 3-sigma skew under a given variation model."""
    tech = dataclasses.replace(default_technology(), variation=variation)
    phys = make_physical()
    base = _mc(phys, tech, n=150, seed=2)
    for wire in phys.routing.clock_wires:
        phys.routing.assign_rule(wire.wire_id, rule_by_name("W2S1"))
    from repro.cts.refine import refine_skew
    refined = refine_skew(phys.tree, phys.routing, tech)
    wide = run_monte_carlo(refined.extraction.network,
                           refined.extraction.wires, phys.routing,
                           tech, n_samples=150, seed=2)
    return base.skew_3sigma, wide.skew_3sigma


def test_width_ndr_cuts_random_width_noise(make_small_physical):
    """The paper's variation mechanism: random per-wire width noise is
    differential between branches; 2x width halves its relative size
    and the skew spread shrinks."""
    base, wide = _wide_vs_base_3sigma(
        make_small_physical,
        VariationModel(width_sigma=0.0, width_rand_sigma=0.08,
                       thickness_sigma=0.0, buffer_d2d_sigma=0.0,
                       buffer_rand_sigma=0.0))
    assert wide < base


def test_width_ndr_cuts_per_sink_sigma(make_small_physical, tech):
    """Per-sink arrival sigma (latency uncertainty) drops sharply under
    width NDR when width noise dominates."""
    import dataclasses as dc

    var = VariationModel(width_sigma=0.10, width_rand_sigma=0.0,
                         thickness_sigma=0.0, buffer_d2d_sigma=0.0,
                         buffer_rand_sigma=0.0)
    wtech = dc.replace(tech, variation=var)
    phys = make_small_physical()
    base = _mc(phys, wtech, n=150, seed=2)
    for wire in phys.routing.clock_wires:
        phys.routing.assign_rule(wire.wire_id, rule_by_name("W2S1"))
    from repro.cts.refine import refine_skew
    refined = refine_skew(phys.tree, phys.routing, wtech)
    wide = run_monte_carlo(refined.extraction.network,
                           refined.extraction.wires, phys.routing,
                           wtech, n_samples=150, seed=2)
    assert wide.arrival_sigma().mean() < 0.5 * base.arrival_sigma().mean()


def test_buffer_noise_is_a_floor(make_small_physical):
    """Buffer random noise is the spread NDR cannot touch: widening all
    wires leaves the buffer-driven skew distribution in place."""
    base, wide = _wide_vs_base_3sigma(
        make_small_physical,
        VariationModel(width_sigma=0.0, width_rand_sigma=0.0,
                       thickness_sigma=0.0, buffer_d2d_sigma=0.0,
                       buffer_rand_sigma=0.02))
    assert wide > 0.7 * base
