"""Topology generation: balanced binary trees over sinks."""

import math

import pytest

from repro.cts.topology import build_topology
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.design import Design


def _pins(n, spread=100.0):
    design = Design(name="t", die=Rect(0, 0, spread, spread))
    pins = []
    for i in range(n):
        x = (i * 37) % 97 * spread / 97.0
        y = (i * 61) % 89 * spread / 89.0
        pins.append(design.add_flop(f"ff{i}", Point(x, y), clock_pin_cap=1.0))
    return pins


def test_zero_sinks_rejected():
    with pytest.raises(ValueError):
        build_topology([])


def test_single_sink():
    pins = _pins(1)
    tree = build_topology(pins)
    assert len(tree) == 1
    assert tree.root.sink_pin is pins[0]


def test_leaf_count_matches_sinks():
    pins = _pins(13)
    tree = build_topology(pins)
    leaves = tree.leaves()
    assert len(leaves) == 13
    assert {leaf.sink_pin.full_name for leaf in leaves} == \
        {p.full_name for p in pins}


def test_binary_internal_nodes():
    tree = build_topology(_pins(16))
    for node in tree:
        assert len(node.children) in (0, 2)


def test_balanced_depths():
    n = 20
    tree = build_topology(_pins(n))
    depths = [tree.depth(leaf.node_id) for leaf in tree.leaves()]
    # Median bisection: leaf depths differ by at most 1.
    assert max(depths) - min(depths) <= 1
    assert max(depths) == math.ceil(math.log2(n))


def test_power_of_two_is_perfectly_balanced():
    tree = build_topology(_pins(32))
    depths = {tree.depth(leaf.node_id) for leaf in tree.leaves()}
    assert depths == {5}


def test_structure_valid():
    tree = build_topology(_pins(10))
    tree.validate()


def test_deterministic():
    a = build_topology(_pins(15))
    b = build_topology(_pins(15))
    assert [n.sink_pin.full_name for n in a.sinks()] == \
        [n.sink_pin.full_name for n in b.sinks()]


def test_spatial_locality_of_split():
    """The first split separates left half from right half for wide sets."""
    design = Design(name="t", die=Rect(0, 0, 100, 10))
    left = [design.add_flop(f"l{i}", Point(float(i), 5.0), 1.0)
            for i in range(4)]
    right = [design.add_flop(f"r{i}", Point(90.0 + i, 5.0), 1.0)
             for i in range(4)]
    tree = build_topology(left + right)
    top_children = [tree.node(c) for c in tree.root.children]
    sides = []
    for child in top_children:
        names = {n.sink_pin.instance.name
                 for n in tree.sinks() if _under(tree, n, child.node_id)}
        sides.append(names)
    assert {f"l{i}" for i in range(4)} in sides
    assert {f"r{i}" for i in range(4)} in sides


def _under(tree, node, ancestor_id) -> bool:
    return ancestor_id in {n.node_id for n in tree.path_to_root(node.node_id)}
