"""The stable repro.api facade."""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro
from repro.api import (CompareReport, CompareRequest, LintRequest,
                       SweepReport, SweepRequest, compare, sweep,
                       trace_report)


@pytest.fixture
def tiny_ref(tmp_path, tiny_design):
    from repro.io import save_design

    path = tmp_path / "tiny.json"
    save_design(tiny_design, path)
    return str(path)


def test_api_is_reexported_from_package_root():
    assert repro.compare is compare
    assert repro.sweep is sweep
    assert "compare" in repro.__all__ and "api" in repro.__all__
    assert "compare" in repro.api.__all__


def test_compare_returns_typed_report(tiny_ref):
    report = compare(CompareRequest(design=tiny_ref, slack=0.15))
    assert isinstance(report, CompareReport)
    assert {c.policy for c in report.cells} == {"no-ndr", "all-ndr", "smart"}
    smart = report.cell("smart")
    assert smart.feasible and smart.power_uw > 0
    assert smart.upgraded_wires > 0
    assert report.cell("all-ndr").upgraded_wires \
        == sum(smart.rule_histogram.values())
    p_all = report.cell("all-ndr").power_uw
    expect = 100.0 * (p_all - smart.power_uw) / p_all
    assert report.smart_saving_pct == pytest.approx(expect)
    with pytest.raises(KeyError):
        report.cell("smart-ml")
    # Plain data: JSON round-trips without custom encoders.
    json.dumps(dataclasses.asdict(report))


def test_sweep_returns_points_in_slack_order(tiny_ref):
    report = sweep(SweepRequest(design=tiny_ref, slacks=(0.2, 0.6)), jobs=1)
    assert isinstance(report, SweepReport)
    assert [p.slack for p in report.points] == [0.6, 0.2]
    assert all(p.power_uw > 0 for p in report.points)
    json.dumps(dataclasses.asdict(report))


def test_trace_report_renders_file(tmp_path):
    from repro import obs
    from repro.obs.export import export_jsonl
    from repro.obs.spans import Tracer

    tracer = Tracer("api")
    with tracer.span(obs.CELL_SPAN, cell="x"):
        pass
    path = export_jsonl(tracer, path=tmp_path / "t.jsonl")
    text = trace_report(path)
    assert "phase breakdown" in text and "cell timeline" in text


def test_lint_static_analyzes_sources():
    from repro.api import lint

    report = lint(LintRequest(static=True, paths=("src/repro",)))
    assert not report.has_errors, report.render()
    with pytest.raises(ValueError):
        lint()
