"""Clock power model."""

import pytest

from repro.core.policies import Policy, apply_uniform_policy
from repro.cts.refine import refine_skew
from repro.extract import extract
from repro.power import analyze_power


@pytest.fixture(scope="module")
def report(small_physical, small_design, tech):
    return analyze_power(small_physical.extraction, tech,
                         small_design.clock_freq)


def test_components_sum(report):
    assert report.p_dynamic == pytest.approx(
        report.p_wire + report.p_pin + report.p_buffer_cap
        + report.p_pad + report.p_buffer_internal)
    assert report.p_total == pytest.approx(
        report.p_dynamic + report.p_leakage)
    assert report.total_cap == pytest.approx(
        report.wire_cap + report.pin_cap + report.buffer_in_cap
        + report.pad_cap)


def test_cv2f_relation(report, small_design, tech):
    cv2f = tech.vdd ** 2 * small_design.clock_freq
    assert report.p_wire == pytest.approx(cv2f * report.wire_cap)
    assert report.p_pin == pytest.approx(cv2f * report.pin_cap)


def test_pin_cap_matches_design(report, small_design):
    expected = sum(p.cap for p in small_design.clock_sinks)
    assert report.pin_cap == pytest.approx(expected)


def test_coupling_cap_subset_of_wire_cap(report):
    assert 0.0 < report.coupling_cap < report.wire_cap


def test_power_scales_with_frequency(small_physical, tech):
    lo = analyze_power(small_physical.extraction, tech, freq=0.5)
    hi = analyze_power(small_physical.extraction, tech, freq=1.0)
    assert hi.p_dynamic == pytest.approx(2 * lo.p_dynamic)
    # Leakage does not scale with frequency.
    assert hi.p_leakage == pytest.approx(lo.p_leakage)


def test_frequency_validation(small_physical, tech):
    with pytest.raises(ValueError):
        analyze_power(small_physical.extraction, tech, freq=0.0)


def test_all_ndr_costs_more_wire_power(make_small_physical, small_design, tech):
    """The paper's premise: uniform NDR raises wire capacitance 25-50%."""
    phys = make_small_physical()
    base = analyze_power(extract(phys.tree, phys.routing), tech,
                         small_design.clock_freq)
    apply_uniform_policy(phys.routing, Policy.ALL_NDR)
    refined = refine_skew(phys.tree, phys.routing, tech)
    ndr = analyze_power(refined.extraction, tech, small_design.clock_freq)
    ratio = ndr.wire_cap / base.wire_cap
    assert 1.2 < ratio < 1.6
    # Pins and buffers unchanged by routing rules.
    assert ndr.pin_cap == pytest.approx(base.pin_cap)
    assert ndr.buffer_in_cap == pytest.approx(base.buffer_in_cap)


def test_space_only_is_nearly_free(make_small_physical, small_design, tech):
    """2x spacing reduces coupling: wire cap moves at most a few percent."""
    phys = make_small_physical()
    base = analyze_power(extract(phys.tree, phys.routing), tech,
                         small_design.clock_freq)
    apply_uniform_policy(phys.routing, Policy.SPACE_ONLY)
    spaced = analyze_power(extract(phys.tree, phys.routing), tech,
                           small_design.clock_freq)
    assert spaced.wire_cap < base.wire_cap  # coupling only shrinks
    assert spaced.wire_cap > 0.9 * base.wire_cap
