"""Degenerate and boundary designs through the full flow."""

import pytest

from repro.bench import DesignSpec, generate_design
from repro.core import Policy, run_flow
from repro.core.flow import build_physical_design


def _spec(n, **kwargs):
    defaults = dict(die_edge=80.0, aggressors_per_sink=3.0, seed=2,
                    n_clusters=0)
    defaults.update(kwargs)
    return DesignSpec(f"edge{n}", n_sinks=n, **defaults)


@pytest.mark.parametrize("n_sinks", [1, 2, 3, 5])
def test_tiny_sink_counts_full_flow(n_sinks, tech):
    design = generate_design(_spec(n_sinks))
    result = run_flow(design, tech, policy=Policy.SMART)
    assert len(result.analyses.timing.sinks) == n_sinks
    assert result.clock_power > 0.0
    assert result.analyses.timing.skew < 5.0


def test_single_sink_has_root_buffer(tech):
    phys = build_physical_design(generate_design(_spec(1)), tech)
    assert phys.tree.root.buffer is not None
    assert len(phys.extraction.network.stages) >= 1


def test_no_aggressors_design(tech):
    """A clock with zero signal nets: no coupling anywhere."""
    spec = _spec(16, aggressors_per_sink=0.0)
    design = generate_design(spec)
    assert design.signal_nets == []
    result = run_flow(design, tech, policy=Policy.SMART)
    assert result.analyses.crosstalk.worst_delta == pytest.approx(0.0)
    assert result.feasible


def test_uniform_placement(tech):
    """n_clusters=0 places sinks uniformly; flow still converges."""
    design = generate_design(_spec(32, die_edge=300.0))
    result = run_flow(design, tech, policy=Policy.ALL_NDR)
    assert result.analyses.timing.skew <= 2.0


def test_high_activity_aggressors(tech):
    """Hot aggressors (mean activity near 0.5) stress the SI budget."""
    spec = _spec(32, die_edge=200.0, mean_activity=0.5)
    design = generate_design(spec)
    result = run_flow(design, tech, policy=Policy.SMART)
    # Expected-case deltas grow with activity but worst-case analysis
    # still bounds and repairs them.
    assert result.analyses.crosstalk.worst_delta <= \
        result.targets.max_worst_delta * 1.001 or not result.feasible


def test_fast_clock_period(tech):
    """A 2 GHz clock doubles EM current; flow widens more but converges."""
    spec = _spec(32, die_edge=200.0, clock_period=500.0)
    design = generate_design(spec)
    result = run_flow(design, tech, policy=Policy.SMART)
    assert result.analyses.em.num_violations == 0


def test_fast_clock_triggers_resynthesis(tech):
    """At 2 GHz the trunk charge exceeds what even W4S2 can carry, so
    the flow must have rebuilt with smaller stages than the default
    build produces."""
    spec = _spec(32, die_edge=200.0, clock_period=500.0)
    baseline = build_physical_design(generate_design(spec), tech)
    result = run_flow(generate_design(spec), tech, policy=Policy.SMART)
    rebuilt = result.physical
    assert len(rebuilt.extraction.network.stages) > \
        len(baseline.extraction.network.stages)
    assert result.feasible


def test_flow_is_deterministic(tech):
    spec = _spec(24, die_edge=150.0)
    a = run_flow(generate_design(spec), tech, policy=Policy.SMART)
    b = run_flow(generate_design(spec), tech, policy=Policy.SMART)
    assert a.summary() == b.summary()
    assert a.rule_histogram == b.rule_histogram


def test_two_sinks_same_location_region(tech):
    """Sinks snapped very close together still embed and route."""
    from repro.geom.point import Point
    from repro.geom.rect import Rect
    from repro.netlist.design import Design

    design = Design(name="close", die=Rect(0, 0, 50, 50))
    design.add_clock_source(Point(25, 0))
    design.add_flop("a", Point(20.0, 20.0), 1.8)
    design.add_flop("b", Point(20.0, 22.0), 1.8)
    design.add_flop("c", Point(40.0, 40.0), 1.8)
    phys = build_physical_design(design, tech)
    assert phys.refine.timing.skew < 2.0
