"""Manhattan segments and L-routes."""

import pytest

from repro.geom.point import Point
from repro.geom.segment import Segment, l_route


def test_orientation():
    h = Segment(Point(0, 1), Point(5, 1))
    v = Segment(Point(2, 0), Point(2, 5))
    assert h.horizontal and not v.horizontal
    assert h.track_coord == 1 and v.track_coord == 2


def test_diagonal_rejected():
    with pytest.raises(ValueError):
        Segment(Point(0, 0), Point(1, 1))


def test_zero_length_is_horizontal():
    s = Segment(Point(1, 1), Point(1, 1))
    assert s.horizontal
    assert s.length == 0.0


def test_lo_hi_normalized():
    s = Segment(Point(5, 1), Point(0, 1))
    assert s.lo == 0 and s.hi == 5 and s.length == 5


def test_overlap_same_track_metric():
    a = Segment(Point(0, 0), Point(10, 0))
    b = Segment(Point(5, 3), Point(15, 3))
    assert a.overlap_with(b) == 5.0
    assert b.overlap_with(a) == 5.0


def test_overlap_disjoint_and_cross_orientation():
    a = Segment(Point(0, 0), Point(2, 0))
    b = Segment(Point(5, 0), Point(9, 0))
    v = Segment(Point(1, -1), Point(1, 1))
    assert a.overlap_with(b) == 0.0
    assert a.overlap_with(v) == 0.0


def test_point_at():
    s = Segment(Point(0, 0), Point(10, 0))
    assert s.point_at(0.0) == Point(0, 0)
    assert s.point_at(0.3) == Point(3, 0)
    assert s.point_at(1.0) == Point(10, 0)
    with pytest.raises(ValueError):
        s.point_at(1.1)


def test_split_at():
    s = Segment(Point(0, 0), Point(10, 0))
    a, b = s.split_at(Point(4, 0))
    assert a.length == 4 and b.length == 6
    with pytest.raises(ValueError):
        s.split_at(Point(4, 1))


def test_l_route_general():
    legs = l_route(Point(0, 0), Point(3, 4))
    assert len(legs) == 2
    assert sum(leg.length for leg in legs) == 7.0
    assert legs[0].a == Point(0, 0) and legs[-1].b == Point(3, 4)


def test_l_route_orientation_choice():
    hf = l_route(Point(0, 0), Point(3, 4), horizontal_first=True)
    vf = l_route(Point(0, 0), Point(3, 4), horizontal_first=False)
    assert hf[0].horizontal and not vf[0].horizontal


def test_l_route_straight_and_degenerate():
    assert len(l_route(Point(0, 0), Point(5, 0))) == 1
    assert l_route(Point(1, 1), Point(1, 1)) == []
