"""Track manager: occupancy, free-track search, neighbor queries."""

import pytest

from repro.geom.grid import RoutingGrid
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.segment import Segment
from repro.netlist.net import NetKind
from repro.route.tracks import TrackManager
from repro.route.wires import RoutedWire
from repro.tech import default_technology, rule_by_name


@pytest.fixture
def tech():
    return default_technology()


@pytest.fixture
def m5(tech):
    return tech.stack.by_name("M5")


@pytest.fixture
def grid():
    return RoutingGrid(die=Rect(0, 0, 100, 100))


@pytest.fixture
def tm(grid):
    return TrackManager(grid)


def _wire(wire_id, m5, grid, track, lo, hi, rule="W1S1", kind=NetKind.SIGNAL,
          net="sig", activity=0.2):
    y = grid.track_coord(m5, track)
    return RoutedWire(
        wire_id=wire_id, net_name=net, kind=kind,
        segment=Segment(Point(lo, y), Point(hi, y)),
        layer=m5, track=track, rule=rule_by_name(rule), activity=activity)


def test_register_and_is_free(tm, m5, grid):
    tm.register(_wire(0, m5, grid, track=10, lo=20, hi=40))
    assert not tm.is_free(m5, 10, 25, 35)
    assert not tm.is_free(m5, 10, 39, 50)
    assert tm.is_free(m5, 10, 40, 50)  # abutting is free
    assert tm.is_free(m5, 11, 25, 35)


def test_duplicate_wire_id_rejected(tm, m5, grid):
    tm.register(_wire(0, m5, grid, 10, 0, 10))
    with pytest.raises(ValueError):
        tm.register(_wire(0, m5, grid, 11, 0, 10))


def test_nearest_free_track_prefers_exact(tm, m5, grid):
    assert tm.nearest_free_track(m5, 10, 0, 10) == 10


def test_nearest_free_track_sidesteps(tm, m5, grid):
    tm.register(_wire(0, m5, grid, 10, 0, 50))
    got = tm.nearest_free_track(m5, 10, 0, 50)
    assert got in (9, 11)


def test_nearest_free_track_overflow_counted(tm, m5, grid):
    for i, track in enumerate(range(4, 17)):
        tm.register(_wire(i, m5, grid, track, 0, 100))
    before = tm.overflows
    got = tm.nearest_free_track(m5, 10, 0, 100, window=6)
    assert got == 10
    assert tm.overflows == before + 1


def test_neighbors_adjacent_track(tm, m5, grid):
    victim = _wire(0, m5, grid, 10, 0, 50, rule="W1S1",
                   kind=NetKind.CLOCK, net="clk", activity=1.0)
    aggressor = _wire(1, m5, grid, 11, 20, 80)
    tm.register(victim)
    tm.register(aggressor)
    neighbors = tm.neighbors_of(victim)
    assert len(neighbors) == 1
    nb = neighbors[0]
    assert nb.neighbor_id == 1
    assert nb.overlap == pytest.approx(30.0)
    assert nb.spacing == pytest.approx(m5.pitch - m5.min_width)
    assert not nb.same_net


def test_neighbor_spacing_clamped_to_rule(tm, m5, grid):
    victim = _wire(0, m5, grid, 10, 0, 50, rule="W2S2",
                   kind=NetKind.CLOCK, net="clk")
    aggressor = _wire(1, m5, grid, 11, 0, 50)
    tm.register(victim)
    tm.register(aggressor)
    nb = tm.neighbors_of(victim)[0]
    assert nb.spacing == pytest.approx(2 * m5.min_spacing)


def test_neighbor_spacing_floor_is_min_spacing(tm, m5, grid):
    # Wide victim at default spacing: geometric edge gap shrinks below
    # the DRC minimum; the query must clamp it back up.
    victim = _wire(0, m5, grid, 10, 0, 50, rule="W2S1",
                   kind=NetKind.CLOCK, net="clk")
    aggressor = _wire(1, m5, grid, 11, 0, 50)
    tm.register(victim)
    tm.register(aggressor)
    nb = tm.neighbors_of(victim)[0]
    assert nb.spacing >= m5.min_spacing


def test_same_net_flagged(tm, m5, grid):
    a = _wire(0, m5, grid, 10, 0, 50, kind=NetKind.CLOCK, net="clk")
    b = _wire(1, m5, grid, 11, 0, 50, kind=NetKind.CLOCK, net="clk")
    tm.register(a)
    tm.register(b)
    assert tm.neighbors_of(a)[0].same_net


def test_no_coupling_beyond_reach(tm, m5, grid):
    far_tracks = int(m5.coupling_reach / m5.pitch) + 2
    a = _wire(0, m5, grid, 10, 0, 50, kind=NetKind.CLOCK, net="clk")
    b = _wire(1, m5, grid, 10 + far_tracks, 0, 50)
    tm.register(a)
    tm.register(b)
    assert tm.neighbors_of(a) == []


def test_shielding_stops_at_covered_side(tm, m5, grid):
    victim = _wire(0, m5, grid, 10, 0, 50, kind=NetKind.CLOCK, net="clk")
    shield = _wire(1, m5, grid, 11, 0, 50)       # fully covers upper side
    behind = _wire(2, m5, grid, 12, 0, 50)
    tm.register(victim)
    tm.register(shield)
    tm.register(behind)
    ids = {nb.neighbor_id for nb in tm.neighbors_of(victim)}
    assert 1 in ids and 2 not in ids


def test_layer_utilization(tm, m5, grid):
    assert tm.layer_utilization(m5) == 0.0
    tm.register(_wire(0, m5, grid, 10, 0, 100))
    assert 0.0 < tm.layer_utilization(m5) < 0.01


def test_track_length_used_by_kind(tm, m5, grid):
    tm.register(_wire(0, m5, grid, 10, 0, 40, kind=NetKind.CLOCK, net="clk"))
    tm.register(_wire(1, m5, grid, 12, 0, 25))
    assert tm.track_length_used(NetKind.CLOCK) == pytest.approx(40.0)
    assert tm.track_length_used(NetKind.SIGNAL) == pytest.approx(25.0)
    assert tm.track_length_used() == pytest.approx(65.0)
