"""Timing-window-pruned crosstalk analysis."""

import pytest

from repro.bench import DesignSpec, generate_design
from repro.core.flow import build_physical_design
from repro.timing.arrival import analyze_clock_timing
from repro.timing.crosstalk import (analyze_crosstalk,
                                    analyze_crosstalk_windows,
                                    window_alignment)


WINDOWED_SPEC = DesignSpec("windowed", n_sinks=48, die_edge=280.0,
                           aggressors_per_sink=3.0, seed=17,
                           aggressor_windows=True)


def test_window_alignment_math():
    # Victim window fully inside the aggressor's: overlap / agg width.
    p = window_alignment((100.0, 140.0), (0.0, 400.0), 1000.0, 0.5)
    assert p == pytest.approx(0.5 * 40.0 / 400.0)
    # Disjoint windows: zero.
    assert window_alignment((100.0, 140.0), (500.0, 900.0), 1000.0, 0.5) == 0.0
    # No aggressor window: uniform over the cycle.
    p = window_alignment((100.0, 140.0), None, 1000.0, 1.0)
    assert p == pytest.approx(40.0 / 1000.0)
    # Degenerate aggressor window.
    assert window_alignment((0.0, 1.0), (5.0, 5.0), 1000.0, 1.0) == 0.0


def test_generator_assigns_windows():
    design = generate_design(WINDOWED_SPEC)
    for net in design.signal_nets:
        assert net.window is not None
        start, end = net.window
        assert 0.0 <= start < end <= design.clock_period


def test_windows_reach_coupling_entries(tech):
    design = generate_design(WINDOWED_SPEC)
    phys = build_physical_design(design, tech)
    windowed_entries = 0
    for para in phys.extraction.wires.values():
        for entry in para.couplings:
            assert entry.window is not None
            windowed_entries += 1
    assert windowed_entries > 0


@pytest.fixture(scope="module")
def analyses(tech):
    design = generate_design(WINDOWED_SPEC)
    phys = build_physical_design(design, tech)
    ext = phys.extraction
    timing = analyze_clock_timing(ext.network, tech)
    plain = analyze_crosstalk(ext.network, ext.wires, alignment=0.5)
    pruned = analyze_crosstalk_windows(ext.network, ext.wires, timing,
                                       design.clock_period)
    return plain, pruned


def test_worst_case_identical(analyses):
    plain, pruned = analyses
    a = {s.pin.full_name: s.worst for s in plain.sinks}
    b = {s.pin.full_name: s.worst for s in pruned.sinks}
    for pin in a:
        assert b[pin] == pytest.approx(a[pin], rel=1e-9)


def test_pruning_reduces_expected(analyses):
    """The point of timing windows: most aggressor transitions miss the
    clock edge, so the expected exposure collapses."""
    plain, pruned = analyses
    total_plain = sum(s.expected for s in plain.sinks)
    total_pruned = sum(s.expected for s in pruned.sinks)
    assert total_pruned < 0.3 * total_plain


def test_expected_below_worst(analyses):
    _plain, pruned = analyses
    for sink in pruned.sinks:
        assert 0.0 <= sink.expected <= sink.worst + 1e-12


def test_wider_sensitivity_more_exposure(tech):
    design = generate_design(WINDOWED_SPEC)
    phys = build_physical_design(design, tech)
    ext = phys.extraction
    timing = analyze_clock_timing(ext.network, tech)
    narrow = analyze_crosstalk_windows(ext.network, ext.wires, timing,
                                       design.clock_period, sensitivity=10.0)
    wide = analyze_crosstalk_windows(ext.network, ext.wires, timing,
                                     design.clock_period, sensitivity=200.0)
    assert sum(s.expected for s in wide.sinks) > \
        sum(s.expected for s in narrow.sinks)


def test_period_validation(tech):
    design = generate_design(WINDOWED_SPEC)
    phys = build_physical_design(design, tech)
    timing = analyze_clock_timing(phys.extraction.network, tech)
    with pytest.raises(ValueError):
        analyze_crosstalk_windows(phys.extraction.network,
                                  phys.extraction.wires, timing, 0.0)


def test_bad_window_rejected():
    from repro.netlist.net import Net, NetKind

    with pytest.raises(ValueError):
        Net("n", NetKind.SIGNAL, window=(5.0, 5.0))
    with pytest.raises(ValueError):
        Net("n", NetKind.SIGNAL, window=(-1.0, 5.0))