"""Corpus registry: families, lookup errors, selector resolution."""

import pytest

from repro.designs import (DesignSpec, families, family, family_of,
                           register_design_family, resolve_selectors,
                           spec_by_name, spec_names)
from repro.designs import registry as registry_mod


def test_builtin_families_registered():
    names = [fam.name for fam in families()]
    assert names[:4] == ["synthetic", "hierarchical", "gated", "imported"]
    assert family("synthetic").specs[0].name == "ckt64"
    assert family_of("soc_g128") == "gated"


def test_unknown_family_lists_available():
    with pytest.raises(KeyError, match="synthetic"):
        family("industrial")


def test_spec_by_name_suggests_close_matches_and_families():
    with pytest.raises(KeyError) as exc:
        spec_by_name("ckt258")
    message = str(exc.value)
    assert "ckt256" in message            # the close match
    assert "hierarchical" in message      # the family listing
    assert "soc_h64" in message


def test_register_rejects_duplicates():
    probe = DesignSpec("dup_probe", n_sinks=4, die_edge=50.0)
    fam = register_design_family("dup_fam", "probe", (probe,))
    try:
        assert fam.specs == (probe,)
        with pytest.raises(ValueError, match="registered twice"):
            register_design_family("dup_fam", "again", (probe,))
        with pytest.raises(ValueError, match="dup_probe"):
            register_design_family("dup_fam2", "again", (probe,))
        with pytest.raises(ValueError, match="no specs"):
            register_design_family("empty_fam", "nothing", ())
    finally:
        registry_mod._FAMILIES.pop("dup_fam", None)
        registry_mod._SPECS.pop("dup_probe", None)


@pytest.mark.parametrize("selectors,expected", [
    (["ckt64"], ("ckt64",)),
    (["ckt?4"], ("ckt64",)),
    (["family:gated"], ("soc_g128", "soc_g256")),
    (["soc_h*", "soc_h64"],
     ("soc_h64", "soc_h256", "soc_h256m", "soc_h1024")),
    (["designs/custom.json"], ("designs/custom.json",)),
])
def test_resolve_selectors(selectors, expected):
    assert resolve_selectors(selectors) == expected


def test_family_star_covers_whole_corpus():
    assert resolve_selectors(["family:*"]) == spec_names()


@pytest.mark.parametrize("selector", ["family:industrial", "ckt9*", "nope"])
def test_empty_selector_is_an_error(selector):
    with pytest.raises(KeyError):
        resolve_selectors([selector])


def test_run_matrix_expands_selectors():
    from repro.core import Policy
    from repro.runner import RunMatrix

    matrix = RunMatrix(designs=("family:imported", "adhoc", "imp_uart"),
                       policies=(Policy.SMART,))
    # Selector entries expand and dedup; non-selector refs pass through
    # verbatim (unregistered ad-hoc names stay legal until resolution).
    assert matrix.designs == ("imp_uart", "imp_noc", "adhoc")
    assert len(matrix) == 3


def test_teacher_dataset_accepts_corpus_refs():
    from repro.ml.data import _materialize_designs

    designs = _materialize_designs(["family:imported"])
    assert [d.name for d in designs] == ["imp_uart", "imp_noc"]
