"""Design database: instances, pins, nets, the design container."""

import pytest

from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist import CellKind, Design, NetKind, PinDirection


@pytest.fixture
def design():
    return Design(name="t", die=Rect(0, 0, 100, 100))


def test_clock_freq():
    d = Design(name="t", die=Rect(0, 0, 10, 10), clock_period=500.0)
    assert d.clock_freq == pytest.approx(2.0)  # GHz
    with pytest.raises(ValueError):
        Design(name="t", die=Rect(0, 0, 1, 1), clock_period=0.0)


def test_add_instance_and_duplicate(design):
    design.add_instance("u1", CellKind.GATE, Point(5, 5))
    with pytest.raises(ValueError):
        design.add_instance("u1", CellKind.GATE, Point(6, 6))


def test_instance_outside_die_rejected(design):
    with pytest.raises(ValueError):
        design.add_instance("u1", CellKind.GATE, Point(500, 5))


def test_pins_and_full_names(design):
    inst = design.add_instance("u1", CellKind.GATE, Point(5, 5))
    pin = inst.add_pin("A", PinDirection.INPUT, cap=1.0)
    assert pin.full_name == "u1/A"
    assert inst.pin("A") is pin
    with pytest.raises(ValueError):
        inst.add_pin("A", PinDirection.INPUT)
    with pytest.raises(KeyError):
        inst.pin("Z")


def test_pin_offset_location(design):
    inst = design.add_instance("u1", CellKind.GATE, Point(5, 5))
    pin = inst.add_pin("A", PinDirection.INPUT, offset=Point(1, -1))
    assert pin.location == Point(6, 4)


def test_net_driver_and_sinks(design):
    drv = design.add_instance("u1", CellKind.GATE, Point(1, 1))
    snk = design.add_instance("u2", CellKind.GATE, Point(2, 2))
    out = drv.add_pin("Z", PinDirection.OUTPUT)
    inp = snk.add_pin("A", PinDirection.INPUT, cap=1.2)
    net = design.add_net("n1", NetKind.SIGNAL, activity=0.3)
    net.connect_driver(out)
    net.connect_sink(inp)
    assert net.pins == [out, inp]
    assert net.total_pin_cap == pytest.approx(1.2)
    assert inp.net is net and out.net is net


def test_net_direction_checks(design):
    drv = design.add_instance("u1", CellKind.GATE, Point(1, 1))
    out = drv.add_pin("Z", PinDirection.OUTPUT)
    inp = drv.add_pin("A", PinDirection.INPUT)
    net = design.add_net("n1", NetKind.SIGNAL)
    with pytest.raises(ValueError):
        net.connect_driver(inp)
    with pytest.raises(ValueError):
        net.connect_sink(out)
    net.connect_driver(out)
    with pytest.raises(ValueError):
        net.connect_driver(out)  # second driver


def test_activity_bounds(design):
    with pytest.raises(ValueError):
        design.add_net("n1", NetKind.SIGNAL, activity=1.5)


def test_clock_source_and_flops(design):
    root = design.add_clock_source(Point(50, 0))
    assert design.clock_root is root
    with pytest.raises(ValueError):
        design.add_clock_source(Point(0, 0))
    pin = design.add_flop("ff0", Point(10, 10), clock_pin_cap=1.8)
    assert design.num_sinks == 1
    assert pin.cap == 1.8
    design.validate()


def test_validate_requires_clock(design):
    with pytest.raises(ValueError):
        design.validate()
    design.add_clock_source(Point(0, 0))
    with pytest.raises(ValueError):
        design.validate()  # no sinks yet
    design.add_flop("ff0", Point(1, 1), clock_pin_cap=1.0)
    design.validate()


def test_validate_rejects_driverless_net(design):
    design.add_clock_source(Point(0, 0))
    design.add_flop("ff0", Point(1, 1), clock_pin_cap=1.0)
    design.add_net("floating", NetKind.SIGNAL)
    with pytest.raises(ValueError):
        design.validate()


def test_signal_nets_filter(design):
    design.add_clock_source(Point(0, 0))
    drv = design.add_instance("u1", CellKind.GATE, Point(1, 1))
    net = design.add_net("n1", NetKind.SIGNAL)
    net.connect_driver(drv.add_pin("Z", PinDirection.OUTPUT))
    assert [n.name for n in design.signal_nets] == ["n1"]
