"""Technology bundle wiring and validation."""

import dataclasses

import pytest

from repro.tech import default_technology
from repro.tech.technology import Technology


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def test_default_rule_is_first(tech):
    assert tech.default_rule.is_default


def test_layer_for_orientations(tech):
    assert tech.layer_for(horizontal=True).direction == "H"
    assert tech.layer_for(horizontal=False).direction == "V"
    assert tech.layer_for(horizontal=True, clock=False).direction == "H"


def test_clock_layers_named_in_stack(tech):
    assert tech.layer_for(True).name == tech.clock_layer_h
    assert tech.layer_for(False).name == tech.clock_layer_v


def test_invalid_vdd_rejected(tech):
    with pytest.raises(ValueError):
        dataclasses.replace(tech, vdd=0.0)


def test_wrong_direction_layer_rejected(tech):
    # M4 is vertical; naming it as the horizontal clock layer must fail.
    with pytest.raises(ValueError):
        dataclasses.replace(tech, clock_layer_h="M4")


def test_rules_must_start_with_default(tech):
    with pytest.raises(ValueError):
        dataclasses.replace(tech, rules=tech.rules[1:])


def test_flop_cin_positive(tech):
    assert tech.flop_cin > 0.0
    assert tech.max_slew > 0.0
