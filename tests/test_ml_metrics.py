"""Classification metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml.metrics import (accuracy, confusion_matrix, f1_score,
                              precision, recall)


def test_accuracy_basic():
    assert accuracy([1, 0, 1, 1], [1, 0, 0, 1]) == pytest.approx(0.75)


def test_perfect_scores():
    y = [0, 1, 1, 0]
    assert accuracy(y, y) == 1.0
    assert precision(y, y) == 1.0
    assert recall(y, y) == 1.0
    assert f1_score(y, y) == 1.0


def test_precision_recall_asymmetry():
    y_true = [1, 1, 0, 0]
    y_pred = [1, 0, 0, 0]  # conservative predictor
    assert precision(y_true, y_pred) == 1.0
    assert recall(y_true, y_pred) == 0.5


def test_no_predicted_positives_precision_is_one():
    assert precision([1, 1], [0, 0]) == 1.0


def test_no_actual_positives_recall_is_one():
    assert recall([0, 0], [1, 0]) == 1.0


def test_f1_zero_when_nothing_right():
    assert f1_score([1, 1], [0, 0]) == 0.0


def test_confusion_matrix():
    m = confusion_matrix([0, 1, 2, 1], [0, 2, 2, 1])
    assert m.shape == (3, 3)
    assert m[0, 0] == 1 and m[1, 2] == 1 and m[2, 2] == 1 and m[1, 1] == 1
    assert m.sum() == 4


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        accuracy([1, 0], [1])
    with pytest.raises(ValueError):
        confusion_matrix([], [])


@given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                min_size=1, max_size=50))
def test_metric_bounds(pairs):
    y_true = [p[0] for p in pairs]
    y_pred = [p[1] for p in pairs]
    for metric in (accuracy, precision, recall, f1_score):
        value = metric(y_true, y_pred)
        assert 0.0 <= value <= 1.0


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2)),
                min_size=1, max_size=50))
def test_confusion_diagonal_is_accuracy(pairs):
    y_true = np.array([p[0] for p in pairs])
    y_pred = np.array([p[1] for p in pairs])
    m = confusion_matrix(y_true, y_pred)
    assert np.trace(m) / m.sum() == pytest.approx(accuracy(y_true, y_pred))
