"""Hierarchical SoC generator: regions, domains, gating, traffic."""

import numpy as np
import pytest

from repro.designs import DesignSpec, generate_design, spec_by_name
from repro.designs.soc import domain_of_region, htree_leaf_regions
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.io import design_fingerprint


def test_leaf_regions_tile_the_die():
    die = Rect(0.0, 0.0, 100.0, 80.0)
    for levels in (1, 2, 3, 4):
        regions = htree_leaf_regions(die, levels)
        assert len(regions) == 2 ** levels
        area = sum((r.xhi - r.xlo) * (r.yhi - r.ylo) for r in regions)
        assert area == pytest.approx((die.xhi - die.xlo)
                                     * (die.yhi - die.ylo))
        for r in regions:
            assert die.xlo <= r.xlo < r.xhi <= die.xhi
            assert die.ylo <= r.ylo < r.yhi <= die.yhi


def test_leaf_regions_alternate_split_axis():
    die = Rect(0.0, 0.0, 100.0, 100.0)
    level1 = htree_leaf_regions(die, 1)   # vertical: two 50x100 halves
    assert level1[0].xhi - level1[0].xlo == pytest.approx(50.0)
    assert level1[0].yhi - level1[0].ylo == pytest.approx(100.0)
    level2 = htree_leaf_regions(die, 2)   # then horizontal: 50x50 quads
    assert level2[0].xhi - level2[0].xlo == pytest.approx(50.0)
    assert level2[0].yhi - level2[0].ylo == pytest.approx(50.0)


def test_domain_assignment_is_region_major_and_total():
    assert [domain_of_region(i, 8, 1) for i in range(8)] == [0] * 8
    assert [domain_of_region(i, 8, 2) for i in range(8)] == \
        [0, 0, 0, 0, 1, 1, 1, 1]
    assert [domain_of_region(i, 8, 4) for i in range(8)] == \
        [0, 0, 1, 1, 2, 2, 3, 3]
    # Uneven splits still cover every domain without overflow.
    domains = [domain_of_region(i, 8, 3) for i in range(8)]
    assert set(domains) == {0, 1, 2}
    assert domains == sorted(domains)


def test_htree_needs_at_least_one_level():
    spec = DesignSpec("flat_htree", n_sinks=8, die_edge=100.0,
                      generator="htree", htree_levels=0)
    with pytest.raises(ValueError, match="htree_levels"):
        generate_design(spec)


def test_htree_design_shape():
    spec = spec_by_name("soc_h64")
    design = generate_design(spec)
    assert len(design.clock_sinks) == spec.n_sinks
    assert len(design.signal_nets) > 0
    # Clock source sits at the die center (the H-tree root).
    assert design.clock_root is not None
    assert design.clock_root.location == Point(spec.die_edge / 2.0,
                                               spec.die_edge / 2.0)
    margin = spec.die_edge * 0.03
    for pin in design.clock_sinks:
        assert margin <= pin.location.x <= spec.die_edge - margin
        assert margin <= pin.location.y <= spec.die_edge - margin


def test_htree_sinks_cluster_in_leaf_regions():
    spec = spec_by_name("soc_h256")
    design = generate_design(spec)
    regions = htree_leaf_regions(design.die, spec.htree_levels)
    base = spec.n_sinks // len(regions)
    for region in regions:
        inside = sum(1 for pin in design.clock_sinks
                     if region.contains(pin.location))
        # The Gaussian cluster keeps the bulk of each region's share
        # local (tails may spill into neighbours or onto margins).
        assert inside >= base // 2


def test_generation_is_deterministic():
    spec = spec_by_name("soc_g128")
    assert design_fingerprint(generate_design(spec)) == \
        design_fingerprint(generate_design(spec))


def test_gated_domains_are_quieter():
    gated = spec_by_name("soc_g256")
    baseline = generate_design(spec_by_name("soc_h256"))
    design = generate_design(gated)
    mean_gated = np.mean([net.activity for net in design.signal_nets])
    mean_flat = np.mean([net.activity for net in baseline.signal_nets])
    assert mean_gated < 0.6 * mean_flat


def test_blockages_punch_holes():
    spec = spec_by_name("soc_h256m")
    design = generate_design(spec)
    assert len(design.blockages) == spec.n_blockages
    for pin in design.clock_sinks:
        assert not any(b.contains(pin.location) for b in design.blockages)


def test_hotspot_traffic_concentrates_activity():
    spec = DesignSpec("hotspot_probe", n_sinks=64, die_edge=400.0, seed=5,
                      generator="htree", htree_levels=2, traffic="hotspot")
    design = generate_design(spec)
    regions = htree_leaf_regions(design.die, spec.htree_levels)
    per_region = [[] for _ in regions]
    for net in design.signal_nets:
        loc = net.driver.location
        for i, region in enumerate(regions):
            if region.contains(loc):
                per_region[i].append(net.activity)
                break
    counts = [len(acts) for acts in per_region]
    hot = counts.index(max(counts))
    # The hot region draws ~3x the per-region traffic weight and its
    # activity is doubled.
    assert counts[hot] > 1.5 * np.mean(
        [c for i, c in enumerate(counts) if i != hot])
    assert np.mean(per_region[hot]) > np.mean(
        [a for i, acts in enumerate(per_region) if i != hot for a in acts])
