"""Property-based tests on the track manager and router invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geom.grid import RoutingGrid
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.segment import Segment
from repro.netlist.net import NetKind
from repro.route.tracks import TrackManager
from repro.route.wires import RoutedWire
from repro.tech import default_technology, rule_by_name

TECH = default_technology()
M5 = TECH.stack.by_name("M5")
GRID = RoutingGrid(die=Rect(0, 0, 200, 200))

interval = st.tuples(st.integers(0, 180), st.integers(5, 20)).map(
    lambda t: (float(t[0]), float(t[0] + t[1])))


def _wire(wid, track, lo, hi, net="sig"):
    y = GRID.track_coord(M5, track)
    return RoutedWire(wire_id=wid, net_name=net, kind=NetKind.SIGNAL,
                      segment=Segment(Point(lo, y), Point(hi, y)),
                      layer=M5, track=track, rule=rule_by_name("W1S1"),
                      activity=0.2)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), interval),
                min_size=1, max_size=20))
def test_registered_intervals_never_report_free(entries):
    tm = TrackManager(GRID)
    placed = []
    for i, (track, (lo, hi)) in enumerate(entries):
        if tm.is_free(M5, track, lo, hi):
            tm.register(_wire(i, track, lo, hi))
            placed.append((track, lo, hi))
    # Every placed interval (and any sub-interval) is now occupied.
    for track, lo, hi in placed:
        assert not tm.is_free(M5, track, lo, hi)
        mid = (lo + hi) / 2.0
        assert not tm.is_free(M5, track, mid, mid + 0.1)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), interval),
                min_size=1, max_size=15))
def test_nearest_free_track_is_actually_free(entries):
    tm = TrackManager(GRID)
    for i, (track, (lo, hi)) in enumerate(entries):
        got = tm.nearest_free_track(M5, track, lo, hi)
        if tm.is_free(M5, got, lo, hi):
            tm.register(_wire(i, got, lo, hi))
    # No overlap among registered wires on the same track.
    by_track = {}
    for wid, wire in tm._wires.items():
        by_track.setdefault(wire.track, []).append(
            (wire.segment.lo, wire.segment.hi))
    for spans in by_track.values():
        spans.sort()
        for (l1, h1), (l2, h2) in zip(spans, spans[1:]):
            assert h1 <= l2 + 1e-9


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 29), interval, interval)
def test_neighbor_overlap_symmetry(track, span_a, span_b):
    """If A sees B as a neighbor, the overlap matches B seeing A."""
    tm = TrackManager(GRID)
    a = _wire(0, track, *span_a, net="clk")
    b = _wire(1, track + 1, *span_b)
    tm.register(a)
    tm.register(b)
    a_sees = {nb.neighbor_id: nb for nb in tm.neighbors_of(a)}
    b_sees = {nb.neighbor_id: nb for nb in tm.neighbors_of(b)}
    if 1 in a_sees:
        assert 0 in b_sees
        assert a_sees[1].overlap == pytest.approx(b_sees[0].overlap)
        assert a_sees[1].spacing == pytest.approx(b_sees[0].spacing)
    else:
        assert 0 not in b_sees


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 30), interval)
def test_utilization_bounded(track, span):
    tm = TrackManager(GRID)
    tm.register(_wire(0, track, *span))
    util = tm.layer_utilization(M5)
    assert 0.0 <= util <= 1.0
