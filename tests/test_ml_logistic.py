"""Logistic regression."""

import numpy as np
import pytest

from repro.ml.data import Standardizer
from repro.ml.logistic import LogisticRegression


def _linear_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    logits = 2.0 * X[:, 0] - 1.5 * X[:, 2]
    y = (logits + rng.normal(scale=0.3, size=n) > 0).astype(int)
    return X, y


def test_fits_linear_boundary():
    X, y = _linear_data()
    clf = LogisticRegression(n_iterations=800).fit(X, y)
    assert (clf.predict(X) == y).mean() > 0.92


def test_learned_weights_signs():
    X, y = _linear_data()
    clf = LogisticRegression(n_iterations=800).fit(X, y)
    assert clf.weights_[0] > 0.0
    assert clf.weights_[2] < 0.0
    assert abs(clf.weights_[1]) < abs(clf.weights_[0])


def test_probabilities_valid():
    X, y = _linear_data(100)
    clf = LogisticRegression().fit(X, y)
    proba = clf.predict_proba(X)
    assert proba.shape == (100, 2)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert ((proba >= 0) & (proba <= 1)).all()


def test_l2_shrinks_weights():
    X, y = _linear_data()
    loose = LogisticRegression(l2=0.0, n_iterations=500).fit(X, y)
    tight = LogisticRegression(l2=1.0, n_iterations=500).fit(X, y)
    assert np.linalg.norm(tight.weights_) < np.linalg.norm(loose.weights_)


def test_works_with_standardizer():
    X, y = _linear_data()
    X_scaled = Standardizer().fit_transform(X * 1000.0)  # bad raw scale
    clf = LogisticRegression(n_iterations=800).fit(X_scaled, y)
    assert (clf.predict(X_scaled) == y).mean() > 0.92


def test_nonbinary_labels_rejected():
    with pytest.raises(ValueError):
        LogisticRegression().fit(np.zeros((3, 1)), np.array([0, 1, 2]))


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        LogisticRegression().predict(np.zeros((1, 2)))


def test_hyperparameter_validation():
    with pytest.raises(ValueError):
        LogisticRegression(learning_rate=0.0)
    with pytest.raises(ValueError):
        LogisticRegression(n_iterations=0)
    with pytest.raises(ValueError):
        LogisticRegression(l2=-1.0)
