"""Point geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.geom.point import Point, bounding_center, manhattan

coords = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)


def test_add_sub():
    assert Point(1, 2) + Point(3, 4) == Point(4, 6)
    assert Point(3, 4) - Point(1, 2) == Point(2, 2)


def test_scaled():
    assert Point(1.5, -2.0).scaled(2.0) == Point(3.0, -4.0)


def test_manhattan_basic():
    assert manhattan(Point(0, 0), Point(3, 4)) == 7.0
    assert Point(1, 1).manhattan_to(Point(1, 1)) == 0.0


@given(coords, coords, coords, coords)
def test_manhattan_symmetry(x1, y1, x2, y2):
    a, b = Point(x1, y1), Point(x2, y2)
    assert a.manhattan_to(b) == b.manhattan_to(a)
    assert a.manhattan_to(b) >= 0.0


@given(coords, coords, coords, coords, coords, coords)
def test_manhattan_triangle_inequality(x1, y1, x2, y2, x3, y3):
    a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
    assert a.manhattan_to(c) <= a.manhattan_to(b) + b.manhattan_to(c) + 1e-6


def test_midpoint():
    assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)


def test_snapped():
    assert Point(1.3, 2.7).snapped(0.5) == Point(1.5, 2.5)
    with pytest.raises(ValueError):
        Point(0, 0).snapped(0.0)


def test_points_are_ordered_and_hashable():
    assert Point(0, 1) < Point(1, 0)
    assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2


def test_bounding_center():
    pts = [Point(0, 0), Point(4, 0), Point(4, 2)]
    assert bounding_center(pts) == Point(2, 1)
    with pytest.raises(ValueError):
        bounding_center([])
