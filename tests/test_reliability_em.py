"""Electromigration analysis."""

import pytest

from repro.extract import extract
from repro.reliability.em import analyze_em
from repro.tech import rule_by_name


@pytest.fixture(scope="module")
def report(small_physical, small_design, tech):
    return analyze_em(small_physical.extraction.network,
                      small_physical.routing, tech.vdd,
                      small_design.clock_freq)


def test_every_clock_wire_with_rc_checked(report, small_physical):
    checked = {w.wire_id for w in report.wires}
    rc_wires = set()
    for stage in small_physical.extraction.network.stages:
        for node in stage.nodes:
            if node.wire_id is not None:
                rc_wires.add(node.wire_id)
    assert checked == rc_wires


def test_currents_positive(report):
    for w in report.wires:
        assert w.i_eff > 0.0
        assert w.density > 0.0
        assert w.utilization == pytest.approx(w.density / w.jmax)


def test_violations_consistent(report):
    for w in report.wires:
        assert w.violated == (w.density > w.jmax)
    assert report.num_violations == len(report.violations)
    assert report.worst_utilization >= max(
        (w.utilization for w in report.violations), default=0.0)


def test_default_routing_has_a_few_violations(report):
    """The EM motivation: some (not all) default wires exceed Jmax."""
    assert 0 < report.num_violations < len(report.wires) // 4


def test_current_scales_with_frequency(small_physical, tech):
    lo = analyze_em(small_physical.extraction.network,
                    small_physical.routing, tech.vdd, freq=0.5)
    hi = analyze_em(small_physical.extraction.network,
                    small_physical.routing, tech.vdd, freq=1.0)
    assert hi.worst_utilization == pytest.approx(2 * lo.worst_utilization)


def test_widening_fixes_violations(make_small_physical, small_design, tech):
    phys = make_small_physical()
    base = analyze_em(phys.extraction.network, phys.routing, tech.vdd,
                      small_design.clock_freq)
    assert base.num_violations > 0
    for record in base.violations:
        phys.routing.assign_rule(record.wire_id, rule_by_name("W4S2"))
    ext = extract(phys.tree, phys.routing)
    fixed = analyze_em(ext.network, phys.routing, tech.vdd,
                       small_design.clock_freq)
    assert fixed.num_violations == 0


def test_em_factor_validation(small_physical, tech):
    with pytest.raises(ValueError):
        analyze_em(small_physical.extraction.network, small_physical.routing,
                   tech.vdd, 1.0, em_factor=0.0)


def test_utilization_lookup(report):
    wid = report.wires[0].wire_id
    assert report.utilization_of(wid) == report.wires[0].utilization
    with pytest.raises(KeyError):
        report.utilization_of(10 ** 9)
