"""The typed request schema: round-trips, strictness, shims, dispatch."""

from __future__ import annotations

import json

import pytest

from repro.api import (REQUEST_KINDS, REQUEST_SCHEMA, CompareRequest,
                       FlowRequest, LintRequest, SweepRequest, compare,
                       report_to_dict, request_field_default,
                       request_from_dict, sweep)


@pytest.fixture
def tiny_ref(tmp_path, tiny_design):
    from repro.io import save_design

    path = tmp_path / "tiny.json"
    save_design(tiny_design, path)
    return str(path)


# -- round-trips --------------------------------------------------------------


@pytest.mark.parametrize("request_obj", [
    FlowRequest(design="ckt64"),
    FlowRequest(design="ckt64", policy="all-ndr", slack=None,
                random_seed=3),
    CompareRequest(design="ckt64", slack=0.4, with_ml=True),
    SweepRequest(design="ckt64", slacks=(0.5, 0.2)),
    LintRequest(design="ckt64", kinds=("drc",)),
    LintRequest(static=True, paths=("src/repro",), codes=("Q*",)),
])
def test_exact_json_round_trip(request_obj):
    wire = json.loads(json.dumps(request_obj.to_dict()))
    assert wire["schema"] == REQUEST_SCHEMA
    assert wire["kind"] == request_obj.KIND
    rebuilt = type(request_obj).from_dict(wire)
    assert rebuilt == request_obj
    assert rebuilt.to_dict() == request_obj.to_dict()
    # The generic dispatcher lands on the same object.
    assert request_from_dict(wire) == request_obj


def test_unknown_fields_are_rejected():
    wire = CompareRequest(design="x").to_dict()
    wire["slcak"] = 0.2  # the typo this strictness exists to catch
    with pytest.raises(ValueError, match="slcak"):
        CompareRequest.from_dict(wire)


def test_wrong_schema_and_kind_are_rejected():
    wire = SweepRequest(design="x").to_dict()
    with pytest.raises(ValueError, match="schema"):
        SweepRequest.from_dict({**wire, "schema": REQUEST_SCHEMA + 1})
    with pytest.raises(ValueError, match="kind"):
        CompareRequest.from_dict(wire)
    with pytest.raises(ValueError, match="unknown request kind"):
        request_from_dict({"kind": "explode", "design": "x"})
    with pytest.raises(ValueError, match="does not match"):
        request_from_dict(wire, kind="compare")
    with pytest.raises(ValueError, match="no 'kind'"):
        request_from_dict({"design": "x"})


def test_endpoint_kind_fills_missing_tag():
    parsed = request_from_dict({"design": "ckt64"}, kind="run")
    assert parsed == FlowRequest(design="ckt64")
    assert set(REQUEST_KINDS) == {"run", "compare", "sweep", "lint"}


# -- validation ---------------------------------------------------------------


def test_requests_validate_eagerly():
    with pytest.raises(ValueError):
        FlowRequest(design="")
    with pytest.raises(ValueError):
        FlowRequest(design="x", policy="bogus")
    with pytest.raises(ValueError):
        SweepRequest(design="x", slacks=())
    with pytest.raises(ValueError):
        LintRequest(design="x", codes=("Q*",))  # codes need static
    with pytest.raises(ValueError):
        LintRequest()  # non-static needs a design


def test_sweep_slacks_coerce_to_float_tuple():
    req = SweepRequest(design="x", slacks=[1, 0.5])
    assert req.slacks == (1.0, 0.5)
    assert all(isinstance(s, float) for s in req.slacks)


def test_static_lint_is_not_cacheable():
    assert not LintRequest(static=True).cacheable
    assert LintRequest(design="x").cacheable
    assert FlowRequest(design="x").cacheable


def test_request_field_default_is_the_cli_source_of_truth():
    assert request_field_default(FlowRequest, "slack") == 0.15
    assert request_field_default(CompareRequest, "with_ml") is False
    assert request_field_default(SweepRequest, "slacks") == (0.6, 0.3, 0.15)
    with pytest.raises(KeyError):
        request_field_default(FlowRequest, "nope")
    with pytest.raises(ValueError):
        request_field_default(FlowRequest, "design")  # required field


# -- content keys -------------------------------------------------------------


def test_content_key_tracks_design_content(tmp_path, tiny_design,
                                           small_design):
    from repro.io import save_design

    path = tmp_path / "d.json"
    save_design(tiny_design, path)
    ref = str(path)
    key = CompareRequest(design=ref).content_key()
    assert key == CompareRequest(design=ref).content_key()
    # Same textual ref, different file content -> different key.
    save_design(small_design, path)
    assert CompareRequest(design=ref).content_key() != key


def test_content_key_discriminates_kind_and_fields():
    keys = {
        FlowRequest(design="ckt64").content_key(),
        FlowRequest(design="ckt64", random_seed=1).content_key(),
        CompareRequest(design="ckt64").content_key(),
        SweepRequest(design="ckt64").content_key(),
    }
    assert len(keys) == 4


# -- deprecation shims --------------------------------------------------------


def _computed(report):
    """The report minus execution metadata (runtime, cache provenance)."""
    import dataclasses

    wire = dataclasses.asdict(report)
    for cell in wire.get("cells", ()):
        cell.pop("runtime_s", None)
        cell.pop("cached", None)
    return wire


def test_legacy_compare_form_warns_and_matches(tiny_ref):
    new = compare(CompareRequest(design=tiny_ref, slack=0.15))
    with pytest.warns(DeprecationWarning, match="CompareRequest"):
        old = compare(tiny_ref, slack=0.15)
    # Identical CompareReports up to runtime/cache metadata.
    assert _computed(old) == _computed(new)


def test_legacy_sweep_form_warns_and_matches(tiny_ref):
    new = sweep(SweepRequest(design=tiny_ref, slacks=(0.3,)))
    with pytest.warns(DeprecationWarning, match="SweepRequest"):
        old = sweep(tiny_ref, slacks=[0.3])
    assert old == new  # SweepReports carry no runtime fields


def test_request_form_rejects_stray_kwargs(tiny_ref):
    with pytest.raises(TypeError, match="unexpected kwargs"):
        compare(CompareRequest(design=tiny_ref), slack=0.2)
    with pytest.raises(TypeError, match="unexpected kwargs"):
        sweep(SweepRequest(design=tiny_ref), slacks=(0.1,))


# -- report wire form ---------------------------------------------------------


def test_report_to_dict_round_trips_json(tiny_ref):
    report = compare(CompareRequest(design=tiny_ref, slack=0.15))
    wire = json.loads(json.dumps(report_to_dict(report)))
    assert wire["kind"] == "compare"
    assert wire["design"] == tiny_ref
    assert len(wire["cells"]) == 3
    with pytest.raises(TypeError):
        report_to_dict(object())
