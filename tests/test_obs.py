"""Structured observability: spans, metrics, propagation, perf shim."""

from __future__ import annotations

import json

import pytest

from repro import obs, perf
from repro.core import Policy
from repro.obs.export import (TraceSchemaError, export_jsonl, load_trace,
                              trace_digest)
from repro.obs.metrics import MetricsRegistry, NULL_METRIC
from repro.obs.report import render_trace_report
from repro.obs.spans import Tracer
from repro.runner import FlowRunner, JobSpec, RunMatrix


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with tracing off."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def tiny_ref(tmp_path, tiny_design):
    """The tiny design saved as a JSON design reference."""
    from repro.io import save_design

    path = tmp_path / "tiny.json"
    save_design(tiny_design, path)
    return str(path)


# -- spans ---------------------------------------------------------------------


def test_span_nesting_ids_and_attrs():
    tracer = obs.enable("t")
    with obs.span("outer", kind="x") as outer:
        with obs.span("inner") as inner:
            assert obs.current_span_id() == inner.span_id
        with obs.span("inner"):
            pass
    assert outer is not None and inner is not None
    ids = [r.span_id for r in tracer.records]
    assert ids == [1, 2, 3]  # sequential, execution order
    assert tracer.records[0].parent_id is None
    assert tracer.records[1].parent_id == outer.span_id
    assert tracer.records[2].parent_id == outer.span_id
    assert tracer.records[0].attrs == {"kind": "x"}
    assert all(r.duration_s is not None and r.duration_s >= 0.0
               for r in tracer.records)
    totals = tracer.phase_totals()
    assert totals["inner"]["calls"] == 2
    assert totals["outer"]["calls"] == 1


def test_span_is_noop_when_disabled():
    assert obs.active() is None
    with obs.span("nothing") as record:
        assert record is None
    assert obs.current_span_id() is None


def test_trace_shape_is_deterministic():
    """Same code, same (id, parent, name) sequence — ids never derive
    from wall-clock, PIDs, or object addresses."""

    def run_once() -> list[tuple]:
        tracer = Tracer("shape")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        return [(r.span_id, r.parent_id, r.name) for r in tracer.records]

    assert run_once() == run_once()


def test_capture_reroots_exactly_once():
    tracer = obs.enable("outer")
    with obs.span("session"):
        with obs.capture("cell") as inner:
            with obs.span("work"):  # lands on the captured tracer
                pass
        assert [r.name for r in inner.records] == ["work"]
    # The outer trace sees the captured span once, under "session".
    names = [r.name for r in tracer.records]
    assert names == ["session", "work"]
    by_name = {r.name: r for r in tracer.records}
    assert by_name["work"].parent_id == by_name["session"].span_id
    assert tracer.phase_totals()["work"]["calls"] == 1


def test_adopt_reroots_reids_and_merges_metrics():
    worker = Tracer("worker")
    with worker.span("cell"):
        with worker.span("phase"):
            pass
    worker.metrics.counter("n").inc(2.0)
    payload = worker.export_payload()

    parent = obs.enable("parent")
    parent.metrics.counter("n").inc()
    with parent.span("matrix") as matrix:
        assert matrix is not None
        new_ids = parent.adopt(payload, parent_id=matrix.span_id)
    assert len(new_ids) == 2
    by_name = {r.name: r for r in parent.records}
    assert by_name["cell"].parent_id == by_name["matrix"].span_id
    assert by_name["phase"].parent_id == by_name["cell"].span_id
    assert len({r.span_id for r in parent.records}) == 3
    # Rebased onto the parent's clock: nothing ends after "now".
    for r in parent.records:
        assert r.start_s + (r.duration_s or 0.0) <= parent.elapsed() + 1e-9
    assert parent.metrics.value("n") == 3.0


# -- metrics -------------------------------------------------------------------


def test_metrics_registry_kinds_and_merge():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(2.0)
    reg.gauge("g").set(5.0)
    reg.histogram("h").observe(1.0)
    reg.histogram("h").observe(3.0)
    assert reg.value("c") == 3.0
    assert reg.value("g") == 5.0
    assert reg.histogram("h").mean == 2.0
    with pytest.raises(TypeError):
        reg.gauge("c")
    with pytest.raises(TypeError):
        reg.value("h")

    other = MetricsRegistry()
    other.merge(reg.export())
    other.merge(reg.export())
    assert other.value("c") == 6.0          # counters add
    assert other.value("g") == 5.0          # gauges last-write
    h = other.histogram("h")
    assert (h.count, h.total, h.min, h.max) == (4, 8.0, 1.0, 3.0)


def test_metric_helpers_are_noops_when_disabled():
    assert obs.counter("x") is NULL_METRIC
    obs.counter("x").inc()
    obs.gauge("x").set(1.0)
    obs.histogram("x").observe(1.0)
    tracer = obs.enable("t")
    assert obs.counter("x") is not NULL_METRIC
    obs.counter("x").inc()
    assert tracer.metrics.value("x") == 1.0


# -- JSONL export --------------------------------------------------------------


def test_export_load_roundtrip(tmp_path):
    tracer = Tracer("roundtrip")
    with tracer.span("a", design="tiny"):
        with tracer.span("b"):
            pass
    tracer.metrics.counter("c").inc(4.0)
    tracer.metrics.histogram("h").observe(2.5)

    path = export_jsonl(tracer, path=tmp_path / "t.jsonl")
    trace = load_trace(path)
    assert trace.name == "roundtrip"
    assert [(s.span_id, s.parent_id, s.name) for s in trace.spans] == \
        [(r.span_id, r.parent_id, r.name) for r in tracer.records]
    assert trace.spans[0].attrs == {"design": "tiny"}
    assert trace.metrics["c"] == {"kind": "counter", "value": 4.0}
    assert trace.metrics["h"]["count"] == 1
    assert trace.phase_totals()["a"]["calls"] == 1
    assert "phase breakdown" in render_trace_report(trace)


def test_export_content_addressed_naming(tmp_path):
    tracer = Tracer("addr")
    with tracer.span("a"):
        pass
    path = export_jsonl(tracer, directory=tmp_path / "traces")
    lines = path.read_text().strip().splitlines()
    assert path.name == f"{trace_digest(lines[1:])}.jsonl"
    assert json.loads(lines[0])["digest"] == trace_digest(lines[1:])
    load_trace(path)  # validates digest


def test_load_trace_rejects_tampering(tmp_path):
    tracer = Tracer("tamper")
    with tracer.span("a"):
        pass
    path = export_jsonl(tracer, path=tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:1]) + "\n")  # drop the span line
    with pytest.raises(TraceSchemaError, match="digest"):
        load_trace(path)
    path.write_text("not json\n")
    with pytest.raises(TraceSchemaError):
        load_trace(path)


def test_load_trace_rejects_dangling_parent(tmp_path):
    span = {"event": "span", "id": 2, "parent": 99, "name": "x",
            "start_s": 0.0, "dur_s": 0.0, "attrs": {}}
    line = json.dumps(span, sort_keys=True, separators=(",", ":"))
    meta = json.dumps({"event": "meta", "schema": 1, "name": "bad",
                       "digest": trace_digest([line])},
                      sort_keys=True, separators=(",", ":"))
    path = tmp_path / "bad.jsonl"
    path.write_text(meta + "\n" + line + "\n")
    with pytest.raises(TraceSchemaError, match="parent"):
        load_trace(path)


# -- runner propagation --------------------------------------------------------


def _cell_shape(tracer) -> list[tuple]:
    """(name, parent-name) pairs, order-normalised, durations dropped."""
    by_id = {r.span_id: r for r in tracer.records}
    return sorted((r.name,
                   by_id[r.parent_id].name if r.parent_id else None)
                  for r in tracer.records)


def test_worker_trace_shape_matches_in_process(tiny_ref):
    """A 2-worker matrix must yield the same single re-rooted trace
    shape as the serial run: every worker cell span under the parent's
    runner.matrix span."""
    matrix = RunMatrix(designs=(tiny_ref,),
                       policies=(Policy.NO_NDR, Policy.ALL_NDR),
                       slacks=(0.15,))

    shapes = {}
    for jobs in (1, 2):
        tracer = obs.enable(f"jobs{jobs}")
        FlowRunner(store=None).run(matrix, jobs=jobs)
        shapes[jobs] = _cell_shape(tracer)
        obs.disable()

    assert shapes[1] == shapes[2]
    # 2 cells + 1 shared all-NDR reference, all under runner.matrix.
    assert shapes[1].count((obs.CELL_SPAN, obs.MATRIX_SPAN)) == 3


def test_traced_runner_counts_each_cell_exactly_once(tiny_ref):
    """Identity adoption regression: in-process cells (serial path /
    cache fallback) must not be folded into the session totals twice,
    which the old perf.capture flat name-keyed merge did."""
    tracer = obs.enable("serial")
    runner = FlowRunner(store=None)
    results = runner.run([JobSpec(design=tiny_ref, policy=Policy.NO_NDR),
                          JobSpec(design=tiny_ref, policy=Policy.NO_NDR)],
                         jobs=1)
    totals = tracer.phase_totals()
    # 2 cells + 1 reference executed; each runner.cell span counted once.
    assert totals[obs.CELL_SPAN]["calls"] == 3
    # Per-cell phase calls sum exactly to the session totals (old code
    # counted an in-process cell both in capture and in the merge).
    expect = sum(r.phases["flow.policy"]["calls"] for r in results)
    expect += 1  # the all-NDR reference cell
    assert totals["flow.policy"]["calls"] == expect


def test_cached_rerun_metrics_report_cache_hits(tmp_path, tiny_ref):
    """Warm rerun: every cell served from the store, and the metric
    registry says so (cells_cached + artifact hits, no computes)."""
    matrix = RunMatrix(designs=(tiny_ref,), policies=(Policy.NO_NDR,),
                       slacks=(0.15,))
    store = tmp_path / "store"

    tracer = obs.enable("cold")
    FlowRunner(store=store).run(matrix, jobs=1)
    cold = tracer.metrics.export()
    obs.disable()

    tracer = obs.enable("warm")
    FlowRunner(store=store).run(matrix, jobs=1)
    warm = tracer.metrics.export()
    obs.disable()

    assert cold["runner.cells_computed"]["value"] == 2  # cell + reference
    assert warm["runner.cells_cached"]["value"] == 2
    assert "runner.cells_computed" not in warm
    assert warm["artifacts.hits"]["value"] >= 2
    assert cold["artifacts.saves"]["value"] >= 2


# -- perf compatibility shim ---------------------------------------------------


def test_perf_enable_is_deprecated_view_over_spans():
    with pytest.warns(DeprecationWarning):
        timer = perf.enable()
    with perf.phase("x"):
        with perf.phase("y"):
            pass
    with perf.phase("x"):
        pass
    tracer = obs.active()
    assert tracer is not None
    span_totals = tracer.phase_totals()
    assert timer.counts == {"x": 2, "y": 1}
    assert timer.totals["x"] == pytest.approx(span_totals["x"]["seconds"])
    snap = timer.as_dict()
    assert snap["x"]["calls"] == 2
    assert "x" in timer.report()
    perf.disable()
    assert perf.active() is None and obs.active() is None


def test_perf_capture_yields_block_phases_and_reroots():
    with pytest.warns(DeprecationWarning):
        session = perf.enable()
    with pytest.warns(DeprecationWarning):
        with perf.capture() as inner:
            with perf.phase("work"):
                pass
            assert inner.counts == {"work": 1}
    # The session still sees the captured phase — exactly once.
    assert session.counts["work"] == 1
    perf.disable()


def test_perf_timer_merge_accepts_legacy_snapshots():
    with pytest.warns(DeprecationWarning):
        timer = perf.enable()
    timer.merge({"legacy": {"seconds": 1.5, "calls": 3}})
    timer.add("legacy", 0.5)
    assert timer.counts["legacy"] == 4
    assert timer.totals["legacy"] == pytest.approx(2.0)
    perf.disable()
