"""Signoff-style analysis summary."""

import pytest

from repro.core.evaluation import analyze_all
from repro.core.targets import RobustnessTargets
from repro.reporting import analysis_summary


@pytest.fixture(scope="module")
def bundle(small_physical, small_design, tech):
    targets = RobustnessTargets.for_period(small_design.clock_period,
                                           tech.max_slew)
    return analyze_all(small_physical.extraction, tech,
                       small_design.clock_freq, targets), targets


def test_summary_sections_present(bundle):
    analyses, targets = bundle
    text = analysis_summary(analyses, targets, title="unit")
    for token in ("=== unit ===", "timing", "signal integrity",
                  "process variation", "electromigration", "power",
                  "verdict:"):
        assert token in text


def test_summary_numbers_match_bundle(bundle):
    analyses, targets = bundle
    text = analysis_summary(analyses, targets)
    assert f"{analyses.timing.latency:9.1f}" in text
    assert f"{analyses.power.p_total:9.1f}" in text
    assert f"{analyses.mc.skew_3sigma:9.2f}" in text


def test_summary_verdict_tracks_feasibility(bundle):
    analyses, _ = bundle
    loose = RobustnessTargets(max_worst_delta=1e6, max_skew_3sigma=1e6,
                              max_slew=1e6, max_em_util=1e6)
    assert "verdict: PASS (0 violated" in analysis_summary(analyses, loose)
    tight = RobustnessTargets(max_worst_delta=1e-6, max_skew_3sigma=1e-6,
                              max_slew=1e-6, max_em_util=1e-6)
    text = analysis_summary(analyses, tight)
    assert "verdict: FAIL (4 violated" in text
    assert text.count("FAIL") == 5  # four checks + the verdict


def test_summary_pass_fail_markers(bundle):
    analyses, targets = bundle
    text = analysis_summary(analyses, targets)
    # The default-rule small design violates delta delay and EM.
    assert "FAIL" in text
