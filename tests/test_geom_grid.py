"""Routing grid coordinate <-> track mapping."""

import pytest

from repro.geom.grid import RoutingGrid
from repro.geom.rect import Rect
from repro.tech.layers import default_metal_stack


@pytest.fixture(scope="module")
def grid():
    return RoutingGrid(die=Rect(0, 0, 100, 100))


@pytest.fixture(scope="module")
def m5():
    return default_metal_stack().by_name("M5")


def test_num_tracks(grid, m5):
    assert grid.num_tracks(m5) == int(100 / m5.pitch)


def test_roundtrip(grid, m5):
    for idx in (0, 10, grid.num_tracks(m5) - 1):
        coord = grid.track_coord(m5, idx)
        assert grid.track_index(m5, coord) == idx


def test_track_index_clamped(grid, m5):
    assert grid.track_index(m5, -50.0) == 0
    assert grid.track_index(m5, 1e6) == grid.num_tracks(m5) - 1


def test_track_coord_out_of_range(grid, m5):
    with pytest.raises(IndexError):
        grid.track_coord(m5, -1)
    with pytest.raises(IndexError):
        grid.track_coord(m5, grid.num_tracks(m5))


def test_snap_is_idempotent(grid, m5):
    snapped = grid.snap(m5, 33.33)
    assert grid.snap(m5, snapped) == snapped


def test_track_distance(grid, m5):
    assert grid.track_distance(m5, 3, 7) == pytest.approx(4 * m5.pitch)
    assert grid.track_distance(m5, 7, 3) == pytest.approx(4 * m5.pitch)


def test_edge_spacing(grid, m5):
    w = m5.min_width
    # Adjacent tracks at min width: spacing = pitch - width.
    assert grid.edge_spacing(m5, 0, w, 1, w) == pytest.approx(m5.pitch - w)
    # Same track: zero.
    assert grid.edge_spacing(m5, 4, w, 4, w) == 0.0
    # Doubling one width eats half the gap.
    assert grid.edge_spacing(m5, 0, 2 * w, 1, w) == pytest.approx(
        m5.pitch - 1.5 * w)
