"""Backend registry behavior and cross-backend bit-identity.

The engine backends are not allowed to be merely *close*: the treeops
primitives pin the float-addition order, so ``numpy-dense`` (per-stage
kernels) and ``numpy-sparse`` (whole-design batched arenas) must agree
``==``-exactly on every analysis, at every size, through any sequence
of incremental updates.  These tests assert bitwise equality — no
tolerances anywhere.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import DesignSpec, generate_design, spec_by_name
from repro.core.flow import build_physical_design
from repro.core.targets import RobustnessTargets
from repro.cts.refine import refine_skew
from repro.engine import (AnalysisEngine, FrozenVariation,
                          available_backends, get_backend, resolve_backend)
from repro.engine.treeops import (accumulate_downstream,
                                  accumulate_downstream_loop,
                                  accumulate_prefix, build_levels)
from repro.extract.extractor import extract

EQUIV_SIZES = ["ckt64", "ckt256", "ckt1024"]

# Same shape as the conftest tiny fixture, but churn mutates its builds,
# so every hypothesis example gets fresh ones.
CHURN_SPEC = DesignSpec("tiny", n_sinks=24, die_edge=160.0,
                        aggressors_per_sink=2.0, seed=5)


# -- treeops micro-asserts (vectorised sweeps vs the legacy loops) ------------


def _random_forest(rng, n):
    """Random topological-order parent array, ~15% extra roots."""
    parent = np.full(n, -1, dtype=np.int64)
    for i in range(1, n):
        if rng.random() > 0.15:
            parent[i] = int(rng.integers(0, i))
    return parent


def test_downstream_sweep_is_bit_identical_to_loop():
    rng = np.random.default_rng(1234)
    for n in (1, 2, 7, 33, 200):
        for _ in range(5):
            parent = _random_forest(rng, n)
            values = rng.standard_normal(n) \
                * 10.0 ** rng.integers(-6, 7, n)
            fast = accumulate_downstream(values.copy(), parent,
                                         build_levels(parent))
            ref = accumulate_downstream_loop(values.copy(), parent)
            assert np.array_equal(fast, ref)


def test_downstream_sweep_is_bit_identical_to_loop_2d():
    # The Monte-Carlo sample axis rides along unchanged.
    rng = np.random.default_rng(99)
    parent = _random_forest(rng, 64)
    values = rng.standard_normal((64, 8)) * 10.0 ** rng.integers(-4, 5, (64, 8))
    fast = accumulate_downstream(values.copy(), parent,
                                 build_levels(parent))
    ref = accumulate_downstream_loop(values.copy(), parent)
    assert np.array_equal(fast, ref)


def test_prefix_sweep_is_bit_identical_to_loop():
    rng = np.random.default_rng(7)
    for n in (1, 13, 120):
        parent = _random_forest(rng, n)
        values = rng.standard_normal(n)
        fast = accumulate_prefix(values.copy(), parent,
                                 build_levels(parent))
        ref = values.copy()
        for i in range(n):
            if parent[i] >= 0:
                ref[i] += ref[parent[i]]
        assert np.array_equal(fast, ref)


def test_concatenated_forest_equals_per_tree_sweeps():
    # The whole-design arena processes all stage trees at once; each
    # parent only ever receives additions from its own children, so the
    # concatenated sweep must equal the per-tree sweeps bit for bit.
    rng = np.random.default_rng(42)
    sizes = [5, 11, 1, 30]
    parents, values, offsets = [], [], []
    base = 0
    for n in sizes:
        p = np.full(n, -1, dtype=np.int64)
        for i in range(1, n):
            p[i] = int(rng.integers(0, i))
        parents.append(p)
        values.append(rng.standard_normal(n))
        offsets.append(base)
        base += n
    concat_parent = np.concatenate(
        [np.where(p >= 0, p + off, -1)
         for p, off in zip(parents, offsets)])
    concat_values = np.concatenate(values)
    accumulate_downstream(concat_values, concat_parent,
                          build_levels(concat_parent))
    for p, v, off in zip(parents, values, offsets):
        per_tree = accumulate_downstream(v.copy(), p, build_levels(p))
        assert np.array_equal(concat_values[off:off + len(v)], per_tree)


def test_build_levels_rejects_non_topological_order():
    with pytest.raises(ValueError, match="topological"):
        build_levels(np.array([-1, 2, 0], dtype=np.int64))


# -- registry -----------------------------------------------------------------


def test_registry_lists_builtin_backends():
    assert {"numpy-dense", "numpy-sparse"} <= set(available_backends())


def test_unknown_backend_raises_with_available_list():
    with pytest.raises(KeyError, match="unknown engine backend"):
        get_backend("cuda")


def test_numba_backend_is_import_gated():
    from repro.engine.numba_backend import NUMBA_AVAILABLE
    if NUMBA_AVAILABLE:  # pragma: no cover - not installed in CI
        assert "numba" in available_backends()
    else:
        assert "numba" not in available_backends()
        with pytest.raises(RuntimeError, match="numba is not installed"):
            get_backend("numba")


def test_resolve_backend_is_env_blind(monkeypatch):
    """``resolve_backend`` never consults the environment.

    The ``REPRO_ENGINE_BACKEND`` variable flows through the runner's
    forwarded-variable seam (``default_backend_name`` called once per
    job by ``_execute_job``), so the resolver itself must stay
    deterministic in its arguments — the static analyzer (D003/S003)
    enforces this for everything reachable from flow code.
    """
    monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
    assert resolve_backend(None).name == "numpy-sparse"
    assert resolve_backend(True).name == "numpy-sparse"
    assert resolve_backend("numpy-dense").name == "numpy-dense"
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", "numpy-dense")
    assert resolve_backend(None).name == "numpy-sparse"
    assert resolve_backend(True).name == "numpy-sparse"
    assert resolve_backend("numpy-sparse").name == "numpy-sparse"


def test_default_backend_name_is_the_env_seam(monkeypatch):
    from repro.engine.backends import default_backend_name

    monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
    assert default_backend_name() == "numpy-sparse"
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", "numpy-dense")
    assert default_backend_name() == "numpy-dense"
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", "")
    assert default_backend_name() == "numpy-sparse"


def test_engine_default_backend_is_sparse(tiny_physical, tech):
    targets = RobustnessTargets.for_period(
        tiny_physical.design.clock_period, tech.max_slew)
    engine = AnalysisEngine(tiny_physical.extraction, tiny_physical.tree,
                            tech, tiny_physical.design.clock_freq, targets)
    assert engine.kernel.backend_name == "numpy-sparse"


# -- cross-backend bit-identity over the size ladder --------------------------


@pytest.fixture(scope="module", params=EQUIV_SIZES)
def sized_physical(request, tech):
    """One built design per ladder rung; treated as read-only."""
    return build_physical_design(
        generate_design(spec_by_name(request.param)), tech)


def _assert_timing_identical(a, b):
    assert [s.pin.full_name for s in a.sinks] \
        == [s.pin.full_name for s in b.sinks]
    assert [s.arrival for s in a.sinks] == [s.arrival for s in b.sinks]
    assert [s.slew for s in a.sinks] == [s.slew for s in b.sinks]
    assert a.stage_loads == b.stage_loads
    assert a.stage_delays == b.stage_delays


def test_backends_bit_identical_on_ladder(sized_physical, tech):
    extraction = sized_physical.extraction
    freq = sized_physical.design.clock_freq
    kernels = [
        get_backend(name).build(extraction.network, extraction.routing,
                                extraction.wires)
        for name in ("numpy-dense", "numpy-sparse")]
    dense, sparse = kernels

    _assert_timing_identical(dense.static_timing(tech),
                             sparse.static_timing(tech))

    xd = dense.crosstalk(alignment=0.5)
    xs = sparse.crosstalk(alignment=0.5)
    assert [s.pin.full_name for s in xd.sinks] \
        == [s.pin.full_name for s in xs.sinks]
    assert [s.worst for s in xd.sinks] == [s.worst for s in xs.sinks]
    assert [s.expected for s in xd.sinks] \
        == [s.expected for s in xs.sinks]

    ed = dense.em(tech.vdd, freq)
    es = sparse.em(tech.vdd, freq)
    assert [w.wire_id for w in ed.wires] == [w.wire_id for w in es.wires]
    assert [w.i_eff for w in ed.wires] == [w.i_eff for w in es.wires]
    assert [w.utilization for w in ed.wires] \
        == [w.utilization for w in es.wires]

    frozen = FrozenVariation(extraction.network, extraction.routing,
                             tech, n_samples=32, seed=7)
    md = dense.monte_carlo(frozen)
    ms = sparse.monte_carlo(frozen)
    assert md.sink_names == ms.sink_names
    assert np.array_equal(md.arrivals, ms.arrivals)
    assert np.array_equal(md.skew_samples, ms.skew_samples)


# -- random churn keeps backends locked together ------------------------------


def _assert_bundles_bit_identical(a, b):
    _assert_timing_identical(a.timing, b.timing)
    assert [s.worst for s in a.crosstalk.sinks] \
        == [s.worst for s in b.crosstalk.sinks]
    assert [w.utilization for w in a.em.wires] \
        == [w.utilization for w in b.em.wires]
    assert np.array_equal(a.mc.arrivals, b.mc.arrivals)


def _assert_invalidated(engine, stage_idx=None):
    """Runtime twin of the static I001/I003 checks.

    After any mutation — before any analysis read — the engine-level
    derived caches must be dropped, and the kernel must be either
    marked stale (sparse arena) or have dropped the mutated stage's
    caches (dense per-stage kernels).
    """
    assert engine._timing is None and engine._xtalk is None
    assert engine._power is None and engine._mc is None
    kernel = engine.kernel
    if kernel.backend_name == "numpy-sparse":
        assert kernel._stale \
            or (kernel._down is None and kernel._xtalk is None)
    elif stage_idx is not None:
        sk = kernel.stages[stage_idx]
        assert sk._down is None and sk._timing is None \
            and sk._xtalk is None


def _assert_recomputed(engine):
    """After ``analyze()`` the caches are live again (the barrier ran)."""
    assert engine._timing is not None and engine._xtalk is not None
    kernel = engine.kernel
    if kernel.backend_name == "numpy-sparse":
        assert not kernel._stale


@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_random_churn_keeps_backends_bit_identical(data):
    """Random patch/retrim sequences leave the backends ``==``-equal.

    Two engines — one per backend — receive the same mutation stream
    (rule upgrades, shield toggles, skew re-trims) against identical
    fresh builds; after every churn the full bundles must stay bitwise
    identical.
    """
    from repro.tech import default_technology

    tech = default_technology()
    rules = sorted(tech.rules, key=lambda r: r.name.value)
    engines, physicals = {}, {}
    for name in ("numpy-dense", "numpy-sparse"):
        phys = build_physical_design(generate_design(CHURN_SPEC), tech)
        targets = RobustnessTargets.for_period(phys.design.clock_period,
                                               tech.max_slew)
        extraction = extract(phys.tree, phys.routing)
        engines[name] = AnalysisEngine(extraction, phys.tree, tech,
                                       phys.design.clock_freq, targets,
                                       backend=name)
        physicals[name] = phys
    wire_ids = sorted(
        w.wire_id for w in physicals["numpy-dense"].routing.clock_wires)

    # Any tree node that owns a stage works for the no-op retrim probe.
    trim_node = min(
        engines["numpy-dense"].extraction.network.stage_of_tree_node)

    n_ops = data.draw(st.integers(min_value=1, max_value=5))
    for _ in range(n_ops):
        op = data.draw(st.sampled_from(["rule", "shield", "trim"]))
        if op == "trim":
            for name, engine in engines.items():
                phys = physicals[name]
                refine_skew(phys.tree, phys.routing, tech, engine=engine)
                # refine_skew re-reads timing internally, so the
                # invalidation oracle needs its own mutation: a no-op
                # retrim of one stage (current trim values) must still
                # mark the arena stale before any analysis read.
                engine.rebuild_stages([trim_node])
                stage_idx = \
                    engine.extraction.network.stage_of_tree_node[trim_node]
                _assert_invalidated(engine, stage_idx)
        else:
            wid = wire_ids[data.draw(
                st.integers(min_value=0, max_value=len(wire_ids) - 1))]
            rule = rules[data.draw(
                st.integers(min_value=0, max_value=len(rules) - 1))]
            for name, engine in engines.items():
                routing = physicals[name].routing
                if op == "rule":
                    routing.assign_rule(wid, rule)
                else:
                    routing.assign_shield(wid, True)
                engine.apply_rule_changes([wid])
                stage_idx = engine.extraction.network.wire_stage(wid)
                _assert_invalidated(engine, stage_idx)
        bundles = {name: engine.analyze()
                   for name, engine in engines.items()}
        for engine in engines.values():
            _assert_recomputed(engine)
        _assert_bundles_bit_identical(bundles["numpy-dense"],
                                      bundles["numpy-sparse"])

    bundles = {name: engine.analyze() for name, engine in engines.items()}
    _assert_bundles_bit_identical(bundles["numpy-dense"],
                                  bundles["numpy-sparse"])
