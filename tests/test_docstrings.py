"""Documentation coverage: every public item carries a docstring.

This is deliverable (e) made executable: modules, public classes and
public functions across the package must be documented.  Private names
(leading underscore) and dataclass-generated plumbing are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it would execute the CLI
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"module {module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported; documented at home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
            continue
        if inspect.isclass(obj):
            for m_name, member in vars(obj).items():
                if m_name.startswith("_"):
                    continue
                if not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(
                        f"{module.__name__}.{name}.{m_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"
