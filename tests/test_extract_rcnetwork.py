"""Stage-structured RC network invariants."""

import pytest

from repro.extract import extract


def test_one_stage_per_buffered_node(small_physical):
    tree = small_physical.tree
    network = small_physical.extraction.network
    buffered = [n.node_id for n in tree if n.buffer is not None]
    assert len(network.stages) == len(buffered)
    assert set(network.stage_of_tree_node) == set(buffered)


def test_root_stage_is_tree_root(small_physical):
    network = small_physical.extraction.network
    root_stage = network.stages[network.root_stage]
    assert root_stage.tree_node_id == small_physical.tree.root_id


def test_every_flop_appears_exactly_once(small_physical):
    network = small_physical.extraction.network
    pins = [sink.sink_pin.full_name for _idx, sink in network.flop_sinks()]
    assert len(pins) == len(set(pins))
    assert len(pins) == len(small_physical.tree.sinks())


def test_stage_tree_is_connected(small_physical):
    network = small_physical.extraction.network
    seen = set()
    stack = [network.root_stage]
    while stack:
        idx = stack.pop()
        assert idx not in seen
        seen.add(idx)
        stack.extend(network.stage_children(idx))
    assert seen == set(range(len(network.stages)))


def test_rc_nodes_topologically_ordered(small_physical):
    for stage in small_physical.extraction.network.stages:
        for node in stage.nodes:
            assert node.idx == stage.nodes.index(node)
            if node.parent is not None:
                assert node.parent < node.idx


def test_cap_conservation(small_physical, tech):
    """Sum of stage caps == wire caps + flop pins + buffer inputs + trims."""
    extraction = small_physical.extraction
    network = extraction.network
    tree = small_physical.tree

    total_stage_cap = sum(stage.total_cap for stage in network.stages)

    wire_cap = sum(p.c_total for p in extraction.wires.values())
    flop_cap = sum(n.sink_pin.cap for n in tree.sinks())
    buffer_cin = sum(stage.driver.c_in
                     for i, stage in enumerate(network.stages)
                     if i != network.root_stage)
    trim_cap = sum(n.load_pad + n.root_snake_c for n in tree)

    assert total_stage_cap == pytest.approx(
        wire_cap + flop_cap + buffer_cin + trim_cap, rel=1e-9)


def test_downstream_caps_accumulate(small_physical):
    for stage in small_physical.extraction.network.stages:
        down = stage.downstream_caps()
        assert down[0] == pytest.approx(stage.total_cap, rel=1e-9)
        for node in stage.nodes:
            assert down[node.idx] >= node.cap_nominal - 1e-12


def test_elmore_monotone_along_path(small_physical):
    """Elmore to a node is >= Elmore to any of its ancestors."""
    for stage in small_physical.extraction.network.stages:
        for sink in stage.sinks:
            path = stage.path_to_root(sink.node_idx)
            delays = [stage.elmore_to(idx) for idx in path]
            # path goes sink -> root, so delays must be non-increasing.
            for a, b in zip(delays, delays[1:]):
                assert a >= b - 1e-12


def test_wire_ids_match_routed_clock_wires(small_physical):
    extraction = small_physical.extraction
    rc_wire_ids = set()
    for stage in extraction.network.stages:
        for node in stage.nodes:
            if node.wire_id is not None:
                rc_wire_ids.add(node.wire_id)
    routed = {w.wire_id for w in extraction.routing.clock_wires}
    assert rc_wire_ids <= routed


def test_root_buffer_required(small_physical, tech):
    from repro.extract.rcnetwork import build_rc_network

    tree = small_physical.tree
    saved = tree.root.buffer
    tree.root.buffer = None
    try:
        with pytest.raises(ValueError):
            build_rc_network(tree, small_physical.routing,
                             small_physical.extraction.wires)
    finally:
        tree.root.buffer = saved


def test_re_extract_after_rule_change(make_small_physical, tech):
    from repro.tech import rule_by_name

    phys = make_small_physical()
    before = extract(phys.tree, phys.routing)
    wire = max(phys.routing.clock_wires, key=lambda w: w.segment.length)
    phys.routing.assign_rule(wire.wire_id, rule_by_name("W2S1"))
    after = extract(phys.tree, phys.routing)
    assert after.wires[wire.wire_id].r < before.wires[wire.wire_id].r
    assert after.clock_wire_cap > before.clock_wire_cap
