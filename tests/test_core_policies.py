"""Baseline policies."""

import pytest

from repro.core.policies import (Policy, apply_random_policy,
                                 apply_uniform_policy, uniform_rule_of)


def test_uniform_rules():
    assert uniform_rule_of(Policy.NO_NDR).name.value == "W1S1"
    assert uniform_rule_of(Policy.ALL_NDR).name.value == "W2S2"
    assert uniform_rule_of(Policy.WIDTH_ONLY).name.value == "W2S1"
    assert uniform_rule_of(Policy.SPACE_ONLY).name.value == "W1S2"


def test_smart_is_not_uniform():
    with pytest.raises(ValueError):
        uniform_rule_of(Policy.SMART)


def test_apply_uniform(make_tiny_physical):
    phys = make_tiny_physical()
    apply_uniform_policy(phys.routing, Policy.ALL_NDR)
    hist = phys.routing.rule_histogram()
    assert hist == {"W2S2": len(phys.routing.clock_wires)}


def test_apply_uniform_leaves_signals_alone(make_tiny_physical):
    phys = make_tiny_physical()
    apply_uniform_policy(phys.routing, Policy.ALL_NDR)
    for wire in phys.routing.signal_wires:
        assert wire.rule.is_default


def test_random_policy_fraction(make_tiny_physical):
    phys = make_tiny_physical()
    upgraded = apply_random_policy(phys.routing, fraction=0.5, seed=1)
    n = len(phys.routing.clock_wires)
    assert 0.2 * n < len(upgraded) < 0.8 * n
    hist = phys.routing.rule_histogram()
    assert hist.get("W2S2", 0) == len(upgraded)
    assert hist.get("W1S1", 0) == n - len(upgraded)


def test_random_policy_extremes(make_tiny_physical):
    phys = make_tiny_physical()
    assert apply_random_policy(phys.routing, 0.0) == []
    all_up = apply_random_policy(phys.routing, 1.0)
    assert len(all_up) == len(phys.routing.clock_wires)


def test_random_policy_deterministic(make_tiny_physical):
    a = apply_random_policy(make_tiny_physical().routing, 0.3, seed=7)
    b = apply_random_policy(make_tiny_physical().routing, 0.3, seed=7)
    assert a == b


def test_random_policy_validation(make_tiny_physical):
    phys = make_tiny_physical()
    with pytest.raises(ValueError):
        apply_random_policy(phys.routing, 1.5)
