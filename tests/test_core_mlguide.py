"""Classifier-guided assignment."""

import numpy as np
import pytest

from repro.bench import DesignSpec, generate_design
from repro.core import Policy, run_flow
from repro.core.mlguide import RULE_CLASSES, NdrClassifierGuide


TRAIN_SPECS = (
    DesignSpec("mltrain_a", n_sinks=24, die_edge=160.0, seed=21),
    DesignSpec("mltrain_b", n_sinks=32, die_edge=200.0, seed=22),
)
EVAL_SPEC = DesignSpec("mleval", n_sinks=48, die_edge=240.0, seed=23)


@pytest.fixture(scope="module")
def guide(tech):
    g = NdrClassifierGuide(n_trees=10, seed=3)
    designs = [generate_design(s) for s in TRAIN_SPECS]
    g.fit_designs(designs, tech)
    return g


def test_rule_classes_cover_rule_set():
    from repro.tech import RULE_SET

    assert RULE_CLASSES == tuple(r.name.value for r in RULE_SET)


def test_training_stats(guide):
    stats = guide.stats
    assert stats.n_samples > 50
    assert sum(stats.label_counts.values()) == stats.n_samples
    assert 0.5 < stats.train_accuracy <= 1.0
    assert set(stats.feature_importances) == \
        set(__import__("repro.core.features",
                       fromlist=["WIRE_FEATURE_NAMES"]).WIRE_FEATURE_NAMES)
    assert stats.label_counts["W1S1"] > 0  # default dominates


def test_unfitted_guide_raises(tech, tiny_physical):
    g = NdrClassifierGuide()
    with pytest.raises(RuntimeError):
        g.predict_rules(tiny_physical.tree, tiny_physical.routing, tech, 1.0)


def test_fit_requires_designs(tech):
    with pytest.raises(ValueError):
        NdrClassifierGuide().fit_designs([], tech)


def test_predictions_are_valid_rules(guide, make_tiny_physical, tech):
    phys = make_tiny_physical()
    predictions = guide.predict_rules(phys.tree, phys.routing, tech, 1.0)
    assert predictions
    assert set(predictions.values()) <= set(RULE_CLASSES)


def test_flow_with_guide_is_feasible(guide, tech):
    design = generate_design(EVAL_SPEC)
    result = run_flow(design, tech, policy=Policy.SMART_ML, guide=guide)
    assert result.policy == Policy.SMART_ML
    assert result.feasible
    # Selective: far from uniform upgrade.
    n = sum(result.rule_histogram.values())
    upgraded = n - result.rule_histogram.get("W1S1", 0)
    assert upgraded < n


def test_guide_upgrades_recorded_consistently(guide, tech):
    design = generate_design(EVAL_SPEC)
    result = run_flow(design, tech, policy=Policy.SMART_ML, guide=guide)
    routing = result.physical.routing
    for wire_id, rule_name in result.optimize.upgraded.items():
        wire = routing.tracks.wire(wire_id)
        assert wire.rule.name.value == rule_name
        assert not wire.rule.is_default
