"""Rectilinear Steiner tree construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geom.point import Point
from repro.geom.steiner import build_steiner_tree


def _connected_terminals(tree) -> bool:
    """Every terminal must lie on some segment (or equal another terminal)."""
    for t in tree.terminals:
        if t == tree.root and len(tree.terminals) == 1:
            return True
        on_wire = any(_on_segment(t, seg) for seg in tree.segments)
        if not on_wire:
            return False
    return True


def _on_segment(p: Point, seg) -> bool:
    if seg.horizontal:
        return p.y == seg.track_coord and seg.lo <= p.x <= seg.hi
    return p.x == seg.track_coord and seg.lo <= p.y <= seg.hi


def test_single_terminal_empty():
    tree = build_steiner_tree(Point(0, 0), [])
    assert tree.segments == []
    assert tree.wirelength == 0.0


def test_two_terminals_is_l_route():
    tree = build_steiner_tree(Point(0, 0), [Point(3, 4)])
    assert tree.wirelength == pytest.approx(7.0)
    assert _connected_terminals(tree)


def test_collinear_terminals_share_trunk():
    tree = build_steiner_tree(Point(0, 0), [Point(5, 0), Point(10, 0)])
    assert tree.wirelength == pytest.approx(10.0)
    assert len(tree.segments) == 1


def test_steiner_sharing_beats_star():
    # Three sinks to the right of the root at the same x: a shared trunk
    # should cost less than three independent L-routes.
    root = Point(0, 0)
    sinks = [Point(10, -1), Point(10, 0), Point(10, 1)]
    tree = build_steiner_tree(root, sinks)
    star = sum(root.manhattan_to(s) for s in sinks)
    assert tree.wirelength < star


def test_duplicate_terminals_deduplicated():
    tree = build_steiner_tree(Point(0, 0), [Point(3, 0), Point(3, 0)])
    assert len(tree.terminals) == 2
    assert tree.wirelength == pytest.approx(3.0)


def test_deterministic():
    sinks = [Point(7, 2), Point(3, 9), Point(5, 5), Point(1, 8)]
    a = build_steiner_tree(Point(0, 0), list(sinks))
    b = build_steiner_tree(Point(0, 0), list(sinks))
    assert a.segments == b.segments


points = st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
    lambda t: Point(float(t[0]), float(t[1])))


@settings(max_examples=40, deadline=None)
@given(st.lists(points, min_size=1, max_size=8), points)
def test_tree_connects_all_terminals(sinks, root):
    tree = build_steiner_tree(root, sinks)
    assert _connected_terminals(tree)


@settings(max_examples=40, deadline=None)
@given(st.lists(points, min_size=1, max_size=8), points)
def test_wirelength_bounded(sinks, root):
    """Never worse than the star; never better than half the MST bound."""
    tree = build_steiner_tree(root, sinks)
    star = sum(root.manhattan_to(s) for s in set(sinks) if s != root)
    assert tree.wirelength <= star + 1e-9
    # Lower bound: at least the distance to the farthest terminal.
    far = max((root.manhattan_to(s) for s in sinks), default=0.0)
    assert tree.wirelength >= far - 1e-9
