"""DEF-lite importer: validation diagnostics, building, round-trips."""

import json

import pytest

from repro.designs import (deflite_to_design, design_to_deflite,
                           import_design, load_deflite, save_deflite,
                           spec_by_name, validate_deflite)
from repro.designs.importer import check_deflite_schema
from repro.designs.spec import resolve_source
from repro.io.design_json import design_to_dict
from repro.verify.diagnostics import VerificationError


def _doc():
    """A minimal valid DEF-lite document."""
    return {
        "deflite": 1,
        "name": "mini",
        "die": [0.0, 0.0, 100.0, 100.0],
        "clock": {"period_ps": 1000.0, "source_xy": [50.0, 0.0]},
        "pins": [{"name": "ff_0", "xy": [10.0, 10.0], "cap_ff": 1.8},
                 {"name": "ff_1", "xy": [90.0, 80.0]}],
        "blockages": [[30.0, 30.0, 50.0, 50.0]],
        "aggressors": [{"name": "sig_0", "driver_xy": [20.0, 20.0],
                        "sink_xys": [[25.0, 22.0]], "activity": 0.3,
                        "window_ps": [0.0, 400.0]}],
    }


def test_valid_document_is_clean_and_builds():
    assert not validate_deflite(_doc()).has_errors
    design = deflite_to_design(_doc())
    assert design.name == "mini"
    assert len(design.clock_sinks) == 2
    assert len(design.signal_nets) == 1
    assert design.signal_nets[0].window == (0.0, 400.0)
    assert len(design.blockages) == 1


@pytest.mark.parametrize("mutate,rule", [
    (lambda d: d.update(deflite=99), "import-schema"),
    (lambda d: d.pop("die"), "import-schema"),
    (lambda d: d.update(name=""), "import-schema"),
    (lambda d: d["pins"].clear(), "import-schema"),
    (lambda d: d.update(die=[0.0, 0.0, 0.0, 100.0]), "import-geometry"),
    (lambda d: d["pins"][0].update(xy=[500.0, 10.0]), "import-geometry"),
    (lambda d: d["pins"][0].update(xy=[40.0, 40.0]), "import-geometry"),
    (lambda d: d["clock"].update(source_xy=[-5.0, 0.0]), "import-geometry"),
    (lambda d: d["clock"].update(period_ps=-1.0), "import-electrical"),
    (lambda d: d["pins"][0].update(cap_ff=0.0), "import-electrical"),
    (lambda d: d["aggressors"][0].update(activity=1.5), "import-electrical"),
    (lambda d: d["aggressors"][0].update(window_ps=[400.0, 100.0]),
     "import-electrical"),
    (lambda d: d["pins"].append(dict(d["pins"][0])), "import-names"),
    (lambda d: d["aggressors"].append(dict(d["aggressors"][0])),
     "import-names"),
])
def test_corrupt_documents_are_diagnosed(mutate, rule):
    doc = _doc()
    mutate(doc)
    report = validate_deflite(doc)
    assert report.has_errors
    assert any(diag.rule == rule for diag in report.diagnostics)


def test_window_past_period_is_a_warning_only():
    doc = _doc()
    doc["aggressors"][0]["window_ps"] = [0.0, 1500.0]
    report = validate_deflite(doc)
    assert not report.has_errors
    assert any("past the clock period" in diag.message
               for diag in report.diagnostics)


def test_import_checks_skip_foreign_contexts():
    assert list(check_deflite_schema(object())) == []


def test_import_design_raises_on_errors(tmp_path):
    doc = _doc()
    doc["pins"][0]["xy"] = [500.0, 10.0]
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(VerificationError):
        import_design(path)


def test_load_deflite_rejects_malformed_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_deflite(path)
    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        load_deflite(path)


@pytest.mark.parametrize("name", ["imp_uart", "imp_noc"])
def test_packaged_data_files_validate_and_import(name):
    source = resolve_source(spec_by_name(name))
    assert not validate_deflite(source).has_errors
    design = import_design(source, name=name)
    assert design.name == name
    assert len(design.clock_sinks) == spec_by_name(name).n_sinks


def test_import_export_import_round_trips(tmp_path):
    first = deflite_to_design(_doc())
    path = tmp_path / "rt.json"
    save_deflite(first, path)
    second = import_design(path)
    assert design_to_dict(second) == design_to_dict(first)
    # And the exported document itself is stable under a second pass.
    assert design_to_deflite(second) == design_to_deflite(first)


def test_round_trip_preserves_generated_design(tmp_path):
    design = import_design(resolve_source(spec_by_name("imp_noc")),
                           name="imp_noc")
    path = tmp_path / "noc.json"
    save_deflite(design, path)
    again = import_design(path, name="imp_noc")
    assert design_to_dict(again) == design_to_dict(design)
