"""Hard macros: avoid-routing, keep-outs, full flow on blocked designs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import DesignSpec, generate_design
from repro.core import Policy, run_flow
from repro.core.flow import build_physical_design
from repro.geom.avoid import route_avoiding, segment_blocked
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.geom.segment import Segment


DIE = Rect(0, 0, 100, 100)
MACRO = Rect(40, 40, 60, 60)


def test_segment_blocked_detection():
    assert segment_blocked(Segment(Point(0, 50), Point(100, 50)), MACRO)
    assert segment_blocked(Segment(Point(50, 0), Point(50, 100)), MACRO)
    assert not segment_blocked(Segment(Point(0, 10), Point(100, 10)), MACRO)
    # A segment skimming the clearance zone counts as blocked.
    assert segment_blocked(Segment(Point(0, 60.2), Point(100, 60.2)), MACRO)
    assert not segment_blocked(Segment(Point(0, 61.0), Point(100, 61.0)), MACRO)


def test_unblocked_route_is_plain_l():
    legs = route_avoiding(Point(0, 0), Point(10, 10), [MACRO], DIE)
    assert sum(leg.length for leg in legs) == pytest.approx(20.0)


def test_detour_clears_macro():
    legs = route_avoiding(Point(0, 50), Point(100, 50), [MACRO], DIE)
    for leg in legs:
        assert not segment_blocked(leg, MACRO)
    # Connected from src to dst.
    assert legs[0].a == Point(0, 50)
    assert legs[-1].b == Point(100, 50)
    for a, b in zip(legs, legs[1:]):
        assert a.b == b.a
    # Detour cost is bounded by the macro size.
    total = sum(leg.length for leg in legs)
    assert 100.0 < total < 100.0 + 2 * (MACRO.height + 4)


def test_route_through_two_macros():
    macros = [Rect(20, 40, 35, 60), Rect(60, 40, 80, 60)]
    legs = route_avoiding(Point(0, 50), Point(100, 50), macros, DIE)
    for leg in legs:
        for macro in macros:
            assert not segment_blocked(leg, macro)


def test_no_blockages_shortcut():
    legs = route_avoiding(Point(0, 0), Point(10, 0), [], DIE)
    assert len(legs) == 1


@settings(max_examples=40, deadline=None)
@given(sx=st.integers(0, 100), sy=st.integers(0, 100),
       dx=st.integers(0, 100), dy=st.integers(0, 100))
def test_avoid_route_properties(sx, sy, dx, dy):
    src, dst = Point(float(sx), float(sy)), Point(float(dx), float(dy))
    for p in (src, dst):
        if MACRO.expanded(1.0).contains(p):
            return  # terminals inside the macro are not routable targets
    legs = route_avoiding(src, dst, [MACRO], DIE)
    if src == dst:
        assert legs == []
        return
    assert legs[0].a == src and legs[-1].b == dst
    for leg in legs:
        assert not segment_blocked(leg, MACRO)
    total = sum(leg.length for leg in legs)
    assert total >= src.manhattan_to(dst) - 1e-9


BLOCKED_SPEC = DesignSpec("blocked", n_sinks=48, die_edge=300.0,
                          aggressors_per_sink=2.0, seed=13, n_blockages=2)


@pytest.fixture(scope="module")
def blocked_design():
    return generate_design(BLOCKED_SPEC)


def test_generator_places_disjoint_macros(blocked_design):
    assert len(blocked_design.blockages) == 2
    a, b = blocked_design.blockages
    assert not a.intersects(b)


def test_nothing_placed_inside_macros(blocked_design):
    for inst in blocked_design.instances.values():
        for blockage in blocked_design.blockages:
            assert not blockage.contains(inst.location), inst.name


def test_clock_wires_avoid_macros(blocked_design, tech):
    phys = build_physical_design(blocked_design, tech)
    for wire in phys.routing.clock_wires:
        for blockage in blocked_design.blockages:
            assert not segment_blocked(wire.segment, blockage, clearance=0.0)


def test_buffers_not_on_macros(blocked_design, tech):
    phys = build_physical_design(blocked_design, tech)
    for node in phys.tree:
        if node.buffer is None:
            continue
        for blockage in blocked_design.blockages:
            assert not blockage.contains(node.location)


def test_full_flow_on_blocked_design(tech):
    design = generate_design(BLOCKED_SPEC)
    result = run_flow(design, tech, policy=Policy.SMART)
    assert result.feasible
    assert result.analyses.timing.skew <= 3.0


def test_blockage_outside_die_rejected(blocked_design):
    with pytest.raises(ValueError):
        blocked_design.add_blockage(Rect(-10, 0, 20, 20))


def test_instance_inside_blockage_rejected(blocked_design):
    from repro.netlist.cell import CellKind

    macro = blocked_design.blockages[0]
    with pytest.raises(ValueError):
        blocked_design.add_instance("bad", CellKind.GATE, macro.center)


def test_blockage_json_round_trip(blocked_design, tmp_path):
    from repro.io import load_design, save_design

    path = tmp_path / "blocked.json"
    save_design(blocked_design, path)
    rebuilt = load_design(path)
    assert rebuilt.blockages == blocked_design.blockages
