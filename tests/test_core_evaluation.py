"""Analysis bundle and violation accounting."""

import pytest

from repro.core.evaluation import analyze_all, targets_from_reference
from repro.core.targets import RobustnessTargets


@pytest.fixture(scope="module")
def bundle(small_physical, small_design, tech):
    targets = RobustnessTargets.for_period(small_design.clock_period,
                                           tech.max_slew)
    return analyze_all(small_physical.extraction, tech,
                       small_design.clock_freq, targets)


def test_bundle_complete(bundle, small_physical):
    n = len(small_physical.tree.sinks())
    assert len(bundle.timing.sinks) == n
    assert len(bundle.crosstalk.sinks) == n
    assert bundle.power.p_total > 0.0
    assert bundle.mc.n_samples == 200


def test_violations_positive_excess_only(bundle):
    loose = RobustnessTargets(max_worst_delta=1e6, max_skew_3sigma=1e6,
                              max_slew=1e6, max_em_util=1e6)
    assert bundle.violations(loose) == {}
    assert bundle.feasible(loose)

    tight = RobustnessTargets(max_worst_delta=1e-6, max_skew_3sigma=1e-6,
                              max_slew=1e-6, max_em_util=1e-6)
    violations = bundle.violations(tight)
    assert set(violations) == {"delta_delay", "skew_3sigma", "slew", "em"}
    assert all(v > 0 for v in violations.values())
    assert not bundle.feasible(tight)


def test_violation_magnitudes(bundle):
    tight = RobustnessTargets(max_worst_delta=1e-6, max_skew_3sigma=1e-6,
                              max_slew=1e-6, max_em_util=1e-6)
    v = bundle.violations(tight)
    assert v["delta_delay"] == pytest.approx(
        bundle.crosstalk.worst_delta - 1e-6)
    assert v["slew"] == pytest.approx(bundle.timing.worst_slew - 1e-6)


def test_targets_from_reference(bundle, tech):
    targets = targets_from_reference(bundle, tech, slack=0.10)
    assert targets.max_worst_delta == pytest.approx(
        1.10 * bundle.crosstalk.worst_delta)
    assert targets.max_skew_3sigma == pytest.approx(
        1.10 * bundle.mc.skew_3sigma)
    assert targets.max_slew == tech.max_slew
    # The reference run itself is feasible against its own pegged budget
    # (EM may still violate: the peg never relaxes hard limits).
    v = bundle.violations(targets)
    assert "delta_delay" not in v and "skew_3sigma" not in v
