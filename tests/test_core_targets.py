"""Robustness targets."""

import pytest

from repro.core.targets import RobustnessTargets


def test_for_period_fractions():
    t = RobustnessTargets.for_period(1000.0, max_slew=80.0)
    assert t.max_worst_delta == pytest.approx(5.0)
    assert t.max_skew_3sigma == pytest.approx(8.0)
    assert t.max_slew == 80.0
    assert t.max_em_util == 1.0


def test_for_period_custom_fractions():
    t = RobustnessTargets.for_period(500.0, 60.0, delta_fraction=0.01,
                                     skew_fraction=0.02)
    assert t.max_worst_delta == pytest.approx(5.0)
    assert t.max_skew_3sigma == pytest.approx(10.0)


def test_from_reference_slack():
    t = RobustnessTargets.from_reference(worst_delta=4.0, skew_3sigma=10.0,
                                         max_slew=80.0, slack=0.25)
    assert t.max_worst_delta == pytest.approx(5.0)
    assert t.max_skew_3sigma == pytest.approx(12.5)


def test_relaxed_scales_delta_and_skew_only():
    t = RobustnessTargets.for_period(1000.0, 80.0)
    loose = t.relaxed(2.0)
    assert loose.max_worst_delta == pytest.approx(2 * t.max_worst_delta)
    assert loose.max_skew_3sigma == pytest.approx(2 * t.max_skew_3sigma)
    assert loose.max_slew == t.max_slew
    assert loose.max_em_util == t.max_em_util


def test_validation():
    with pytest.raises(ValueError):
        RobustnessTargets(max_worst_delta=0.0, max_skew_3sigma=1.0,
                          max_slew=80.0)
    with pytest.raises(ValueError):
        RobustnessTargets(max_worst_delta=1.0, max_skew_3sigma=1.0,
                          max_slew=80.0, mc_samples=1)
    with pytest.raises(ValueError):
        RobustnessTargets.for_period(0.0, 80.0)
    with pytest.raises(ValueError):
        RobustnessTargets.from_reference(1.0, 1.0, 80.0, slack=-0.1)
    t = RobustnessTargets.for_period(1000.0, 80.0)
    with pytest.raises(ValueError):
        t.relaxed(0.0)


def test_frozen():
    t = RobustnessTargets.for_period(1000.0, 80.0)
    with pytest.raises(Exception):
        t.max_slew = 10.0
