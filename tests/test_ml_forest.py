"""Random forest."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier


def _blob_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-1.0, scale=0.6, size=(n // 2, 4))
    X1 = rng.normal(loc=+1.0, scale=0.6, size=(n // 2, 4))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


def test_fits_blobs():
    X, y = _blob_data()
    clf = RandomForestClassifier(n_trees=10, seed=1).fit(X, y)
    assert (clf.predict(X) == y).mean() > 0.95


def test_probabilities_average_over_trees():
    X, y = _blob_data()
    clf = RandomForestClassifier(n_trees=8, seed=1).fit(X, y)
    proba = clf.predict_proba(X)
    assert proba.shape[0] == X.shape[0]
    assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)


def test_deterministic_given_seed():
    X, y = _blob_data()
    a = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict(X)
    b = RandomForestClassifier(n_trees=5, seed=3).fit(X, y).predict(X)
    assert np.array_equal(a, b)


def test_seed_changes_model():
    X, y = _blob_data(100, seed=5)
    a = RandomForestClassifier(n_trees=3, seed=1).fit(X, y).predict_proba(X)
    b = RandomForestClassifier(n_trees=3, seed=2).fit(X, y).predict_proba(X)
    assert not np.allclose(a, b)


def test_feature_importances_shape():
    X, y = _blob_data()
    clf = RandomForestClassifier(n_trees=5, seed=0).fit(X, y)
    imp = clf.feature_importances_
    assert imp.shape == (4,)
    assert imp.sum() == pytest.approx(1.0, abs=1e-6)


def test_unfitted_raises():
    clf = RandomForestClassifier()
    with pytest.raises(RuntimeError):
        clf.predict(np.zeros((1, 4)))
    with pytest.raises(RuntimeError):
        _ = clf.feature_importances_


def test_validation():
    with pytest.raises(ValueError):
        RandomForestClassifier(n_trees=0)
    clf = RandomForestClassifier(n_trees=2)
    with pytest.raises(ValueError):
        clf.fit(np.zeros((3, 2)), np.zeros(5, dtype=int))


def test_more_trees_not_worse():
    X, y = _blob_data(200, seed=7)
    rng = np.random.default_rng(8)
    Xt = np.vstack([rng.normal(-1, 0.6, (50, 4)), rng.normal(1, 0.6, (50, 4))])
    yt = np.array([0] * 50 + [1] * 50)
    small = RandomForestClassifier(n_trees=1, seed=4).fit(X, y)
    big = RandomForestClassifier(n_trees=20, seed=4).fit(X, y)
    acc_small = (small.predict(Xt) == yt).mean()
    acc_big = (big.predict(Xt) == yt).mean()
    assert acc_big >= acc_small - 0.05
