"""Unit-system sanity: the coherent-units promise holds."""

import pytest

from repro import units


def test_kohm_times_ff_is_ps():
    # 1 kOhm * 1 fF = 1e3 * 1e-15 s = 1 ps.
    assert units.KOHM * units.FF == pytest.approx(units.PS)


def test_fj_times_ghz_is_uw():
    # 1 fJ * 1 GHz = 1e-15 * 1e9 W = 1 uW.
    assert units.FJ * units.GHZ == pytest.approx(units.UW)


def test_derived_constants():
    assert units.NS == pytest.approx(1000.0 * units.PS)
    assert units.PF == pytest.approx(1000.0 * units.FF)
    assert units.OHM == pytest.approx(units.KOHM / 1000.0)
    assert units.MHZ == pytest.approx(units.GHZ / 1000.0)
    assert units.NM == pytest.approx(units.UM / 1000.0)
    assert units.MM == pytest.approx(1000.0 * units.UM)


def test_ohm_per_um_basic():
    # 0.25 ohm/sq at 0.07 um width -> 3.571 ohm/um = 0.003571 kOhm/um.
    r = units.ohm_per_um(0.25, 0.07)
    assert r == pytest.approx(0.0035714, rel=1e-4)


def test_ohm_per_um_scales_inversely_with_width():
    assert units.ohm_per_um(0.25, 0.14) == pytest.approx(
        units.ohm_per_um(0.25, 0.07) / 2.0)


def test_ohm_per_um_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        units.ohm_per_um(0.25, 0.0)
    with pytest.raises(ValueError):
        units.ohm_per_um(0.25, -1.0)
