"""ArtifactStore: content addressing, round-trips, corruption recovery."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core.stages import BuildParams, build_stage
from repro.bench import generate_design
from repro.io.artifacts import (ArtifactStore, content_key,
                                design_fingerprint, fingerprint,
                                technology_fingerprint)


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "artifacts")


def _build_key(design, tech, params=BuildParams()):
    return content_key("build",
                       design=design_fingerprint(design),
                       tech=technology_fingerprint(tech),
                       params=params)


# -- fingerprinting -----------------------------------------------------------


def test_fingerprint_is_stable_and_discriminating(tiny_spec, small_spec):
    assert fingerprint(tiny_spec) == fingerprint(tiny_spec)
    assert fingerprint(tiny_spec) != fingerprint(small_spec)


def test_fingerprint_rejects_unhashable_objects():
    with pytest.raises(TypeError):
        fingerprint(object())


def test_design_fingerprint_tracks_content(tiny_design, small_design):
    assert design_fingerprint(tiny_design) == design_fingerprint(tiny_design)
    assert design_fingerprint(tiny_design) != design_fingerprint(small_design)


def test_content_key_varies_with_tech_and_params(tiny_design, tech):
    base = _build_key(tiny_design, tech)
    assert base == _build_key(tiny_design, tech)
    # Different stage parameters -> different artifact.
    assert base != _build_key(tiny_design, tech,
                              BuildParams(max_stage_cap=11.0))
    # Different technology -> different artifact.
    slow_tech = dataclasses.replace(tech, max_slew=tech.max_slew * 2.0)
    assert base != _build_key(tiny_design, slow_tech)


# -- store round-trips --------------------------------------------------------


def test_build_artifact_round_trip(store, tiny_design, tech):
    physical = build_stage(tiny_design, tech, store=store)
    key = _build_key(tiny_design, tech)
    assert store.has(key)

    loaded = store.load(key)
    assert loaded is not None
    assert loaded is not physical  # always a fresh object graph
    assert len(loaded.routing.wires) == len(physical.routing.wires)
    assert loaded.refine.extraction.network.total_wire_cap == \
        pytest.approx(physical.refine.extraction.network.total_wire_cap)


def test_cache_hit_on_identical_spec(store, tiny_spec, tech):
    first = build_stage(generate_design(tiny_spec), tech, store=store)
    hits_before = store.hits
    second = build_stage(generate_design(tiny_spec), tech, store=store)
    assert store.hits == hits_before + 1
    assert second is not first
    assert second.routing.clock_wirelength() == \
        pytest.approx(first.routing.clock_wirelength())


def test_cache_miss_when_params_or_tech_change(store, tiny_design, tech):
    build_stage(tiny_design, tech, store=store)
    misses_before = store.misses
    build_stage(tiny_design, tech, BuildParams(max_stage_cap=9.0),
                store=store)
    slow_tech = dataclasses.replace(tech, max_slew=tech.max_slew * 2.0)
    build_stage(tiny_design, slow_tech, store=store)
    assert store.misses == misses_before + 2


def test_snapshots_are_mutation_safe(store, tiny_design, tech):
    """Mutating a cache hit must not poison later hits."""
    first = build_stage(tiny_design, tech, store=store)
    wl = first.routing.clock_wirelength()
    loaded = store.load(_build_key(tiny_design, tech))
    rule = loaded.tech.rules[-1]
    for wire in loaded.routing.clock_wires:
        wire.rule = rule  # vandalise the snapshot
    again = build_stage(tiny_design, tech, store=store)
    assert all(w.rule.is_default for w in again.routing.clock_wires)
    assert again.routing.clock_wirelength() == pytest.approx(wl)


# -- corruption ---------------------------------------------------------------


def test_corrupt_artifact_is_a_clean_rebuild(store, tiny_design, tech):
    physical = build_stage(tiny_design, tech, store=store)
    key = _build_key(tiny_design, tech)
    path = store.path_for(key)
    path.write_bytes(b"not a pickle at all")
    store._memory.clear()  # force the disk read

    assert store.load(key) is None          # corruption -> miss
    assert not path.exists()                # poisoned entry dropped

    rebuilt = build_stage(tiny_design, tech, store=store)  # clean rebuild
    assert rebuilt.routing.clock_wirelength() == \
        pytest.approx(physical.routing.clock_wirelength())
    assert store.has(key)                   # re-saved


def test_truncated_pickle_is_a_miss(store):
    store.save("k" * 64, {"payload": list(range(100))})
    path = store.path_for("k" * 64)
    path.write_bytes(pickle.dumps({"payload": 1})[:-5])
    store._memory.clear()
    assert store.load("k" * 64) is None


def test_missing_key_is_a_miss(store):
    assert store.load("0" * 64) is None
    assert not store.has("0" * 64)
    store.discard("0" * 64)  # no-op, no raise


def test_fetch_builds_once(store):
    calls = []

    def build():
        calls.append(1)
        return {"x": 3}

    assert store.fetch("a" * 64, build) == {"x": 3}
    assert store.fetch("a" * 64, build) == {"x": 3}
    assert len(calls) == 1


def test_memory_limit_evicts(tmp_path):
    store = ArtifactStore(tmp_path, memory_limit=2)
    for i in range(4):
        store.save(f"{i}" * 64, i)
    assert len(store._memory) == 2
    # Evicted entries still load from disk.
    assert store.load("0" * 64) == 0


# -- cache tier: LRU eviction, GC, pinning ------------------------------------


def _fill(store, n, payload_bytes=2000):
    for i in range(n):
        store.save(f"{i}" * 64, b"x" * payload_bytes)


def test_gc_evicts_least_recently_used_first(tmp_path):
    import os

    store = ArtifactStore(tmp_path, memory_limit=0)
    _fill(store, 4)
    # Age the files deterministically: key 0 oldest ... key 3 newest.
    for i in range(4):
        os.utime(store.path_for(f"{i}" * 64), (1000.0 + i, 1000.0 + i))
    # Touch key 0 by loading it: it becomes the most recent.
    assert store.load("0" * 64) is not None
    sizes = [size for _, _, size, _ in store.disk_entries()]
    budget = sum(sizes) - 1  # force exactly one eviction
    swept = store.gc(max_bytes=budget)
    assert swept["evicted"] == 1
    assert not store.has("1" * 64)  # the oldest untouched entry
    assert store.has("0" * 64)      # LRU refresh saved it


def test_gc_reports_only_without_budget(tmp_path):
    store = ArtifactStore(tmp_path)
    _fill(store, 3)
    swept = store.gc()  # no max_disk_bytes, no override
    assert swept["evicted"] == 0
    assert swept["kept_bytes"] == store.disk_bytes() > 0


def test_save_triggers_gc_under_configured_budget(tmp_path):
    store = ArtifactStore(tmp_path, max_disk_bytes=5000, memory_limit=0)
    _fill(store, 5)
    assert store.disk_bytes() <= 5000
    assert store.evictions > 0 and store.evicted_bytes > 0
    stats = store.stats()
    assert stats["evictions"] == store.evictions
    assert stats["disk_bytes"] == store.disk_bytes()


def test_pinned_keys_survive_any_pressure(tmp_path):
    store = ArtifactStore(tmp_path, memory_limit=0)
    _fill(store, 3)
    pinned = "1" * 64
    store.pin(pinned)
    swept = store.gc(max_bytes=0)
    assert store.has(pinned)            # survived a zero budget
    assert swept["evicted"] == 2        # everything unpinned went
    assert swept["kept_bytes"] > 0
    # Pins nest: one unpin of two leaves it protected.
    store.pin(pinned)
    store.unpin(pinned)
    assert store.pinned(pinned)
    store.gc(max_bytes=0)
    assert store.has(pinned)
    # The last unpin re-enables eviction.
    store.unpin(pinned)
    assert not store.pinned(pinned)
    store.gc(max_bytes=0)
    assert not store.has(pinned)


def test_memory_layer_is_lru_on_access(tmp_path):
    store = ArtifactStore(tmp_path, memory_limit=2)
    store.save("a" * 64, 1)
    store.save("b" * 64, 2)
    assert store.load("a" * 64) == 1    # refresh "a"
    store.save("c" * 64, 3)             # evicts "b", not "a"
    assert list(store._memory) == ["a" * 64, "c" * 64]


def test_read_only_root_degrades_to_memory(tmp_path):
    root = tmp_path / "ro"
    root.mkdir()
    root.chmod(0o500)
    store = ArtifactStore(root)
    try:
        store.save("b" * 64, 42)       # disk write fails silently
        assert store.load("b" * 64) == 42  # memory layer still serves
    finally:
        root.chmod(0o700)
