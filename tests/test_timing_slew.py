"""Slew propagation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.timing.slew import LN9, propagate_slew, wire_slew


def test_wire_slew_is_ln9_elmore():
    assert wire_slew(10.0) == pytest.approx(LN9 * 10.0)
    assert wire_slew(0.0) == 0.0


def test_wire_slew_rejects_negative():
    with pytest.raises(ValueError):
        wire_slew(-1.0)


def test_propagate_zero_wire_passes_driver_slew():
    assert propagate_slew(25.0, 0.0) == pytest.approx(25.0)


def test_propagate_rss_composition():
    got = propagate_slew(30.0, 10.0)
    assert got == pytest.approx(math.sqrt(30.0 ** 2 + (LN9 * 10.0) ** 2))


def test_propagate_rejects_negative_driver():
    with pytest.raises(ValueError):
        propagate_slew(-1.0, 5.0)


@given(s=st.floats(0.0, 200.0), e=st.floats(0.0, 100.0))
def test_propagated_slew_bounds(s, e):
    """RSS composition: result >= each component, <= their sum."""
    out = propagate_slew(s, e)
    assert out >= s - 1e-9
    assert out >= wire_slew(e) - 1e-9
    assert out <= s + wire_slew(e) + 1e-9


@given(s=st.floats(0.0, 200.0),
       e1=st.floats(0.0, 100.0), e2=st.floats(0.0, 100.0))
def test_propagated_slew_monotone(s, e1, e2):
    lo, hi = sorted((e1, e2))
    assert propagate_slew(s, lo) <= propagate_slew(s, hi) + 1e-9
