"""Router integration over a real design."""

import pytest

from repro.netlist.net import NetKind
from repro.route.router import Router
from repro.tech import rule_by_name


def test_every_tree_edge_routed(small_physical):
    tree, routing = small_physical.tree, small_physical.routing
    for _parent, child in tree.edges():
        assert child.node_id in routing.edge_wires


def test_edge_wires_cover_manhattan_distance(small_physical):
    tree, routing = small_physical.tree, small_physical.routing
    for parent, child in tree.edges():
        wires = routing.edge_wires[child.node_id]
        span = sum(w.segment.length for w in wires)
        manhattan = parent.location.manhattan_to(child.location)
        # Track snapping moves each leg by at most one pitch.
        assert span == pytest.approx(manhattan, abs=2.0)


def test_snake_assigned_to_edge_wires(small_physical):
    tree, routing = small_physical.tree, small_physical.routing
    for _parent, child in tree.edges():
        extra = sum(w.extra_length for w in routing.edge_wires[child.node_id])
        assert extra == pytest.approx(child.snake, abs=1e-9)


def test_wires_on_preferred_layers(small_physical, tech):
    for wire in small_physical.routing.wires:
        expected = tech.layer_for(wire.segment.horizontal,
                                  clock=wire.is_clock)
        assert wire.layer.name == expected.name
        assert wire.layer.direction == ("H" if wire.segment.horizontal else "V")


def test_clock_wires_have_full_activity(small_physical):
    for wire in small_physical.routing.clock_wires:
        assert wire.activity == 1.0
        assert wire.kind == NetKind.CLOCK


def test_signal_wires_present(small_physical, small_design):
    routing = small_physical.routing
    assert len(routing.signal_wires) >= len(small_design.signal_nets)


def test_wire_ids_unique(small_physical):
    ids = [w.wire_id for w in small_physical.routing.wires]
    assert len(ids) == len(set(ids))


def test_no_overflows_on_benchmarks(small_physical):
    assert small_physical.routing.tracks.overflows == 0


def test_assign_rule_round_trip(make_small_physical):
    phys = make_small_physical()
    routing = phys.routing
    wire = routing.clock_wires[0]
    routing.assign_rule(wire.wire_id, rule_by_name("W2S2"))
    assert routing.tracks.wire(wire.wire_id).rule.name.value == "W2S2"


def test_assign_rule_rejects_signal_wires(make_small_physical):
    phys = make_small_physical()
    routing = phys.routing
    sig = routing.signal_wires[0]
    with pytest.raises(ValueError):
        routing.assign_rule(sig.wire_id, rule_by_name("W2S2"))


def test_rule_histogram(make_small_physical):
    phys = make_small_physical()
    routing = phys.routing
    hist = routing.rule_histogram()
    assert sum(hist.values()) == len(routing.clock_wires)
    assert hist.get("W1S1", 0) == len(routing.clock_wires)
    routing.assign_rule(routing.clock_wires[0].wire_id, rule_by_name("W2S2"))
    hist = routing.rule_histogram()
    assert hist.get("W2S2") == 1


def test_ndr_track_cost(make_small_physical):
    phys = make_small_physical()
    routing = phys.routing
    assert routing.ndr_track_cost() == 0.0
    wire = max(routing.clock_wires, key=lambda w: w.segment.length)
    routing.assign_rule(wire.wire_id, rule_by_name("W2S2"))
    assert routing.ndr_track_cost() == pytest.approx(2 * wire.segment.length)


def test_clock_wirelength_positive(small_physical):
    assert small_physical.routing.clock_wirelength() > 0.0


def test_routing_is_deterministic(make_small_physical):
    a = make_small_physical()
    b = make_small_physical()
    sa = [(w.segment, w.track, w.layer.name) for w in a.routing.wires]
    sb = [(w.segment, w.track, w.layer.name) for w in b.routing.wires]
    assert sa == sb
