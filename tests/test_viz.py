"""SVG rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.tech import rule_by_name
from repro.viz import render_clock_svg, save_clock_svg
from repro.viz.svg import RULE_COLORS


def _parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def test_svg_is_valid_xml(small_physical):
    svg = render_clock_svg(small_physical.tree, small_physical.routing)
    root = _parse(svg)
    assert root.tag.endswith("svg")


def test_all_wires_drawn(small_physical):
    svg = render_clock_svg(small_physical.tree, small_physical.routing)
    root = _parse(svg)
    lines = [el for el in root.iter() if el.tag.endswith("line")]
    drawable = [w for w in small_physical.routing.clock_wires
                if w.segment.length > 0.0]
    assert len(lines) == len(drawable)


def test_sinks_and_buffers_drawn(small_physical):
    svg = render_clock_svg(small_physical.tree, small_physical.routing)
    root = _parse(svg)
    circles = [el for el in root.iter() if el.tag.endswith("circle")]
    assert len(circles) == len(small_physical.tree.sinks())
    rects = [el for el in root.iter() if el.tag.endswith("rect")]
    buffers = sum(1 for n in small_physical.tree if n.buffer is not None)
    assert len(rects) == buffers + 1  # +1 for the die outline


def test_rule_colors_used(make_small_physical):
    phys = make_small_physical()
    wire = max(phys.routing.clock_wires, key=lambda w: w.segment.length)
    phys.routing.assign_rule(wire.wire_id, rule_by_name("W4S2"))
    svg = render_clock_svg(phys.tree, phys.routing)
    assert RULE_COLORS["W4S2"] in svg
    assert RULE_COLORS["W1S1"] in svg


def test_shield_halo(make_small_physical):
    phys = make_small_physical()
    wire = max(phys.routing.clock_wires, key=lambda w: w.segment.length)
    base = render_clock_svg(phys.tree, phys.routing)
    phys.routing.assign_shield(wire.wire_id)
    shielded = render_clock_svg(phys.tree, phys.routing)
    assert shielded.count("<line") == base.count("<line") + 1


def test_title_and_save(small_physical, tmp_path):
    path = tmp_path / "clock.svg"
    save_clock_svg(small_physical.tree, small_physical.routing, path,
                   title="hello tree")
    text = path.read_text()
    assert "hello tree" in text
    _parse(text)


def test_coordinates_inside_canvas(small_physical):
    svg = render_clock_svg(small_physical.tree, small_physical.routing,
                           size=500.0)
    root = _parse(svg)
    width = float(root.get("width"))
    height = float(root.get("height"))
    for el in root.iter():
        if el.tag.endswith("line"):
            for attr in ("x1", "x2"):
                assert -1 <= float(el.get(attr)) <= width + 1
            for attr in ("y1", "y2"):
                assert -1 <= float(el.get(attr)) <= height + 1
