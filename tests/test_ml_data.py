"""Dataset utilities."""

import numpy as np
import pytest

from repro.ml.data import Standardizer, train_test_split


def test_split_sizes():
    X = np.arange(40).reshape(20, 2)
    y = np.arange(20)
    Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=0)
    assert len(Xte) == 5 and len(Xtr) == 15
    assert len(ytr) == 15 and len(yte) == 5


def test_split_is_partition():
    X = np.arange(30).reshape(15, 2)
    y = np.arange(15)
    Xtr, Xte, ytr, yte = train_test_split(X, y, seed=1)
    combined = sorted(list(ytr) + list(yte))
    assert combined == list(range(15))


def test_split_deterministic_by_seed():
    X = np.arange(30).reshape(15, 2)
    y = np.arange(15)
    _, _, a, _ = train_test_split(X, y, seed=2)
    _, _, b, _ = train_test_split(X, y, seed=2)
    _, _, c, _ = train_test_split(X, y, seed=3)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_split_validation():
    X = np.zeros((4, 1))
    y = np.zeros(4)
    with pytest.raises(ValueError):
        train_test_split(X, y, test_fraction=0.0)
    with pytest.raises(ValueError):
        train_test_split(X, y, test_fraction=1.0)
    with pytest.raises(ValueError):
        train_test_split(np.zeros((3, 1)), np.zeros(4))
    with pytest.raises(ValueError):
        train_test_split(np.zeros((1, 1)), np.zeros(1))  # no train left


def test_standardizer_zero_mean_unit_var():
    rng = np.random.default_rng(0)
    X = rng.normal(loc=5.0, scale=3.0, size=(200, 3))
    Z = Standardizer().fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)


def test_standardizer_constant_feature():
    X = np.column_stack([np.ones(10), np.arange(10.0)])
    Z = Standardizer().fit_transform(X)
    assert np.allclose(Z[:, 0], 0.0)


def test_standardizer_train_test_consistency():
    scaler = Standardizer()
    X_train = np.array([[0.0], [2.0]])
    scaler.fit(X_train)
    assert np.allclose(scaler.transform(np.array([[1.0]])), [[0.0]])


def test_standardizer_unfitted():
    with pytest.raises(RuntimeError):
        Standardizer().transform(np.zeros((1, 1)))
    with pytest.raises(ValueError):
        Standardizer().fit(np.zeros((0, 2)))
