"""Elmore vs D2M delay-model comparison."""

import pytest

from repro.timing.arrival import analyze_clock_timing


@pytest.fixture(scope="module")
def pair(small_physical, tech):
    network = small_physical.extraction.network
    return (analyze_clock_timing(network, tech),
            analyze_clock_timing(network, tech, delay_model="d2m"))


def test_unknown_model_rejected(small_physical, tech):
    with pytest.raises(ValueError):
        analyze_clock_timing(small_physical.extraction.network, tech,
                             delay_model="spice")


def test_d2m_no_more_pessimistic(pair):
    """D2M tightens Elmore: every arrival is <= the Elmore arrival."""
    elmore, d2m = pair
    e = {s.pin.full_name: s.arrival for s in elmore.sinks}
    for sink in d2m.sinks:
        assert sink.arrival <= e[sink.pin.full_name] + 1e-9


def test_d2m_latency_reduction_is_moderate(pair):
    """The correction is tens of percent, not orders of magnitude."""
    elmore, d2m = pair
    ratio = d2m.latency / elmore.latency
    assert 0.6 < ratio < 1.0


def test_same_sinks_both_models(pair):
    elmore, d2m = pair
    assert [s.pin.full_name for s in elmore.sinks] == \
        [s.pin.full_name for s in d2m.sinks]


def test_slews_identical_across_models(pair):
    """Slew uses the Elmore-based PERI composition in both modes."""
    elmore, d2m = pair
    for a, b in zip(elmore.sinks, d2m.sinks):
        assert a.slew == pytest.approx(b.slew)


def test_skew_comparable_across_models(pair):
    """Balanced trees stay balanced under either metric: the skews are
    the same order of magnitude (trim targets Elmore, so D2M skew may
    be slightly larger)."""
    elmore, d2m = pair
    assert d2m.skew < max(6.0 * elmore.skew, 0.05 * d2m.latency)
