"""The smart-NDR optimizer (integration-level)."""

import pytest

from repro.bench import generate_design
from repro.core.evaluation import analyze_all, targets_from_reference
from repro.core.flow import build_physical_design
from repro.core.optimizer import SmartNdrOptimizer, _sink_dd_by_wire
from repro.core.policies import Policy, apply_uniform_policy
from repro.core.targets import RobustnessTargets
from repro.cts.refine import refine_skew
from repro.tech import rule_by_name


@pytest.fixture(scope="module")
def reference_targets(small_spec, tech):
    phys = build_physical_design(generate_design(small_spec), tech)
    apply_uniform_policy(phys.routing, Policy.ALL_NDR)
    refined = refine_skew(phys.tree, phys.routing, tech)
    loose = RobustnessTargets(max_worst_delta=1e6, max_skew_3sigma=1e6,
                              max_slew=1e6)
    bundle = analyze_all(refined.extraction, tech,
                         phys.design.clock_freq, loose)
    return targets_from_reference(bundle, tech)


@pytest.fixture(scope="module")
def optimized(small_spec, reference_targets, tech):
    phys = build_physical_design(generate_design(small_spec), tech)
    optimizer = SmartNdrOptimizer(phys.tree, phys.routing, tech,
                                  reference_targets, phys.design.clock_freq)
    result = optimizer.run()
    return phys, result


def test_reaches_feasibility(optimized, reference_targets):
    _phys, result = optimized
    assert result.feasible
    assert result.analyses.violations(reference_targets) == {}


def test_selective_not_uniform(optimized):
    phys, result = optimized
    n = len(phys.routing.clock_wires)
    assert 0 < result.num_upgraded < n // 2


def test_upgrades_recorded_match_routing(optimized):
    phys, result = optimized
    for wire_id, rule_name in result.upgraded.items():
        assert phys.routing.tracks.wire(wire_id).rule.name.value == rule_name
    upgraded_ids = {w.wire_id for w in phys.routing.clock_wires
                    if not w.rule.is_default}
    assert upgraded_ids == set(result.upgraded)


def test_cheaper_than_all_ndr(optimized, small_spec, tech):
    from repro.power import analyze_power

    _phys, result = optimized
    smart_power = result.analyses.power.p_total

    ref = build_physical_design(generate_design(small_spec), tech)
    apply_uniform_policy(ref.routing, Policy.ALL_NDR)
    refined = refine_skew(ref.tree, ref.routing, tech)
    all_ndr_power = analyze_power(refined.extraction, tech,
                                  ref.design.clock_freq).p_total
    assert smart_power < all_ndr_power


def test_runtime_and_iterations_reported(optimized):
    _phys, result = optimized
    assert result.runtime > 0.0
    assert result.iterations >= 1


def test_already_feasible_means_no_upgrades(small_spec, tech):
    phys = build_physical_design(generate_design(small_spec), tech)
    loose = RobustnessTargets(max_worst_delta=1e6, max_skew_3sigma=1e6,
                              max_slew=1e6, max_em_util=1e6)
    result = SmartNdrOptimizer(phys.tree, phys.routing, tech, loose,
                               phys.design.clock_freq).run()
    assert result.feasible
    assert result.num_upgraded == 0
    assert result.iterations == 0


def test_validation():
    with pytest.raises(ValueError):
        SmartNdrOptimizer(None, None, None, None, 1.0, lambda_track=-1.0)
    with pytest.raises(ValueError):
        SmartNdrOptimizer(None, None, None, None, 1.0, max_iterations=0)


def test_widened_helper(small_spec, reference_targets, tech):
    phys = build_physical_design(generate_design(small_spec), tech)
    opt = SmartNdrOptimizer(phys.tree, phys.routing, tech,
                            reference_targets, 1.0)
    assert opt._widened(rule_by_name("W1S1")).name.value == "W2S1"
    assert opt._widened(rule_by_name("W1S2")).name.value == "W2S2"
    assert opt._widened(rule_by_name("W2S2")).name.value == "W4S2"
    assert opt._widened(rule_by_name("W4S2")).name.value == "W4S2"


def test_upgrades_respect_restricted_rule_set(small_spec, reference_targets,
                                              tech):
    import dataclasses

    restricted = dataclasses.replace(
        tech, rules=tuple(r for r in tech.rules
                          if r.name.value in ("W1S1", "W1S2")))
    phys = build_physical_design(generate_design(small_spec), restricted)
    opt = SmartNdrOptimizer(phys.tree, phys.routing, restricted,
                            reference_targets, 1.0)
    names = {r.name.value for r in opt._upgrades(rule_by_name("W1S1"))}
    assert names == {"W1S2"}
    # No wider rule available: widening is a no-op.
    assert opt._widened(rule_by_name("W1S1")).name.value == "W1S1"


def test_sink_dd_decomposition_sums_to_worst(small_physical):
    """Per-wire contributions reassemble the crosstalk report's number."""
    from repro.timing.crosstalk import analyze_crosstalk

    ext = small_physical.extraction
    report = analyze_crosstalk(ext.network, ext.wires)
    worst_sink = max(report.sinks, key=lambda s: s.worst)
    contributions, cc_through = _sink_dd_by_wire(
        ext, worst_sink.pin.full_name)
    assert sum(contributions.values()) == pytest.approx(worst_sink.worst,
                                                        rel=1e-9)
    # cc_through only exists for wires with coupling upstream-or-local.
    assert all(v >= 0 for v in cc_through.values())


def test_sink_dd_unknown_pin(small_physical):
    with pytest.raises(KeyError):
        _sink_dd_by_wire(small_physical.extraction, "ghost/CK")
