"""CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tree import DecisionTreeClassifier


def _axis_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 3))
    y = (X[:, 1] > 0.2).astype(int)
    return X, y


def test_fits_axis_aligned_split():
    X, y = _axis_separable()
    clf = DecisionTreeClassifier(max_depth=3, min_samples_leaf=2).fit(X, y)
    assert (clf.predict(X) == y).mean() > 0.98


def test_feature_importances_identify_the_feature():
    X, y = _axis_separable()
    clf = DecisionTreeClassifier(max_depth=3, min_samples_leaf=2).fit(X, y)
    assert clf.feature_importances_.argmax() == 1
    assert clf.feature_importances_.sum() == pytest.approx(1.0)


def test_pure_labels_yield_stump():
    X = np.zeros((20, 2))
    y = np.ones(20, dtype=int)
    clf = DecisionTreeClassifier().fit(X, y)
    assert clf.depth() == 0
    assert (clf.predict(X) == 1).all()


def test_max_depth_respected():
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(300, 4))
    y = rng.integers(0, 2, size=300)
    clf = DecisionTreeClassifier(max_depth=3, min_samples_leaf=1).fit(X, y)
    assert clf.depth() <= 3


def test_min_samples_leaf_limits_growth():
    X, y = _axis_separable(60)
    deep = DecisionTreeClassifier(max_depth=10, min_samples_leaf=1).fit(X, y)
    shallow = DecisionTreeClassifier(max_depth=10, min_samples_leaf=25).fit(X, y)
    assert shallow.depth() <= deep.depth()


def test_multiclass():
    rng = np.random.default_rng(2)
    X = rng.uniform(size=(300, 1))
    y = np.digitize(X[:, 0], [0.33, 0.66])
    clf = DecisionTreeClassifier(max_depth=4, min_samples_leaf=3).fit(X, y)
    assert (clf.predict(X) == y).mean() > 0.95
    proba = clf.predict_proba(X)
    assert proba.shape == (300, 3)
    assert np.allclose(proba.sum(axis=1), 1.0)


def test_unfitted_raises():
    clf = DecisionTreeClassifier()
    with pytest.raises(RuntimeError):
        clf.predict(np.zeros((1, 2)))


def test_input_validation():
    with pytest.raises(ValueError):
        DecisionTreeClassifier(max_depth=0)
    with pytest.raises(ValueError):
        DecisionTreeClassifier(min_samples_leaf=0)
    clf = DecisionTreeClassifier()
    with pytest.raises(ValueError):
        clf.fit(np.zeros((3, 2)), np.zeros(4, dtype=int))
    with pytest.raises(ValueError):
        clf.fit(np.zeros((0, 2)), np.zeros(0, dtype=int))
    clf.fit(np.zeros((4, 2)), np.array([0, 1, 0, 1]))
    with pytest.raises(ValueError):
        clf.predict(np.zeros((2, 3)))  # wrong feature count


def test_constant_features_fall_back_to_majority():
    X = np.ones((30, 2))
    y = np.array([0] * 20 + [1] * 10)
    clf = DecisionTreeClassifier().fit(X, y)
    assert (clf.predict(X) == 0).all()


@settings(max_examples=25, deadline=None)
@given(st.integers(10, 60), st.integers(0, 1000))
def test_probabilities_valid(n, seed):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 2))
    y = rng.integers(0, 2, size=n)
    clf = DecisionTreeClassifier(max_depth=4, min_samples_leaf=2).fit(X, y)
    proba = clf.predict_proba(X)
    assert (proba >= 0).all() and (proba <= 1).all()
    assert np.allclose(proba.sum(axis=1), 1.0)
