"""Model persistence round trips."""

import json

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.serialize import (forest_from_dict, forest_to_dict,
                                tree_from_dict, tree_to_dict)
from repro.ml.tree import DecisionTreeClassifier


def _data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 4))
    y = ((X[:, 0] + X[:, 2]) > 0).astype(int)
    return X, y


def test_tree_round_trip_exact():
    X, y = _data()
    tree = DecisionTreeClassifier(max_depth=5, min_samples_leaf=3).fit(X, y)
    rebuilt = tree_from_dict(tree_to_dict(tree))
    assert np.array_equal(tree.predict(X), rebuilt.predict(X))
    assert np.allclose(tree.predict_proba(X), rebuilt.predict_proba(X))
    assert np.allclose(tree.feature_importances_,
                       rebuilt.feature_importances_)


def test_tree_dict_is_json_safe():
    X, y = _data(50)
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    text = json.dumps(tree_to_dict(tree))
    rebuilt = tree_from_dict(json.loads(text))
    assert np.array_equal(tree.predict(X), rebuilt.predict(X))


def test_unfitted_tree_rejected():
    with pytest.raises(ValueError):
        tree_to_dict(DecisionTreeClassifier())


def test_forest_round_trip_exact():
    X, y = _data()
    forest = RandomForestClassifier(n_trees=7, seed=3).fit(X, y)
    rebuilt = forest_from_dict(forest_to_dict(forest))
    assert np.allclose(forest.predict_proba(X), rebuilt.predict_proba(X))
    assert np.allclose(forest.feature_importances_,
                       rebuilt.feature_importances_)


def test_forest_schema_checked():
    X, y = _data(60)
    forest = RandomForestClassifier(n_trees=2, seed=1).fit(X, y)
    payload = forest_to_dict(forest)
    payload["schema"] = 99
    with pytest.raises(ValueError):
        forest_from_dict(payload)


def test_unfitted_forest_rejected():
    with pytest.raises(ValueError):
        forest_to_dict(RandomForestClassifier())


def test_guide_save_load(tmp_path, tech):
    from repro.bench import DesignSpec, generate_design
    from repro.core.mlguide import NdrClassifierGuide
    from repro.core.flow import build_physical_design

    spec = DesignSpec("mlsave", n_sinks=24, die_edge=160.0, seed=41)
    guide = NdrClassifierGuide(n_trees=5, seed=2)
    guide.fit_designs([generate_design(spec)], tech)
    path = tmp_path / "guide.json"
    guide.save(path)
    loaded = NdrClassifierGuide.load(path)
    assert loaded.stats.n_samples == guide.stats.n_samples
    phys = build_physical_design(generate_design(spec), tech)
    a = guide.predict_rules(phys.tree, phys.routing, tech, 1.0)
    b = loaded.predict_rules(phys.tree, phys.routing, tech, 1.0)
    assert a == b


def test_guide_unfitted_save_rejected(tmp_path):
    from repro.core.mlguide import NdrClassifierGuide

    with pytest.raises(RuntimeError):
        NdrClassifierGuide().save(tmp_path / "x.json")


def test_guide_schema_check(tmp_path):
    from repro.core.mlguide import NdrClassifierGuide

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 7}))
    with pytest.raises(ValueError):
        NdrClassifierGuide.load(path)
