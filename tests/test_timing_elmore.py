"""Elmore/D2M primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.timing.elmore import d2m_correction, stage_moments, wire_elmore


def test_wire_elmore_closed_form():
    # r*l*(c*l/2 + cl) = 0.001*100*(0.2*50 + 3) = 1.3
    assert wire_elmore(0.001, 0.2, 100.0, 3.0) == pytest.approx(1.3)


def test_wire_elmore_zero_length():
    assert wire_elmore(0.001, 0.2, 0.0, 5.0) == 0.0


def test_wire_elmore_negative_length_rejected():
    with pytest.raises(ValueError):
        wire_elmore(0.001, 0.2, -1.0, 5.0)


@given(l=st.floats(0.0, 1000.0), cl=st.floats(0.0, 100.0))
def test_wire_elmore_monotone_in_length(l, cl):
    assert wire_elmore(0.001, 0.2, l + 1.0, cl) > wire_elmore(0.001, 0.2, l, cl)


def test_d2m_below_elmore():
    """D2M tightens Elmore's pessimism: d2m <= m1 for physical moments."""
    m1 = 10.0
    m2 = 120.0  # > m1^2/e so sqrt(m2) > m1*ln2 region
    assert d2m_correction(m1, m2) <= m1


def test_d2m_degenerate_falls_back():
    assert d2m_correction(0.0, 0.0) == 0.0
    assert d2m_correction(5.0, 0.0) == pytest.approx(5.0 * math.log(2.0))


def test_stage_moments_on_real_stage(small_physical):
    network = small_physical.extraction.network
    stage = network.stages[network.root_stage]
    sink = stage.sinks[0]
    m1, m2 = stage_moments(stage, sink.node_idx, stage.driver.r_drive)
    assert m1 > 0.0 and m2 > 0.0
    # m1 equals driver term + wire Elmore computed independently.
    expected = (stage.driver.r_drive * stage.total_cap
                + stage.elmore_to(sink.node_idx))
    assert m1 == pytest.approx(expected, rel=1e-9)
    # D2M from these moments is positive and below m1.
    assert 0.0 < d2m_correction(m1, m2) <= m1 * 1.0000001
