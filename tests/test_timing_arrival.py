"""Static clock timing over the stage network."""

import pytest

from repro.timing.arrival import analyze_clock_timing
from repro.timing.skew import global_skew, latency_range, local_skew


@pytest.fixture(scope="module")
def timing(small_physical, tech):
    return analyze_clock_timing(small_physical.extraction.network, tech)


def test_every_sink_timed(timing, small_physical):
    assert len(timing.sinks) == len(small_physical.tree.sinks())


def test_arrivals_positive_and_plausible(timing):
    for sink in timing.sinks:
        assert sink.arrival > 0.0
        assert sink.arrival < 5000.0  # well under a few ns for this scale


def test_skew_is_max_minus_min(timing):
    arr = timing.arrivals
    assert timing.skew == pytest.approx(max(arr) - min(arr))
    assert global_skew(timing) == timing.skew


def test_latency_range(timing):
    lo, hi = latency_range(timing)
    assert lo <= hi == timing.latency


def test_refined_tree_has_tight_skew(timing):
    assert timing.skew <= max(1.0, 0.02 * timing.latency)


def test_slews_within_limit(timing, tech):
    assert timing.worst_slew <= tech.max_slew
    assert timing.slew_violations == 0
    for sink in timing.sinks:
        assert sink.slew > 0.0


def test_stage_delays_recorded(timing, small_physical):
    network = small_physical.extraction.network
    assert len(timing.stage_delays) == len(network.stages)
    for delay, load, stage in zip(timing.stage_delays, timing.stage_loads,
                                  network.stages):
        assert delay == pytest.approx(stage.driver.delay(load), rel=1e-9)
        assert load == pytest.approx(stage.total_cap, rel=1e-9)


def test_arrival_of_lookup(timing):
    name = timing.sinks[0].pin.full_name
    assert timing.arrival_of(name) == timing.sinks[0].arrival
    with pytest.raises(KeyError):
        timing.arrival_of("nope/CK")


def test_arrival_decomposes_into_stages(timing, small_physical):
    """Sink arrival equals the sum of stage driver delays + wire Elmore
    along its stage chain."""
    network = small_physical.extraction.network

    # Build parent pointers over stages.
    parent = {}
    via_node = {}
    for idx, stage in enumerate(network.stages):
        for sink in stage.sinks:
            if sink.next_stage_tree_id is not None:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                parent[child] = idx
                via_node[child] = sink.node_idx

    sink = timing.sinks[0]
    # Find its stage.
    stage_idx = next(i for i, s in network.flop_sinks()
                     if s.sink_pin.full_name == sink.pin.full_name)
    node_idx = next(s.node_idx for s in network.stages[stage_idx].sinks
                    if s.is_flop and s.sink_pin.full_name == sink.pin.full_name)

    total = 0.0
    idx, node = stage_idx, node_idx
    while True:
        stage = network.stages[idx]
        total += stage.driver.delay(stage.total_cap) + stage.elmore_to(node)
        if idx not in parent:
            break
        idx, node = parent[idx], via_node[idx]
    assert sink.arrival == pytest.approx(total, rel=1e-9)


def test_local_skew_bounded_by_global(timing):
    assert local_skew(timing, radius=50.0) <= timing.skew + 1e-12
    with pytest.raises(ValueError):
        local_skew(timing, radius=0.0)
