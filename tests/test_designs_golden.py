"""Golden content hashes: every registered design regenerates bit-identically.

The ``ckt*`` values were captured from the pre-corpus generator
(``repro.bench.designs``), so they prove the refactor preserved every
array bit-for-bit; the ``soc_*``/``imp_*`` values pin the new families
against accidental drift.  The hash covers the *full* serialized design
(``design_to_dict``, name included) — it guards geometry, not cache
identity; cache-key naming invariance is tested separately below.
"""

import dataclasses

import pytest

from repro.designs import generate_design, spec_by_name
from repro.io import fingerprint
from repro.io.design_json import design_to_dict
from repro.runner import design_ref_fingerprint

GOLDEN = {
    "ckt64": "320be46a576fa46fef20435bed9d80708a31fe45e72e60f40ef6fed7ce5360f7",
    "ckt128": "604fc5d2657a38647da666ca86cb2f26f58982524d2bf42030e163fad3f759be",
    "ckt256": "b2d55bc7c42f772addfa1874f6eaebeb907c230b5ef45356225812e46b9508bf",
    "ckt512": "6629234da7fc021d553e14b1118bd67957695100a990a115e3da9969f6f4e6b5",
    "ckt1024": "a3c9226867b1a8e6064eb88ecefe1f63f42cf09a18fe22c1a0c388c59df75970",
    "ckt2048": "783ae323ab402f4d63120a48be7020a85fff1b5bce3aabdbee80ef7af189f63f",
    "ckt256m": "7b76e48c5c9d96cd124bd45022e05d5cbd2e178cd9876f97534dfdb53d4e3681",
    "ckt512m": "d1b8d3c04448ddaae24a7c62603441580bbbb600fc13547c66b50d21c27a82ac",
    "soc_h64": "f43dcbf4d490d119222b7f7d9895a3f778661d2cdfde508cec01bf3e1dcf6e84",
    "soc_h256": "2edde5899be95e14772e9b82e3d6a882365d5bec0a799d7325f0bde925fa79b7",
    "soc_h256m": "e57f23167d5c0183dbff70ab4dd15b003b8236333a304d9b88d610bbbf266744",
    "soc_h1024": "7cac47b3761155adebfd4272d704351ba60ead5bac071202f0726966f53c830f",
    "soc_g128": "b50d07c2e175461ad366945ffdbf431dfbd533282d2acc5da786c210c865dbf8",
    "soc_g256": "423f29be631a3c8cacf46df9f0fb5baea05a5063814f508699ecaf80d724b8e7",
    "imp_uart": "380f75914805297c4bf25591df3ffb35f9b1e10d3610ca5c4a55f5166e138086",
    "imp_noc": "2d6a61c7bed1ef1ab7531a460cc66e7c0c620a69c15a1e0136cf2daed07846fd",
}

GOLDEN_SLOW = {
    "ckt4096": "63fb5d34136230c85b3450013cf569a77475764149501beaafdd89c5df1d8bbd",
    "ckt16384": "ebd5acb096a928c0ccd71a379a688537f791a8276919f1fecc2bbe8a66687ef8",
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_design_regenerates_bit_identically(name):
    design = generate_design(spec_by_name(name))
    assert fingerprint(design_to_dict(design)) == GOLDEN[name]


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(GOLDEN_SLOW))
def test_scaling_rungs_regenerate_bit_identically(name):
    design = generate_design(spec_by_name(name))
    assert fingerprint(design_to_dict(design)) == GOLDEN_SLOW[name]


def test_every_registered_design_is_pinned():
    from repro.designs import spec_names
    assert set(spec_names()) == set(GOLDEN) | set(GOLDEN_SLOW)


def test_rename_changes_neither_geometry_nor_cache_key():
    """The seed-salt decoupling: a display rename is cache-invisible."""
    from repro.io import design_fingerprint

    spec = spec_by_name("ckt64")
    renamed = dataclasses.replace(spec, name="renamed_ckt64")
    original = design_to_dict(generate_design(spec))
    regenerated = design_to_dict(generate_design(renamed))
    assert regenerated["name"] == "renamed_ckt64"
    original.pop("name")
    regenerated.pop("name")
    assert regenerated == original  # geometry is unchanged
    # Both cache-identity layers ignore the name: the spec-content
    # fingerprint the runner keys cells by, and the built-design
    # fingerprint the build stage keys by.
    from repro.designs import spec_fingerprint
    assert spec_fingerprint(renamed) == spec_fingerprint(spec)
    assert (design_fingerprint(generate_design(renamed))
            == design_fingerprint(generate_design(spec)))


def test_design_ref_fingerprint_is_spec_content_hash():
    from repro.designs import spec_fingerprint
    assert design_ref_fingerprint("ckt64") == \
        spec_fingerprint(spec_by_name("ckt64"))
    assert design_ref_fingerprint("ckt64") != design_ref_fingerprint("ckt128")
