"""Tables and experiment records."""

import pytest

from repro.reporting import ExperimentRecord, Series, Table, format_table


def test_table_rendering():
    t = Table("Demo", ["design", "power"])
    t.add_row("ckt64", 966.4)
    t.add_row("ckt256", 5542.0)
    text = t.render()
    assert "Demo" in text
    assert "ckt64" in text and "966.4" in text
    assert "5,542" in text
    lines = text.splitlines()
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # box is rectangular


def test_table_row_arity_checked():
    t = Table("Demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add_row(1)


def test_float_formatting():
    t = Table("F", ["v"])
    t.add_row(0.0)
    t.add_row(3.14159)
    t.add_row(42.123)
    t.add_row(123456.0)
    cells = [row[0] for row in t.rows]
    assert cells == ["0", "3.14", "42.1", "123,456"]


def test_format_table_direct():
    text = format_table("T", ["x"], [["1"], ["2"]])
    assert text.count("\n") == 6  # title + 4 box lines + 2 rows - 1


def test_series():
    s = Series("smart")
    s.add(1, 10.0)
    s.add(2, 20.0)
    assert len(s) == 2
    assert s.as_rows() == [(1.0, 10.0), (2.0, 20.0)]


def test_experiment_record():
    rec = ExperimentRecord("fig3", "tradeoff", "fraction", "power")
    rec.series_named("smart").add(0.1, 100.0)
    rec.series_named("smart").add(0.2, 110.0)
    rec.series_named("all-ndr").add(0.1, 130.0)
    text = rec.render()
    assert "fig3" in text and "smart" in text and "all-ndr" in text
    assert rec.series_named("smart") is rec.series["smart"]


def test_record_csv(tmp_path):
    rec = ExperimentRecord("figX", "demo", "x", "y")
    rec.series_named("a").add(1, 10.0)
    rec.series_named("b").add(2, 20.5)
    csv = rec.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "series,x,y"
    assert "a,1,10" in lines and "b,2,20.5" in lines
    path = tmp_path / "rec.csv"
    rec.save_csv(path)
    assert path.read_text() == csv


def test_table_csv(tmp_path):
    t = Table("T", ["design", "power"])
    t.add_row("ckt64", 5542.0)
    csv = t.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == "design,power"
    # Thousands separators are stripped for machine readability.
    assert lines[1] == "ckt64,5542"
    path = tmp_path / "t.csv"
    t.save_csv(path)
    assert path.read_text() == csv


def test_table_csv_escapes_header():
    t = Table("T", ['a "quoted", name', "b"])
    t.add_row(1, 2)
    header = t.to_csv().splitlines()[0]
    assert header.startswith('"a ""quoted"", name"')
