"""Delay-trim cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.cts.delaytrim import TrimChoice, cheapest_trim, snake_length_for_delay


def test_zero_gap_is_free():
    trim = cheapest_trim(0.0, 0.5, 50.0, 0.001, 0.2)
    assert trim.added_cap == 0.0
    assert trim.pad_cap == 0.0 and trim.snake_len == 0.0


def test_snake_length_delivers_delay():
    r, c, load = 0.001, 0.2, 100.0
    for gap in (1.0, 5.0, 20.0):
        length = snake_length_for_delay(gap, load, r, c)
        delivered = r * length * (load + c * length / 2.0)
        assert delivered == pytest.approx(gap, rel=1e-9)


def test_pad_wins_for_small_driver():
    # High-resistance driver: pad is cheap (gap/r small).
    trim = cheapest_trim(5.0, r_drive=2.2, stage_load=10.0,
                         r_per_um=0.001, c_per_um=0.21)
    assert trim.pad_cap > 0.0 and trim.snake_len == 0.0


def test_snake_wins_for_big_driver_big_load():
    # Low-resistance driver on a heavy stage: snake is cheap.
    trim = cheapest_trim(10.0, r_drive=0.1375, stage_load=250.0,
                         r_per_um=0.000857, c_per_um=0.21)
    assert trim.snake_len > 0.0 and trim.pad_cap == 0.0


def test_added_cap_matches_choice():
    trim = cheapest_trim(5.0, 0.5, 50.0, 0.001, 0.2)
    if trim.pad_cap > 0.0:
        assert trim.added_cap == pytest.approx(trim.pad_cap)
    else:
        assert trim.added_cap == pytest.approx(trim.snake_len * 0.2)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        cheapest_trim(1.0, 0.0, 10.0, 0.001, 0.2)
    with pytest.raises(ValueError):
        snake_length_for_delay(1.0, 10.0, 0.0, 0.2)


@given(gap=st.floats(0.01, 100.0), r_drive=st.floats(0.05, 5.0),
       load=st.floats(1.0, 500.0))
def test_choice_is_never_worse_than_either_option(gap, r_drive, load):
    r_um, c_um = 0.000857, 0.21
    trim = cheapest_trim(gap, r_drive, load, r_um, c_um)
    pad_cost = gap / r_drive
    snake_cost = snake_length_for_delay(gap, load, r_um, c_um) * c_um
    assert trim.added_cap <= min(pad_cost, snake_cost) * (1 + 1e-9)
    assert trim.added_cap > 0.0
