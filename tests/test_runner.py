"""FlowRunner / RunMatrix: expansion, dedupe, parallel == serial."""

from __future__ import annotations

import os

import pytest

from repro.core import Policy
from repro.core.flow import run_flow
from repro.core.stages import PolicyParams
from repro.runner import (FlowRunner, JobSpec, RunMatrix,
                          design_ref_fingerprint, matrix_of, resolve_design)

POLICIES = (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART)


@pytest.fixture(scope="module")
def tiny_ref(tmp_path_factory, tiny_design) -> str:
    """The tiny design as a JSON design reference."""
    from repro.io import save_design

    path = tmp_path_factory.mktemp("designs") / "tiny.json"
    save_design(tiny_design, path)
    return str(path)


def _runner(tmp_path, **kwargs) -> FlowRunner:
    kwargs.setdefault("store", str(tmp_path / "artifacts"))
    return FlowRunner(**kwargs)


# -- matrix declarations ------------------------------------------------------


def test_matrix_expansion_is_design_major():
    matrix = RunMatrix(designs=("a", "b"), policies=(Policy.SMART,
                                                     Policy.NO_NDR),
                       slacks=(0.15, 0.4))
    jobs = matrix.jobs()
    assert len(matrix) == len(jobs) == 8
    assert [j.design for j in jobs[:4]] == ["a"] * 4
    assert jobs[0] == JobSpec(design="a", policy=Policy.SMART, slack=0.15)
    assert jobs[1].slack == 0.4
    assert "8 jobs" in matrix.describe()


def test_matrix_rejects_empty_and_accepts_extra_cells():
    with pytest.raises(ValueError):
        RunMatrix(designs=(), policies=())
    with pytest.raises(ValueError):
        RunMatrix(designs=("a",), policies=())
    extra = JobSpec(design="a", policy=Policy.RANDOM, random_seed=7)
    matrix = RunMatrix(designs=(), policies=(), extra_cells=(extra,))
    assert list(matrix) == [extra]


def test_matrix_of_accepts_scalars():
    matrix = matrix_of("a", Policy.SMART, 0.2)
    assert list(matrix) == [JobSpec(design="a", policy=Policy.SMART,
                                    slack=0.2)]


def test_reference_job_pegs_to_all_ndr():
    cell = JobSpec(design="a", policy=Policy.SMART, slack=0.15)
    ref = cell.reference_job()
    assert ref == JobSpec(design="a", policy=Policy.ALL_NDR, slack=None)
    assert ref.reference_job() is None  # a reference has no reference


def test_policy_params_normalisation_drops_unread_knobs():
    smart = JobSpec(design="a", policy=Policy.SMART, random_seed=9)
    assert smart.policy_params() == PolicyParams(policy=Policy.SMART)
    rand = JobSpec(design="a", policy=Policy.RANDOM, random_seed=9)
    assert rand.policy_params().random_seed == 9
    # Uniform policies hash identically no matter the knobs.
    a = JobSpec(design="a", policy=Policy.ALL_NDR, random_seed=1)
    b = JobSpec(design="a", policy=Policy.ALL_NDR, random_seed=2)
    assert a.policy_params() == b.policy_params()


def test_design_ref_fingerprint_tracks_file_content(tiny_ref, tmp_path):
    from pathlib import Path

    assert design_ref_fingerprint(tiny_ref) == \
        design_ref_fingerprint(tiny_ref)
    copy = tmp_path / "edited.json"
    copy.write_text(Path(tiny_ref).read_text().replace("tiny", "tinier"))
    assert design_ref_fingerprint(str(copy)) != \
        design_ref_fingerprint(tiny_ref)
    # Benchmark names fingerprint their spec.
    assert design_ref_fingerprint("ckt64") == design_ref_fingerprint("ckt64")
    assert design_ref_fingerprint("ckt64") != design_ref_fingerprint("ckt128")


def test_resolve_design_roundtrip(tiny_ref, tiny_design):
    design = resolve_design(tiny_ref)
    assert design.name == tiny_design.name
    assert len(design.clock_sinks) == len(tiny_design.clock_sinks)


# -- determinism --------------------------------------------------------------


def test_run_flow_is_bitwise_deterministic(tiny_design):
    """Two invocations with the same inputs agree to the last bit."""
    first = run_flow(tiny_design, policy=Policy.SMART)
    second = run_flow(tiny_design, policy=Policy.SMART)
    assert first.summary() == second.summary()
    assert first.rule_histogram == second.rule_histogram


def test_worker_process_matches_in_process(tiny_ref, tmp_path):
    """A cell run in a pool worker equals the same cell run in-process."""
    jobs = [JobSpec(design=tiny_ref, policy=p) for p in POLICIES]
    serial = _runner(tmp_path / "a").run(jobs)
    parallel = _runner(tmp_path / "b").run(jobs, jobs=2)
    for s, p in zip(serial, parallel):
        assert s.summary == p.summary  # bitwise: exact float equality
        assert s.rule_histogram == p.rule_histogram
        assert s.feasible == p.feasible


# -- caching and dedupe -------------------------------------------------------


def test_reference_computed_once_per_design(tiny_ref, tmp_path):
    runner = _runner(tmp_path)
    matrix = matrix_of(tiny_ref, Policy.SMART, (0.6, 0.15))
    runner.run(matrix)
    assert list(runner._ref_metrics) == [tiny_ref]
    # Both cells pegged to the same reference; looser budget never
    # needs more upgrades than the tighter one.
    targets_loose = runner.targets_for(tiny_ref, slack=0.6)
    targets_tight = runner.targets_for(tiny_ref, slack=0.15)
    assert targets_loose.max_worst_delta > targets_tight.max_worst_delta


def test_all_ndr_cell_rewraps_cached_reference(tiny_ref, tmp_path):
    """A pegged ALL-NDR cell reuses the reference flow, not a re-run."""
    runner = _runner(tmp_path)
    result = runner.run([JobSpec(design=tiny_ref,
                                 policy=Policy.ALL_NDR)])[0]
    assert result.cached  # cold store, yet served from the reference
    direct = run_flow(resolve_design(tiny_ref), policy=Policy.ALL_NDR,
                      targets=runner.targets_for(tiny_ref))
    assert result.summary == direct.summary()


def test_warm_rerun_is_fully_cached(tiny_ref, tmp_path):
    runner = _runner(tmp_path)
    jobs = [JobSpec(design=tiny_ref, policy=p) for p in POLICIES]
    cold = runner.run(jobs)
    warm = FlowRunner(store=str(tmp_path / "artifacts")).run(jobs)
    assert all(r.cached for r in warm)
    assert [r.summary for r in warm] == [r.summary for r in cold]


def test_duplicate_cells_fan_out(tiny_ref, tmp_path):
    runner = _runner(tmp_path)
    job = JobSpec(design=tiny_ref, policy=Policy.SMART)
    results = runner.run([job, job], jobs=2)
    assert len(results) == 2
    assert results[0].summary == results[1].summary


def test_store_disabled_still_runs(tiny_ref):
    runner = FlowRunner(store=False)
    assert runner.store is None
    result = runner.run_job(JobSpec(design=tiny_ref, policy=Policy.SMART))
    assert result.feasible and not result.cached


# -- streamed phases and verification -----------------------------------------


def test_phases_and_diagnostics_stream_back(tiny_ref, tmp_path):
    runner = _runner(tmp_path, verify=True)
    jobs = [JobSpec(design=tiny_ref, policy=p) for p in POLICIES]
    results = runner.run(jobs, jobs=2)
    smart = next(r for r in results if r.job.policy == Policy.SMART)
    # The build itself was a store hit (phase 1 built it for the
    # reference job), so the streamed phases start at the policy stage.
    assert "flow.policy" in smart.phases
    assert smart.phases["flow.policy"]["seconds"] >= 0.0
    for r in results:
        assert isinstance(r.diagnostics, list)  # verifier ran, no ERRORs


def test_pool_initializer_forwards_verify_env(tech, monkeypatch):
    from repro.runner import runner as runner_mod

    monkeypatch.delenv("REPRO_VERIFY_FLOWS", raising=False)
    previous_backend = os.environ.get("REPRO_ENGINE_BACKEND")
    runner_mod._pool_init(tech, None, True, None, False, "numpy-sparse")
    assert os.environ.get("REPRO_VERIFY_FLOWS") == "1"
    # The captured backend selection is replayed into the worker, so
    # forked workers agree with the parent even if the parent's env
    # changes between fork and job execution.
    assert os.environ.get("REPRO_ENGINE_BACKEND") == "numpy-sparse"
    runner_mod._pool_init(tech, None, False, None, False, "numpy-dense")
    assert "REPRO_VERIFY_FLOWS" not in os.environ
    assert os.environ.get("REPRO_ENGINE_BACKEND") == "numpy-dense"
    if previous_backend is None:
        del os.environ["REPRO_ENGINE_BACKEND"]
    else:
        os.environ["REPRO_ENGINE_BACKEND"] = previous_backend
    monkeypatch.setenv("REPRO_VERIFY_FLOWS", "1")  # restore for the suite
