"""Tests for the unit-hygiene linter shim (tools/lint_units.py).

The implementation lives in :mod:`repro.analysis.rules_units`; these
tests exercise the standalone entry point CI calls, including both the
legacy ``# lint-units: ok`` marker and the shared ``# static: ok[U00x]``
suppression syntax.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import lint_units  # noqa: E402


def _lint_source(tmp_path: Path, source: str, name: str = "sample.py"):
    path = tmp_path / name
    path.write_text(source)
    return lint_units.lint_file(path)


def test_u001_flags_float_literal_equality(tmp_path):
    findings = _lint_source(tmp_path, "x = 1.5\nif x == 0.0:\n    pass\n")
    assert [f.rule for f in findings] == ["U001"]
    assert findings[0].line == 2


def test_u001_flags_not_equal_and_negative_literals(tmp_path):
    findings = _lint_source(tmp_path, "ok = value != -2.5\n")
    assert [f.rule for f in findings] == ["U001"]


def test_u001_ignores_ordering_comparisons(tmp_path):
    findings = _lint_source(
        tmp_path, "if x <= 0.0 or y > 1.5:\n    pass\n")
    assert findings == []


def test_u001_ignores_integer_equality(tmp_path):
    assert _lint_source(tmp_path, "if n == 0:\n    pass\n") == []


def test_u002_flags_conversion_constants(tmp_path):
    findings = _lint_source(
        tmp_path, "period = 1000.0\nres = x * 1e-3\n")
    assert [f.rule for f in findings] == ["U002", "U002"]
    assert [f.line for f in findings] == [1, 2]


def test_u002_allows_tolerances(tmp_path):
    assert _lint_source(tmp_path, "tol = 1e-9\neps = 1e-6\n") == []


def test_u002_exempts_units_module(tmp_path):
    assert _lint_source(tmp_path, "NS = 1000.0\n", name="units.py") == []


def test_suppression_marker_silences_the_line(tmp_path):
    findings = _lint_source(
        tmp_path,
        "a = 1000.0  # lint-units: ok\n"
        "b = x == 1.0  # lint-units: ok\n"
        "c = 1000.0\n")
    assert [f.line for f in findings] == [3]


def test_static_ok_marker_silences_the_matching_code(tmp_path):
    findings = _lint_source(
        tmp_path,
        "a = 1000.0  # static: ok[U002] scale factor documented here\n"
        "b = x == 1.0  # static: ok[U001] exact sentinel\n"
        "c = 1000.0\n")
    assert [f.line for f in findings] == [3]


def test_static_ok_marker_is_code_specific(tmp_path):
    findings = _lint_source(
        tmp_path, "a = x == 1000.0  # static: ok[U002] wrong code\n")
    assert [f.rule for f in findings] == ["U001"]


def test_shim_reexports_the_analysis_module():
    from repro.analysis import rules_units
    assert lint_units.lint_file is rules_units.lint_file
    assert lint_units.Finding is rules_units.Finding
    assert lint_units.main is rules_units.main


def test_syntax_error_reported_as_u000(tmp_path):
    findings = _lint_source(tmp_path, "def broken(:\n")
    assert [f.rule for f in findings] == ["U000"]


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_units.main([str(clean)]) == 0

    dirty = tmp_path / "dirty.py"
    dirty.write_text("if x == 0.0:\n    pass\n")
    assert lint_units.main([str(dirty)]) == 1
    out = capsys.readouterr()
    assert "U001" in out.out
    assert "1 finding(s)" in out.err


def test_repo_sources_are_clean():
    repo = Path(__file__).resolve().parent.parent
    findings = lint_units.lint_paths([repo / "src", repo / "tools"])
    assert not findings, "\n".join(f.render() for f in findings)


def test_default_paths_cover_benchmarks_too():
    repo = Path(__file__).resolve().parent.parent
    defaults = lint_units.default_paths()
    assert repo / "src" in defaults
    assert repo / "tools" in defaults
    assert repo / "benchmarks" in defaults


def test_main_without_args_lints_the_default_trees(capsys):
    assert lint_units.main([]) == 0
    assert capsys.readouterr().out == ""


@pytest.mark.parametrize("snippet", [
    "x = {1.0: 'a'}[key]",       # float literal, but no ==/!=
    "y = f(0.0)",                # argument position
    "z = [0.0, 1.0]",            # container literal
])
def test_non_comparison_float_literals_pass(tmp_path, snippet):
    assert _lint_source(tmp_path, snippet + "\n") == []
