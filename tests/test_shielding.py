"""Grounded-shield modeling and the shield-enabled optimizer."""

import pytest

from repro.bench import generate_design
from repro.core import Policy, run_flow
from repro.core.evaluation import targets_from_reference
from repro.extract import extract
from repro.extract.capmodel import extract_wire
from repro.timing.crosstalk import analyze_crosstalk


def _coupled_wire(physical):
    """The clock wire with the most aggressor coupling."""
    ext = physical.extraction
    return max(physical.routing.clock_wires,
               key=lambda w: ext.wires[w.wire_id].cc_signal)


def test_shield_kills_aggressor_coupling(make_small_physical):
    phys = make_small_physical()
    wire = _coupled_wire(phys)
    assert phys.extraction.wires[wire.wire_id].cc_signal > 0.0
    phys.routing.assign_shield(wire.wire_id)
    neighbors = phys.routing.tracks.neighbors_of(wire)
    para = extract_wire(wire, neighbors)
    assert para.cc_signal == 0.0
    assert para.couplings == []


def test_shield_adds_static_cap(make_small_physical):
    phys = make_small_physical()
    wire = _coupled_wire(phys)
    before = phys.extraction.wires[wire.wire_id]
    phys.routing.assign_shield(wire.wire_id)
    after = extract_wire(wire, phys.routing.tracks.neighbors_of(wire))
    # The shields couple at min spacing over the whole span: more static
    # cap than the partial aggressor coverage it replaces.
    assert after.c_total > before.c_total - before.cc_signal
    # Resistance unchanged (shielding is not a width change).
    assert after.r == pytest.approx(before.r)


def test_shield_reduces_delta_delay(make_small_physical):
    phys = make_small_physical()
    base = analyze_crosstalk(phys.extraction.network, phys.extraction.wires)
    for wire in phys.routing.clock_wires:
        phys.routing.assign_shield(wire.wire_id)
    ext = extract(phys.tree, phys.routing)
    shielded = analyze_crosstalk(ext.network, ext.wires)
    assert shielded.worst_delta < 0.2 * base.worst_delta


def test_shield_track_cost(make_small_physical):
    phys = make_small_physical()
    wire = phys.routing.clock_wires[0]
    base = phys.routing.ndr_track_cost()
    phys.routing.assign_shield(wire.wire_id)
    assert phys.routing.ndr_track_cost() == pytest.approx(
        base + 2 * wire.segment.length)
    assert phys.routing.num_shielded() == 1
    phys.routing.assign_shield(wire.wire_id, False)
    assert phys.routing.num_shielded() == 0


def test_shield_rejected_on_signal_wires(make_small_physical):
    phys = make_small_physical()
    sig = phys.routing.signal_wires[0]
    with pytest.raises(ValueError):
        phys.routing.assign_shield(sig.wire_id)


def test_smart_shield_policy_feasible(small_spec, tech):
    reference = run_flow(generate_design(small_spec), tech,
                         policy=Policy.ALL_NDR)
    targets = targets_from_reference(reference.analyses, tech)
    flow = run_flow(generate_design(small_spec), tech,
                    policy=Policy.SMART_SHIELD, targets=targets)
    assert flow.feasible
    assert flow.clock_power < reference.clock_power
