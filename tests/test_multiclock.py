"""Multi-clock-domain builds."""

import pytest

from repro.bench import DesignSpec, generate_design
from repro.core import Policy
from repro.core.multiclock import (ClockDomain, run_multiclock_flow,
                                   split_domains)


SPEC = DesignSpec("mc", n_sinks=64, die_edge=300.0,
                  aggressors_per_sink=1.5, seed=19)


@pytest.fixture(scope="module")
def design():
    return generate_design(SPEC)


@pytest.fixture(scope="module")
def domains(design):
    return split_domains(design, 2)


def test_split_partitions_sinks(design, domains):
    names = set()
    for domain in domains:
        names |= {p.full_name for p in domain.sinks}
    assert len(names) == design.num_sinks
    assert abs(len(domains[0].sinks) - len(domains[1].sinks)) <= 1


def test_split_is_geographic(domains):
    max_x0 = max(p.location.x for p in domains[0].sinks)
    min_x1 = min(p.location.x for p in domains[1].sinks)
    assert max_x0 <= min_x1


def test_split_validation(design):
    with pytest.raises(ValueError):
        split_domains(design, 0)
    with pytest.raises(ValueError):
        split_domains(design, design.num_sinks + 1)
    with pytest.raises(ValueError):
        ClockDomain("empty", domains_source := design.die.center, ())


def test_domains_share_track_space(design, domains, tech):
    result = run_multiclock_flow(design, domains, tech,
                                 policy=Policy.NO_NDR)
    a, b = result.domains
    assert a.routing.tracks is b.routing.tracks
    # Per-domain views don't leak each other's wires.
    names_a = {w.net_name for w in a.routing.clock_wires}
    names_b = {w.net_name for w in b.routing.clock_wires}
    assert names_a == {"clk0"} and names_b == {"clk1"}


def test_interleaved_split(design):
    domains = split_domains(design, 2, interleave=True)
    # Both domains span the whole die.
    for domain in domains:
        xs = [p.location.x for p in domain.sinks]
        assert max(xs) - min(xs) > 0.5 * design.die.width


def test_cross_domain_coupling_visible(design, tech):
    """With interleaved domains, each domain's extraction must see the
    other clock as an activity-1.0 aggressor somewhere."""
    domains = split_domains(design, 2, interleave=True)
    result = run_multiclock_flow(design, domains, tech,
                                 policy=Policy.NO_NDR)
    hot = 0
    for d in result.domains:
        for para in d.extraction.wires.values():
            hot += sum(1 for e in para.couplings if e.activity == 1.0)
    assert hot > 0


def test_per_domain_timing_independent(design, domains, tech):
    result = run_multiclock_flow(design, domains, tech,
                                 policy=Policy.NO_NDR)
    for d in result.domains:
        assert len(d.analyses.timing.sinks) == len(d.domain.sinks)
        assert d.analyses.timing.skew < 3.0  # trimmed per domain


def test_smart_multiclock_feasible(design, domains, tech):
    result = run_multiclock_flow(design, domains, tech, policy=Policy.SMART)
    assert result.all_feasible
    for d in result.domains:
        assert d.optimize is not None
    no_ndr = run_multiclock_flow(design, domains, tech,
                                 policy=Policy.NO_NDR)
    assert not no_ndr.all_feasible


def test_unsupported_policies_rejected(design, domains, tech):
    with pytest.raises(ValueError):
        run_multiclock_flow(design, domains, tech, policy=Policy.SMART_ML)


def test_result_lookup(design, domains, tech):
    result = run_multiclock_flow(design, domains, tech,
                                 policy=Policy.NO_NDR)
    assert result.domain("clk0").domain.name == "clk0"
    with pytest.raises(KeyError):
        result.domain("nope")
    assert result.total_power == pytest.approx(
        sum(d.clock_power for d in result.domains))
