"""Equivalence of the incremental analysis engine with the legacy stack.

The engine is only allowed to be *fast*: every kernel analysis must
reproduce its legacy counterpart on the same extraction, and a sequence
of incremental updates (rule changes, shield changes, trims) must land
on the same numbers as a from-scratch rebuild.  Tolerances are 1e-9 —
the kernels mirror the legacy accumulation order, so observed
differences are at the few-ulp level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import generate_design
from repro.core.evaluation import analyze_all
from repro.core.flow import build_physical_design
from repro.core.optimizer import SmartNdrOptimizer
from repro.core.sensitivity import (SensitivityCache, _what_if_parasitics,
                                    rule_sensitivities)
from repro.core.targets import RobustnessTargets
from repro.cts.refine import refine_skew
from repro.engine import AnalysisEngine, FrozenVariation, get_backend
from repro.extract.extractor import extract, incremental_re_extract
from repro.reliability.em import DEFAULT_EM_FACTOR, analyze_em
from repro.timing.arrival import analyze_clock_timing
from repro.timing.crosstalk import analyze_crosstalk
from repro.timing.montecarlo import run_monte_carlo

ATOL = 1e-9


@pytest.fixture(params=["tiny_spec", "small_spec"])
def physical(request, tech):
    """A fresh mutable physical build per test, both design sizes."""
    spec = request.getfixturevalue(request.param)
    return build_physical_design(generate_design(spec), tech)


@pytest.fixture(params=["numpy-dense", "numpy-sparse"])
def backend(request):
    """Every registered backend must pass the legacy-equivalence bar."""
    return request.param


def _kernel(backend, extraction):
    return get_backend(backend).build(extraction.network,
                                      extraction.routing, extraction.wires)


def _targets(physical, tech):
    return RobustnessTargets.for_period(physical.design.clock_period,
                                        tech.max_slew)


def _bundle_metrics(bundle):
    return {
        "latency": bundle.timing.latency,
        "skew": bundle.timing.skew,
        "worst_slew": bundle.timing.worst_slew,
        "worst_delta": bundle.crosstalk.worst_delta,
        "em_worst": bundle.em.worst_utilization,
        "p_total": bundle.power.p_total,
        "skew_3sigma": bundle.mc.skew_3sigma,
        "mc_latency": bundle.mc.mean_latency,
    }


def _assert_bundles_match(a, b):
    for name, va in _bundle_metrics(a).items():
        vb = _bundle_metrics(b)[name]
        assert va == pytest.approx(vb, abs=ATOL), name


def _some_clock_wires(routing, n):
    wires = sorted(routing.clock_wires, key=lambda w: w.wire_id)
    step = max(1, len(wires) // n)
    return [w.wire_id for w in wires[::step][:n]]


# -- kernel analyses vs legacy ------------------------------------------------


def test_kernel_static_timing_matches_legacy(physical, tech, backend):
    extraction = physical.extraction
    kernel = _kernel(backend, extraction)
    legacy = analyze_clock_timing(extraction.network, tech)
    fast = kernel.static_timing(tech)
    assert fast.latency == pytest.approx(legacy.latency, abs=ATOL)
    assert fast.skew == pytest.approx(legacy.skew, abs=ATOL)
    assert [s.pin.full_name for s in fast.sinks] \
        == [s.pin.full_name for s in legacy.sinks]
    for fs, ls in zip(fast.sinks, legacy.sinks):
        assert fs.arrival == pytest.approx(ls.arrival, abs=ATOL)
        assert fs.slew == pytest.approx(ls.slew, abs=ATOL)


def test_kernel_crosstalk_and_em_match_legacy(physical, tech, backend):
    extraction = physical.extraction
    freq = physical.design.clock_freq
    kernel = _kernel(backend, extraction)

    legacy_x = analyze_crosstalk(extraction.network, extraction.wires,
                                 alignment=0.5)
    fast_x = kernel.crosstalk(alignment=0.5)
    assert fast_x.worst_delta == pytest.approx(legacy_x.worst_delta,
                                               abs=ATOL)
    assert fast_x.mean_worst_delta == pytest.approx(legacy_x.mean_worst_delta,
                                                  abs=ATOL)

    legacy_em = analyze_em(extraction.network, extraction.routing,
                           tech.vdd, freq, em_factor=DEFAULT_EM_FACTOR)
    fast_em = kernel.em(tech.vdd, freq, em_factor=DEFAULT_EM_FACTOR)
    assert [w.wire_id for w in fast_em.wires] \
        == [w.wire_id for w in legacy_em.wires]
    assert fast_em.worst_utilization == pytest.approx(
        legacy_em.worst_utilization, abs=ATOL)
    assert fast_em.num_violations == legacy_em.num_violations


def test_kernel_monte_carlo_reproduces_legacy_draws(physical, tech, backend):
    """Same seed -> bitwise-equivalent sampling, arrivals within 1e-9."""
    extraction = physical.extraction
    legacy = run_monte_carlo(extraction.network, extraction.wires,
                             extraction.routing, tech,
                             n_samples=64, seed=11)
    kernel = _kernel(backend, extraction)
    frozen = FrozenVariation(extraction.network, extraction.routing, tech,
                             n_samples=64, seed=11)
    fast = kernel.monte_carlo(frozen)
    assert fast.sink_names == legacy.sink_names
    np.testing.assert_allclose(fast.arrivals, legacy.arrivals,
                               rtol=0.0, atol=ATOL)
    assert fast.skew_3sigma == pytest.approx(legacy.skew_3sigma, abs=ATOL)


# -- incremental extraction ---------------------------------------------------


def test_incremental_re_extract_matches_full(physical, tech):
    routing = physical.routing
    ndr = max(tech.rules, key=lambda r: r.width_mult)
    extraction = extract(physical.tree, routing)

    touched = _some_clock_wires(routing, 5)
    for wire_id in touched[:-1]:
        routing.assign_rule(wire_id, ndr)
    routing.assign_shield(touched[-1], True)

    dirty, _stages = incremental_re_extract(extraction, touched)
    assert set(touched) <= dirty

    fresh = extract(physical.tree, routing)
    assert extraction.wires.keys() == fresh.wires.keys()
    for wire_id, para in fresh.wires.items():
        inc = extraction.wires[wire_id]
        assert inc.r == pytest.approx(para.r, abs=ATOL)
        assert inc.c_total == pytest.approx(para.c_total, abs=ATOL)
        assert inc.cc_signal == pytest.approx(para.cc_signal, abs=ATOL)
    assert extraction.clock_wire_cap == pytest.approx(
        fresh.clock_wire_cap, abs=ATOL)
    assert extraction.clock_coupling_cap == pytest.approx(
        fresh.clock_coupling_cap, abs=ATOL)


def test_engine_incremental_equals_full_analysis(physical, tech, backend):
    """Rule + shield churn through the engine == from-scratch analysis."""
    routing = physical.routing
    freq = physical.design.clock_freq
    targets = _targets(physical, tech)
    ndr = max(tech.rules, key=lambda r: r.width_mult)

    extraction = extract(physical.tree, routing)
    engine = AnalysisEngine(extraction, physical.tree, tech, freq, targets,
                            backend=backend)
    engine.analyze()  # prime every cache before the churn

    touched = _some_clock_wires(routing, 6)
    for wire_id in touched[:3]:
        routing.assign_rule(wire_id, ndr)
    routing.assign_shield(touched[3], True)
    engine.apply_rule_changes(touched[:4])
    engine.analyze()

    # Second round: revert one, upgrade another.
    routing.assign_rule(touched[0], tech.default_rule)
    routing.assign_rule(touched[4], ndr)
    engine.apply_rule_changes([touched[0], touched[4]])
    incremental = engine.analyze()

    fresh = analyze_all(extract(physical.tree, routing), tech, freq,
                        targets)
    _assert_bundles_match(incremental, fresh)


def test_engine_trim_path_equals_full_analysis(physical, tech, backend):
    """refine_skew driving the engine == refine_skew from scratch."""
    freq = physical.design.clock_freq
    targets = _targets(physical, tech)
    ndr = max(tech.rules, key=lambda r: r.width_mult)
    routing = physical.routing

    extraction = extract(physical.tree, routing)
    engine = AnalysisEngine(extraction, physical.tree, tech, freq, targets,
                            backend=backend)
    for wire_id in _some_clock_wires(routing, 3):
        routing.assign_rule(wire_id, ndr)
        engine.apply_rule_changes([wire_id])
    refined = refine_skew(physical.tree, routing, tech, engine=engine)
    incremental = analyze_all(refined.extraction, tech, freq, targets,
                              engine=engine)

    fresh_refine = refine_skew(physical.tree, routing, tech)
    fresh = analyze_all(fresh_refine.extraction, tech, freq, targets)
    assert refined.final_skew == pytest.approx(fresh_refine.final_skew,
                                               abs=ATOL)
    _assert_bundles_match(incremental, fresh)


def test_optimizer_engine_matches_legacy_run(make_small_physical, tech):
    """Every engine backend makes the legacy run's decisions end to end."""
    results = {}
    for use_engine in (False, "numpy-dense", "numpy-sparse"):
        phys = make_small_physical()
        targets = _targets(phys, tech)
        opt = SmartNdrOptimizer(phys.tree, phys.routing, tech, targets,
                                phys.design.clock_freq,
                                use_engine=use_engine)
        results[use_engine] = opt.run()
    legacy = results[False]
    assert legacy.engine is None
    for name in ("numpy-dense", "numpy-sparse"):
        fast = results[name]
        assert fast.upgraded == legacy.upgraded
        assert fast.downgraded == legacy.downgraded
        assert fast.iterations == legacy.iterations
        assert fast.engine is not None
        assert fast.engine.backend.name == name
        _assert_bundles_match(fast.analyses, legacy.analyses)


# -- sensitivity cache --------------------------------------------------------


def test_sensitivity_cache_matches_uncached(small_physical, tech):
    routing = small_physical.routing
    freq = small_physical.design.clock_freq
    cache = SensitivityCache(routing, tech.rules)
    from repro.core.features import wire_contexts

    contexts = wire_contexts(small_physical.tree,
                             small_physical.extraction)
    some = list(contexts)[:8]
    for wire_id in some:
        cached = rule_sensitivities(routing, wire_id, contexts[wire_id],
                                    tech.rules, freq, tech.vdd,
                                    DEFAULT_EM_FACTOR, cache=cache)
        plain = rule_sensitivities(routing, wire_id, contexts[wire_id],
                                   tech.rules, freq, tech.vdd,
                                   DEFAULT_EM_FACTOR)
        assert cached.keys() == plain.keys()
        for name in cached:
            assert cached[name].c_switched == plain[name].c_switched
            assert cached[name].dd_own == plain[name].dd_own
            assert cached[name].em_util == plain[name].em_util


def test_sensitivity_cache_tracks_neighbor_occupancy(make_small_physical,
                                                     tech):
    """Reassigning a clock neighbor's rule must invalidate the entry."""
    phys = make_small_physical()
    routing = phys.routing
    cache = SensitivityCache(routing, tech.rules)
    ndr = max(tech.rules, key=lambda r: r.width_mult)

    # Find a victim with at least one potential clock neighbor.
    victim = neighbor = None
    for wire in sorted(routing.clock_wires, key=lambda w: w.wire_id):
        nbs = cache._potential_neighbors(wire.wire_id)
        if nbs:
            victim, neighbor = wire.wire_id, nbs[0].wire_id
            break
    if victim is None:
        pytest.skip("no coupled clock-wire pair in this design")

    occupancy_before = cache._occupancy(victim)
    cache.parasitics(victim, ndr, False)
    routing.assign_rule(neighbor, ndr)
    # The occupancy fingerprint — the cache key — must reflect the
    # neighbor's new rule, so the stale entry can never be served.
    assert cache._occupancy(victim) != occupancy_before
    after = cache.parasitics(victim, ndr, False)
    expected = _what_if_parasitics(routing, victim, ndr, False)
    assert after.cc_signal == pytest.approx(expected.cc_signal, abs=ATOL)
    assert after.c_total == pytest.approx(expected.c_total, abs=ATOL)
    assert after.r == pytest.approx(expected.r, abs=ATOL)
