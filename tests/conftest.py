"""Shared fixtures.

Expensive artefacts (generated designs, built physical designs) are
session-scoped: tests treat them as read-only.  Tests that mutate state
(rule assignment, trimming) build their own copies via the factories.
"""

from __future__ import annotations

import pytest

from repro.bench import DesignSpec, generate_design
from repro.core.flow import PhysicalDesign, build_physical_design
from repro.tech import Technology, default_technology


TINY_SPEC = DesignSpec("tiny", n_sinks=24, die_edge=160.0,
                       aggressors_per_sink=2.0, seed=5)
SMALL_SPEC = DesignSpec("small", n_sinks=64, die_edge=280.0,
                        aggressors_per_sink=2.0, seed=6)


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the content-addressed artifact store at a per-session tmp dir.

    Keeps test runs from reading (or polluting) the developer's
    persistent ``~/.cache/repro`` — stale cells from older code would
    otherwise leak into CLI/runner tests.
    """
    import os

    from repro.io.artifacts import CACHE_DIR_ENV

    old = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("artifacts"))
    yield
    if old is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = old


@pytest.fixture(scope="session", autouse=True)
def _verify_all_flows():
    """Statically verify every flow result the suite produces.

    ``run_flow`` checks this environment variable and raises
    :class:`repro.verify.VerificationError` if any registered check
    reports an ERROR diagnostic — so an engine-coherence bug fails the
    suite loudly even in tests that only look at summary metrics.
    """
    import os

    os.environ["REPRO_VERIFY_FLOWS"] = "1"
    yield
    os.environ.pop("REPRO_VERIFY_FLOWS", None)


@pytest.fixture(scope="session")
def tech() -> Technology:
    return default_technology()


@pytest.fixture(scope="session")
def tiny_spec() -> DesignSpec:
    return TINY_SPEC


@pytest.fixture(scope="session")
def small_spec() -> DesignSpec:
    return SMALL_SPEC


@pytest.fixture(scope="session")
def tiny_design():
    """A 24-sink design; read-only (use make_tiny_physical to mutate)."""
    return generate_design(TINY_SPEC)


@pytest.fixture(scope="session")
def small_design():
    return generate_design(SMALL_SPEC)


@pytest.fixture(scope="session")
def tiny_physical(tech) -> PhysicalDesign:
    """Built physical of the tiny design; treat as read-only."""
    return build_physical_design(generate_design(TINY_SPEC), tech)


@pytest.fixture(scope="session")
def small_physical(tech) -> PhysicalDesign:
    """Built physical of the 64-sink design; treat as read-only."""
    return build_physical_design(generate_design(SMALL_SPEC), tech)


@pytest.fixture
def make_tiny_physical(tech):
    """Factory for a fresh, mutable tiny physical design."""
    def factory() -> PhysicalDesign:
        return build_physical_design(generate_design(TINY_SPEC), tech)
    return factory


@pytest.fixture
def make_small_physical(tech):
    def factory() -> PhysicalDesign:
        return build_physical_design(generate_design(SMALL_SPEC), tech)
    return factory
