"""Serialization round trips."""

import json

import pytest

from repro.bench import DesignSpec, generate_design
from repro.core.flow import build_physical_design
from repro.io import (apply_rule_assignment, design_from_dict,
                      design_to_dict, load_design, load_rule_assignment,
                      save_design, save_rule_assignment, write_wire_report)
from repro.tech import rule_by_name


SPEC = DesignSpec("io_t", n_sinks=20, die_edge=150.0, seed=31)


@pytest.fixture
def design():
    return generate_design(SPEC)


def test_design_dict_round_trip(design):
    data = design_to_dict(design)
    rebuilt = design_from_dict(data)
    assert rebuilt.name == design.name
    assert rebuilt.die == design.die
    assert rebuilt.clock_period == design.clock_period
    assert rebuilt.clock_root.location == design.clock_root.location
    assert [p.location for p in rebuilt.clock_sinks] == \
        [p.location for p in design.clock_sinks]
    assert len(rebuilt.signal_nets) == len(design.signal_nets)
    for a, b in zip(rebuilt.signal_nets, design.signal_nets):
        assert a.activity == b.activity
        assert a.driver.location == b.driver.location
        assert [p.cap for p in a.sinks] == [p.cap for p in b.sinks]


def test_design_file_round_trip(design, tmp_path):
    path = tmp_path / "design.json"
    save_design(design, path)
    rebuilt = load_design(path)
    assert rebuilt.num_sinks == design.num_sinks
    # The file is valid JSON with the expected schema.
    data = json.loads(path.read_text())
    assert data["schema"] == 1


def test_round_trip_produces_same_physical(design, tech, tmp_path):
    """A reloaded design must route identically (determinism contract)."""
    path = tmp_path / "design.json"
    save_design(design, path)
    a = build_physical_design(design, tech)
    b = build_physical_design(load_design(path), tech)
    sa = [(w.segment, w.track) for w in a.routing.clock_wires]
    sb = [(w.segment, w.track) for w in b.routing.clock_wires]
    assert sa == sb


def test_unsupported_schema_rejected(design):
    data = design_to_dict(design)
    data["schema"] = 99
    with pytest.raises(ValueError):
        design_from_dict(data)


def test_rule_assignment_round_trip(design, tech, tmp_path):
    phys = build_physical_design(design, tech)
    wires = phys.routing.clock_wires
    phys.routing.assign_rule(wires[0].wire_id, rule_by_name("W2S2"))
    phys.routing.assign_rule(wires[3].wire_id, rule_by_name("W1S2"))
    path = tmp_path / "rules.json"
    n = save_rule_assignment(phys.routing, path, design_name=design.name)
    assert n == 2

    fresh = build_physical_design(generate_design(SPEC), tech)
    payload = load_rule_assignment(path)
    applied = apply_rule_assignment(fresh.routing, payload)
    assert applied == 2
    assert fresh.routing.rule_histogram() == phys.routing.rule_histogram()


def test_rule_assignment_signature_mismatch(design, tech, tmp_path):
    phys = build_physical_design(design, tech)
    phys.routing.assign_rule(phys.routing.clock_wires[0].wire_id,
                             rule_by_name("W2S2"))
    path = tmp_path / "rules.json"
    save_rule_assignment(phys.routing, path)
    payload = load_rule_assignment(path)
    payload["rules"][0]["sig"][1] += 1  # corrupt the track
    fresh = build_physical_design(generate_design(SPEC), tech)
    with pytest.raises(ValueError):
        apply_rule_assignment(fresh.routing, payload)


def test_rules_schema_check(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 42, "rules": []}))
    with pytest.raises(ValueError):
        load_rule_assignment(path)


def test_wire_report(design, tech, tmp_path):
    phys = build_physical_design(design, tech)
    path = tmp_path / "wires.txt"
    n = write_wire_report(phys.extraction, path)
    assert n == len(phys.extraction.wires)
    text = path.read_text()
    assert "rule" in text and "W1S1" in text
    assert text.count("\n") > n  # table chrome present
