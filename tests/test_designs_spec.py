"""DesignSpec: validation, serialization, content fingerprints."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import (DesignSpec, spec_by_name, spec_fingerprint,
                           spec_from_dict, spec_to_dict)
from repro.designs.spec import SPEC_SCHEMA, TRAFFIC_PROFILES, seeded_rng


def test_defaults_match_legacy_generator_knobs():
    spec = DesignSpec("d", n_sinks=10, die_edge=100.0)
    assert spec.aggressors_per_sink == 2.0
    assert spec.mean_activity == 0.15
    assert spec.generator == "clustered"
    assert spec.n_domains == 1 and spec.gate_enable == 1.0
    assert spec.traffic == "uniform"
    assert spec.n_aggressors == 20


@pytest.mark.parametrize("kwargs", [
    {"traffic": "bursty"},
    {"gate_enable": -0.1},
    {"gate_enable": 1.5},
    {"n_domains": 0},
])
def test_invalid_knobs_rejected(kwargs):
    with pytest.raises(ValueError):
        DesignSpec("d", n_sinks=10, die_edge=100.0, **kwargs)


def test_effective_seed_salt_defaults_to_name():
    anon = DesignSpec("d", n_sinks=10, die_edge=100.0)
    pinned = DesignSpec("d", n_sinks=10, die_edge=100.0, seed_salt="other")
    assert anon.effective_seed_salt == "d"
    assert pinned.effective_seed_salt == "other"


def test_rename_keeps_rng_stream():
    spec = DesignSpec("a", n_sinks=10, die_edge=100.0, seed_salt="a")
    renamed = dataclasses.replace(spec, name="b")
    assert (seeded_rng(spec).integers(0, 10**9)
            == seeded_rng(renamed).integers(0, 10**9))


def test_fingerprint_excludes_name_but_not_content():
    spec = spec_by_name("ckt64")
    renamed = dataclasses.replace(spec, name="renamed_ckt64")
    assert spec_fingerprint(spec) == spec_fingerprint(renamed)
    reseeded = dataclasses.replace(spec, seed=spec.seed + 1)
    assert spec_fingerprint(spec) != spec_fingerprint(reseeded)


def test_fingerprint_resolves_default_salt():
    # An unpinned salt hashes as its effective value, so pinning the
    # salt a spec already uses implicitly does not shift its identity.
    anon = DesignSpec("d", n_sinks=10, die_edge=100.0)
    pinned = DesignSpec("d", n_sinks=10, die_edge=100.0, seed_salt="d")
    assert spec_fingerprint(anon) == spec_fingerprint(pinned)


def test_spec_dict_round_trip_and_schema_tag():
    spec = spec_by_name("soc_g256")
    payload = spec_to_dict(spec)
    assert payload["schema"] == SPEC_SCHEMA
    assert spec_from_dict(payload) == spec


def test_spec_from_dict_rejects_unknown_fields():
    payload = spec_to_dict(spec_by_name("ckt64"))
    payload["wires"] = 3
    with pytest.raises(ValueError, match="wires"):
        spec_from_dict(payload)


@settings(max_examples=50, deadline=None)
@given(
    n_sinks=st.integers(min_value=1, max_value=5000),
    die_edge=st.floats(min_value=10.0, max_value=1e4, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    seed_salt=st.text(max_size=12),
    generator=st.sampled_from(["clustered", "htree"]),
    htree_levels=st.integers(min_value=0, max_value=6),
    n_domains=st.integers(min_value=1, max_value=8),
    gate_enable=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    traffic=st.sampled_from(TRAFFIC_PROFILES),
)
def test_spec_serialization_round_trips(n_sinks, die_edge, seed, seed_salt,
                                        generator, htree_levels, n_domains,
                                        gate_enable, traffic):
    spec = DesignSpec("prop", n_sinks=n_sinks, die_edge=die_edge, seed=seed,
                      seed_salt=seed_salt, generator=generator,
                      htree_levels=htree_levels, n_domains=n_domains,
                      gate_enable=gate_enable, traffic=traffic)
    back = spec_from_dict(spec_to_dict(spec))
    assert back == spec
    assert spec_fingerprint(back) == spec_fingerprint(spec)
