"""Clock tree data structure invariants."""

import pytest

from repro.cts.tree import ClockTree
from repro.geom.point import Point


def _chain3() -> ClockTree:
    """root -> a -> leaf"""
    tree = ClockTree()
    root = tree.new_node(Point(0, 0))
    a = tree.new_node(Point(10, 0))
    leaf = tree.new_node(Point(10, 5))
    tree.set_root(root.node_id)
    tree.attach(root.node_id, a.node_id)
    tree.attach(a.node_id, leaf.node_id)
    return tree


def test_ids_dense_and_unique():
    tree = ClockTree()
    ids = [tree.new_node().node_id for _ in range(5)]
    assert ids == list(range(5))


def test_attach_rules():
    tree = ClockTree()
    a = tree.new_node()
    b = tree.new_node()
    tree.set_root(a.node_id)
    tree.attach(a.node_id, b.node_id)
    with pytest.raises(ValueError):
        tree.attach(a.node_id, b.node_id)  # already has parent
    with pytest.raises(ValueError):
        tree.attach(a.node_id, a.node_id)
    with pytest.raises(KeyError):
        tree.attach(a.node_id, 99)


def test_topo_order_parents_first():
    tree = _chain3()
    order = [n.node_id for n in tree.topo_order()]
    pos = {nid: i for i, nid in enumerate(order)}
    for node in tree:
        if node.parent is not None:
            assert pos[node.parent] < pos[node.node_id]


def test_postorder_children_first():
    tree = _chain3()
    order = [n.node_id for n in tree.postorder()]
    pos = {nid: i for i, nid in enumerate(order)}
    for node in tree:
        if node.parent is not None:
            assert pos[node.parent] > pos[node.node_id]


def test_depth_and_path():
    tree = _chain3()
    leaf = tree.topo_order()[-1]
    assert tree.depth(tree.root_id) == 0
    assert tree.depth(leaf.node_id) == 2
    path = tree.path_to_root(leaf.node_id)
    assert path[0] is leaf and path[-1] is tree.root


def test_edge_length_includes_snake():
    tree = _chain3()
    a = tree.topo_order()[1]
    assert tree.edge_length(a.node_id) == pytest.approx(10.0)
    a.snake = 5.0
    assert tree.edge_length(a.node_id) == pytest.approx(15.0)
    with pytest.raises(ValueError):
        tree.edge_length(tree.root_id)


def test_total_wirelength():
    tree = _chain3()
    assert tree.total_wirelength() == pytest.approx(15.0)


def test_insert_above_middle():
    tree = _chain3()
    a = tree.topo_order()[1]
    fresh = tree.insert_above(a.node_id)
    tree.validate()
    assert a.parent == fresh.node_id
    assert fresh.parent == tree.root_id
    assert tree.depth(a.node_id) == 2


def test_insert_above_root():
    tree = _chain3()
    old_root = tree.root_id
    fresh = tree.insert_above(old_root)
    tree.validate()
    assert tree.root_id == fresh.node_id
    assert tree.node(old_root).parent == fresh.node_id


def test_subtree_ids():
    tree = _chain3()
    a = tree.topo_order()[1]
    assert set(tree.subtree_ids(a.node_id)) == {a.node_id, a.children[0]}
    assert set(tree.subtree_ids(tree.root_id)) == {n.node_id for n in tree}


def test_validate_detects_unreachable():
    tree = ClockTree()
    a = tree.new_node()
    tree.new_node()  # orphan
    tree.set_root(a.node_id)
    with pytest.raises(ValueError):
        tree.validate()


def test_validate_requires_root():
    tree = ClockTree()
    tree.new_node()
    with pytest.raises(ValueError):
        tree.validate()


def test_pad_split_properties():
    tree = _chain3()
    node = tree.root
    node.base_pad = 3.0
    node.trim_pad = 2.0
    assert node.load_pad == pytest.approx(5.0)
    node.base_snake = 10.0
    node.trim_snake = 5.0
    node.snake_r_per_um = 0.001
    node.snake_c_per_um = 0.2
    assert node.root_snake == pytest.approx(15.0)
    assert node.root_snake_r == pytest.approx(0.015)
    assert node.root_snake_c == pytest.approx(3.0)
