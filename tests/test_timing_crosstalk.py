"""Crosstalk delta-delay analysis."""

import pytest

from repro.extract import extract
from repro.tech import rule_by_name
from repro.timing.arrival import analyze_clock_timing
from repro.timing.crosstalk import analyze_crosstalk


@pytest.fixture(scope="module")
def report(small_physical):
    ext = small_physical.extraction
    return analyze_crosstalk(ext.network, ext.wires)


def test_every_sink_analyzed(report, small_physical):
    assert len(report.sinks) == len(small_physical.tree.sinks())


def test_deltas_nonnegative_and_worst_dominates(report):
    for sink in report.sinks:
        assert sink.worst >= 0.0
        assert 0.0 <= sink.expected <= sink.worst + 1e-12


def test_alignment_scales_expected_only(small_physical):
    ext = small_physical.extraction
    lo = analyze_crosstalk(ext.network, ext.wires, alignment=0.25)
    hi = analyze_crosstalk(ext.network, ext.wires, alignment=0.75)
    for a, b in zip(lo.sinks, hi.sinks):
        assert a.worst == pytest.approx(b.worst)
        assert b.expected == pytest.approx(3.0 * a.expected, rel=1e-9)


def test_alignment_validation(small_physical):
    ext = small_physical.extraction
    with pytest.raises(ValueError):
        analyze_crosstalk(ext.network, ext.wires, alignment=1.5)


def test_degraded_skew_at_least_nominal(report, small_physical, tech):
    timing = analyze_clock_timing(small_physical.extraction.network, tech)
    assert report.degraded_skew(timing) >= timing.skew


def test_worst_delta_reported(report):
    assert report.worst_delta == max(s.worst for s in report.sinks)
    assert report.mean_worst_delta <= report.worst_delta


def test_spacing_ndr_reduces_delta(make_small_physical, tech):
    """The core SI mechanism: 2x spacing everywhere cuts delta delay."""
    phys = make_small_physical()
    ext0 = extract(phys.tree, phys.routing)
    base = analyze_crosstalk(ext0.network, ext0.wires)
    for wire in phys.routing.clock_wires:
        phys.routing.assign_rule(wire.wire_id, rule_by_name("W1S2"))
    ext1 = extract(phys.tree, phys.routing)
    spaced = analyze_crosstalk(ext1.network, ext1.wires)
    assert spaced.worst_delta < 0.6 * base.worst_delta


def test_width_ndr_reduces_delta(make_small_physical, tech):
    """Width upgrades cut shared resistance, also reducing delta delay."""
    phys = make_small_physical()
    ext0 = extract(phys.tree, phys.routing)
    base = analyze_crosstalk(ext0.network, ext0.wires)
    for wire in phys.routing.clock_wires:
        phys.routing.assign_rule(wire.wire_id, rule_by_name("W2S1"))
    ext1 = extract(phys.tree, phys.routing)
    wide = analyze_crosstalk(ext1.network, ext1.wires)
    assert wide.worst_delta < base.worst_delta


def test_empty_report_defaults():
    from repro.timing.crosstalk import CrosstalkReport

    empty = CrosstalkReport()
    assert empty.worst_delta == 0.0
    assert empty.mean_worst_delta == 0.0
