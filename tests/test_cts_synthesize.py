"""End-to-end CTS driver."""

import pytest

from repro.cts import synthesize_clock_tree


def test_synthesis_produces_valid_tree(tiny_design, tech):
    result = synthesize_clock_tree(tiny_design, tech)
    tree = result.tree
    tree.validate()
    assert tree.root.buffer is not None
    assert len(tree.sinks()) == tiny_design.num_sinks


def test_tree_hangs_from_clock_source(tiny_design, tech):
    result = synthesize_clock_tree(tiny_design, tech)
    assert result.tree.root.location == tiny_design.clock_root.location


def test_all_sink_pins_covered(tiny_design, tech):
    result = synthesize_clock_tree(tiny_design, tech)
    tree_pins = {n.sink_pin.full_name for n in result.tree.sinks()}
    design_pins = {p.full_name for p in tiny_design.clock_sinks}
    assert tree_pins == design_pins


def test_sink_leaves_at_sink_locations(tiny_design, tech):
    result = synthesize_clock_tree(tiny_design, tech)
    for leaf in result.tree.sinks():
        assert leaf.location == leaf.sink_pin.location


def test_buffering_summary_consistent(tiny_design, tech):
    result = synthesize_clock_tree(tiny_design, tech)
    placed = sum(1 for n in result.tree if n.buffer is not None)
    # The summary counts level-inserted buffers; the root top-off (if
    # any) adds at most one more.
    assert placed in (result.buffering.num_buffers,
                      result.buffering.num_buffers + 1)


def test_unvalidated_design_rejected(tech):
    from repro.geom.rect import Rect
    from repro.netlist.design import Design

    empty = Design(name="empty", die=Rect(0, 0, 10, 10))
    with pytest.raises(ValueError):
        synthesize_clock_tree(empty, tech)
