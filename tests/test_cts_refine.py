"""Skew refinement: convergence, idempotence, cost accounting."""

import pytest

from repro.cts.refine import refine_skew
from repro.timing.arrival import analyze_clock_timing


def test_refinement_reduces_skew(make_small_physical, tech):
    phys = make_small_physical()
    # build_physical_design already refined; verify the result is tight.
    assert phys.refine.final_skew <= max(1.0, 0.02 * phys.refine.timing.latency)
    assert phys.refine.final_skew <= phys.refine.initial_skew


def test_trim_cost_is_accounted(make_small_physical):
    phys = make_small_physical()
    tree_cost = sum(n.trim_pad + n.trim_snake * n.snake_c_per_um
                    for n in phys.tree)
    assert phys.refine.added_pad_cap == pytest.approx(tree_cost)


def test_refine_is_stable_under_repetition(make_small_physical, tech):
    """Re-running refine must not ratchet trim capacitance upward."""
    phys = make_small_physical()
    first = refine_skew(phys.tree, phys.routing, tech)
    second = refine_skew(phys.tree, phys.routing, tech)
    assert second.added_pad_cap <= first.added_pad_cap * 1.05 + 1.0
    assert second.final_skew <= max(first.final_skew * 1.5, 1.0)


def test_latency_not_exploded(make_small_physical, tech):
    """Trimming delays early sinks to the latest one, not beyond."""
    phys = make_small_physical()
    timing = analyze_clock_timing(phys.extraction.network, tech)
    # Re-derive what the untrimmed latency would be: strip trims.
    for node in phys.tree:
        node.trim_pad = 0.0
        node.trim_snake = 0.0
    from repro.extract import extract
    bare = analyze_clock_timing(
        extract(phys.tree, phys.routing).network, tech)
    # Trims only delay the early sinks; the latest path gains at most a
    # small overshoot.
    assert timing.latency <= bare.latency * 1.05 + 2.0


def test_slew_stays_legal_after_refine(make_small_physical, tech):
    phys = make_small_physical()
    timing = analyze_clock_timing(phys.extraction.network, tech)
    assert timing.worst_slew <= tech.max_slew


def test_damping_validation(make_small_physical, tech):
    phys = make_small_physical()
    with pytest.raises(ValueError):
        refine_skew(phys.tree, phys.routing, tech, damping=0.0)
    with pytest.raises(ValueError):
        refine_skew(phys.tree, phys.routing, tech, damping=1.5)


def test_loose_target_is_noop(make_small_physical, tech):
    phys = make_small_physical()
    result = refine_skew(phys.tree, phys.routing, tech, target_skew=1e9)
    assert result.iterations == 0
    assert result.added_pad_cap == 0.0
