"""Clock gating power model."""

import pytest

from repro.power import analyze_power
from repro.power.gating import (ClockGateCell, GatingPlan,
                                analyze_gated_power, stage_activities,
                                uniform_gating_plan)


@pytest.fixture(scope="module")
def network(small_physical):
    return small_physical.extraction.network


def test_empty_plan_matches_ungated(small_physical, small_design, tech):
    plain = analyze_power(small_physical.extraction, tech,
                          small_design.clock_freq)
    gated = analyze_gated_power(small_physical.extraction, tech,
                                small_design.clock_freq, GatingPlan())
    assert gated.p_total == pytest.approx(plain.p_total, rel=1e-9)
    assert gated.wire_cap == pytest.approx(plain.wire_cap, rel=1e-9)


def test_enable_validation():
    plan = GatingPlan()
    with pytest.raises(ValueError):
        plan.add(3, 1.5)


def test_unknown_gate_node_rejected(small_physical, small_design, tech):
    plan = GatingPlan()
    plan.add(10 ** 9, 0.5)
    with pytest.raises(KeyError):
        analyze_gated_power(small_physical.extraction, tech,
                            small_design.clock_freq, plan)


def test_stage_activities_compose(network):
    """Nested gates multiply down the chain."""
    # Gate two stages where one is an ancestor of the other, if possible;
    # otherwise gate two distinct stages and check each.
    plan = uniform_gating_plan(network, enable=0.5, min_flops=1)
    activity = stage_activities(network, plan)
    assert activity[network.root_stage] == 1.0
    for idx in range(len(network.stages)):
        if idx == network.root_stage:
            continue
        assert 0.0 < activity[idx] <= 1.0
    # Children never toggle more than their parent.
    for idx in range(len(network.stages)):
        for child in network.stage_children(idx):
            assert activity[child] <= activity[idx] + 1e-12


def test_gating_saves_power_monotonically(small_physical, small_design, tech):
    freq = small_design.clock_freq
    network = small_physical.extraction.network
    powers = []
    for enable in (1.0, 0.7, 0.4, 0.2):
        plan = uniform_gating_plan(network, enable=enable, min_flops=2)
        report = analyze_gated_power(small_physical.extraction, tech,
                                     freq, plan)
        powers.append(report.p_total)
    assert powers == sorted(powers, reverse=True)
    plain = analyze_power(small_physical.extraction, tech, freq)
    # Deep gating saves a large fraction of the dynamic power.
    assert powers[-1] < 0.6 * plain.p_total


def test_gate_overhead_visible_at_full_enable(small_physical, small_design,
                                              tech):
    """enable=1.0 gating saves nothing and pays the ICG overhead."""
    freq = small_design.clock_freq
    plan = uniform_gating_plan(small_physical.extraction.network,
                               enable=1.0, min_flops=2)
    assert len(plan) > 0
    gated = analyze_gated_power(small_physical.extraction, tech, freq, plan)
    plain = analyze_power(small_physical.extraction, tech, freq)
    assert gated.p_total > plain.p_total
    overhead = gated.p_total - plain.p_total
    assert overhead < 0.1 * plain.p_total


def test_leakage_not_scaled_by_gating(small_physical, small_design, tech):
    freq = small_design.clock_freq
    network = small_physical.extraction.network
    lo = analyze_gated_power(small_physical.extraction, tech, freq,
                             uniform_gating_plan(network, 0.2, 2))
    hi = analyze_gated_power(small_physical.extraction, tech, freq,
                             uniform_gating_plan(network, 0.9, 2))
    assert lo.p_leakage == pytest.approx(hi.p_leakage)


def test_custom_gate_cell(small_physical, small_design, tech):
    freq = small_design.clock_freq
    network = small_physical.extraction.network
    cheap = uniform_gating_plan(network, 0.5, 2)
    pricey = uniform_gating_plan(network, 0.5, 2)
    pricey.cell = ClockGateCell(name="ICG_BIG", c_in=10.0, e_internal=5.0,
                                p_leak=0.2)
    a = analyze_gated_power(small_physical.extraction, tech, freq, cheap)
    b = analyze_gated_power(small_physical.extraction, tech, freq, pricey)
    assert b.p_total > a.p_total
