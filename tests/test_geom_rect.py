"""Rectangle geometry."""

import pytest

from repro.geom.point import Point
from repro.geom.rect import Rect


def test_dimensions():
    r = Rect(0, 0, 4, 2)
    assert r.width == 4 and r.height == 2 and r.area == 8
    assert r.center == Point(2, 1)


def test_degenerate_rejected():
    with pytest.raises(ValueError):
        Rect(1, 0, 0, 1)


def test_zero_area_allowed():
    r = Rect(1, 1, 1, 1)
    assert r.area == 0.0
    assert r.contains(Point(1, 1))


def test_from_points_normalizes():
    r = Rect.from_points(Point(4, 2), Point(0, 0))
    assert (r.xlo, r.ylo, r.xhi, r.yhi) == (0, 0, 4, 2)


def test_contains_boundary():
    r = Rect(0, 0, 2, 2)
    assert r.contains(Point(0, 0))
    assert r.contains(Point(2, 2))
    assert not r.contains(Point(2.01, 1))


def test_intersects():
    a = Rect(0, 0, 2, 2)
    assert a.intersects(Rect(1, 1, 3, 3))
    assert a.intersects(Rect(2, 2, 3, 3))  # touching counts
    assert not a.intersects(Rect(3, 3, 4, 4))


def test_expanded():
    r = Rect(1, 1, 2, 2).expanded(1.0)
    assert (r.xlo, r.ylo, r.xhi, r.yhi) == (0, 0, 3, 3)


def test_quadrants_partition():
    r = Rect(0, 0, 4, 4)
    quads = r.quadrants()
    assert len(quads) == 4
    assert sum(q.area for q in quads) == pytest.approx(r.area)
    assert quads[0].contains(Point(1, 1))   # SW
    assert quads[3].contains(Point(3, 3))   # NE
