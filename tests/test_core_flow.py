"""End-to-end flow over policies."""

import pytest

from repro.bench import generate_design
from repro.core import Policy, run_flow
from repro.core.targets import RobustnessTargets


@pytest.fixture(scope="module")
def flows(tiny_spec, tech):
    """Run every uniform policy plus smart on the tiny design."""
    results = {}
    for policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.WIDTH_ONLY,
                   Policy.SPACE_ONLY, Policy.RANDOM, Policy.SMART):
        design = generate_design(tiny_spec)
        results[policy] = run_flow(design, tech, policy=policy,
                                   random_fraction=0.4, random_seed=2)
    return results


def test_all_policies_complete(flows):
    for policy, result in flows.items():
        assert result.policy == policy
        assert result.clock_power > 0.0
        assert result.runtime > 0.0


def test_histograms_match_policy(flows, tiny_spec):
    n = sum(flows[Policy.NO_NDR].rule_histogram.values())
    assert flows[Policy.NO_NDR].rule_histogram == {"W1S1": n}
    assert flows[Policy.ALL_NDR].rule_histogram == {"W2S2": n}
    assert flows[Policy.WIDTH_ONLY].rule_histogram == {"W2S1": n}
    assert flows[Policy.SPACE_ONLY].rule_histogram == {"W1S2": n}
    random_hist = flows[Policy.RANDOM].rule_histogram
    assert set(random_hist) == {"W1S1", "W2S2"}


def test_power_ordering(flows):
    """no-NDR < smart-ish < all-NDR in switched capacitance."""
    assert flows[Policy.NO_NDR].switched_cap < \
        flows[Policy.ALL_NDR].switched_cap
    assert flows[Policy.SPACE_ONLY].switched_cap < \
        flows[Policy.WIDTH_ONLY].switched_cap


def test_all_ndr_most_robust_delta(flows):
    assert flows[Policy.ALL_NDR].analyses.crosstalk.worst_delta < \
        flows[Policy.NO_NDR].analyses.crosstalk.worst_delta


def test_summary_keys(flows):
    summary = flows[Policy.SMART].summary()
    for key in ("power_uw", "wire_cap_ff", "skew_ps", "worst_delta_ps",
                "skew_3sigma_ps", "em_violations", "feasible"):
        assert key in summary


def test_smart_records_optimizer(flows):
    assert flows[Policy.SMART].optimize is not None
    for policy in (Policy.NO_NDR, Policy.ALL_NDR):
        assert flows[policy].optimize is None


def test_ndr_track_cost_consistent(flows):
    assert flows[Policy.NO_NDR].ndr_track_cost == 0.0
    assert flows[Policy.ALL_NDR].ndr_track_cost > 0.0


def test_ml_policy_requires_guide(tiny_spec, tech):
    design = generate_design(tiny_spec)
    with pytest.raises(ValueError):
        run_flow(design, tech, policy=Policy.SMART_ML)


def test_explicit_targets_used(tiny_spec, tech):
    design = generate_design(tiny_spec)
    targets = RobustnessTargets(max_worst_delta=1e6, max_skew_3sigma=1e6,
                                max_slew=1e6, max_em_util=1e6)
    result = run_flow(design, tech, policy=Policy.SMART, targets=targets)
    assert result.feasible
    assert result.optimize.num_upgraded == 0


def test_skew_tight_after_flow(flows, tech):
    for result in flows.values():
        timing = result.analyses.timing
        assert timing.skew <= max(1.5, 0.03 * timing.latency)
