"""Multi-corner timing."""

import pytest

from repro.tech.corners import (DEFAULT_CORNERS, FF, SS, TT, ProcessCorner,
                                corner_by_name)
from repro.timing.arrival import analyze_clock_timing
from repro.timing.corners import analyze_corners, corner_timing


@pytest.fixture(scope="module")
def report(small_physical, tech):
    return analyze_corners(small_physical.extraction.network, tech)


def test_corner_lookup():
    assert corner_by_name("SS") is SS
    with pytest.raises(KeyError):
        corner_by_name("XX")


def test_corner_validation():
    with pytest.raises(ValueError):
        ProcessCorner("bad", wire_r=10.0)


def test_tt_matches_nominal(small_physical, tech):
    nominal = analyze_clock_timing(small_physical.extraction.network, tech)
    tt = corner_timing(small_physical.extraction.network, tech, TT)
    assert tt.latency == pytest.approx(nominal.latency, rel=1e-9)
    assert tt.skew == pytest.approx(nominal.skew, abs=1e-9)
    for a, b in zip(tt.sinks, nominal.sinks):
        assert a.arrival == pytest.approx(b.arrival, rel=1e-9)


def test_corner_ordering(report):
    """SS slower than TT slower than FF, per sink."""
    ss = {s.pin.full_name: s.arrival for s in report.timings["SS"].sinks}
    tt = {s.pin.full_name: s.arrival for s in report.timings["TT"].sinks}
    ff = {s.pin.full_name: s.arrival for s in report.timings["FF"].sinks}
    for name in tt:
        assert ff[name] < tt[name] < ss[name]


def test_latency_range(report):
    lo, hi = report.latency_range()
    assert lo == report.timings["FF"].latency
    assert hi == report.timings["SS"].latency
    assert hi / lo > 1.2  # corners are meaningfully apart


def test_skew_scales_with_corner_but_stays_balanced(report):
    """A balanced tree stays balanced at a shifted corner: skew grows at
    most ~proportionally to latency."""
    for name, timing in report.timings.items():
        assert timing.skew < 0.05 * timing.latency, name


def test_worst_metrics(report):
    assert report.worst_skew == max(t.skew for t in report.timings.values())
    assert report.worst_slew == report.timings["SS"].worst_slew


def test_slew_within_limit_across_corners(report, tech):
    """The default flow leaves enough slew headroom for the slow corner."""
    assert report.worst_slew <= tech.max_slew
    assert report.slew_violations() == 0


def test_empty_corner_set_rejected(small_physical, tech):
    with pytest.raises(ValueError):
        analyze_corners(small_physical.extraction.network, tech, corners=())


def test_default_corner_set():
    assert [c.name for c in DEFAULT_CORNERS] == ["SS", "TT", "FF"]
