"""CLI surface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "--design", "ckt64"])
    assert args.command == "run" and args.policy == "smart"
    args = parser.parse_args(["compare", "--design", "ckt64", "--with-ml"])
    assert args.with_ml
    args = parser.parse_args(["sweep", "--design", "ckt64",
                              "--slacks", "0.5,0.2"])
    assert args.slacks == "0.5,0.2"


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_smart_on_tiny_design(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    rules_path = tmp_path / "rules.json"
    report_path = tmp_path / "wires.txt"
    code = main(["run", "--design", str(design_path),
                 "--policy", "smart",
                 "--save-rules", str(rules_path),
                 "--wire-report", str(report_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "smart" in out and "yes" in out
    assert rules_path.exists() and report_path.exists()
    payload = json.loads(rules_path.read_text())
    assert payload["schema"] == 1


def test_run_no_ndr_exits_nonzero_when_infeasible(tmp_path, capsys,
                                                  tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["run", "--design", str(design_path), "--policy", "no-ndr"])
    out = capsys.readouterr().out
    assert "no-ndr" in out
    assert code == 1  # infeasible -> nonzero exit


def test_compare_prints_summary(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["compare", "--design", str(design_path)])
    out = capsys.readouterr().out
    assert code == 0
    for token in ("no-ndr", "all-ndr", "smart", "saves"):
        assert token in out


def test_run_json_output(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["run", "--design", str(design_path), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["policy"] == "smart"
    assert payload["feasible"] is True
    assert payload["summary"]["power_uw"] > 0
    assert sum(payload["rule_histogram"].values()) > 0


def test_compare_json_parallel_matches_serial(tmp_path, capsys, tiny_design):
    """`--jobs 2` must reproduce the serial summaries bit for bit."""
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["--no-cache", "compare", "--design", str(design_path),
                 "--json"])
    serial = json.loads(capsys.readouterr().out)
    assert code == 0
    code = main(["--no-cache", "compare", "--design", str(design_path),
                 "--json", "--jobs", "2"])
    parallel = json.loads(capsys.readouterr().out)
    assert code == 0

    def strip_runtimes(payload):
        for row in payload["rows"]:
            row.pop("runtime_s")
        return payload

    assert strip_runtimes(parallel) == strip_runtimes(serial)
    assert isinstance(serial["smart_saving_pct"], float)
    assert {row["policy"] for row in serial["rows"]} == \
        {"no-ndr", "all-ndr", "smart"}


def test_cached_rerun_marks_cells_cached(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    main(["compare", "--design", str(design_path), "--json"])
    cold = json.loads(capsys.readouterr().out)
    main(["compare", "--design", str(design_path), "--json"])
    warm = json.loads(capsys.readouterr().out)
    assert all(row["cached"] for row in warm["rows"])
    for c, w in zip(cold["rows"], warm["rows"]):
        assert c["summary"] == w["summary"]


def test_sweep_prints_rows(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["sweep", "--design", str(design_path),
                 "--slacks", "0.6,0.2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0.60" in out and "0.20" in out
