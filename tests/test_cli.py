"""CLI surface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "--design", "ckt64"])
    assert args.command == "run" and args.policy == "smart"
    args = parser.parse_args(["compare", "--design", "ckt64", "--with-ml"])
    assert args.with_ml
    args = parser.parse_args(["sweep", "--design", "ckt64",
                              "--slacks", "0.5,0.2"])
    assert args.slacks == "0.5,0.2"


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_smart_on_tiny_design(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    rules_path = tmp_path / "rules.json"
    report_path = tmp_path / "wires.txt"
    code = main(["run", "--design", str(design_path),
                 "--policy", "smart",
                 "--save-rules", str(rules_path),
                 "--wire-report", str(report_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "smart" in out and "yes" in out
    assert rules_path.exists() and report_path.exists()
    payload = json.loads(rules_path.read_text())
    assert payload["schema"] == 1


def test_run_no_ndr_exits_nonzero_when_infeasible(tmp_path, capsys,
                                                  tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["run", "--design", str(design_path), "--policy", "no-ndr"])
    out = capsys.readouterr().out
    assert "no-ndr" in out
    assert code == 1  # infeasible -> nonzero exit


def test_compare_prints_summary(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["compare", "--design", str(design_path)])
    out = capsys.readouterr().out
    assert code == 0
    for token in ("no-ndr", "all-ndr", "smart", "saves"):
        assert token in out


def test_sweep_prints_rows(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["sweep", "--design", str(design_path),
                 "--slacks", "0.6,0.2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0.60" in out and "0.20" in out
