"""CLI surface."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "--design", "ckt64"])
    assert args.command == "run" and args.policy == "smart"
    args = parser.parse_args(["compare", "--design", "ckt64", "--with-ml"])
    assert args.with_ml
    args = parser.parse_args(["sweep", "--design", "ckt64",
                              "--slacks", "0.5,0.2"])
    assert args.slacks == "0.5,0.2"


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_smart_on_tiny_design(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    rules_path = tmp_path / "rules.json"
    report_path = tmp_path / "wires.txt"
    code = main(["run", "--design", str(design_path),
                 "--policy", "smart",
                 "--save-rules", str(rules_path),
                 "--wire-report", str(report_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "smart" in out and "yes" in out
    assert rules_path.exists() and report_path.exists()
    payload = json.loads(rules_path.read_text())
    assert payload["schema"] == 1


def test_run_no_ndr_exits_nonzero_when_infeasible(tmp_path, capsys,
                                                  tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["run", "--design", str(design_path), "--policy", "no-ndr"])
    out = capsys.readouterr().out
    assert "no-ndr" in out
    assert code == 1  # infeasible -> nonzero exit


def test_compare_prints_summary(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["compare", "--design", str(design_path)])
    out = capsys.readouterr().out
    assert code == 0
    for token in ("no-ndr", "all-ndr", "smart", "saves"):
        assert token in out


def test_run_json_output(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["run", "--design", str(design_path), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["policy"] == "smart"
    assert payload["feasible"] is True
    assert payload["summary"]["power_uw"] > 0
    assert sum(payload["rule_histogram"].values()) > 0


def test_compare_json_parallel_matches_serial(tmp_path, capsys, tiny_design):
    """`--jobs 2` must reproduce the serial summaries bit for bit."""
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["--no-cache", "compare", "--design", str(design_path),
                 "--json"])
    serial = json.loads(capsys.readouterr().out)
    assert code == 0
    code = main(["--no-cache", "compare", "--design", str(design_path),
                 "--json", "--jobs", "2"])
    parallel = json.loads(capsys.readouterr().out)
    assert code == 0

    def strip_runtimes(payload):
        for row in payload["rows"]:
            row.pop("runtime_s")
        return payload

    assert strip_runtimes(parallel) == strip_runtimes(serial)
    assert isinstance(serial["smart_saving_pct"], float)
    assert {row["policy"] for row in serial["rows"]} == \
        {"no-ndr", "all-ndr", "smart"}


def test_cached_rerun_marks_cells_cached(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    main(["compare", "--design", str(design_path), "--json"])
    cold = json.loads(capsys.readouterr().out)
    main(["compare", "--design", str(design_path), "--json"])
    warm = json.loads(capsys.readouterr().out)
    assert all(row["cached"] for row in warm["rows"])
    for c, w in zip(cold["rows"], warm["rows"]):
        assert c["summary"] == w["summary"]


def test_trace_flag_records_and_renders(tmp_path, capsys, tiny_design):
    """--trace writes a valid JSONL trace; `repro trace` renders it."""
    from repro import obs
    from repro.io import save_design
    from repro.obs.export import load_trace

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    trace_path = tmp_path / "trace.jsonl"
    code = main(["compare", "--design", str(design_path),
                 "--trace", str(trace_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "phase breakdown" in out
    assert obs.active() is None  # main() tears the tracer down

    trace = load_trace(trace_path)
    matrix = [s for s in trace.spans if s.name == obs.MATRIX_SPAN]
    cells = [s for s in trace.spans if s.name == obs.CELL_SPAN]
    assert len(matrix) == 1
    assert len(cells) >= 3
    assert all(c.parent_id == matrix[0].span_id for c in cells)

    code = main(["trace", str(trace_path)])
    out = capsys.readouterr().out
    assert code == 0
    for section in ("phase breakdown", "cell timeline", "critical path",
                    "metrics"):
        assert section in out

    code = main(["trace", str(trace_path), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["meta"]["schema"] == 1
    assert "runner.cell" in payload["phase_totals"]


def test_trace_subcommand_rejects_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    code = main(["trace", str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "trace:" in err
    assert main(["trace", str(tmp_path / "missing.jsonl")]) == 2
    capsys.readouterr()


def test_profile_flag_is_deprecated_trace_alias(tmp_path, capsys,
                                                tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["--profile", "run", "--design", str(design_path),
                 "--no-cache"])
    captured = capsys.readouterr()
    assert code == 0
    assert "deprecated" in captured.err
    assert "phase breakdown" in captured.out


def test_suite_json_flag_parses():
    args = build_parser().parse_args(["suite", "--json", "--jobs", "2"])
    assert args.command == "suite" and args.json and args.jobs == 2
    args = build_parser().parse_args(["compare", "--design", "ckt64",
                                      "--trace"])
    assert args.trace == ""
    args = build_parser().parse_args(["compare", "--design", "ckt64"])
    assert args.trace is None


def test_sweep_prints_rows(tmp_path, capsys, tiny_design):
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["sweep", "--design", str(design_path),
                 "--slacks", "0.6,0.2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0.60" in out and "0.20" in out
