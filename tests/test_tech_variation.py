"""Variation model validation."""

import pytest

from repro.tech.variation import VariationModel, default_variation_model


def test_default_model_valid():
    model = default_variation_model()
    assert 0.0 < model.width_sigma < 0.5
    assert model.corr_grid > 0.0


def test_sigma_bounds_enforced():
    with pytest.raises(ValueError):
        VariationModel(width_sigma=0.6)
    with pytest.raises(ValueError):
        VariationModel(thickness_sigma=-0.01)
    with pytest.raises(ValueError):
        VariationModel(buffer_rand_sigma=0.5)


def test_corr_grid_positive():
    with pytest.raises(ValueError):
        VariationModel(corr_grid=0.0)


def test_zero_variation_allowed():
    model = VariationModel(width_sigma=0.0, thickness_sigma=0.0,
                           buffer_d2d_sigma=0.0, buffer_rand_sigma=0.0)
    assert model.width_sigma == 0.0
