"""Seeded-corruption tests for the static verification layer.

Every registered check must (a) stay silent on a legitimately built
design and (b) fire a named diagnostic when its invariant is broken on
purpose.  Corruptions are injected into fresh per-test builds — the
session-scoped fixtures stay read-only.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.bench import generate_design
from repro.core.flow import run_flow
from repro.core.optimizer import SmartNdrOptimizer
from repro.core.policies import Policy
from repro.core.sensitivity import SensitivityCache
from repro.core.targets import RobustnessTargets
from repro.engine import AnalysisEngine
from repro.route.wires import RoutedWire
from repro.tech.ndr import W2S2, W4S2, RuleName, RoutingRule
from repro.verify import (Severity, VerificationError, VerifyContext,
                          assert_flow_clean, registered_checks, run_checks,
                          verify_flow, verify_physical)
from repro.verify import registry as verify_registry


def _errors(report, rule=None):
    return [d for d in report.errors if rule is None or d.rule == rule]


def _warnings(report, rule=None):
    return [d for d in report.warnings if rule is None or d.rule == rule]


@pytest.fixture
def tiny_flow(tech, tiny_spec):
    """A fresh SMART flow (engine attached) safe to corrupt."""
    return run_flow(generate_design(tiny_spec), tech, policy=Policy.SMART)


@pytest.fixture
def engine_ctx(make_tiny_physical, tech):
    """A fresh physical with an analysis engine wrapped in a context."""
    physical = make_tiny_physical()
    design = physical.design
    targets = RobustnessTargets.for_period(design.clock_period,
                                           tech.max_slew)
    engine = AnalysisEngine(physical.extraction, physical.tree, tech,
                            design.clock_freq, targets)
    return VerifyContext(
        tech=tech, tree=physical.tree, routing=physical.routing,
        extraction=physical.extraction, engine=engine,
        clock_period=design.clock_period, freq=design.clock_freq,
        design=design)


# -- registry / clean-design behaviour ----------------------------------------


def test_registry_has_full_catalogue():
    checks = registered_checks()
    assert len(checks) >= 10
    oracle = registered_checks(kinds=["oracle"])
    assert len(oracle) >= 3
    assert all(check.doc for check in checks), "every check is documented"
    assert len({check.rule for check in checks}) == len(checks)


def test_clean_flow_verifies_clean(tiny_flow):
    report = verify_flow(tiny_flow)
    assert not report.has_errors, report.render()
    assert len(report.checks_run) == len(registered_checks())
    assert tiny_flow.optimize is not None
    assert tiny_flow.optimize.engine is not None


def test_clean_physical_verifies_clean(make_tiny_physical):
    report = verify_physical(make_tiny_physical())
    assert not report.has_errors, report.render()


def test_run_checks_unknown_rule_raises(make_tiny_physical):
    ctx = VerifyContext.from_physical(make_tiny_physical())
    with pytest.raises(KeyError, match="no-such-rule"):
        run_checks(ctx, rules=["no-such-rule"])


def test_crashing_check_reported_not_masked(make_tiny_physical):
    from repro.verify.registry import register

    @register("test-crash", kind="drc")
    def check_crash(ctx):
        """Always crashes (test helper)."""
        raise RuntimeError("boom")

    try:
        ctx = VerifyContext.from_physical(make_tiny_physical())
        report = run_checks(ctx, rules=["test-crash"])
        errs = _errors(report, "test-crash")
        assert len(errs) == 1
        assert "boom" in errs[0].message
    finally:
        verify_registry._REGISTRY.pop("test-crash", None)


def test_report_render_and_json(make_tiny_physical):
    physical = make_tiny_physical()
    wid = physical.routing.clock_wires[0].wire_id
    del physical.extraction.wires[wid]
    report = verify_physical(physical, rules=["rc-wire-sites"])
    assert report.has_errors
    assert "rc-wire-sites" in report.render()
    payload = json.loads(report.to_json())
    assert any(d["rule"] == "rc-wire-sites" for d in payload["diagnostics"])


# -- domain DRC/ERC corruptions ------------------------------------------------


def test_track_overlap_fires_and_respects_overflow_budget(make_tiny_physical):
    physical = make_tiny_physical()
    tracks = physical.routing.tracks
    tracks.overflows = 0
    clean = verify_physical(physical, rules=["track-overlap"])
    assert not clean.diagnostics, "expected no pre-existing overlaps"

    wire = physical.routing.clock_wires[0]
    dup_id = max(w.wire_id for w in tracks.iter_wires()) + 1
    tracks.register(RoutedWire(
        wire_id=dup_id, net_name=wire.net_name, kind=wire.kind,
        segment=wire.segment, layer=wire.layer, track=wire.track,
        rule=wire.rule))
    report = verify_physical(physical, rules=["track-overlap"])
    assert _errors(report, "track-overlap")

    # The same overlap inside the recorded overflow budget is only WARN.
    tracks.overflows = 1
    report = verify_physical(physical, rules=["track-overlap"])
    assert not _errors(report, "track-overlap")
    assert _warnings(report, "track-overlap")


def test_blockage_overlap_fires(make_tiny_physical):
    physical = make_tiny_physical()
    tracks = physical.routing.tracks
    wire = next(w for w in physical.routing.clock_wires
                if w.segment.hi > w.segment.lo)
    tracks.block(wire.layer, wire.track, wire.segment.lo, wire.segment.hi)
    report = verify_physical(physical, rules=["blockage-overlap"])
    errs = _errors(report, "blockage-overlap")
    assert errs and errs[0].wire_id == wire.wire_id


def test_shield_continuity_fires(make_tiny_physical):
    physical = make_tiny_physical()
    tracks = physical.routing.tracks
    wire = next(w for w in physical.routing.clock_wires
                if w.segment.hi > w.segment.lo)

    # A foreign wire parked on the shield track breaks continuity: WARN.
    wire.shielded = True
    dup_id = max(w.wire_id for w in tracks.iter_wires()) + 1
    tracks.register(RoutedWire(
        wire_id=dup_id, net_name="aggressor", kind=wire.kind,
        segment=wire.segment, layer=wire.layer, track=wire.track + 1,
        rule=wire.rule))
    report = verify_physical(physical, rules=["shield-continuity"])
    assert any(d.wire_id == wire.wire_id
               for d in _warnings(report, "shield-continuity"))

    # A shield with no track to live on is structural: ERROR.
    wire.track = 0
    report = verify_physical(physical, rules=["shield-continuity"])
    assert _errors(report, "shield-continuity")


def test_ndr_spacing_warns_on_broken_guarantee(make_tiny_physical):
    physical = make_tiny_physical()
    for wire in physical.routing.clock_wires:
        physical.routing.assign_rule(wire.wire_id, W4S2)
    report = verify_physical(physical, rules=["ndr-spacing"])
    assert not _errors(report, "ndr-spacing"), "spacing gaps are WARN-only"
    assert _warnings(report, "ndr-spacing")


def test_rc_topology_fires_on_forward_parent(make_tiny_physical):
    physical = make_tiny_physical()
    stage = next(s for s in physical.extraction.network.stages
                 if len(s.nodes) >= 2)
    stage.nodes[1].parent = 1  # parents must strictly precede children
    report = verify_physical(physical, rules=["rc-topology"])
    assert _errors(report, "rc-topology")


def test_rc_values_fires_on_negative_resistance(make_tiny_physical):
    physical = make_tiny_physical()
    node = next(n for s in physical.extraction.network.stages
                for n in s.nodes if n.wire_id is not None)
    node.r = -abs(node.r) - 1.0
    report = verify_physical(physical, rules=["rc-values"])
    errs = _errors(report, "rc-values")
    assert errs and "negative resistance" in errs[0].message


def test_rc_wire_sites_fires_on_missing_parasitics(make_tiny_physical):
    physical = make_tiny_physical()
    wid = physical.routing.clock_wires[0].wire_id
    del physical.extraction.wires[wid]
    report = verify_physical(physical, rules=["rc-wire-sites"])
    assert any(d.wire_id == wid for d in _errors(report, "rc-wire-sites"))


def test_em_width_fires_on_subminimum_width(make_tiny_physical):
    physical = make_tiny_physical()
    wire = physical.routing.clock_wires[0]
    # The rule lattice cannot produce width_mult < 1; forge a corrupt
    # rule object bypassing validation, as a real corruption would.
    bad = object.__new__(RoutingRule)
    object.__setattr__(bad, "name", RuleName.W1S1)
    object.__setattr__(bad, "width_mult", 0.5)
    object.__setattr__(bad, "space_mult", 1.0)
    wire.rule = bad
    report = verify_physical(physical, rules=["em-width"])
    assert any(d.wire_id == wire.wire_id
               for d in _errors(report, "em-width"))


def test_delay_sanity_fires(make_tiny_physical, tech):
    physical = make_tiny_physical()
    network = physical.extraction.network
    stage_idx, stage = next(
        (i, s) for i, s in enumerate(network.stages) if s.sinks)
    stage.nodes[stage.sinks[0].node_idx].cap_fixed = -1.0e6
    report = verify_physical(physical, rules=["delay-sanity"])
    assert any(d.stage == stage_idx for d in _errors(report, "delay-sanity"))

    # Period-relative limit: a sub-ps "period" makes every delay WARN.
    fresh = physical.extraction
    ctx = VerifyContext(tech=tech, tree=physical.tree,
                        routing=physical.routing, extraction=fresh,
                        clock_period=1.0e-6)
    stage.nodes[stage.sinks[0].node_idx].cap_fixed = 0.0
    report = run_checks(ctx, rules=["delay-sanity"])
    assert _warnings(report, "delay-sanity")


def test_coupling_sanity_fires_on_total_mismatch(make_tiny_physical):
    physical = make_tiny_physical()
    wid = physical.routing.clock_wires[0].wire_id
    physical.extraction.wires[wid].cc_signal += 1.0
    report = verify_physical(physical, rules=["coupling-sanity"])
    assert any(d.wire_id == wid
               for d in _errors(report, "coupling-sanity"))


# -- engine-coherence oracle corruptions --------------------------------------


def test_cap_totals_fires_on_stale_cache(make_tiny_physical):
    physical = make_tiny_physical()
    extraction = physical.extraction
    _ = extraction.clock_wire_cap  # populate the cached total
    extraction._wire_cap_total += 1.0
    report = verify_physical(physical, rules=["cap-totals"])
    assert _errors(report, "cap-totals")


def test_network_rc_sync_fires_on_skipped_patch(make_tiny_physical):
    physical = make_tiny_physical()
    extraction = physical.extraction
    wid = physical.routing.clock_wires[0].wire_id
    para = extraction.wires[wid]
    # Store moved parasitics without patching the network: the classic
    # skipped patch_wire.
    extraction.set_wire(wid, dataclasses.replace(para, r=para.r * 2.0 + 0.1))
    report = verify_physical(physical, rules=["network-rc-sync"])
    assert any(d.wire_id == wid
               for d in _errors(report, "network-rc-sync"))


def test_extraction_fresh_fires_on_skipped_dirty_bit(make_tiny_physical):
    physical = make_tiny_physical()
    wire = next(w for w in physical.routing.clock_wires
                if w.rule.is_default and w.segment.hi > w.segment.lo)
    # Assign a rule straight on the routing, bypassing re-extraction.
    physical.routing.assign_rule(wire.wire_id, W2S2)
    report = verify_physical(physical, rules=["extraction-fresh"])
    assert any(d.wire_id == wire.wire_id
               for d in _errors(report, "extraction-fresh"))


def test_neighbor_index_sync_fires_on_stale_record(make_tiny_physical):
    physical = make_tiny_physical()
    extraction = physical.extraction
    tracks = physical.routing.tracks
    wires = physical.routing.clock_wires
    wire = next(w for w in wires if tracks.neighbors_of(w))
    extraction.record_neighbors(wire.wire_id, [])
    report = verify_physical(physical, rules=["neighbor-index-sync"])
    assert any(d.wire_id == wire.wire_id
               for d in _errors(report, "neighbor-index-sync"))


def test_kernel_sync_fires_on_stale_array(engine_ctx):
    # stage_view float arrays alias live kernel storage on every
    # backend, so this mutation corrupts the real compiled state
    kernel_stage = engine_ctx.engine.kernel.stage_view(0)
    kernel_stage.cap_fixed[0] += 1.0
    report = run_checks(engine_ctx, rules=["kernel-sync"])
    errs = _errors(report, "kernel-sync")
    assert errs and "cap_fixed" in errs[0].message


def test_frozen_mc_sync_fires_on_skipped_refresh(engine_ctx):
    frozen = engine_ctx.engine.frozen
    wid = engine_ctx.routing.clock_wires[0].wire_id
    frozen.area_scale[wid] = frozen.area_scale[wid] * 1.25
    report = run_checks(engine_ctx, rules=["frozen-mc-sync"])
    assert any(d.wire_id == wid
               for d in _errors(report, "frozen-mc-sync"))


def test_sens_cache_sync_fires_on_poisoned_entry(make_tiny_physical, tech):
    physical = make_tiny_physical()
    cache = SensitivityCache(physical.routing, tech.rules)
    wid = physical.routing.clock_wires[0].wire_id
    para = cache.parasitics(wid, W2S2, False)
    key = (wid, W2S2.name.value, False, cache.occupancy(wid))
    cache._cache[key] = dataclasses.replace(para, r=para.r * 3.0 + 1.0)
    ctx = VerifyContext(tech=tech, tree=physical.tree,
                        routing=physical.routing,
                        extraction=physical.extraction, sens_cache=cache)
    report = run_checks(ctx, rules=["sens-cache-sync"])
    assert any(d.wire_id == wid
               for d in _errors(report, "sens-cache-sync"))


# -- integration hooks ---------------------------------------------------------


def test_optimizer_verify_every_runs_clean(make_tiny_physical, tech):
    physical = make_tiny_physical()
    design = physical.design
    targets = RobustnessTargets.for_period(design.clock_period,
                                           tech.max_slew)
    opt = SmartNdrOptimizer(physical.tree, physical.routing, tech,
                            targets, design.clock_freq, verify_every=1)
    result = opt.run()  # oracle runs every iteration; must not raise
    assert result.engine is not None


def test_assert_flow_clean_raises_on_corruption(tiny_flow):
    extraction = tiny_flow.physical.extraction
    _ = extraction.clock_wire_cap
    extraction._wire_cap_total += 1.0
    with pytest.raises(VerificationError, match="cap-totals"):
        assert_flow_clean(tiny_flow, "corrupted tiny flow")


def test_severity_ordering():
    assert Severity.INFO < Severity.WARN < Severity.ERROR
    assert str(Severity.ERROR) == "ERROR"


def test_cli_lint_list_checks(capsys):
    from repro.cli import main

    assert main(["lint", "--list-checks"]) == 0
    out = capsys.readouterr().out
    assert "track-overlap" in out and "kernel-sync" in out


def test_cli_lint_requires_design(capsys):
    from repro.cli import main

    assert main(["lint"]) == 2
