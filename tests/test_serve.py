"""The flow service: coalescing, caching, HTTP protocol, shutdown."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.serve import (ApiError, Coalescer, Router, ServeConfig,
                         ServeDaemon, response_store_key)
from repro.serve.router import HttpResponse, parse_request_head


# -- coalescer ----------------------------------------------------------------


def test_concurrent_identical_keys_compute_once():
    calls = []

    async def main():
        coalescer = Coalescer()

        async def supplier():
            calls.append(1)
            await asyncio.sleep(0.01)  # hold the key in flight
            return {"answer": 42}

        results = await asyncio.gather(*[
            coalescer.run("k", supplier) for _ in range(8)])
        return coalescer, results

    coalescer, results = asyncio.run(main())
    assert len(calls) == 1
    assert coalescer.computations == 1
    assert coalescer.coalesced == 7
    assert all(value == {"answer": 42} for value, _ in results)
    assert sum(1 for _, coalesced in results if coalesced) == 7
    assert coalescer.inflight == 0 and coalescer.waiters("k") == 0


def test_distinct_keys_compute_separately():
    async def main():
        coalescer = Coalescer()

        async def supplier(i):
            await asyncio.sleep(0.005)
            return i

        await asyncio.gather(*[
            coalescer.run(f"k{i}", lambda i=i: supplier(i))
            for i in range(4)])
        return coalescer

    coalescer = asyncio.run(main())
    assert coalescer.computations == 4 and coalescer.coalesced == 0


def test_failures_propagate_and_clear_the_key():
    async def main():
        coalescer = Coalescer()

        async def boom():
            await asyncio.sleep(0.005)
            raise RuntimeError("flow exploded")

        outcomes = await asyncio.gather(
            *[coalescer.run("k", boom) for _ in range(3)],
            return_exceptions=True)

        async def fine():
            return "recovered"

        retry, coalesced = await coalescer.run("k", fine)
        return coalescer, outcomes, retry, coalesced

    coalescer, outcomes, retry, coalesced = asyncio.run(main())
    assert all(isinstance(o, RuntimeError) for o in outcomes)
    assert retry == "recovered" and not coalesced
    assert coalescer.computations == 2  # the failure and the retry


def test_pin_hooks_balance_and_span_the_flight():
    events = []

    async def main():
        coalescer = Coalescer(
            on_first=lambda k: events.append(("pin", k)),
            on_last=lambda k: events.append(("unpin", k)))

        async def supplier():
            await asyncio.sleep(0.01)
            # Every waiter joined while in flight: all are pinned now.
            events.append(("inflight_waiters", coalescer.waiters("k")))
            return "v"

        await asyncio.gather(*[coalescer.run("k", supplier)
                               for _ in range(5)])
        return coalescer

    asyncio.run(main())
    assert events[0] == ("pin", "k") and events[-1] == ("unpin", "k")
    assert events.count(("pin", "k")) == 1
    assert events.count(("unpin", "k")) == 1
    assert ("inflight_waiters", 5) in events


# -- router / http plumbing ---------------------------------------------------


def test_parse_request_head():
    method, path, query, headers = parse_request_head(
        b"POST /v1/run?stream=1 HTTP/1.1\r\nHost: x\r\n"
        b"Content-Length: 2")
    assert (method, path) == ("POST", "/v1/run")
    assert query == {"stream": "1"}
    assert headers == {"host": "x", "content-length": "2"}
    with pytest.raises(ApiError):
        parse_request_head(b"garbage")


def test_router_dispatch_errors():
    router = Router()

    async def ok(_req):
        return HttpResponse(payload={})

    router.add("GET", "/v1/x", ok)
    assert router.resolve("get", "/v1/x") is ok
    with pytest.raises(ApiError) as not_found:
        router.resolve("GET", "/v1/y")
    assert not_found.value.status == 404
    with pytest.raises(ApiError) as bad_method:
        router.resolve("POST", "/v1/x")
    assert bad_method.value.status == 405


# -- the daemon ---------------------------------------------------------------


async def _post(port, path, payload, raw_body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = raw_body if raw_body is not None else json.dumps(payload).encode()
    writer.write((f"POST {path} HTTP/1.1\r\nHost: t\r\n"
                  f"Content-Length: {len(body)}\r\n\r\n").encode() + body)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, rest = data.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), rest


async def _post_json(port, path, payload):
    status, rest = await _post(port, path, payload)
    return status, json.loads(rest)


async def _get_json(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, rest = data.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), json.loads(rest)


@pytest.fixture(scope="module")
def tiny_ref(tmp_path_factory, tiny_design):
    from repro.io import save_design

    path = tmp_path_factory.mktemp("serve") / "tiny.json"
    save_design(tiny_design, path)
    return str(path)


def _daemon_config(tmp_path, **overrides):
    defaults = dict(port=0, workers=1, store_root=str(tmp_path / "store"))
    defaults.update(overrides)
    return ServeConfig(**defaults)


def test_daemon_coalesces_and_caches(tmp_path, tiny_ref):
    """N identical concurrent requests -> exactly one computation."""
    async def main():
        daemon = ServeDaemon(_daemon_config(tmp_path))
        await daemon.start()
        try:
            payload = {"design": tiny_ref, "policy": "smart", "slack": 0.3}
            results = await asyncio.gather(*[
                _post_json(daemon.port, "/v1/run", payload)
                for _ in range(6)])
            repeat = await _post_json(daemon.port, "/v1/run", payload)
            stats = daemon.stats()
            return daemon, results, repeat, stats
        finally:
            await daemon.stop()

    daemon, results, repeat, stats = asyncio.run(main())
    assert all(status == 200 and env["status"] == "ok"
               for status, env in results)
    powers = {env["result"]["summary"]["power_uw"] for _, env in results}
    assert len(powers) == 1  # everyone got the same computed report
    # The proof: one computation, one pool submission, 5 coalesced.
    assert stats["coalescer"]["computations"] == 1
    assert stats["pool"]["submitted"] == 1
    assert sum(1 for _, env in results if env["coalesced"]) == 5
    # A later identical request is a response-cache hit, not a rerun.
    status, env = repeat
    assert status == 200 and env["cached"] and not env["coalesced"]
    assert stats["counters"]["response_cache_hits"] == 1
    keys = {env["key"] for _, env in results}
    assert keys == {repeat[1]["key"]} and None not in keys


def test_daemon_http_errors_and_stats(tmp_path):
    async def main():
        daemon = ServeDaemon(_daemon_config(tmp_path, warm=False))
        await daemon.start()
        try:
            out = {}
            out["bad_json"] = await _post(daemon.port, "/v1/run", None,
                                          raw_body=b"{nope")
            out["bad_field"] = await _post_json(
                daemon.port, "/v1/run", {"design": "x", "slcak": 1})
            out["no_design"] = await _post_json(daemon.port, "/v1/run", {})
            out["wrong_kind"] = await _post_json(
                daemon.port, "/v1/sweep", {"kind": "run", "design": "x"})
            out["not_found"] = await _get_json(daemon.port, "/v1/nope")
            out["health"] = await _get_json(daemon.port, "/v1/health")
            out["stats"] = await _get_json(daemon.port, "/v1/stats")
            out["store_stats"] = await _get_json(daemon.port,
                                                 "/v1/store/stats")
            out["gc"] = await _post_json(daemon.port, "/v1/store/gc",
                                         {"max_bytes": 0})
            return out
        finally:
            await daemon.stop()

    out = asyncio.run(main())
    assert out["bad_json"][0] == 400
    assert out["bad_field"][0] == 400
    assert "slcak" in out["bad_field"][1]["error"]
    assert out["no_design"][0] == 400
    assert out["wrong_kind"][0] == 400
    assert out["not_found"][0] == 404
    assert out["health"][0] == 200
    assert out["health"][1]["status"] == "ok"
    assert out["health"][1]["workers"] == 1
    assert "/v1/run" in out["health"][1]["endpoints"]
    assert out["stats"][1]["coalescer"]["computations"] == 0
    assert out["store_stats"][1]["store"]["disk_entries"] == 0
    assert out["gc"][1]["evicted"] == 0


def test_daemon_streams_request_events(tmp_path, tiny_ref):
    async def main():
        daemon = ServeDaemon(_daemon_config(tmp_path))
        await daemon.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.port)
            body = json.dumps({"design": tiny_ref, "slack": 0.3}).encode()
            writer.write((f"POST /v1/run?stream=1&trace=1 HTTP/1.1\r\n"
                          f"Host: t\r\nContent-Length: {len(body)}"
                          "\r\n\r\n").encode() + body)
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return raw
        finally:
            await daemon.stop()

    raw = asyncio.run(main())
    head, _, payload = raw.partition(b"\r\n\r\n")
    assert b"chunked" in head
    # De-chunk: every line that parses as JSON is an event.
    events = [json.loads(line) for line in payload.split(b"\n")
              if line.strip().startswith(b"{")]
    assert [e["event"] for e in events] == ["accepted", "done"]
    done = events[-1]
    assert done["result"]["summary"]["power_uw"] > 0
    # The worker's span tree rode back with the response.
    names = {r["name"] for r in done["trace"]["records"]}
    assert "serve.request" in names


def test_daemon_shutdown_endpoint_is_clean(tmp_path):
    async def main():
        daemon = ServeDaemon(_daemon_config(tmp_path, warm=False))
        await daemon.start()
        status, env = await _post_json(daemon.port, "/v1/shutdown", {})
        await asyncio.wait_for(daemon.run_until_shutdown(), timeout=10)
        return status, env

    status, env = asyncio.run(main())
    assert status == 200 and env == {"status": "ok", "stopping": True}
    assert obs.active() is None  # the daemon's tracer was uninstalled


def test_eviction_never_removes_inflight_response(tmp_path, tiny_ref):
    """GC under a zero budget while a request is in flight: the pinned
    response artifact survives; everything else is evictable."""
    async def main():
        daemon = ServeDaemon(_daemon_config(tmp_path, max_store_bytes=0))
        await daemon.start()
        try:
            payload = {"design": tiny_ref, "slack": 0.3}
            waiters = [asyncio.create_task(
                _post_json(daemon.port, "/v1/run", payload))
                for _ in range(3)]
            # Let the request reach the coalescer (pin installed).
            await asyncio.sleep(0.05)
            from repro.api import FlowRequest

            key = FlowRequest.from_dict(
                {**payload, "kind": "run"}).content_key()
            pinned_key = response_store_key(key)
            assert daemon.store.pinned(pinned_key)
            swept = daemon.store.gc(max_bytes=0)
            results = await asyncio.gather(*waiters)
            # The response survived the zero-budget sweep and every
            # waiter read a full result.
            assert daemon.store.has(pinned_key)
            return daemon, swept, results
        finally:
            await daemon.stop()

    daemon, swept, results = asyncio.run(main())
    assert all(status == 200 and env["result"]["summary"]["power_uw"] > 0
               for status, env in results)
    # After the last waiter left, the pin is released: a later sweep
    # under the same budget may evict it.
    assert not daemon.store.pinned(
        response_store_key(results[0][1]["key"]))
