"""Unit-level behavior of the optimizer's per-constraint planners."""

import pytest

from repro.bench import generate_design
from repro.core.evaluation import analyze_all
from repro.core.features import wire_contexts
from repro.core.flow import build_physical_design
from repro.core.optimizer import Move, SmartNdrOptimizer
from repro.core.targets import RobustnessTargets
from repro.tech import rule_by_name


LOOSE = RobustnessTargets(max_worst_delta=1e6, max_skew_3sigma=1e6,
                          max_slew=1e6, max_em_util=1e6)


@pytest.fixture
def setup(small_spec, tech):
    phys = build_physical_design(generate_design(small_spec), tech)
    freq = phys.design.clock_freq
    opt = SmartNdrOptimizer(phys.tree, phys.routing, tech, LOOSE, freq)
    analyses = analyze_all(phys.extraction, tech, freq, LOOSE)
    contexts = wire_contexts(phys.tree, phys.extraction)
    return phys, opt, analyses, contexts


def test_move_label():
    move = Move(rule_by_name("W2S1"))
    assert move.label == "W2S1"
    assert Move(rule_by_name("W1S2"), shielded=True).label == "W1S2+SH"


def test_plan_em_fixes_every_violator(setup, tech):
    phys, opt, analyses, contexts = setup
    opt.targets = RobustnessTargets(max_worst_delta=1e6, max_skew_3sigma=1e6,
                                    max_slew=1e6, max_em_util=1.0)
    plan = {}
    opt._plan_em(analyses, contexts, plan)
    violators = {v.wire_id for v in analyses.em.wires if v.utilization > 1.0}
    assert violators  # the benchmark has some
    assert violators <= set(plan)
    for wire_id in violators:
        move = plan[wire_id]
        # The planned rule's width brings utilisation under the limit.
        record = analyses.em.utilization_of(wire_id)
        wire = phys.routing.tracks.wire(wire_id)
        scale = wire.rule.width_mult / move.rule.width_mult
        assert record * scale <= 1.35  # cap growth adds a bit back


def test_plan_em_prefers_minimal_width(setup, tech):
    """A mild violator gets W2, not W4."""
    phys, opt, analyses, contexts = setup
    opt.targets = RobustnessTargets(max_worst_delta=1e6, max_skew_3sigma=1e6,
                                    max_slew=1e6, max_em_util=1.0)
    plan = {}
    opt._plan_em(analyses, contexts, plan)
    mild = [v for v in analyses.em.violations if v.utilization < 1.6]
    for record in mild:
        if record.wire_id in plan:
            assert plan[record.wire_id].rule.width_mult <= 2.0


def test_plan_delta_targets_offender_wires(setup, tech):
    phys, opt, analyses, contexts = setup
    budget = analyses.crosstalk.worst_delta * 0.5
    opt.targets = RobustnessTargets(max_worst_delta=budget,
                                    max_skew_3sigma=1e6, max_slew=1e6,
                                    max_em_util=1e6)
    plan = {}
    opt._plan_delta(phys.extraction, analyses, contexts, plan)
    assert plan  # something planned
    # Every planned move strictly upgrades (dominates the current rule).
    for wire_id, move in plan.items():
        current = phys.routing.tracks.wire(wire_id).rule
        assert move.rule.dominates(current)
        assert move.rule != current or move.shielded


def test_plan_sigma_scales_with_excess(setup, tech):
    phys, opt, analyses, contexts = setup
    tight = analyses.mc.skew_3sigma * 0.9
    very_tight = analyses.mc.skew_3sigma * 0.55
    plans = {}
    for label, budget in (("tight", tight), ("very", very_tight)):
        opt.targets = RobustnessTargets(max_worst_delta=1e6,
                                        max_skew_3sigma=budget,
                                        max_slew=1e6, max_em_util=1e6)
        plan = {}
        opt._plan_sigma(phys.extraction, analyses, contexts, plan, 1.0)
        plans[label] = plan
    assert len(plans["very"]) >= len(plans["tight"]) > 0
    for move in plans["very"].values():
        assert move.rule.width_mult >= 2.0  # sigma planner widens


def test_shield_moves_only_when_enabled(setup, tech):
    phys, opt, analyses, contexts = setup
    budget = analyses.crosstalk.worst_delta * 0.5
    opt.targets = RobustnessTargets(max_worst_delta=budget,
                                    max_skew_3sigma=1e6, max_slew=1e6,
                                    max_em_util=1e6)
    plan = {}
    opt._plan_delta(phys.extraction, analyses, contexts, plan)
    assert not any(m.shielded for m in plan.values())
    opt.use_shielding = True
    plan2 = {}
    opt._plan_delta(phys.extraction, analyses, contexts, plan2)
    # Shield moves are at least considered; whether any wins depends on
    # costs, so only check the mechanism doesn't corrupt the plan.
    for wire_id, move in plan2.items():
        wire = phys.routing.tracks.wire(wire_id)
        assert move.rule.dominates(wire.rule)


def test_violation_score_normalisation(setup):
    _phys, opt, _analyses, _contexts = setup
    opt.targets = RobustnessTargets(max_worst_delta=2.0, max_skew_3sigma=4.0,
                                    max_slew=80.0, max_em_util=1.0)
    score = opt._violation_score({"delta_delay": 1.0, "skew_3sigma": 2.0})
    assert score == pytest.approx(1.0)  # 1/2 + 2/4
