"""Zero-skew embedding: the Elmore balance invariant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cts.embedding import embed_zero_skew, _snake_length, _wire_delay
from repro.cts.topology import build_topology
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.design import Design
from repro.tech import default_technology


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def _embedded_tree(n, tech, spread=200.0):
    design = Design(name="t", die=Rect(0, 0, spread, spread))
    for i in range(n):
        x = (i * 37) % 97 * spread / 97.0
        y = (i * 61) % 89 * spread / 89.0
        design.add_flop(f"ff{i}", Point(x, y), clock_pin_cap=1.8)
    tree = build_topology(design.clock_sinks)
    embed_zero_skew(tree, tech)
    return tree


def _unbuffered_elmore_skew(tree, tech):
    """Recompute root-to-sink Elmore delays over the logical tree."""
    rule = tech.default_rule
    lh = tech.layer_for(True)
    lv = tech.layer_for(False)
    r = (lh.resistance_per_um(rule.width_on(lh))
         + lv.resistance_per_um(rule.width_on(lv))) / 2.0
    c = (lh.isolated_cap_per_um(rule.width_on(lh))
         + lv.isolated_cap_per_um(rule.width_on(lv))) / 2.0

    # Downstream caps.
    down = {}
    for node in tree.postorder():
        cap = node.sink_pin.cap if node.is_sink else 0.0
        for child_id in node.children:
            cap += down[child_id] + c * tree.edge_length(child_id)
        down[node.node_id] = cap

    # Root-to-sink delays.
    delay = {tree.root_id: 0.0}
    for node in tree.topo_order():
        for child_id in node.children:
            length = tree.edge_length(child_id)
            delay[child_id] = delay[node.node_id] + r * length * (
                c * length / 2.0 + down[child_id])
    sink_delays = [delay[s.node_id] for s in tree.sinks()]
    return max(sink_delays) - min(sink_delays), max(sink_delays)


@pytest.mark.parametrize("n", [2, 5, 16, 33])
def test_embedding_is_elmore_zero_skew(n, tech):
    tree = _embedded_tree(n, tech)
    skew, latency = _unbuffered_elmore_skew(tree, tech)
    # Exact merge: skew should be numerically zero relative to latency.
    assert skew <= max(1e-6, 1e-6 * latency)


def test_single_sink_trivial(tech):
    tree = _embedded_tree(1, tech)
    assert len(tree) == 1


def test_internal_nodes_inside_children_bbox(tech):
    tree = _embedded_tree(16, tech)
    for node in tree:
        if node.is_leaf:
            continue
        xs, ys = [], []
        for nid in tree.subtree_ids(node.node_id):
            leaf = tree.node(nid)
            if leaf.is_leaf:
                xs.append(leaf.location.x)
                ys.append(leaf.location.y)
        assert min(xs) - 1e-9 <= node.location.x <= max(xs) + 1e-9
        assert min(ys) - 1e-9 <= node.location.y <= max(ys) + 1e-9


def test_snakes_are_nonnegative(tech):
    tree = _embedded_tree(33, tech)
    for node in tree:
        assert node.snake >= 0.0


def test_wire_delay_helper():
    # r*l*(c*l/2 + cl): 0.001 * 100 * (0.2*50 + 5) = 1.5
    assert _wire_delay(0.001, 0.2, 100.0, 5.0) == pytest.approx(1.5)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 400), st.integers(0, 400)),
                min_size=2, max_size=24, unique=True))
def test_embedding_zero_skew_random_sinks(coords):
    """The zero-skew invariant holds for arbitrary sink placements."""
    tech = default_technology()
    design = Design(name="h", die=Rect(0, 0, 400, 400))
    for i, (x, y) in enumerate(coords):
        design.add_flop(f"ff{i}", Point(float(x), float(y)), 1.8)
    tree = build_topology(design.clock_sinks)
    embed_zero_skew(tree, tech)
    skew, latency = _unbuffered_elmore_skew(tree, tech)
    assert skew <= max(1e-6, 1e-6 * latency)


def test_snake_length_inverts_wire_delay():
    r, c, cl = 0.001, 0.2, 5.0
    for gap in (0.5, 2.0, 10.0):
        length = _snake_length(r, c, gap, cl)
        assert _wire_delay(r, c, length, cl) == pytest.approx(gap, rel=1e-9)
    assert _snake_length(r, c, 0.0, cl) == 0.0
    assert _snake_length(r, c, -1.0, cl) == 0.0
