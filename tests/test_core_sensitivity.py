"""Rule what-if evaluation."""

import pytest

from repro.core.features import wire_contexts
from repro.core.sensitivity import evaluate_rule, rule_sensitivities
from repro.reliability.em import DEFAULT_EM_FACTOR
from repro.tech import RULE_SET, rule_by_name


@pytest.fixture(scope="module")
def setup(small_physical, small_design):
    contexts = wire_contexts(small_physical.tree, small_physical.extraction)
    # Pick a wire with aggressor coupling for interesting assertions.
    routing = small_physical.routing
    wire_id = max(
        contexts,
        key=lambda wid: small_physical.extraction.wires[wid].cc_signal)
    return routing, contexts, wire_id, small_design.clock_freq


def _sens(routing, contexts, wire_id, freq, rule_name, tech):
    return evaluate_rule(routing, wire_id, rule_by_name(rule_name),
                         contexts[wire_id], freq, tech.vdd,
                         DEFAULT_EM_FACTOR)


def test_rule_restored_after_evaluation(setup, tech):
    routing, contexts, wire_id, freq = setup
    before = routing.tracks.wire(wire_id).rule
    _sens(routing, contexts, wire_id, freq, "W4S2", tech)
    assert routing.tracks.wire(wire_id).rule is before


def test_width_upgrade_halves_resistance_and_em(setup, tech):
    routing, contexts, wire_id, freq = setup
    base = _sens(routing, contexts, wire_id, freq, "W1S1", tech)
    wide = _sens(routing, contexts, wire_id, freq, "W2S1", tech)
    assert wide.parasitics.r == pytest.approx(base.parasitics.r / 2)
    assert wide.em_util == pytest.approx(base.em_util / 2)
    assert wide.sigma_score < base.sigma_score / 2.5  # (1/2 rel noise)*(1/2 R)


def test_spacing_upgrade_cuts_coupling_not_em(setup, tech):
    routing, contexts, wire_id, freq = setup
    base = _sens(routing, contexts, wire_id, freq, "W1S1", tech)
    spaced = _sens(routing, contexts, wire_id, freq, "W1S2", tech)
    assert spaced.parasitics.cc_signal < base.parasitics.cc_signal
    assert spaced.em_util == pytest.approx(base.em_util)
    assert spaced.dd_own < base.dd_own


def test_cost_structure(setup, tech):
    routing, contexts, wire_id, freq = setup
    base = _sens(routing, contexts, wire_id, freq, "W1S1", tech)
    wide = _sens(routing, contexts, wire_id, freq, "W2S1", tech)
    spaced = _sens(routing, contexts, wire_id, freq, "W1S2", tech)
    # Width costs capacitance even with zero track price.
    assert wide.cost_vs(base, lambda_track=0.0) > 0.0
    # Spacing is nearly free in cap (coupling shrinks) but costs tracks.
    assert spaced.cost_vs(base, lambda_track=0.0) <= 0.0
    assert spaced.cost_vs(base, lambda_track=0.1) > spaced.cost_vs(
        base, lambda_track=0.0)


def test_track_length_matches_rule_span(setup, tech):
    routing, contexts, wire_id, freq = setup
    wire = routing.tracks.wire(wire_id)
    for rule in RULE_SET:
        s = _sens(routing, contexts, wire_id, freq, rule.name.value, tech)
        assert s.track_length == pytest.approx(
            (rule.track_span - 1) * wire.segment.length)


def test_rule_sensitivities_covers_all_rules(setup, tech):
    routing, contexts, wire_id, freq = setup
    table = rule_sensitivities(routing, wire_id, contexts[wire_id],
                               RULE_SET, freq, tech.vdd, DEFAULT_EM_FACTOR)
    assert set(table) == {r.name.value for r in RULE_SET}
    # Monotone EM utilisation along the width axis.
    assert table["W4S2"].em_util < table["W2S2"].em_util < table["W1S2"].em_util
