"""AOCV derated skew."""

import pytest

from repro.timing.arrival import analyze_clock_timing
from repro.timing.montecarlo import run_monte_carlo
from repro.timing.ocv import OcvDerates, analyze_ocv


@pytest.fixture(scope="module")
def report(small_physical, tech):
    return analyze_ocv(small_physical.extraction.network, tech)


def test_derate_validation():
    with pytest.raises(ValueError):
        OcvDerates(base=0.6)
    with pytest.raises(ValueError):
        OcvDerates().late(0)


def test_aocv_shrinks_with_depth():
    d = OcvDerates(base=0.06, aocv=True)
    assert d.late(1) == pytest.approx(1.06)
    assert d.late(4) == pytest.approx(1.03)
    assert d.early(4) == pytest.approx(0.97)
    flat = OcvDerates(base=0.06, aocv=False)
    assert flat.late(9) == pytest.approx(1.06)


def test_zero_derate_reproduces_nominal(small_physical, tech):
    report = analyze_ocv(small_physical.extraction.network, tech,
                         OcvDerates(base=0.0))
    timing = analyze_clock_timing(small_physical.extraction.network, tech)
    assert report.skew_ocv == pytest.approx(timing.skew, abs=1e-9)
    assert report.pessimism == pytest.approx(0.0, abs=1e-9)
    assert report.nominal_skew == pytest.approx(timing.skew, abs=1e-9)


def test_late_early_bracket_nominal(report, small_physical, tech):
    timing = analyze_clock_timing(small_physical.extraction.network, tech)
    arrivals = {s.pin.full_name: s.arrival for s in timing.sinks}
    for pin, nominal in arrivals.items():
        assert report.early_arrivals[pin] <= nominal + 1e-9
        assert report.late_arrivals[pin] >= nominal - 1e-9


def test_derated_skew_exceeds_nominal(report):
    assert report.skew_ocv > report.nominal_skew
    assert report.pessimism > 0.0


def test_flat_ocv_more_pessimistic_than_aocv(small_physical, tech):
    network = small_physical.extraction.network
    aocv = analyze_ocv(network, tech, OcvDerates(base=0.05, aocv=True))
    flat = analyze_ocv(network, tech, OcvDerates(base=0.05, aocv=False))
    assert flat.skew_ocv > aocv.skew_ocv


def test_ocv_bounds_monte_carlo(small_physical, tech):
    """The derated bound should cover the MC 3-sigma skew (that is what
    the derate base is for) without being absurdly loose."""
    network = small_physical.extraction.network
    mc = run_monte_carlo(network, small_physical.extraction.wires,
                         small_physical.routing, tech, n_samples=200,
                         seed=5)
    ocv = analyze_ocv(network, tech, OcvDerates(base=0.05))
    assert ocv.skew_ocv > mc.skew_3sigma * 0.8
    assert ocv.skew_ocv < mc.skew_3sigma * 10.0
