"""Useful-skew scheduling and offset-aware trimming."""

import pytest

from repro.cts.refine import refine_skew
from repro.cts.usefulskew import (TimingPath, apply_useful_skew,
                                  path_hold_slack_with_offsets,
                                  path_slack_with_offsets, schedule_offsets,
                                  worst_hold_slack, worst_path_slack)


def test_positive_slack_paths_untouched():
    paths = [TimingPath("a/CK", "b/CK", slack=5.0)]
    assert schedule_offsets(paths) == {}


def test_single_failing_path_repaired():
    paths = [TimingPath("a/CK", "b/CK", slack=-8.0)]
    offsets = schedule_offsets(paths)
    assert worst_path_slack(paths, offsets) >= -1e-9
    # Capture moved later, launch earlier.
    assert offsets["b/CK"] > 0.0
    assert offsets["a/CK"] < 0.0


def test_offset_window_respected():
    paths = [TimingPath("a/CK", "b/CK", slack=-100.0)]
    offsets = schedule_offsets(paths, max_offset=10.0)
    assert all(abs(v) <= 10.0 + 1e-9 for v in offsets.values())
    # The window binds: the path cannot be fully repaired.
    assert worst_path_slack(paths, offsets) < 0.0
    assert worst_path_slack(paths, offsets) == pytest.approx(-80.0)


def test_chained_paths_do_not_fight():
    """b is capture of one path and launch of another: relaxation must
    settle rather than oscillate."""
    paths = [
        TimingPath("a/CK", "b/CK", slack=-6.0),
        TimingPath("b/CK", "c/CK", slack=-6.0),
    ]
    offsets = schedule_offsets(paths)
    assert worst_path_slack(paths, offsets) >= -1e-6


def test_slack_accounting():
    path = TimingPath("a/CK", "b/CK", slack=-4.0)
    assert path_slack_with_offsets(path, {"b/CK": 6.0}) == pytest.approx(2.0)
    assert path_slack_with_offsets(path, {"a/CK": 6.0}) == pytest.approx(-10.0)


def test_validation():
    with pytest.raises(ValueError):
        schedule_offsets([], max_offset=0.0)
    with pytest.raises(ValueError):
        worst_path_slack([], {})
    with pytest.raises(ValueError):
        worst_hold_slack([], {})
    with pytest.raises(ValueError):
        schedule_offsets([], max_offset=10.0, min_positive=20.0)


def test_hold_slack_accounting():
    path = TimingPath("a/CK", "b/CK", slack=-4.0, hold_slack=10.0)
    # Capture later eats hold one-for-one.
    assert path_hold_slack_with_offsets(path, {"b/CK": 6.0}) == \
        pytest.approx(4.0)
    # Launch later restores it.
    assert path_hold_slack_with_offsets(path, {"a/CK": 3.0, "b/CK": 6.0}) \
        == pytest.approx(7.0)


def test_hold_limits_capture_offset():
    """The capture flop's incoming hold margin caps its useful skew."""
    paths = [
        TimingPath("a/CK", "b/CK", slack=-12.0),             # wants b +12
        TimingPath("c/CK", "b/CK", slack=50.0, hold_slack=5.0),  # caps b at +5
    ]
    offsets = schedule_offsets(paths, capture_only=True, hold_margin=0.0)
    assert offsets.get("b/CK", 0.0) <= 5.0 + 1e-9
    assert worst_hold_slack(paths, offsets) >= -1e-9
    # The setup path is only partially repaired — the honest outcome.
    assert worst_path_slack(paths, offsets) == pytest.approx(-7.0, abs=1e-6)


def test_hold_margin_reserved():
    paths = [
        TimingPath("a/CK", "b/CK", slack=-12.0),
        TimingPath("c/CK", "b/CK", slack=50.0, hold_slack=5.0),
    ]
    offsets = schedule_offsets(paths, capture_only=True, hold_margin=2.0)
    assert worst_hold_slack(paths, offsets) >= 2.0 - 1e-9


def test_quantisation_blocked_by_hold():
    """An offset that would have to jump to the quantum but cannot
    (hold) is not taken at all."""
    paths = [
        TimingPath("a/CK", "b/CK", slack=-4.0),
        TimingPath("c/CK", "b/CK", slack=50.0, hold_slack=6.0),
    ]
    offsets = schedule_offsets(paths, capture_only=True, min_positive=20.0,
                               max_offset=40.0)
    assert offsets.get("b/CK", 0.0) == 0.0
    assert worst_hold_slack(paths, offsets) >= 0.0


def test_capture_only_scheduling():
    paths = [TimingPath("a/CK", "b/CK", slack=-8.0)]
    offsets = schedule_offsets(paths, capture_only=True)
    assert offsets["b/CK"] == pytest.approx(8.0)
    assert "a/CK" not in offsets
    assert worst_path_slack(paths, offsets) >= -1e-9


def test_delay_buffer_insertion(make_small_physical, tech):
    phys = make_small_physical()
    pins = [s.pin.full_name for s in phys.refine.timing.sinks]
    offsets = {pins[0]: 12.0, pins[5]: 50.0, pins[9]: -5.0}
    buffered_before = sum(1 for n in phys.tree if n.buffer is not None)
    effective = apply_useful_skew(phys.tree, tech, offsets)
    phys.tree.validate()
    buffered_after = sum(1 for n in phys.tree if n.buffer is not None)
    assert buffered_after == buffered_before + 2  # negatives get no buffer
    # Small offsets quantise up to the buffer quantum; big ones keep.
    assert effective[pins[0]] > 12.0
    assert effective[pins[5]] == pytest.approx(50.0)
    assert pins[9] not in effective
    # Re-application is idempotent on structure.
    apply_useful_skew(phys.tree, tech, offsets)
    assert sum(1 for n in phys.tree if n.buffer is not None) == buffered_after


def test_unknown_pin_rejected(make_small_physical, tech):
    phys = make_small_physical()
    with pytest.raises(KeyError):
        apply_useful_skew(phys.tree, tech, {"ghost/CK": 10.0})


def test_trimmer_realizes_offsets(make_small_physical, tech):
    """Buffer + offset-aware trim lands the flop at its effective offset."""
    phys = make_small_physical()
    pins = [s.pin.full_name for s in phys.refine.timing.sinks]
    a, b = pins[0], pins[1]

    effective = apply_useful_skew(phys.tree, tech, {a: 12.0})
    result = refine_skew(phys.tree, phys.routing, tech, offsets=effective)
    assert result.final_skew <= 2.0  # corrected-frame skew converges
    got = result.timing
    # In the raw frame, a is later than everyone else by its effective
    # (quantised) offset — which covers the 12 ps the path asked for.
    delta = got.arrival_of(a) - got.arrival_of(b)
    assert delta == pytest.approx(effective[a], abs=2.0)
    assert delta >= 12.0


def test_offsets_change_raw_skew_but_not_corrected(make_small_physical, tech):
    phys = make_small_physical()
    pin = phys.refine.timing.sinks[0].pin.full_name
    effective = apply_useful_skew(phys.tree, tech, {pin: 40.0})
    result = refine_skew(phys.tree, phys.routing, tech, offsets=effective)
    # Corrected skew tight; raw skew shows the intended 40 ps spread.
    assert result.final_skew <= 2.0
    assert result.timing.skew == pytest.approx(40.0, abs=3.0)
