"""Per-wire extraction: the capacitance model."""

import pytest
from hypothesis import given, strategies as st

from repro.extract.capmodel import extract_wire
from repro.geom.point import Point
from repro.geom.segment import Segment
from repro.netlist.net import NetKind
from repro.route.wires import NeighborCoupling, RoutedWire
from repro.tech import default_technology, rule_by_name


TECH = default_technology()
M5 = TECH.stack.by_name("M5")


def _wire(length=100.0, rule="W1S1", extra=0.0):
    return RoutedWire(
        wire_id=0, net_name="clk", kind=NetKind.CLOCK,
        segment=Segment(Point(0, 10), Point(length, 10)),
        layer=M5, track=0, rule=rule_by_name(rule),
        activity=1.0, extra_length=extra)


def _nb(spacing, overlap, activity=0.2, same_net=False):
    return NeighborCoupling(neighbor_id=1, spacing=spacing, overlap=overlap,
                            neighbor_kind=NetKind.SIGNAL,
                            neighbor_activity=activity, same_net=same_net)


def test_isolated_wire_matches_layer_model():
    para = extract_wire(_wire(100.0), [])
    assert para.c_total == pytest.approx(100.0 * M5.isolated_cap_per_um(
        M5.min_width), rel=1e-9)
    assert para.cc_signal == 0.0
    assert para.couplings == []


def test_resistance_scales_with_length_and_width():
    r1 = extract_wire(_wire(100.0), []).r
    r2 = extract_wire(_wire(200.0), []).r
    assert r2 == pytest.approx(2 * r1)
    rw = extract_wire(_wire(100.0, rule="W2S1"), []).r
    assert rw == pytest.approx(r1 / 2)


def test_width_upgrade_raises_area_cap_only():
    base = extract_wire(_wire(100.0), [])
    wide = extract_wire(_wire(100.0, rule="W2S1"), [])
    assert wide.c_area == pytest.approx(2 * base.c_area)
    assert wide.c_rest == pytest.approx(base.c_rest)


def test_coupling_counted_and_split():
    spacing = M5.min_spacing
    para = extract_wire(_wire(100.0), [_nb(spacing, 60.0)])
    expected_cc = M5.coupling_cap_per_um(spacing) * 60.0
    assert para.cc_signal == pytest.approx(expected_cc)
    assert len(para.couplings) == 1
    # Quiet aggressors count as ground: cc included in c_rest.
    iso = extract_wire(_wire(100.0), [])
    assert para.c_total > iso.c_total


def test_same_net_coupling_excluded_from_power_and_delay():
    spacing = M5.min_spacing
    para = extract_wire(_wire(100.0), [_nb(spacing, 60.0, same_net=True)])
    assert para.cc_clock > 0.0
    assert para.cc_signal == 0.0
    assert para.couplings == []


def test_covered_span_not_double_counted():
    """A fully covered side must not also get far-field cap."""
    spacing = M5.min_spacing
    one = extract_wire(_wire(100.0), [_nb(spacing, 100.0)])
    two = extract_wire(_wire(100.0), [_nb(spacing, 100.0),
                                      _nb(spacing, 100.0)])
    # Second neighbor adds coupling but removes the remaining far-field.
    added = two.c_total - one.c_total
    full_cc = M5.coupling_cap_per_um(spacing) * 100.0
    assert added == pytest.approx(full_cc - M5.c_fringe_far * 100.0)


def test_snaking_detour_has_no_coupling():
    plain = extract_wire(_wire(100.0), [])
    snaked = extract_wire(_wire(100.0, extra=50.0), [])
    assert snaked.r > plain.r
    assert snaked.c_total > plain.c_total
    assert snaked.cc_signal == plain.cc_signal == 0.0


def test_spacing_upgrade_cuts_coupling():
    near = extract_wire(_wire(100.0), [_nb(M5.min_spacing, 80.0)])
    far = extract_wire(_wire(100.0), [_nb(2 * M5.min_spacing, 80.0)])
    assert far.cc_signal < near.cc_signal / 2.0  # superlinear falloff


@given(width_mult=st.sampled_from(["W1S1", "W2S1", "W4S2"]),
       length=st.floats(1.0, 500.0))
def test_rc_product_invariant_under_width(width_mult, length):
    """R*C_area is width-invariant (R ~ 1/w, C_area ~ w)."""
    para = extract_wire(_wire(length, rule=width_mult), [])
    base = extract_wire(_wire(length), [])
    assert para.r * para.c_area == pytest.approx(base.r * base.c_area,
                                                 rel=1e-9)


@given(spacing=st.floats(0.14, 0.8), overlap=st.floats(0.0, 100.0))
def test_cap_components_nonnegative(spacing, overlap):
    para = extract_wire(_wire(100.0), [_nb(spacing, overlap)])
    assert para.c_area >= 0 and para.c_rest >= 0
    assert para.cc_signal >= 0 and para.cc_clock >= 0
    assert para.c_switched >= para.c_area
