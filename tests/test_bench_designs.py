"""Benchmark generator determinism and statistics."""

import pytest

from repro.bench import (DesignSpec, benchmark_suite, generate_design,
                         spec_by_name)
from repro.netlist import CellKind


def test_suite_has_six_designs():
    suite = benchmark_suite()
    assert len(suite) == 6
    sizes = [s.n_sinks for s in suite]
    assert sizes == sorted(sizes)
    assert sizes[0] == 64 and sizes[-1] == 2048


def test_spec_by_name():
    spec = spec_by_name("ckt256")
    assert spec.n_sinks == 256
    with pytest.raises(KeyError):
        spec_by_name("nope")


def test_generation_matches_spec():
    spec = DesignSpec("gen_t", n_sinks=40, die_edge=200.0,
                      aggressors_per_sink=1.5, seed=9)
    design = generate_design(spec)
    assert design.num_sinks == 40
    assert len(design.signal_nets) == spec.n_aggressors == 60
    assert design.clock_period == spec.clock_period
    design.validate()


def test_generation_deterministic():
    spec = DesignSpec("gen_d", n_sinks=30, die_edge=180.0, seed=4)
    a = generate_design(spec)
    b = generate_design(spec)
    locs_a = [p.location for p in a.clock_sinks]
    locs_b = [p.location for p in b.clock_sinks]
    assert locs_a == locs_b
    acts_a = [n.activity for n in a.signal_nets]
    acts_b = [n.activity for n in b.signal_nets]
    assert acts_a == acts_b


def test_different_seed_different_design():
    a = generate_design(DesignSpec("gen_s", n_sinks=30, die_edge=180.0, seed=1))
    b = generate_design(DesignSpec("gen_s", n_sinks=30, die_edge=180.0, seed=2))
    assert [p.location for p in a.clock_sinks] != \
        [p.location for p in b.clock_sinks]


def test_sinks_inside_die_with_margin():
    design = generate_design(spec_by_name("ckt64"))
    for pin in design.clock_sinks:
        assert design.die.expanded(-1.0).contains(pin.location)


def test_sink_locations_distinct():
    design = generate_design(spec_by_name("ckt128"))
    locations = {(p.location.x, p.location.y) for p in design.clock_sinks}
    assert len(locations) == design.num_sinks


def test_activities_skewed_quiet():
    design = generate_design(spec_by_name("ckt256"))
    activities = [n.activity for n in design.signal_nets]
    assert all(0.0 <= a <= 1.0 for a in activities)
    mean = sum(activities) / len(activities)
    assert 0.05 < mean < 0.35
    # Quiet-heavy shape: median below mean.
    median = sorted(activities)[len(activities) // 2]
    assert median < mean


def test_aggressor_fanout_bounds():
    design = generate_design(spec_by_name("ckt64"))
    for net in design.signal_nets:
        assert 2 <= len(net.sinks) <= 5


def test_clock_source_on_die_edge():
    design = generate_design(spec_by_name("ckt64"))
    assert design.clock_root.location.y == design.die.ylo


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        generate_design(DesignSpec("bad", n_sinks=0, die_edge=100.0))
    with pytest.raises(ValueError):
        generate_design(DesignSpec("bad2", n_sinks=-5, die_edge=100.0))


def test_gate_instances_created():
    design = generate_design(spec_by_name("ckt64"))
    kinds = {inst.kind for inst in design.instances.values()}
    assert CellKind.FLOP in kinds
    assert CellKind.GATE in kinds
    assert CellKind.PORT in kinds
