"""Property tests for flow-cell cache-key soundness.

The static analyzer's C-codes prove the *source* reads what the key
hashes; these tests prove the *values* behave: perturbing any hashed
:class:`~repro.runner.matrix.JobSpec` field changes the cell key
whenever the policy actually consumes the field, and leaves it
unchanged when :meth:`PolicyParams.normalized` drops the knob — the
two directions of soundness (no stale-result collisions) and stability
(no needless cache misses).
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Policy
from repro.core.targets import RobustnessTargets
from repro.io.artifacts import STAGE_KEY_MANIFEST
from repro.runner.matrix import JobSpec
from repro.runner.runner import _cell_key, _ExecContext
from repro.tech import default_technology

_TECH = default_technology()
_CTX = _ExecContext(tech=_TECH, store=None, verify=False)

#: Fields PolicyParams.normalized() keeps, per policy.  design/policy/
#: slack are live for every policy (slack selects the budget targets).
_LIVE_KNOBS = {
    Policy.RANDOM: {"random_fraction", "random_seed"},
    Policy.SMART: {"lambda_track"},
    Policy.SMART_SHIELD: {"lambda_track"},
}


def _targets(job: JobSpec) -> RobustnessTargets:
    """The budgets ``_execute_job`` would derive for this cell."""
    if job.slack is None:
        return RobustnessTargets.for_period(1000.0, _TECH.max_slew)
    return RobustnessTargets.from_reference(
        worst_delta=4.0, skew_3sigma=6.0, max_slew=_TECH.max_slew,
        slack=job.slack)


def _key(job: JobSpec) -> str:
    return _cell_key(job, _CTX, _targets(job))


def _perturb(job: JobSpec, field: str) -> JobSpec:
    """A copy of ``job`` with one hashed field changed to a fresh value."""
    if field == "design":
        return replace(job, design="ckt128" if job.design == "ckt64"
                       else "ckt64")
    if field == "policy":
        return replace(job, policy=Policy.ALL_NDR
                       if job.policy != Policy.ALL_NDR else Policy.NO_NDR)
    if field == "slack":
        return replace(job, slack=0.33 if job.slack != 0.33 else 0.44)
    if field == "random_fraction":
        return replace(job, random_fraction=job.random_fraction / 2 + 0.1)
    if field == "random_seed":
        return replace(job, random_seed=job.random_seed + 1)
    if field == "lambda_track":
        return replace(job, lambda_track=job.lambda_track / 2 + 0.01)
    raise AssertionError(f"unknown hashed field {field!r}")


_jobs = st.builds(
    JobSpec,
    design=st.sampled_from(("ckt64", "ckt128")),
    policy=st.sampled_from(list(Policy)),
    slack=st.one_of(st.none(), st.floats(0.05, 0.5, allow_nan=False)),
    random_fraction=st.floats(0.05, 0.95, allow_nan=False),
    random_seed=st.integers(0, 7),
    lambda_track=st.floats(0.01, 0.2, allow_nan=False),
)


def _hashed_fields() -> tuple[str, ...]:
    (entry,) = [e for e in STAGE_KEY_MANIFEST if e.kind == "flow-cell"]
    return entry.hashed_fields


def test_manifest_covers_every_jobspec_field():
    # Every JobSpec field is declared hashed: the key has no blind
    # spots.  engine_backend is the one documented exception: backends
    # are verified bit-identical, so cells deliberately share cache
    # entries across backends (see the C001 suppression in
    # repro.runner.runner).
    from dataclasses import fields
    assert set(_hashed_fields()) == (
        {f.name for f in fields(JobSpec)} - {"engine_backend"})


def test_engine_backend_never_enters_the_key():
    # The backend is a pure performance knob; switching it must hit the
    # same cache entry.
    job = JobSpec(design="ckt64", policy=Policy.SMART)
    assert _key(job) == _key(replace(job, engine_backend="numpy-dense"))
    assert _key(job) == _key(replace(job, engine_backend="numpy-sparse"))


@settings(max_examples=40, deadline=None)
@given(job=_jobs)
def test_live_field_perturbation_changes_the_key(job: JobSpec):
    base = _key(job)
    live = {"design", "policy", "slack"} | _LIVE_KNOBS.get(job.policy, set())
    for field in _hashed_fields():
        if field not in live:
            continue
        assert _key(_perturb(job, field)) != base, \
            f"perturbing live field {field!r} did not change the key"


@settings(max_examples=40, deadline=None)
@given(job=_jobs)
def test_dead_knob_perturbation_keeps_the_key(job: JobSpec):
    # normalized() drops knobs the policy never reads; equivalent jobs
    # must map to the same cache entry.
    base = _key(job)
    live = {"design", "policy", "slack"} | _LIVE_KNOBS.get(job.policy, set())
    for field in _hashed_fields():
        if field in live:
            continue
        assert _key(_perturb(job, field)) == base, \
            f"dead knob {field!r} changed the key (needless cache miss)"


@settings(max_examples=25, deadline=None)
@given(job=_jobs, other=_jobs)
def test_distinct_normalized_jobs_never_collide(job: JobSpec,
                                               other: JobSpec):
    def identity(j: JobSpec) -> tuple:
        params = j.policy_params()
        return (j.design, j.slack if j.slack is None else round(j.slack, 12),
                params)

    if identity(job) != identity(other):
        assert _key(job) != _key(other)
    else:
        assert _key(job) == _key(other)
