"""Buffer library: linear gate model and selection."""

import pytest

from repro.tech.buffers import BufferCell, BufferLibrary, default_buffer_library


@pytest.fixture(scope="module")
def lib() -> BufferLibrary:
    return default_buffer_library()


def test_library_ordered_by_size(lib):
    sizes = [cell.size for cell in lib]
    assert sizes == sorted(sizes)
    assert lib.smallest.size == min(sizes)
    assert lib.largest.size == max(sizes)


def test_delay_linear_in_load(lib):
    cell = lib.smallest
    d10 = cell.delay(10.0)
    d20 = cell.delay(20.0)
    d30 = cell.delay(30.0)
    assert d30 - d20 == pytest.approx(d20 - d10)


def test_delay_decreases_with_size_at_high_load(lib):
    load = 40.0
    delays = [cell.delay(load) for cell in lib]
    assert delays == sorted(delays, reverse=True)


def test_constant_rc_product_across_sizes(lib):
    products = [cell.r_drive * cell.c_in for cell in lib]
    for p in products[1:]:
        assert p == pytest.approx(products[0], rel=1e-6)


def test_slew_monotone_in_load(lib):
    cell = lib.by_name("CLKBUF_X4")
    assert cell.output_slew(50.0) > cell.output_slew(10.0)


def test_negative_load_rejected(lib):
    with pytest.raises(ValueError):
        lib.smallest.delay(-1.0)
    with pytest.raises(ValueError):
        lib.smallest.output_slew(-1.0)


def test_switching_energy_includes_internal(lib):
    cell = lib.smallest
    assert cell.switching_energy(0.0, 1.0) == pytest.approx(cell.e_internal)
    assert cell.switching_energy(10.0, 1.0) == pytest.approx(
        10.0 + cell.e_internal)


def test_switching_energy_scales_with_vdd_squared(lib):
    cell = lib.smallest
    e1 = cell.switching_energy(10.0, 1.0) - cell.e_internal
    e2 = cell.switching_energy(10.0, 2.0) - cell.e_internal
    assert e2 == pytest.approx(4.0 * e1)


def test_smallest_driving_picks_cheapest_legal(lib):
    cell = lib.smallest_driving(10.0, max_slew=80.0)
    assert cell is lib.smallest or cell.size < lib.largest.size
    # The chosen cell actually meets the constraints.
    assert 10.0 <= cell.max_cap
    assert cell.output_slew(10.0) <= 80.0


def test_smallest_driving_falls_back_to_largest(lib):
    huge = 10_000.0
    assert lib.smallest_driving(huge, max_slew=1.0) is lib.largest


def test_by_name_unknown(lib):
    with pytest.raises(KeyError):
        lib.by_name("CLKBUF_X99")


def test_library_rejects_unordered_cells(lib):
    cells = list(lib.cells)
    with pytest.raises(ValueError):
        BufferLibrary(cells=(cells[1], cells[0]))


def test_library_rejects_empty():
    with pytest.raises(ValueError):
        BufferLibrary(cells=())
