"""Cross-cutting coverage: smaller behaviors not pinned elsewhere."""

import pytest

from repro.bench import DesignSpec, generate_design
from repro.core import Policy
from repro.core.multiclock import run_multiclock_flow, split_domains
from repro.power.gating import GatingPlan, stage_activities
from repro.viz import render_clock_svg


SPEC = DesignSpec("cov", n_sinks=32, die_edge=200.0,
                  aggressors_per_sink=1.5, seed=23)


@pytest.fixture(scope="module")
def design():
    return generate_design(SPEC)


def test_multiclock_uniform_policy_assigns_both(design, tech):
    domains = split_domains(design, 2)
    result = run_multiclock_flow(design, domains, tech,
                                 policy=Policy.ALL_NDR)
    for d in result.domains:
        hist = d.routing.rule_histogram()
        assert set(hist) == {"W2S2"}


def test_multiclock_single_domain_matches_structure(design, tech):
    [domain] = split_domains(design, 1)
    result = run_multiclock_flow(design, [domain], tech,
                                 policy=Policy.NO_NDR)
    assert len(result.domains) == 1
    assert len(result.domains[0].analyses.timing.sinks) == design.num_sinks


def test_multiclock_targets_dict_validated(design, tech):
    domains = split_domains(design, 2)
    from repro.core.targets import RobustnessTargets

    partial = {"clk0": RobustnessTargets.for_period(1000.0, 80.0)}
    with pytest.raises(ValueError):
        run_multiclock_flow(design, domains, tech, policy=Policy.NO_NDR,
                            targets=partial)


def test_nested_manual_gates_compose(small_physical):
    """Two gates stacked on one chain multiply their enables."""
    network = small_physical.extraction.network
    # Find a stage with a child stage.
    parent_idx = next(i for i in range(len(network.stages))
                      if network.stage_children(i))
    child_idx = network.stage_children(parent_idx)[0]
    plan = GatingPlan()
    if parent_idx != network.root_stage:
        plan.add(network.stages[parent_idx].tree_node_id, 0.5)
    plan.add(network.stages[child_idx].tree_node_id, 0.5)
    activity = stage_activities(network, plan)
    expected = 0.25 if parent_idx != network.root_stage else 0.5
    assert activity[child_idx] == pytest.approx(expected)


def test_viz_blockage_rects(tech):
    blocked = generate_design(DesignSpec("covb", n_sinks=24, die_edge=200.0,
                                         seed=29, n_blockages=2))
    from repro.core.flow import build_physical_design

    phys = build_physical_design(blocked, tech)
    plain = render_clock_svg(phys.tree, phys.routing)
    with_macros = render_clock_svg(phys.tree, phys.routing,
                                   blockages=blocked.blockages)
    assert with_macros.count("<rect") == plain.count("<rect") + 2


def test_wire_report_shows_rules(make_tiny_physical, tmp_path, tech):
    from repro.io import write_wire_report
    from repro.tech import rule_by_name

    phys = make_tiny_physical()
    wire = phys.routing.clock_wires[0]
    phys.routing.assign_rule(wire.wire_id, rule_by_name("W4S2"))
    from repro.extract import extract

    ext = extract(phys.tree, phys.routing)
    path = tmp_path / "w.txt"
    write_wire_report(ext, path)
    assert "W4S2" in path.read_text()


def test_cli_compare_with_ml(tmp_path, capsys, tiny_design):
    from repro.cli import main
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    code = main(["compare", "--design", str(design_path), "--with-ml"])
    out = capsys.readouterr().out
    assert code == 0
    assert "smart-ml" in out


def test_cli_verbose_summary(tmp_path, capsys, tiny_design):
    from repro.cli import main
    from repro.io import save_design

    design_path = tmp_path / "d.json"
    save_design(tiny_design, design_path)
    main(["run", "--design", str(design_path), "--verbose"])
    out = capsys.readouterr().out
    assert "verdict:" in out and "electromigration" in out


def test_trim_choice_fields():
    from repro.cts.delaytrim import cheapest_trim

    trim = cheapest_trim(4.0, 1.0, 20.0, 0.001, 0.2)
    assert trim.added_cap > 0
    assert (trim.pad_cap > 0) != (trim.snake_len > 0)  # exactly one used
