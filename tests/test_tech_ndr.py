"""Routing rules: the upgrade lattice and geometry effects."""

import pytest

from repro.tech.layers import default_metal_stack
from repro.tech.ndr import (RULE_SET, RoutingRule, RuleName, rule_by_name,
                            upgrades_of)


def test_rule_set_has_five_rules_default_first():
    assert len(RULE_SET) == 5
    assert RULE_SET[0].is_default
    assert RULE_SET[-1].name == RuleName.W4S2


def test_rule_by_name_accepts_enum_and_string():
    assert rule_by_name("W2S2") is rule_by_name(RuleName.W2S2)
    assert rule_by_name("W2S2").width_mult == 2.0


def test_rule_by_name_unknown():
    with pytest.raises(KeyError):
        rule_by_name("W9S9")


def test_track_span():
    assert rule_by_name("W1S1").track_span == 1
    assert rule_by_name("W2S1").track_span == 2
    assert rule_by_name("W1S2").track_span == 2
    assert rule_by_name("W2S2").track_span == 3
    assert rule_by_name("W4S2").track_span == 5


def test_dominance_lattice():
    w1s1, w2s1, w1s2, w2s2, w4s2 = RULE_SET
    assert w2s2.dominates(w1s1) and w2s2.dominates(w2s1) and w2s2.dominates(w1s2)
    assert w4s2.dominates(w2s2)
    assert not w2s1.dominates(w1s2)
    assert not w1s2.dominates(w2s1)
    for rule in RULE_SET:
        assert rule.dominates(rule)


def test_upgrades_of_default_is_everything_else():
    assert upgrades_of(RULE_SET[0]) == RULE_SET[1:]


def test_upgrades_of_w2s1():
    names = [r.name.value for r in upgrades_of(rule_by_name("W2S1"))]
    assert names == ["W2S2", "W4S2"]


def test_upgrades_of_top_rule_is_empty():
    assert upgrades_of(rule_by_name("W4S2")) == ()


def test_width_and_spacing_on_layer():
    m5 = default_metal_stack().by_name("M5")
    full = rule_by_name("W2S2")
    assert full.width_on(m5) == pytest.approx(2 * m5.min_width)
    assert full.spacing_on(m5) == pytest.approx(2 * m5.min_spacing)


def test_downgrade_multipliers_rejected():
    with pytest.raises(ValueError):
        RoutingRule(RuleName.W1S1, 0.5, 1.0)
    with pytest.raises(ValueError):
        RoutingRule(RuleName.W1S1, 1.0, 0.9)
