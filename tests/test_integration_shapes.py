"""Qualitative reproduction shapes (EXPERIMENTS.md in test form).

These integration tests pin down the *shape* of the paper's results —
who wins, roughly by how much, and in which regime — on one mid-size
benchmark.  Absolute numbers are platform-model-dependent and are not
asserted.
"""

import pytest

from repro.bench import spec_by_name, generate_design
from repro.core import Policy, run_flow, targets_from_reference


@pytest.fixture(scope="module")
def suite_results(tech):
    """NO/ALL/SMART flows on ckt128 against reference-pegged budgets."""
    name = "ckt128"
    ref = run_flow(generate_design(spec_by_name(name)), tech,
                   policy=Policy.ALL_NDR)
    targets = targets_from_reference(ref.analyses, tech)
    results = {}
    for policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART):
        design = generate_design(spec_by_name(name))
        results[policy] = run_flow(design, tech, policy=policy,
                                   targets=targets)
    return results


def test_headline_no_ndr_is_infeasible(suite_results):
    """Default routing misses the robustness spec: NDRs are needed."""
    assert not suite_results[Policy.NO_NDR].feasible


def test_headline_all_ndr_is_feasible_but_expensive(suite_results):
    all_ndr = suite_results[Policy.ALL_NDR]
    no_ndr = suite_results[Policy.NO_NDR]
    assert all_ndr.feasible
    overhead = all_ndr.clock_power / no_ndr.clock_power
    assert 1.08 < overhead < 1.6


def test_headline_smart_matches_robustness_at_lower_power(suite_results):
    """The paper's claim: selective NDR is feasible at a fraction of the
    uniform-NDR power overhead."""
    smart = suite_results[Policy.SMART]
    all_ndr = suite_results[Policy.ALL_NDR]
    no_ndr = suite_results[Policy.NO_NDR]
    assert smart.feasible
    assert smart.clock_power < all_ndr.clock_power
    # Smart recovers at least half of the all-NDR overhead.
    saved = all_ndr.clock_power - smart.clock_power
    overhead = all_ndr.clock_power - no_ndr.clock_power
    assert saved > 0.4 * overhead


def test_smart_upgrades_minority_of_wires(suite_results):
    smart = suite_results[Policy.SMART]
    hist = smart.rule_histogram
    total = sum(hist.values())
    upgraded = total - hist.get("W1S1", 0)
    assert 0 < upgraded < total // 2


def test_robustness_metrics_within_budget(suite_results):
    smart = suite_results[Policy.SMART]
    targets = smart.targets
    a = smart.analyses
    assert a.crosstalk.worst_delta <= targets.max_worst_delta
    assert a.mc.skew_3sigma <= targets.max_skew_3sigma
    assert a.em.num_violations == 0
    assert a.timing.worst_slew <= targets.max_slew


def test_smart_uses_spacing_for_si_and_width_for_em(suite_results):
    """The decision anatomy: both axes of the rule space get used."""
    hist = suite_results[Policy.SMART].rule_histogram
    spacing_rules = hist.get("W1S2", 0) + hist.get("W2S2", 0) \
        + hist.get("W4S2", 0)
    width_rules = hist.get("W2S1", 0) + hist.get("W2S2", 0) \
        + hist.get("W4S2", 0)
    assert spacing_rules > 0
    assert width_rules > 0
