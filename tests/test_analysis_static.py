"""Tests for the whole-program determinism / cache-soundness analyzer.

Mirrors the seeded-corruption pattern of ``test_verify.py``: every D/C
code gets a fixture package with exactly one planted violation that the
analyzer must flag, plus a clean twin it must pass.  The fixtures are
real source trees written under ``tmp_path`` and parsed by
:func:`repro.analysis.build_program` — nothing is mocked, so the tests
exercise import resolution, the call graph and the effect fixpoint the
same way ``repro lint --static`` does.
"""

import textwrap
from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (ContextStateSpec, StaticContext, WorkerGroup,
                            analyze_program, build_program,
                            build_static_context, unsuppressed_rationales)
from repro.units import Dim
from repro.engine.invariants import KernelParitySpec, StateInvariant
from repro.io.artifacts import STAGE_KEY_MANIFEST, StageKeyEntry
from repro.verify import Severity, registered_checks


def _context(tmp_path, source, *, det_roots=("pkg.mod.stage",),
             proc_roots=(), whitelist=(), manifest=(), invariants=(),
             worker_groups=(), payload_types=(), context_specs=(),
             kernel_parity=None, key_builders=(), backend_sources=(),
             dims_manifest=None, unit_constants=None, dim_roots=()):
    """Write ``source`` as ``pkg/mod.py`` and build a StaticContext."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(textwrap.dedent(source))
    program = build_program(pkg, package="pkg")
    return StaticContext(program=program, determinism_roots=det_roots,
                         process_roots=proc_roots, env_whitelist=whitelist,
                         manifest=manifest, invariants=invariants,
                         worker_groups=worker_groups,
                         payload_types=payload_types,
                         context_specs=context_specs,
                         kernel_parity=kernel_parity,
                         key_builders=key_builders,
                         backend_sources=backend_sources,
                         dimensions_manifest=dict(dims_manifest or {}),
                         unit_constants=dict(unit_constants or {}),
                         dim_signature_roots=tuple(dim_roots))


def _rules(report):
    return {d.rule for d in report.diagnostics}


# -- D001: unseeded RNG --------------------------------------------------------


def test_d001_flags_unseeded_default_rng(tmp_path):
    ctx = _context(tmp_path, """\
        import numpy as np

        def stage(params):
            rng = np.random.default_rng()
            return rng.random() + params.alpha
        """)
    report = analyze_program(ctx)
    assert "D001" in _rules(report)
    (diag,) = report.by_rule("D001")
    assert diag.severity == Severity.ERROR
    assert "default_rng" in diag.message


def test_d001_flags_global_rng_helpers(tmp_path):
    ctx = _context(tmp_path, """\
        import random

        def stage(params):
            return random.shuffle(params.items)
        """)
    report = analyze_program(ctx)
    assert "D001" in _rules(report)


def test_d001_clean_when_seeded(tmp_path):
    ctx = _context(tmp_path, """\
        import numpy as np

        def stage(params):
            rng = np.random.default_rng(params.seed)
            return rng.random()
        """)
    assert "D001" not in _rules(analyze_program(ctx))


# -- D002: wall clock ----------------------------------------------------------


def test_d002_flags_wall_clock(tmp_path):
    ctx = _context(tmp_path, """\
        import time

        def stage(params):
            return time.perf_counter()
        """)
    report = analyze_program(ctx)
    assert "D002" in _rules(report)


def test_d002_reports_transitive_witness_path(tmp_path):
    ctx = _context(tmp_path, """\
        import time

        def _helper():
            return time.time()

        def stage(params):
            return _helper()
        """)
    (diag,) = analyze_program(ctx).by_rule("D002")
    assert "pkg.mod.stage -> pkg.mod._helper" in diag.message


def test_d002_clean_without_clock(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            return params.alpha * 2
        """)
    assert "D002" not in _rules(analyze_program(ctx))


# -- D003: environment reads ---------------------------------------------------


def test_d003_flags_env_read_outside_whitelist(tmp_path):
    ctx = _context(tmp_path, """\
        import os

        def stage(params):
            return os.environ.get("PKG_TUNING")
        """)
    report = analyze_program(ctx)
    assert "D003" in _rules(report)


def test_d003_clean_for_whitelisted_variable(tmp_path):
    ctx = _context(tmp_path, """\
        import os

        def stage(params):
            return os.environ.get("PKG_TUNING")
        """, whitelist=("PKG_TUNING",))
    assert "D003" not in _rules(analyze_program(ctx))


def test_d003_resolves_env_var_through_module_constant(tmp_path):
    ctx = _context(tmp_path, """\
        import os

        TUNING_ENV = "PKG_TUNING"

        def stage(params):
            return os.environ.get(TUNING_ENV)
        """, whitelist=("PKG_TUNING",))
    assert "D003" not in _rules(analyze_program(ctx))


# -- D004: shared-state mutation -----------------------------------------------


def test_d004_flags_module_global_store(tmp_path):
    ctx = _context(tmp_path, """\
        _CACHE = {}

        def stage(params):
            _CACHE[params.key] = params.alpha
            return _CACHE
        """)
    report = analyze_program(ctx)
    assert "D004" in _rules(report)


def test_d004_flags_global_declaration(tmp_path):
    ctx = _context(tmp_path, """\
        _MODE = "fast"

        def stage(params):
            global _MODE
            _MODE = params.mode
            return _MODE
        """)
    assert "D004" in _rules(analyze_program(ctx))


def test_d004_clean_for_local_mutation(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            cache = {}
            cache[params.key] = params.alpha
            return cache
        """)
    assert "D004" not in _rules(analyze_program(ctx))


# -- D005: set iteration order -------------------------------------------------


def test_d005_flags_set_iteration(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            out = []
            for item in {1, 2, 3}:
                out.append(item)
            return out
        """)
    report = analyze_program(ctx)
    assert "D005" in _rules(report)


def test_d005_clean_when_sorted(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            out = []
            for item in sorted({1, 2, 3}):
                out.append(item)
            return out
        """)
    assert "D005" not in _rules(analyze_program(ctx))


def test_d005_clean_for_order_insensitive_sink(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            return sum(x * x for x in {1, 2, 3})
        """)
    assert "D005" not in _rules(analyze_program(ctx))


# -- D006: object identity -----------------------------------------------------


def test_d006_flags_id(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            return {id(params): params.alpha}
        """)
    report = analyze_program(ctx)
    assert "D006" in _rules(report)


def test_d006_clean_without_identity(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            return {params.key: params.alpha}
        """)
    assert "D006" not in _rules(analyze_program(ctx))


# -- D-codes only fire at declared roots ---------------------------------------


def test_unreachable_violations_are_ignored(tmp_path):
    ctx = _context(tmp_path, """\
        import time

        def unrelated():
            return time.time()

        def stage(params):
            return params.alpha
        """)
    assert not analyze_program(ctx).diagnostics


def test_process_roots_are_analyzed_too(tmp_path):
    ctx = _context(tmp_path, """\
        import time

        def worker(job):
            return time.time()

        def stage(params):
            return params.alpha
        """, proc_roots=("pkg.mod.worker",))
    assert "D002" in _rules(analyze_program(ctx))


# -- C-codes: cache-key soundness ----------------------------------------------

_PARAMS_PRELUDE = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class Params:
    alpha: int
    beta: int


"""


def _params_fixture(body):
    """The shared Params dataclass plus a dedented stage body."""
    return _PARAMS_PRELUDE + textwrap.dedent(body)


def _entry(hashed):
    return StageKeyEntry(kind="test", stage="pkg.mod.stage",
                         params_type="pkg.mod.Params",
                         params_param="params", hashed_fields=hashed)


def test_c001_flags_read_of_unhashed_field(tmp_path):
    ctx = _context(tmp_path, _params_fixture("""\
        def stage(params):
            return params.alpha + params.beta
        """), det_roots=(), manifest=(_entry(("alpha",)),))
    report = analyze_program(ctx)
    (diag,) = report.by_rule("C001")
    assert diag.severity == Severity.ERROR
    assert "beta" in diag.message


def test_c001_traces_reads_through_helper_calls(tmp_path):
    ctx = _context(tmp_path, _params_fixture("""\
        def _helper(p):
            return p.beta * 2


        def stage(params):
            return params.alpha + _helper(params)
        """), det_roots=(), manifest=(_entry(("alpha",)),))
    report = analyze_program(ctx)
    assert "C001" in _rules(report)


def test_c002_warns_on_hashed_field_never_read(tmp_path):
    ctx = _context(tmp_path, _params_fixture("""\
        def stage(params):
            return params.alpha
        """), det_roots=(), manifest=(_entry(("alpha", "beta")),))
    report = analyze_program(ctx)
    (diag,) = report.by_rule("C002")
    assert diag.severity == Severity.WARN
    assert "beta" in diag.message


def test_c00x_clean_when_key_matches_reads(tmp_path):
    ctx = _context(tmp_path, _params_fixture("""\
        def stage(params):
            return params.alpha + params.beta
        """), det_roots=(), manifest=(_entry(("alpha", "beta")),))
    assert not analyze_program(ctx).diagnostics


def test_c003_flags_env_read_in_stage_closure(tmp_path):
    ctx = _context(tmp_path, _params_fixture("""\
        import os


        def stage(params):
            if os.environ.get("PKG_FAST"):
                return params.alpha
            return params.beta
        """), det_roots=(), manifest=(_entry(("alpha", "beta")),))
    report = analyze_program(ctx)
    (diag,) = report.by_rule("C003")
    assert diag.severity == Severity.ERROR
    assert "PKG_FAST" in diag.message


def test_c003_flags_mutable_global_read(tmp_path):
    ctx = _context(tmp_path, _params_fixture("""\
        _MODE = "fast"


        def configure(mode):
            global _MODE
            _MODE = mode


        def stage(params):
            return params.alpha if _MODE == "fast" else params.beta
        """), det_roots=(), manifest=(_entry(("alpha", "beta")),))
    report = analyze_program(ctx)
    assert "C003" in _rules(report)


def test_c003_clean_for_immutable_module_constant(tmp_path):
    ctx = _context(tmp_path, _params_fixture("""\
        _SCALE = 10


        def stage(params):
            return params.alpha * _SCALE + params.beta
        """), det_roots=(), manifest=(_entry(("alpha", "beta")),))
    assert not analyze_program(ctx).diagnostics


# -- I001: mutation -> invalidation pairing ------------------------------------

_KERNEL_INVARIANT = StateInvariant(
    cls="pkg.mod.Kernel", guarded_fields=("r",),
    invalidators=("_invalidate",), cache_attrs=("_down",),
    exempt=("__init__",))


def test_i001_flags_unpaired_guarded_write(tmp_path):
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = [0.0]
                self._down = None

            def _invalidate(self):
                self._down = None

            def patch(self, value):
                self.r[0] = value
                return value
        """, det_roots=(), invariants=(_KERNEL_INVARIANT,))
    (diag,) = analyze_program(ctx).by_rule("I001")
    assert diag.severity == Severity.ERROR
    assert "patch" in diag.message and "'r'" in diag.message


def test_i001_flags_write_on_early_return_path(tmp_path):
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = [0.0]
                self._down = None

            def _invalidate(self):
                self._down = None

            def patch(self, value, dry):
                self.r[0] = value
                if dry:
                    return False
                self._invalidate()
                return True
        """, det_roots=(), invariants=(_KERNEL_INVARIANT,))
    assert "I001" in _rules(analyze_program(ctx))


def test_i001_clean_when_write_postdominated(tmp_path):
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = [0.0]
                self._down = None

            def _invalidate(self):
                self._down = None

            def patch(self, value):
                self.r[0] = value
                self._invalidate()
                return value
        """, det_roots=(), invariants=(_KERNEL_INVARIANT,))
    assert not analyze_program(ctx).diagnostics


def test_i001_flags_unpaired_private_writer_call_site(tmp_path):
    # The write inside _load is fine as long as every in-class call of
    # _load is itself post-dominated by the invalidation; patch() is not.
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = 0.0
                self._down = None

            def _invalidate(self):
                self._down = None

            def _load(self, value):
                self.r = value

            def patch(self, value):
                self._load(value)
                return value
        """, det_roots=(), invariants=(_KERNEL_INVARIANT,))
    (diag,) = analyze_program(ctx).by_rule("I001")
    assert "calls guarded writer _load()" in diag.message


def test_i001_clean_when_private_writer_sites_paired(tmp_path):
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = 0.0
                self._down = None

            def _invalidate(self):
                self._down = None

            def _load(self, value):
                self.r = value

            def patch(self, value):
                self._load(value)
                self._invalidate()
                return value
        """, det_roots=(), invariants=(_KERNEL_INVARIANT,))
    assert not analyze_program(ctx).diagnostics


def test_i001_counts_stale_mark_as_invalidation(tmp_path):
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = 0.0
                self._stale = False

            def _ensure(self):
                self._stale = False

            def patch(self, value):
                self.r = value
                self._stale = True
        """, det_roots=(),
        invariants=(StateInvariant(
            cls="pkg.mod.Kernel", guarded_fields=("r",),
            stale_flag="_stale", barrier="_ensure",
            exempt=("__init__",)),))
    assert "I001" not in _rules(analyze_program(ctx))


# -- I002: manifest drift ------------------------------------------------------


def test_i002_flags_undefined_invalidator(tmp_path):
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = 0.0
        """, det_roots=(),
        invariants=(StateInvariant(
            cls="pkg.mod.Kernel", guarded_fields=("r",),
            invalidators=("_flush",), exempt=("__init__",)),))
    (diag,) = analyze_program(ctx).by_rule("I002")
    assert "'_flush'" in diag.message


def test_i002_flags_dead_guarded_field(tmp_path):
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = 0.0
                self._down = None

            def _invalidate(self):
                self._down = None
        """, det_roots=(),
        invariants=(StateInvariant(
            cls="pkg.mod.Kernel", guarded_fields=("r", "w"),
            invalidators=("_invalidate",), exempt=("__init__",)),))
    (diag,) = analyze_program(ctx).by_rule("I002")
    assert "dead guard" in diag.message and "'w'" in diag.message


def test_i002_clean_when_manifest_matches_class(tmp_path):
    ctx = _context(tmp_path, """\
        class Kernel:
            def __init__(self):
                self.r = 0.0
                self._down = None

            def _invalidate(self):
                self._down = None
        """, det_roots=(), invariants=(_KERNEL_INVARIANT,))
    assert not analyze_program(ctx).diagnostics


# -- I003: guarded reads without the recompile barrier -------------------------

_BARRIER_INVARIANT = StateInvariant(
    cls="pkg.mod.Kernel", guarded_fields=("r",), cache_attrs=("_down",),
    stale_flag="_stale", barrier="_ensure", exempt=("__init__",))

_BARRIER_CLASS_HEAD = """\
    class Kernel:
        def __init__(self):
            self.r = 1.0
            self._down = None
            self._stale = True

        def _ensure(self):
            if self._stale:
                self._down = [self.r]
                self._stale = False

        def mutate(self, value):
            self.r = value
            self._stale = True

"""


def test_i003_flags_public_read_without_barrier(tmp_path):
    ctx = _context(tmp_path, _BARRIER_CLASS_HEAD + """\
        def timing(self):
            return self._down
    """, det_roots=(), invariants=(_BARRIER_INVARIANT,))
    (diag,) = analyze_program(ctx).by_rule("I003")
    assert diag.severity == Severity.ERROR
    assert "timing" in diag.message and "_ensure" in diag.message


def test_i003_traces_reads_through_self_call_closure(tmp_path):
    ctx = _context(tmp_path, _BARRIER_CLASS_HEAD + """\
        def _raw(self):
            return self._down

        def timing(self):
            return self._raw()
    """, det_roots=(), invariants=(_BARRIER_INVARIANT,))
    diags = analyze_program(ctx).by_rule("I003")
    assert [d for d in diags if "timing" in d.message]


def test_i003_clean_when_barrier_called(tmp_path):
    ctx = _context(tmp_path, _BARRIER_CLASS_HEAD + """\
        def timing(self):
            self._ensure()
            return self._down
    """, det_roots=(), invariants=(_BARRIER_INVARIANT,))
    assert not analyze_program(ctx).diagnostics


# -- S001: worker-read globals the initializer never resets --------------------

_GROUP = WorkerGroup(entry="pkg.mod.worker", initializer="pkg.mod.init")


def test_s001_flags_unreset_worker_global(tmp_path):
    ctx = _context(tmp_path, """\
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value

        def worker(job):
            remember(job.key, job.value)
            return _CACHE[job.key]

        def init():
            pass
        """, det_roots=(), worker_groups=(_GROUP,))
    report = analyze_program(ctx)
    assert "S001" in _rules(report)
    diag = report.by_rule("S001")[0]
    assert "_CACHE" in diag.message and "pkg.mod.init" in diag.message


def test_s001_clean_when_initializer_resets(tmp_path):
    ctx = _context(tmp_path, """\
        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value

        def worker(job):
            remember(job.key, job.value)
            return _CACHE[job.key]

        def init():
            global _CACHE
            _CACHE = {}
        """, det_roots=(), worker_groups=(_GROUP,))
    assert "S001" not in _rules(analyze_program(ctx))


def test_s001_clean_for_import_time_constants(tmp_path):
    # A global nothing reachable ever mutates is configuration, not
    # drifting state — reading it in a worker is fine.
    ctx = _context(tmp_path, """\
        _SCALE = 10

        def worker(job):
            return job.alpha * _SCALE

        def init():
            pass
        """, det_roots=(), worker_groups=(_GROUP,))
    assert not analyze_program(ctx).diagnostics


# -- S002: payload picklability ------------------------------------------------


def test_s002_flags_callable_payload_field(tmp_path):
    ctx = _context(tmp_path, """\
        from dataclasses import dataclass
        from typing import Callable


        @dataclass(frozen=True)
        class Job:
            key: str
            hook: Callable
        """, det_roots=(), payload_types=("pkg.mod.Job",))
    (diag,) = analyze_program(ctx).by_rule("S002")
    assert diag.severity == Severity.ERROR
    assert "hook" in diag.message


def test_s002_flags_non_dataclass_program_class_field(tmp_path):
    ctx = _context(tmp_path, """\
        from dataclasses import dataclass


        class Live:
            def __init__(self):
                self.handle = open("/dev/null")


        @dataclass(frozen=True)
        class Job:
            key: str
            live: Live
        """, det_roots=(), payload_types=("pkg.mod.Job",))
    (diag,) = analyze_program(ctx).by_rule("S002")
    assert "Live" in diag.message


def test_s002_clean_for_plain_data_payload(tmp_path):
    ctx = _context(tmp_path, """\
        from dataclasses import dataclass
        from enum import Enum


        class Mode(Enum):
            FAST = "fast"
            SLOW = "slow"


        @dataclass(frozen=True)
        class Sub:
            gamma: float


        @dataclass(frozen=True)
        class Job:
            key: str
            alpha: int
            mode: Mode
            sub: Sub
            tags: "tuple[str, ...]"
            extra: "str | None" = None
        """, det_roots=(), payload_types=("pkg.mod.Job",))
    assert not analyze_program(ctx).diagnostics


# -- S003: env access outside the forwarded seam -------------------------------


def test_s003_flags_worker_env_read_outside_whitelist(tmp_path):
    ctx = _context(tmp_path, """\
        import os

        def worker(job):
            return os.environ.get("PKG_SECRET")

        def init():
            pass
        """, det_roots=(), worker_groups=(_GROUP,))
    (diag,) = analyze_program(ctx).by_rule("S003")
    assert "PKG_SECRET" in diag.message


def test_s003_flags_worker_env_write_even_when_whitelisted(tmp_path):
    ctx = _context(tmp_path, """\
        import os

        def worker(job):
            os.environ["PKG_MODE"] = job.mode
            return job.alpha

        def init():
            pass
        """, det_roots=(), whitelist=("PKG_MODE",),
        worker_groups=(_GROUP,))
    (diag,) = analyze_program(ctx).by_rule("S003")
    assert "must not write" in diag.message


def test_s003_clean_for_seam_replay(tmp_path):
    # The canonical seam: the initializer replays a forwarded variable,
    # the worker reads it — both on the whitelist, both fine.
    ctx = _context(tmp_path, """\
        import os

        def worker(job):
            return os.environ.get("PKG_MODE")

        def init():
            os.environ["PKG_MODE"] = "fast"
        """, det_roots=(), whitelist=("PKG_MODE",),
        worker_groups=(_GROUP,))
    assert not analyze_program(ctx).diagnostics


# -- S004: context-local state without an installer ----------------------------

_TRACER_SPEC = ContextStateSpec(
    name="tracer", accessors=("pkg.mod.span_active",),
    installers=("pkg.mod.enable", "pkg.mod.disable"))


def test_s004_flags_accessor_without_installer(tmp_path):
    ctx = _context(tmp_path, """\
        def span_active():
            return True

        def enable():
            pass

        def disable():
            pass

        def worker(job):
            if span_active():
                return 1
            return 0

        def init():
            pass
        """, det_roots=(), worker_groups=(_GROUP,),
        context_specs=(_TRACER_SPEC,))
    (diag,) = analyze_program(ctx).by_rule("S004")
    assert "span_active" in diag.message
    assert "pkg.mod.worker" in diag.message


def test_s004_clean_when_initializer_installs(tmp_path):
    ctx = _context(tmp_path, """\
        def span_active():
            return True

        def enable():
            pass

        def disable():
            pass

        def worker(job):
            if span_active():
                return 1
            return 0

        def init():
            disable()
        """, det_roots=(), worker_groups=(_GROUP,),
        context_specs=(_TRACER_SPEC,))
    assert not analyze_program(ctx).diagnostics


# -- B001: backend kernel-surface parity ---------------------------------------


def test_b001_flags_signature_drift(tmp_path):
    ctx = _context(tmp_path, """\
        class DenseKernel:
            def static_timing(self, slew=0.1):
                return slew


        class SparseKernel:
            def static_timing(self, slew=0.2):
                return slew
        """, det_roots=(),
        kernel_parity=KernelParitySpec(
            classes=("pkg.mod.DenseKernel", "pkg.mod.SparseKernel"),
            surface=("static_timing",)))
    (diag,) = analyze_program(ctx).by_rule("B001")
    assert diag.severity == Severity.ERROR
    assert "drifts" in diag.message


def test_b001_flags_missing_surface_method(tmp_path):
    ctx = _context(tmp_path, """\
        class DenseKernel:
            def static_timing(self):
                return 0.0

            def crosstalk(self):
                return 0.0


        class SparseKernel:
            def static_timing(self):
                return 0.0
        """, det_roots=(),
        kernel_parity=KernelParitySpec(
            classes=("pkg.mod.DenseKernel", "pkg.mod.SparseKernel"),
            surface=("static_timing", "crosstalk")))
    (diag,) = analyze_program(ctx).by_rule("B001")
    assert "SparseKernel" in diag.message and "crosstalk" in diag.message


def test_b001_clean_for_matching_surfaces(tmp_path):
    ctx = _context(tmp_path, """\
        class DenseKernel:
            def static_timing(self, slew=0.1):
                return slew

            def crosstalk(self):
                return 0.0


        class SparseKernel:
            def static_timing(self, slew=0.1):
                return 2 * slew

            def crosstalk(self):
                return 1.0
        """, det_roots=(),
        kernel_parity=KernelParitySpec(
            classes=("pkg.mod.DenseKernel", "pkg.mod.SparseKernel"),
            surface=("static_timing", "crosstalk")))
    assert not analyze_program(ctx).diagnostics


# -- B002: backend selection must not feed cache keys --------------------------

_B002_KWARGS = dict(det_roots=(),
                    key_builders=("pkg.mod.content_key",),
                    backend_sources=("pkg.mod.backend_name",))


def test_b002_flags_backend_call_in_key_closure(tmp_path):
    ctx = _context(tmp_path, """\
        def backend_name():
            return "dense"

        def content_key(payload):
            return hash(payload)

        def cell_key(params):
            return content_key((params.alpha, backend_name()))
        """, **_B002_KWARGS)
    (diag,) = analyze_program(ctx).by_rule("B002")
    assert diag.severity == Severity.ERROR
    assert "backend_name()" in diag.message


def test_b002_flags_backend_name_attribute_read(tmp_path):
    ctx = _context(tmp_path, """\
        def backend_name():
            return "dense"

        def content_key(payload):
            return hash(payload)

        def cell_key(params, kernel):
            return content_key((params.alpha, kernel.backend_name))
        """, **_B002_KWARGS)
    (diag,) = analyze_program(ctx).by_rule("B002")
    assert "reads .backend_name" in diag.message


def test_b002_clean_when_key_is_backend_blind(tmp_path):
    ctx = _context(tmp_path, """\
        def backend_name():
            return "dense"

        def content_key(payload):
            return hash(payload)

        def cell_key(params):
            return content_key((params.alpha, params.beta))

        def report(params):
            return backend_name()
        """, **_B002_KWARGS)
    assert not analyze_program(ctx).diagnostics


# -- static-config -------------------------------------------------------------


def test_static_config_flags_unknown_root(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            return params.alpha
        """, det_roots=("pkg.mod.stage", "pkg.mod.missing"))
    report = analyze_program(ctx)
    (diag,) = report.by_rule("static-config")
    assert "pkg.mod.missing" in diag.message


def test_static_config_flags_unknown_manifest_entry(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            return params.alpha
        """, det_roots=(),
        manifest=(StageKeyEntry(kind="test", stage="pkg.mod.gone",
                                params_type="pkg.mod.Nope",
                                params_param="p", hashed_fields=()),))
    report = analyze_program(ctx)
    assert len(report.by_rule("static-config")) == 2


def test_static_config_flags_unknown_stateful_config(tmp_path):
    ctx = _context(tmp_path, """\
        def stage(params):
            return params.alpha
        """,
        invariants=(StateInvariant(cls="pkg.mod.Gone",
                                   guarded_fields=("r",)),),
        worker_groups=(WorkerGroup(entry="pkg.mod.nope",
                                   initializer="pkg.mod.nada"),),
        payload_types=("pkg.mod.Missing",),
        context_specs=(ContextStateSpec(name="tracer",
                                        accessors=("pkg.mod.absent",),
                                        installers=()),),
        kernel_parity=KernelParitySpec(classes=("pkg.mod.NoKernel",),
                                       surface=("static_timing",)))
    messages = [d.message for d in analyze_program(ctx).by_rule("static-config")]
    assert len(messages) == 6
    for name in ("pkg.mod.Gone", "pkg.mod.nope", "pkg.mod.nada",
                 "pkg.mod.Missing", "pkg.mod.absent", "pkg.mod.NoKernel"):
        assert any(name in m for m in messages)


# -- suppressions --------------------------------------------------------------


def test_suppression_silences_the_named_code(tmp_path):
    ctx = _context(tmp_path, """\
        import time

        def stage(params):
            return time.perf_counter()  # static: ok[D002] metadata only
        """)
    assert "D002" not in _rules(analyze_program(ctx))


def test_suppression_is_code_specific(tmp_path):
    ctx = _context(tmp_path, """\
        import time

        def stage(params):
            return time.perf_counter()  # static: ok[D001] wrong code
        """)
    assert "D002" in _rules(analyze_program(ctx))


def test_suppression_takes_multiple_codes(tmp_path):
    ctx = _context(tmp_path, """\
        import time

        def stage(params):
            return id(time.time())  # static: ok[D002,D006] both planted
        """)
    assert not analyze_program(ctx).diagnostics


def test_suppression_without_rationale_fails_hygiene(tmp_path):
    ctx = _context(tmp_path, """\
        import time

        def stage(params):
            return time.time()  # static: ok[D002]
        """)
    assert "D002" not in _rules(analyze_program(ctx))
    (marker,) = unsuppressed_rationales(ctx)
    assert marker.codes == ("D002",)


# -- the real package ----------------------------------------------------------


@pytest.fixture(scope="module")
def repro_ctx():
    return build_static_context()


def test_repro_package_is_static_clean(repro_ctx):
    report = analyze_program(repro_ctx)
    assert not report.has_errors, report.render()
    assert not report.warnings, report.render()


def test_repro_suppressions_all_carry_rationales(repro_ctx):
    missing = unsuppressed_rationales(repro_ctx)
    assert not missing, \
        [f"{s.module}:{s.lineno} ok[{','.join(s.codes)}]" for s in missing]


def test_manifest_names_resolve_in_repro(repro_ctx):
    for entry in STAGE_KEY_MANIFEST:
        assert entry.stage in repro_ctx.program.functions
        assert entry.params_type in repro_ctx.program.classes
        fields = set(repro_ctx.program.classes[entry.params_type].fields)
        assert set(entry.hashed_fields) <= fields


# -- CLI / registry wiring -----------------------------------------------------


def test_cli_lint_static_exits_clean():
    from repro.cli import main
    assert main(["lint", "--static"]) == 0


def test_cli_lint_static_reports_planted_violation(tmp_path, capsys):
    from repro.cli import main
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(textwrap.dedent("""\
        import repro.core.stages  # unused, keeps package importable
        """))
    # A foreign package root has none of repro's declared roots, so the
    # config check must flag every one of them.
    code = main(["lint", "--static", str(pkg)])
    out = capsys.readouterr().out
    assert code == 1
    assert "static-config" in out


def test_list_checks_includes_static_catalogue(capsys):
    from repro.cli import main
    assert main(["lint", "--list-checks"]) == 0
    out = capsys.readouterr().out
    for code in ("D001", "D002", "D003", "D004", "D005", "D006",
                 "C001", "C002", "C003",
                 "I001", "I002", "I003",
                 "S001", "S002", "S003", "S004",
                 "B001", "B002", "static-config",
                 "Q001", "Q002", "Q003", "Q004", "Q005",
                 "U001", "U002"):
        assert code in out


def test_static_checks_registered_under_static_kind():
    import repro.analysis  # noqa: F401 - registration side effect
    static = registered_checks(kinds=["static"])
    assert {c.rule for c in static} >= {
        "D001", "D002", "D003", "D004", "D005", "D006",
        "C001", "C002", "C003",
        "I001", "I002", "I003",
        "S001", "S002", "S003", "S004",
        "B001", "B002", "static-config",
        "Q001", "Q002", "Q003", "Q004", "Q005",
        "U001", "U002"}
    assert all(c.doc for c in static)


# -- Q001: mismatched dimension arithmetic -------------------------------------


_DIM_HEADER = """\
    from typing import Annotated

    from repro.units import Dim

"""


def test_q001_flags_cross_dimension_add(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def mix(cap: Annotated[float, Dim.CAPACITANCE],
            slew: Annotated[float, Dim.TIME]) -> float:
        return cap + slew
    """)
    report = analyze_program(ctx)
    assert "Q001" in _rules(report)
    (diag,) = [d for d in report.diagnostics if d.rule == "Q001"]
    assert "capacitance" in diag.message and "time" in diag.message


def test_q001_flags_return_contradicting_declaration(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def period(freq: Annotated[float, Dim.FREQUENCY],
               ) -> Annotated[float, Dim.TIME]:
        return freq
    """)
    report = analyze_program(ctx)
    assert "Q001" in _rules(report)


def test_q001_clean_for_same_dimension_and_literals(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def total(a: Annotated[float, Dim.CAPACITANCE],
              b: Annotated[float, Dim.CAPACITANCE]) -> float:
        acc = 0.0
        acc += a + b
        return max(0.0, acc)
    """)
    report = analyze_program(ctx)
    assert "Q001" not in _rules(report)


def test_q001_propagates_interprocedurally(tmp_path):
    # The violation is only visible once helper()'s inferred TIME return
    # flows back into the caller's addition — no annotation on helper.
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def helper(r: Annotated[float, Dim.RESISTANCE],
               c: Annotated[float, Dim.CAPACITANCE]) -> float:
        return r * c

    def caller(r: Annotated[float, Dim.RESISTANCE],
               c: Annotated[float, Dim.CAPACITANCE]) -> float:
        return helper(r, c) + c
    """)
    report = analyze_program(ctx)
    (diag,) = [d for d in report.diagnostics if d.rule == "Q001"]
    assert "caller" in diag.message


# -- Q002: unnamed conversion literal ------------------------------------------


def test_q002_flags_dimensioned_scale_by_1000(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def to_ns(delay: Annotated[float, Dim.TIME]) -> float:
        return delay * 1000.0  # static: ok[U002] planted for the Q002 twin
    """)
    report = analyze_program(ctx)
    assert "Q002" in _rules(report)


def test_q002_clean_for_dimensionless_scaling(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def scaled(delay: Annotated[float, Dim.TIME], gain: float) -> float:
        return delay * gain
    """)
    report = analyze_program(ctx)
    assert "Q002" not in _rules(report)


# -- Q003: call-site dimension contradiction -----------------------------------


def test_q003_flags_period_passed_as_frequency(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def period_of(cycles: float) -> Annotated[float, Dim.TIME]:
        return cycles

    def set_clock(freq: Annotated[float, Dim.FREQUENCY]) -> float:
        return freq

    def bad(cycles: float) -> float:
        return set_clock(period_of(cycles))
    """)
    report = analyze_program(ctx)
    (diag,) = [d for d in report.diagnostics if d.rule == "Q003"]
    assert "frequency/period confusion" in diag.message


def test_q003_clean_for_matching_argument(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def freq_of(period: Annotated[float, Dim.TIME],
                ) -> Annotated[float, Dim.FREQUENCY]:
        return 1.0 / period

    def set_clock(freq: Annotated[float, Dim.FREQUENCY]) -> float:
        return freq

    def good(period: Annotated[float, Dim.TIME]) -> float:
        return set_clock(freq_of(period))
    """)
    report = analyze_program(ctx)
    assert "Q003" not in _rules(report)


# -- Q004: annotation-coverage ratchet -----------------------------------------


def test_q004_flags_bare_manifest_named_parameter(tmp_path):
    ctx = _context(tmp_path, """\
    def run(clock_period: float) -> float:
        return clock_period
    """, dims_manifest={"clock_period": Dim.TIME}, dim_roots=("pkg.mod",))
    report = analyze_program(ctx)
    q004 = [d for d in report.diagnostics if d.rule == "Q004"]
    assert any("clock_period" in d.message for d in q004)
    # 0/1 coverage is below the 90% ratchet: the gauge goes ERROR.
    assert any(d.severity is Severity.ERROR for d in q004)


def test_q004_gauge_reports_full_coverage(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def run(clock_period: Annotated[float, Dim.TIME],
            ) -> Annotated[float, Dim.TIME]:
        return clock_period
    """, dims_manifest={"clock_period": Dim.TIME}, dim_roots=("pkg.mod",))
    report = analyze_program(ctx)
    q004 = [d for d in report.diagnostics if d.rule == "Q004"]
    assert len(q004) == 1
    assert q004[0].severity is Severity.INFO
    assert "100.0%" in q004[0].message


def test_q004_ignores_modules_outside_signature_roots(tmp_path):
    ctx = _context(tmp_path, """\
    def run(clock_period: float) -> float:
        return clock_period
    """, dims_manifest={"clock_period": Dim.TIME}, dim_roots=("other.pkg",))
    report = analyze_program(ctx)
    assert "Q004" not in _rules(report)


# -- Q005: manifest field consumed under a different dimension -----------------


def test_q005_flags_manifest_field_passed_to_wrong_parameter(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def set_clock(freq: Annotated[float, Dim.FREQUENCY]) -> float:
        return freq

    def bad(spec) -> float:
        return set_clock(spec.clock_period)
    """, dims_manifest={"clock_period": Dim.TIME})
    report = analyze_program(ctx)
    (diag,) = [d for d in report.diagnostics if d.rule == "Q005"]
    assert "clock_period" in diag.message


def test_q005_clean_when_declaration_and_use_agree(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def set_period(period: Annotated[float, Dim.TIME]) -> float:
        return period

    def good(spec) -> float:
        return set_period(spec.clock_period)
    """, dims_manifest={"clock_period": Dim.TIME})
    report = analyze_program(ctx)
    assert "Q005" not in _rules(report)


# -- U001/U002 as registered static checks -------------------------------------


def test_u001_registered_check_flags_float_equality(tmp_path):
    ctx = _context(tmp_path, """\
    def f(x: float) -> bool:
        return x == 0.0
    """)
    report = analyze_program(ctx)
    assert "U001" in _rules(report)


def test_u002_registered_check_flags_conversion_literal(tmp_path):
    ctx = _context(tmp_path, """\
    def f(x: float) -> float:
        return x * 0.001
    """)
    report = analyze_program(ctx)
    assert "U002" in _rules(report)


def test_static_ok_suppression_covers_q_and_u_codes(tmp_path):
    ctx = _context(tmp_path, _DIM_HEADER + """\
    def mix(cap: Annotated[float, Dim.CAPACITANCE],
            slew: Annotated[float, Dim.TIME]) -> float:
        return cap + slew  # static: ok[Q001] planted, suppressed

    def f(x: float) -> bool:
        return x == 0.0  # static: ok[U001] exact sentinel
    """)
    report = analyze_program(ctx)
    assert "Q001" not in _rules(report)
    assert "U001" not in _rules(report)


# -- code-family filtering (--codes Q*) ----------------------------------------


def test_expand_code_patterns_selects_the_q_family():
    from repro.analysis import expand_code_patterns
    assert expand_code_patterns(["Q*"]) == [
        "Q001", "Q002", "Q003", "Q004", "Q005"]
    with pytest.raises(KeyError):
        expand_code_patterns(["Z*"])


def test_analyze_program_with_codes_runs_only_that_family(tmp_path):
    ctx = _context(tmp_path, """\
    def f(x: float) -> bool:
        return x == 0.0
    """)
    report = analyze_program(ctx, codes=["Q*"])
    assert set(report.checks_run) == {"Q001", "Q002", "Q003", "Q004", "Q005"}
    assert "U001" not in _rules(report)


# -- the dimension lattice algebra (property-based) ----------------------------


_BASE_DIMS = (Dim.DIMENSIONLESS, Dim.LENGTH, Dim.RESISTANCE,
              Dim.CAPACITANCE, Dim.VOLTAGE, Dim.TIME, Dim.FREQUENCY,
              Dim.ENERGY, Dim.POWER, Dim.CURRENT)

_concrete_dims = st.builds(
    lambda parts: parts[0] if len(parts) == 1
    else parts[0].mul(parts[1]) if len(parts) == 2
    else parts[0].mul(parts[1]).div(parts[2]),
    st.lists(st.sampled_from(_BASE_DIMS), min_size=1, max_size=3))

_any_dims = st.one_of(_concrete_dims,
                      st.sampled_from((Dim.TOP, Dim.BOTTOM)))


@given(a=_any_dims, b=_any_dims)
def test_dim_mul_is_commutative(a, b):
    assert a.mul(b) == b.mul(a)


@given(a=_any_dims, b=_any_dims, c=_any_dims)
def test_dim_mul_is_associative(a, b, c):
    assert a.mul(b).mul(c) == a.mul(b.mul(c))


@given(a=_concrete_dims)
def test_dim_div_inverts_mul(a):
    assert a.mul(a.inverse()) == Dim.DIMENSIONLESS
    assert a.div(a) == Dim.DIMENSIONLESS
    assert a.pow(2).pow(Fraction(1, 2)) == a


@given(a=_any_dims)
def test_dim_top_never_launders(a):
    # TOP absorbs through every operation: an unknown dimension can
    # never combine back into a concrete one.
    for result in (Dim.TOP.mul(a), a.mul(Dim.TOP),
                   Dim.TOP.div(a), a.div(Dim.TOP)):
        assert result is not None
        if a.special != "bottom":
            assert result == Dim.TOP
    assert Dim.TOP.join(a) == (Dim.TOP if a.special != "bottom"
                               else Dim.TOP)


@given(a=_any_dims, b=_any_dims)
def test_dim_join_is_commutative_and_bounded(a, b):
    joined = a.join(b)
    assert joined == b.join(a)
    assert a.join(a) == a
    assert Dim.BOTTOM.join(a) == a
    if a != b and a.special != "bottom" and b.special != "bottom":
        assert joined == Dim.TOP
