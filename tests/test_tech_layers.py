"""Metal layer stack: RC model shape and validation."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.layers import MetalLayer, MetalStack, default_metal_stack


@pytest.fixture(scope="module")
def stack() -> MetalStack:
    return default_metal_stack()


@pytest.fixture(scope="module")
def m5(stack) -> MetalLayer:
    return stack.by_name("M5")


def test_stack_has_six_layers(stack):
    assert len(stack) == 6
    assert [layer.name for layer in stack] == ["M1", "M2", "M3", "M4", "M5", "M6"]


def test_layer_directions_alternate(stack):
    directions = [layer.direction for layer in stack]
    for a, b in zip(directions, directions[1:]):
        assert a != b


def test_by_name_and_index_agree(stack):
    for layer in stack:
        assert stack.by_index(layer.index) is layer
        assert stack.by_name(layer.name) is layer


def test_unknown_layer_raises(stack):
    with pytest.raises(KeyError):
        stack.by_name("M9")
    with pytest.raises(KeyError):
        stack.by_index(42)


def test_resistance_halves_at_double_width(m5):
    assert m5.resistance_per_um(2 * m5.min_width) == pytest.approx(
        m5.resistance_per_um(m5.min_width) / 2.0)


def test_isolated_cap_magnitude_is_45nm_class(m5):
    # Published 45 nm per-um total capacitance is ~0.2 fF/um.
    c = m5.isolated_cap_per_um(m5.min_width)
    assert 0.1 < c < 0.4


def test_resistance_magnitude_is_45nm_class(stack):
    # Intermediate copper: a few ohm/um at minimum width.
    m3 = stack.by_name("M3")
    r_ohm_per_um = m3.resistance_per_um(m3.min_width) * 1000.0
    assert 1.0 < r_ohm_per_um < 10.0


def test_coupling_cap_decreases_with_spacing(m5):
    s = m5.min_spacing
    assert m5.coupling_cap_per_um(s) > m5.coupling_cap_per_um(2 * s)
    assert m5.coupling_cap_per_um(2 * s) >= m5.c_fringe_far


def test_coupling_superlinear_falloff(m5):
    """Doubling spacing cuts coupling by more than 2x (exponent > 1)."""
    s = m5.min_spacing
    ratio = m5.coupling_cap_per_um(s) / m5.coupling_cap_per_um(2 * s)
    assert ratio > 2.0


def test_coupling_beyond_reach_is_far_field(m5):
    assert m5.coupling_cap_per_um(m5.coupling_reach) == m5.c_fringe_far
    assert m5.coupling_cap_per_um(10.0) == m5.c_fringe_far


def test_coupling_rejects_nonpositive_spacing(m5):
    with pytest.raises(ValueError):
        m5.coupling_cap_per_um(0.0)


def test_ground_cap_scales_with_width(m5):
    assert m5.ground_cap_per_um(2 * m5.min_width) == pytest.approx(
        2.0 * m5.ground_cap_per_um(m5.min_width))


def test_ground_cap_rejects_nonpositive_width(m5):
    with pytest.raises(ValueError):
        m5.ground_cap_per_um(-0.1)


@given(st.floats(min_value=0.01, max_value=0.79))
def test_coupling_cap_monotone_nonincreasing(spacing):
    m5 = default_metal_stack().by_name("M5")
    eps = 0.01
    assert (m5.coupling_cap_per_um(spacing)
            >= m5.coupling_cap_per_um(spacing + eps) - 1e-12)


def test_bad_direction_rejected():
    with pytest.raises(ValueError):
        MetalLayer("MX", 1, "D", 0.07, 0.14, 0.07, 0.14, 0.25,
                   0.6, 0.04, 0.001, 0.5, 0.025, 8000.0)


def test_nonpositive_geometry_rejected():
    with pytest.raises(ValueError):
        MetalLayer("MX", 1, "H", 0.0, 0.14, 0.07, 0.14, 0.25,
                   0.6, 0.04, 0.001, 0.5, 0.025, 8000.0)


def test_stack_requires_increasing_indices():
    m1 = default_metal_stack().by_name("M1")
    m2 = default_metal_stack().by_name("M2")
    with pytest.raises(ValueError):
        MetalStack(layers=(m2, m1))


def test_empty_stack_rejected():
    with pytest.raises(ValueError):
        MetalStack(layers=())
