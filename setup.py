"""Setup shim for environments without the `wheel` package.

The project is fully described by pyproject.toml; this file only exists
so `pip install -e .` can fall back to the legacy (non-PEP-517) editable
install path in offline environments.
"""

from setuptools import setup

setup()
