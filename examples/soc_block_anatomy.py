"""Scenario: where do the NDRs actually go?

The paper's motivation section argues most clock wires never needed
their NDR.  This example dissects a smart-NDR solution on a 512-sink
SoC block: which wires were upgraded, with which rule, and which
constraint drove each upgrade — recovered from the wires' default-state
analysis (EM utilisation, coupling exposure, tree depth).

Usage::

    python examples/soc_block_anatomy.py
"""

from collections import Counter

from repro import (Policy, default_technology, generate_design, run_flow,
                   spec_by_name, targets_from_reference)
from repro.reliability.em import DEFAULT_EM_FACTOR, analyze_em
from repro.reporting import Table


def main() -> None:
    tech = default_technology()
    spec = spec_by_name("ckt512")
    reference = run_flow(generate_design(spec), tech, policy=Policy.ALL_NDR)
    targets = targets_from_reference(reference.analyses, tech)

    flow = run_flow(generate_design(spec), tech, policy=Policy.SMART,
                    targets=targets)
    routing = flow.physical.routing
    extraction = flow.physical.extraction
    tree = flow.physical.tree
    em = analyze_em(extraction.network, routing, tech.vdd,
                    generate_design(spec).clock_freq,
                    em_factor=DEFAULT_EM_FACTOR)
    em_util = {w.wire_id: w.utilization for w in em.wires}

    print(f"{spec.name}: {len(routing.clock_wires)} clock wires, "
          f"{flow.optimize.num_upgraded} upgraded "
          f"({100 * flow.optimize.num_upgraded / len(routing.clock_wires):.1f}%), "
          f"{flow.optimize.downgraded} reclaimed by the peephole pass\n")

    # Rule histogram.
    hist = Counter(flow.rule_histogram)
    table = Table("Rule assignment", ["rule", "wires", "share %"])
    total = sum(hist.values())
    for rule in ("W1S1", "W2S1", "W1S2", "W2S2", "W4S2"):
        if hist.get(rule):
            table.add_row(rule, hist[rule], 100.0 * hist[rule] / total)
    print(table.render())

    # Anatomy of the upgraded population.
    upgraded = [routing.tracks.wire(wid) for wid in flow.optimize.upgraded]
    if upgraded:
        anatomy = Table(
            "Upgraded wires: what drove them",
            ["rule", "n", "mean depth", "mean len (um)",
             "mean EM util", "mean cc (fF)"])
        by_rule: dict[str, list] = {}
        for wire in upgraded:
            by_rule.setdefault(wire.rule.name.value, []).append(wire)
        for rule, wires in sorted(by_rule.items()):
            depths = [tree.depth(w.edge_child_id) for w in wires]
            lengths = [w.length for w in wires]
            utils = [em_util.get(w.wire_id, 0.0) for w in wires]
            ccs = [extraction.wires[w.wire_id].cc_signal for w in wires]
            anatomy.add_row(
                rule, len(wires),
                sum(depths) / len(wires),
                sum(lengths) / len(wires),
                sum(utils) / len(wires),
                sum(ccs) / len(wires))
        print(anatomy.render())
        print("\nReading: width upgrades (W2S1/W4S2) concentrate on shallow,"
              "\nlong, high-current trunks (EM + variation); spacing upgrades"
              "\n(W1S2/W2S2) sit where aggressor coupling is largest.")

    from repro.viz import save_clock_svg

    save_clock_svg(tree, routing, "clock_anatomy.svg",
                   title=f"{spec.name} smart NDR (gray=default, "
                         "blue=width, green=space, orange/red=full)",
                   blockages=flow.physical.design.blockages)
    print("\nWrote clock_anatomy.svg — the gray tree with its few "
          "colored (protected) wires.")


if __name__ == "__main__":
    main()
