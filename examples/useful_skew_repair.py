"""Scenario: repair failing setup paths with useful skew.

Zero skew is a convention, not an optimum: a failing setup path gains
exactly one picosecond of slack per picosecond its capture clock moves
later.  This example fabricates a slack profile with a few failing
paths on a 128-sink block, schedules capture-side offsets, implements
them (leaf delay buffers + offset-aware trimming) and verifies the
paths against the *measured* clock arrivals.

Usage::

    python examples/useful_skew_repair.py
"""

import numpy as np

from repro import default_technology, generate_design, spec_by_name
from repro.core.flow import build_physical_design
from repro.cts.refine import refine_skew
from repro.cts.usefulskew import (TimingPath, apply_useful_skew,
                                  delay_buffer_quantum, schedule_offsets,
                                  worst_path_slack)
from repro.reporting import Table


def fabricate_paths(pins, rng, n_paths=40, n_failing=6):
    """A synthetic slack profile: mostly healthy, a few failing paths."""
    paths = []
    for i in range(n_paths):
        launch, capture = rng.choice(len(pins), size=2, replace=False)
        slack = float(rng.uniform(20.0, 120.0))
        if i < n_failing:
            slack = float(rng.uniform(-18.0, -4.0))
        paths.append(TimingPath(pins[launch], pins[capture], slack))
    return paths


def measured_slacks(paths, timing, base_timing):
    """Path slacks using the measured arrival shifts, not the schedule."""
    base = {s.pin.full_name: s.arrival for s in base_timing.sinks}
    now = {s.pin.full_name: s.arrival for s in timing.sinks}
    # Measured offsets relative to the common mode shift.
    common = np.median([now[p] - base[p] for p in base])
    shift = {p: (now[p] - base[p]) - common for p in base}
    return [p.slack + shift[p.capture_pin] - shift[p.launch_pin]
            for p in paths]


def main() -> None:
    tech = default_technology()
    design = generate_design(spec_by_name("ckt128"))
    phys = build_physical_design(design, tech)
    base_timing = phys.refine.timing
    pins = [s.pin.full_name for s in base_timing.sinks]
    rng = np.random.default_rng(12)
    paths = fabricate_paths(pins, rng)

    failing = [p for p in paths if p.slack < 0.0]
    print(f"{len(paths)} paths, {len(failing)} failing; worst slack "
          f"{min(p.slack for p in paths):.1f} ps at zero skew\n")

    # Schedule against the implementable quantum: a delay buffer cannot
    # add less than ~one stage delay, and paths *launched* by an offset
    # flop must see what will actually be built.
    quantum = max(delay_buffer_quantum(tech, leaf.sink_pin.cap,
                                       phys.tree.edge_length(leaf.node_id))
                  for leaf in phys.tree.sinks())
    offsets = schedule_offsets(paths, max_offset=max(60.0, 2 * quantum),
                               capture_only=True, min_positive=quantum)
    effective = apply_useful_skew(phys.tree, tech, offsets)
    result = refine_skew(phys.tree, phys.routing, tech, offsets=effective)
    slacks = measured_slacks(paths, result.timing, base_timing)

    table = Table("Failing paths before/after useful skew (measured)",
                  ["launch", "capture", "slack before", "slack after"])
    for path, after in zip(paths, slacks):
        if path.slack < 0.0:
            table.add_row(path.launch_pin, path.capture_pin,
                          path.slack, after)
    print(table.render())
    print(f"\nScheduled worst slack: "
          f"{worst_path_slack(paths, offsets):.2f} ps; "
          f"measured worst slack: {min(slacks):.2f} ps")
    print(f"Implementation: {len(effective)} delay buffers, corrected-frame "
          f"skew {result.final_skew:.2f} ps, "
          f"trim cap {result.added_pad_cap:.0f} fF")


if __name__ == "__main__":
    main()
