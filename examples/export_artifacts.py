"""Scenario: export everything a paper figure (or a signoff review) needs.

Runs the headline comparison on one design and writes the artifacts a
downstream user actually consumes: the comparison table as CSV, the
routed tree as SVG per policy, the smart rule assignment as JSON (re-
appliable without re-optimizing), and a per-wire parasitics report.

Usage::

    python examples/export_artifacts.py [output_dir]
"""

import sys
from pathlib import Path

from repro import (default_technology, generate_design, spec_by_name,
                   targets_from_reference)
from repro.api import Policy, run_flow
from repro.io import save_rule_assignment, write_wire_report
from repro.reporting import Table
from repro.viz import save_clock_svg

DESIGN = "ckt128"


def main(out_dir: str = "artifacts") -> None:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    tech = default_technology()
    spec = spec_by_name(DESIGN)

    reference = run_flow(generate_design(spec), tech, policy=Policy.ALL_NDR)
    targets = targets_from_reference(reference.analyses, tech)

    table = Table(f"{DESIGN}: policy comparison",
                  ["policy", "power_uw", "wire_cap_ff", "dd_ps",
                   "skew3sig_ps", "feasible"])
    for policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART):
        flow = run_flow(generate_design(spec), tech, policy=policy,
                        targets=targets)
        a = flow.analyses
        table.add_row(policy.value, flow.clock_power, a.power.wire_cap,
                      a.crosstalk.worst_delta, a.mc.skew_3sigma,
                      "yes" if flow.feasible else "NO")
        save_clock_svg(flow.physical.tree, flow.physical.routing,
                       out / f"{DESIGN}_{policy.value}.svg",
                       title=f"{DESIGN} / {policy.value}",
                       blockages=flow.physical.design.blockages)
        if policy == Policy.SMART:
            save_rule_assignment(flow.physical.routing,
                                 out / f"{DESIGN}_smart_rules.json",
                                 design_name=DESIGN)
            write_wire_report(flow.physical.extraction,
                              out / f"{DESIGN}_wires.txt")

    table.save_csv(out / f"{DESIGN}_comparison.csv")
    print(table.render())
    written = sorted(p.name for p in out.iterdir())
    print(f"\nWrote {len(written)} artifacts to {out}/:")
    for name in written:
        print(f"  {name}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "artifacts")
