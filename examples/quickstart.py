"""Quickstart: smart NDR on one benchmark design.

Runs the three headline policies on a 256-sink block through the
stable :mod:`repro.api` facade and prints the power/robustness
comparison the paper's abstract summarises.

Usage::

    python examples/quickstart.py
"""

from repro.api import compare
from repro.reporting import Table

DESIGN = "ckt256"


def main() -> None:
    # Budgets pegged to the all-NDR reference: "as robust as all-NDR,
    # within 15%" — the paper's operational spec.  compare() schedules
    # the reference as a shared upstream job.
    report = compare(DESIGN, slack=0.15)

    table = Table(
        "Clock power and robustness per routing policy",
        ["policy", "power (uW)", "wire cap (fF)", "dd (ps)", "3sig (ps)",
         "EM viol", "upgraded wires", "feasible"])
    for cell in report.cells:
        s = cell.summary
        table.add_row(cell.policy, s["power_uw"], s["wire_cap_ff"],
                      s["worst_delta_ps"], s["skew_3sigma_ps"],
                      int(s["em_violations"]), cell.upgraded_wires,
                      "yes" if cell.feasible else "NO")
    print(table.render())

    print(f"\nSmart NDR saves {report.smart_saving_pct:.1f}% clock power "
          f"vs the uniform all-NDR flow, at the same robustness spec.")


if __name__ == "__main__":
    main()
