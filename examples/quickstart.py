"""Quickstart: smart NDR on one benchmark design.

Runs the three headline policies on a 256-sink block and prints the
power/robustness comparison the paper's abstract summarises.

Usage::

    python examples/quickstart.py
"""

from repro import (Policy, default_technology, generate_design, run_flow,
                   spec_by_name, targets_from_reference)
from repro.reporting import Table


def main() -> None:
    tech = default_technology()
    spec = spec_by_name("ckt256")

    # Budgets pegged to the all-NDR reference: "as robust as all-NDR,
    # within 15%" — the paper's operational spec.
    reference = run_flow(generate_design(spec), tech, policy=Policy.ALL_NDR)
    targets = targets_from_reference(reference.analyses, tech)
    print(f"Design {spec.name}: {spec.n_sinks} sinks, "
          f"{spec.n_aggressors} aggressor nets, "
          f"{spec.die_edge:.0f} um die, 1 GHz clock")
    print(f"Budgets: delta-delay <= {targets.max_worst_delta:.2f} ps, "
          f"3-sigma skew <= {targets.max_skew_3sigma:.2f} ps, "
          f"slew <= {targets.max_slew:.0f} ps, EM util <= 1.0\n")

    table = Table(
        "Clock power and robustness per routing policy",
        ["policy", "power (uW)", "wire cap (fF)", "dd (ps)", "3sig (ps)",
         "EM viol", "upgraded wires", "feasible"])
    rows = {}
    for policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART):
        flow = run_flow(generate_design(spec), tech, policy=policy,
                        targets=targets)
        rows[policy] = flow
        hist = flow.rule_histogram
        upgraded = sum(hist.values()) - hist.get("W1S1", 0)
        a = flow.analyses
        table.add_row(policy.value, flow.clock_power, a.power.wire_cap,
                      a.crosstalk.worst_delta, a.mc.skew_3sigma,
                      int(a.em.num_violations), upgraded,
                      "yes" if flow.feasible else "NO")
    print(table.render())

    p_all = rows[Policy.ALL_NDR].clock_power
    p_smart = rows[Policy.SMART].clock_power
    print(f"\nSmart NDR saves {100 * (p_all - p_smart) / p_all:.1f}% clock "
          f"power vs the uniform all-NDR flow, at the same robustness spec.")


if __name__ == "__main__":
    main()
