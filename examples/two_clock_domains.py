"""Scenario: two clocks weaving through the same logic.

An interleaved pair of clock domains is the hardest SI environment a
clock sees — the other tree toggles every single cycle.  This example
builds both domains into one track space, pegs per-domain budgets to
the uniform-NDR reference, and shows per-domain smart assignment
restoring feasibility at lower combined power.

Usage::

    python examples/two_clock_domains.py
"""

from repro import (Policy, default_technology, generate_design,
                   spec_by_name, targets_from_reference)
from repro.core import run_multiclock_flow, split_domains
from repro.reporting import Table

DESIGN = "ckt128"


def build(policy, tech, targets=None):
    design = generate_design(spec_by_name(DESIGN))
    domains = split_domains(design, 2, interleave=True)
    return run_multiclock_flow(design, domains, tech, policy=policy,
                               targets=targets)


def main() -> None:
    tech = default_technology()
    reference = build(Policy.ALL_NDR, tech)
    targets = {d.domain.name: targets_from_reference(d.analyses, tech)
               for d in reference.domains}

    table = Table(f"{DESIGN} split into two interleaved clock domains",
                  ["policy", "domain", "P (uW)", "dd ps", "3sig ps",
                   "inter-clock couplings", "feasible"])
    totals = {}
    for policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART):
        result = build(policy, tech, targets)
        totals[policy] = result.total_power
        for d in result.domains:
            hot = sum(1 for para in d.extraction.wires.values()
                      for e in para.couplings if e.activity == 1.0)
            a = d.analyses
            table.add_row(policy.value, d.domain.name, d.clock_power,
                          a.crosstalk.worst_delta, a.mc.skew_3sigma, hot,
                          "yes" if d.feasible else "NO")
    print(table.render())
    saving = 100.0 * (totals[Policy.ALL_NDR] - totals[Policy.SMART]) \
        / totals[Policy.ALL_NDR]
    print(f"\nCombined: smart {totals[Policy.SMART]:.0f} uW vs all-NDR "
          f"{totals[Policy.ALL_NDR]:.0f} uW ({saving:.1f}% saving), with "
          "both domains inside their budgets.")


if __name__ == "__main__":
    main()
