"""Scenario: bring your own technology.

Everything process-dependent lives in one immutable
:class:`~repro.tech.Technology` object.  This example derives a
"stressed" variant of the default 45 nm-class technology — higher
aggressor coupling (denser dielectric stack) and a tighter EM limit —
and shows how the smart optimizer's rule mix shifts in response: more
spacing upgrades for the coupling, more width for the EM.

Usage::

    python examples/custom_technology.py
"""

import dataclasses

from repro import (Policy, RobustnessTargets, default_technology,
                   generate_design, run_flow, spec_by_name)
from repro.reporting import Table
from repro.tech.layers import MetalStack


def stressed_technology():
    """The default tech with 1.5x coupling and 0.8x EM budget."""
    base = default_technology()
    layers = []
    for layer in base.stack:
        layers.append(dataclasses.replace(
            layer,
            k_couple=layer.k_couple * 1.5,
            em_jmax=layer.em_jmax * 0.8,
        ))
    return dataclasses.replace(base, name="generic45-stressed",
                               stack=MetalStack(layers=tuple(layers)))


def run(tech, label: str, table: Table) -> None:
    spec = spec_by_name("ckt256")
    # The *same absolute* spec for both processes (0.6% / 1.0% of the
    # period), so the stressed one has to work harder to meet it.
    targets = RobustnessTargets.for_period(
        spec.clock_period, tech.max_slew,
        delta_fraction=0.006, skew_fraction=0.010)
    flow = run_flow(generate_design(spec), tech, policy=Policy.SMART,
                    targets=targets)
    hist = flow.rule_histogram
    total = sum(hist.values())
    spacing = hist.get("W1S2", 0) + hist.get("W2S2", 0) + hist.get("W4S2", 0)
    width = hist.get("W2S1", 0) + hist.get("W2S2", 0) + hist.get("W4S2", 0)
    table.add_row(label, flow.clock_power,
                  100.0 * (total - hist.get("W1S1", 0)) / total,
                  spacing, width,
                  "yes" if flow.feasible else "NO")


def main() -> None:
    table = Table(
        "Smart NDR under two technologies (ckt256)",
        ["technology", "power (uW)", "upgraded %", "spacing rules",
         "width rules", "feasible"])
    run(default_technology(), "generic45 (default)", table)
    run(stressed_technology(), "generic45-stressed", table)
    print(table.render())
    print("\nThe stressed process needs roughly twice the protection, and "
          "the extra\ndemand lands on the spacing axis (the coupling got "
          "worse); the optimizer\nfinds the new mix from the same analysis "
          "loop — no re-tuning required.")


if __name__ == "__main__":
    main()
