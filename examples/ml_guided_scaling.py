"""Scenario: learn the rule decisions once, apply them at scale.

The greedy optimizer re-analyzes the design every iteration; on a big
clock network that loop dominates runtime.  This example trains the
classifier guide on the three smallest benchmarks and deploys it on the
two largest, comparing runtime and power against the full greedy run —
the paper's "smart/predictive" scalability angle.

Usage::

    python examples/ml_guided_scaling.py
"""

import time

from repro import (NdrClassifierGuide, default_technology, generate_design,
                   spec_by_name, targets_from_reference)
from repro.api import Policy, run_flow
from repro.reporting import Table

TRAIN = ("ckt64", "ckt128", "ckt256")
DEPLOY = ("ckt512", "ckt1024")


def main() -> None:
    tech = default_technology()

    t0 = time.perf_counter()
    guide = NdrClassifierGuide(seed=1)
    stats = guide.fit_designs([generate_design(spec_by_name(n))
                               for n in TRAIN], tech)
    train_time = time.perf_counter() - t0
    print(f"Trained on {stats.n_samples} wires from {', '.join(TRAIN)} "
          f"in {train_time:.1f}s; label mix: {stats.label_counts}")
    top = sorted(stats.feature_importances.items(), key=lambda kv: -kv[1])[:4]
    print("Top features:",
          ", ".join(f"{k} ({v:.2f})" for k, v in top), "\n")

    table = Table(
        "Greedy vs ML-guided on held-out designs",
        ["design", "greedy P (uW)", "greedy t (s)", "ml P (uW)", "ml t (s)",
         "power gap %", "both feasible"])
    for name in DEPLOY:
        spec = spec_by_name(name)
        reference = run_flow(generate_design(spec), tech,
                             policy=Policy.ALL_NDR)
        targets = targets_from_reference(reference.analyses, tech)
        greedy = run_flow(generate_design(spec), tech, policy=Policy.SMART,
                          targets=targets)
        ml = run_flow(generate_design(spec), tech, policy=Policy.SMART_ML,
                      targets=targets, guide=guide)
        gap = 100.0 * (ml.clock_power - greedy.clock_power) \
            / greedy.clock_power
        table.add_row(name, greedy.clock_power, greedy.runtime,
                      ml.clock_power, ml.runtime, gap,
                      "yes" if greedy.feasible and ml.feasible else "NO")
    print(table.render())
    print("\nThe guide lands within a few percent of the greedy power with "
          "one prediction\npass plus a short repair loop instead of the "
          "full sensitivity iteration.")


if __name__ == "__main__":
    main()
