#!/usr/bin/env python3
"""CI gate around ``repro lint --static``: annotations plus a time budget.

Runs the whole-program analyzer in JSON mode as a subprocess, parses
the machine-readable report, and re-emits every finding as a GitHub
Actions workflow annotation (``::error file=...,line=...``) so findings
land on the offending line of the PR diff instead of only in the job
log.  Two gates decide the exit status:

* any ERROR diagnostic (the analyzer's own contract: the package must
  lint clean, every deliberate hit suppressed with a rationale);
* analyzer wall time at or over the budget (default 30 s) — the
  static job runs on every PR, so a super-linear regression in the
  call-graph/effect fixpoint must fail loudly instead of silently
  eating CI minutes.

Usage::

    python tools/ci_static_gate.py [--package src/repro] [--budget 30]

Pure stdlib; exits 0 clean / 1 findings / 2 over budget or broken run.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

#: GitHub annotation level per analyzer severity.
_LEVELS = {"ERROR": "error", "WARN": "warning", "INFO": "notice"}


def _source_path(package_root: Path, module: str) -> Path | None:
    """``repro.engine.backends`` -> ``src/repro/engine/backends.py``."""
    parts = module.split(".")
    if not parts or parts[0] != package_root.name:
        return None
    rel = Path(*parts[1:]) if len(parts) > 1 else Path()
    for candidate in (package_root / rel.with_suffix(".py"),
                      package_root / rel / "__init__.py"):
        if candidate.is_file():
            return candidate
    return None


def _annotation(package_root: Path, diag: dict) -> str:
    """One ``::error``/``::warning`` workflow-command line."""
    level = _LEVELS.get(diag.get("severity", "ERROR"), "error")
    rule = diag.get("rule", "static")
    message = diag.get("message", "")
    if diag.get("hint"):
        message += f" (hint: {diag['hint']})"
    # Workflow-command payloads are single-line; properties escape , and :
    message = message.replace("%", "%25").replace("\n", "%0A")
    fields = [f"title=static {rule}"]
    obj = diag.get("obj", "")
    module, _, lineno = str(obj).partition(":")
    path = _source_path(package_root, module) if module else None
    if path is not None:
        fields.insert(0, f"file={path}")
        if lineno.isdigit():
            fields.insert(1, f"line={lineno}")
    return f"::{level} {','.join(fields)}::{rule}: {message}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--package", default="src/repro",
                        help="package root to lint (default src/repro)")
    parser.add_argument("--budget", type=float, default=30.0, metavar="SEC",
                        help="max analyzer wall time in seconds (default 30)")
    args = parser.parse_args(argv)
    package_root = Path(args.package)

    command = [sys.executable, "-m", "repro", "lint", "--static", "--json",
               str(package_root)]
    start = time.perf_counter()
    proc = subprocess.run(command, capture_output=True, text=True)
    elapsed = time.perf_counter() - start

    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print(f"::error title=static gate::analyzer produced no JSON "
              f"report (exit {proc.returncode})")
        sys.stderr.write(proc.stdout + proc.stderr)
        return 2

    for diag in report.get("diagnostics", []):
        print(_annotation(package_root, diag))

    # Surface the Q004 dimension-annotation coverage gauge in the job
    # summary line, not just as a ::notice annotation, so the ratchet's
    # headroom is visible at a glance in the log.
    for diag in report.get("diagnostics", []):
        if (diag.get("rule") == "Q004"
                and "annotation coverage" in diag.get("message", "")):
            print(f"static gate: {diag['message']}")
            break

    counts = report.get("counts", {})
    checks = len(report.get("checks_run", []))
    print(f"static gate: {checks} checks, "
          f"{counts.get('ERROR', 0)} errors, {counts.get('WARN', 0)} "
          f"warnings, {counts.get('INFO', 0)} notes in {elapsed:.1f}s "
          f"(budget {args.budget:.0f}s)")

    if elapsed >= args.budget:
        print(f"::error title=static gate::analyzer took {elapsed:.1f}s, "
              f"at/over the {args.budget:.0f}s budget — the whole-program "
              f"fixpoint has regressed")
        return 2
    return 1 if counts.get("ERROR", 0) else 0


if __name__ == "__main__":
    raise SystemExit(main())
