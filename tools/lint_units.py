#!/usr/bin/env python3
"""Thin shim over :mod:`repro.analysis.rules_units`.

The U001/U002 unit-hygiene rules now live in the static-analysis
package, registered alongside the interprocedural Q codes (run
``repro lint --static`` for the full dimension inference).  This
script keeps the zero-setup CLI entry point CI and editors call::

    python tools/lint_units.py [paths...]

Suppress a finding with ``# static: ok[U001] rationale`` (the shared
static-analysis syntax); the legacy ``# lint-units: ok`` marker is
still honored.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.analysis.rules_units import (  # noqa: F401
        CONVERSION_LITERALS, DEFAULT_TREES, EXEMPT_FILES, SUPPRESS_MARKER,
        Finding, default_paths, lint_file, lint_paths, main)
except ImportError:  # running from a checkout without repro installed
    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis.rules_units import (  # noqa: F401
        CONVERSION_LITERALS, DEFAULT_TREES, EXEMPT_FILES, SUPPRESS_MARKER,
        Finding, default_paths, lint_file, lint_paths, main)

if __name__ == "__main__":
    sys.exit(main())
