#!/usr/bin/env python3
"""Unit-hygiene linter for the coherent unit system (see repro/units.py).

Two rules, both aimed at bugs the type system cannot catch because every
physical quantity is a plain ``float``:

U001  Float-literal equality.  ``x == 0.0`` / ``x != 1.0`` on physical
      quantities is almost always a latent bug: the value is the result
      of arithmetic (lengths from coordinate differences, caps from
      products) and exact equality silently turns into "never" or
      "always" under round-off.  Compare with an ordering operator, an
      explicit tolerance, or a dedicated predicate
      (e.g. ``Segment.is_point``).

U002  Magic unit-conversion constants.  A literal ``1000.0``/``1e3`` or
      ``0.001``/``1e-3`` outside ``repro/units.py`` is a milli/kilo
      conversion hiding from the unit system; spell it ``NS``, ``OHM``,
      ``PF``, ... from :mod:`repro.units` so the conversion is named and
      greppable.

Suppress a finding by putting ``# lint-units: ok`` on the offending
line — the marker documents that the comparison/constant is deliberate
(enum identity on exact multipliers, a solver hyper-parameter, ...).

Usage::

    python tools/lint_units.py [paths...]

With no paths, lints the repository's ``src``, ``tools`` and
``benchmarks`` trees (skipping any that do not exist).  Exits 1 if any
finding survives suppression, 0 otherwise.  Pure stdlib.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

SUPPRESS_MARKER = "lint-units: ok"

#: Float literals that duplicate repro.units conversion constants
#: (1e3 == 1000.0 and 1e-3 == 0.001 compare equal, so two entries
#: cover all four spellings).  Tolerances like 1e-6/1e-9 are not unit
#: conversions and stay legal.
CONVERSION_LITERALS: tuple[float, ...] = (1000.0, 0.001)  # lint-units: ok

#: Files whose whole purpose is defining the conversion constants.
EXEMPT_FILES: tuple[str, ...] = ("units.py",)

#: Trees linted when the CLI is given no paths, relative to the repo
#: root (the parent of this script's directory).
DEFAULT_TREES: tuple[str, ...] = ("src", "tools", "benchmarks")


def default_paths() -> list[Path]:
    """The repo's lintable trees, skipping any that do not exist."""
    root = Path(__file__).resolve().parent.parent
    return [root / tree for tree in DEFAULT_TREES if (root / tree).is_dir()]


@dataclass(frozen=True)
class Finding:
    """One linter hit."""

    path: Path
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Negative literals parse as UnaryOp(USub, Constant).
    return (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and _is_float_literal(node.operand))


def _literal_value(node: ast.expr) -> float:
    if isinstance(node, ast.Constant):
        value = node.value
        if not isinstance(value, float):
            raise TypeError(f"not a float literal: {value!r}")
        return value
    if isinstance(node, ast.UnaryOp) and _is_float_literal(node.operand):
        inner = _literal_value(node.operand)
        return -inner if isinstance(node.op, ast.USub) else inner
    raise TypeError(f"not a float literal: {ast.dump(node)}")


def _check_tree(path: Path, tree: ast.AST,
                source_lines: Sequence[str]) -> Iterator[Finding]:
    suppressed = {i + 1 for i, text in enumerate(source_lines)
                  if SUPPRESS_MARKER in text}
    exempt_conversions = path.name in EXEMPT_FILES
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = next((o for o in (left, right)
                                if _is_float_literal(o)), None)
                if literal is None or node.lineno in suppressed:
                    continue
                yield Finding(
                    path, node.lineno, node.col_offset, "U001",
                    f"float-literal equality (== / != with "
                    f"{_literal_value(literal)!r}); use an ordering "
                    f"comparison, a tolerance, or a predicate "
                    f"[suppress: # {SUPPRESS_MARKER}]")
        elif (isinstance(node, ast.Constant)
              and isinstance(node.value, float)
              and not exempt_conversions
              and node.value in CONVERSION_LITERALS
              and node.lineno not in suppressed):
            yield Finding(
                path, node.lineno, node.col_offset, "U002",
                f"magic unit-conversion constant {node.value!r}; use the "
                f"named constant from repro.units "
                f"[suppress: # {SUPPRESS_MARKER}]")


def lint_file(path: Path) -> list[Finding]:
    """Lint one Python file; returns its findings (possibly empty)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, exc.offset or 0, "U000",
                        f"syntax error: {exc.msg}")]
    return sorted(_check_tree(path, tree, source.splitlines()),
                  key=lambda f: (f.line, f.col, f.rule))


def lint_paths(paths: Sequence[Path]) -> list[Finding]:
    """Lint every ``*.py`` file under the given files/directories."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: list[Finding] = []
    for file in files:
        findings.extend(lint_file(file))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="unit-hygiene linter (U001 float-literal equality, "
                    "U002 magic unit-conversion constants)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the repo's src, tools and "
                             "benchmarks trees)")
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths or default_paths())
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
