#!/usr/bin/env python
"""Benchmark gate for the staged flow runner.

Two checks, recorded in ``BENCH_runner.json`` at the repo root:

* **smoke** — the ckt64 policy comparison run with ``--jobs 2`` must
  reproduce the serial summaries bit for bit (same cells, fresh
  artifact stores on both sides);
* **timing** — a cold ckt256 policy comparison (fresh store; the work
  the seed's serial compare path performed) against a warm rerun of
  the same matrix from the populated store.  The warm rerun must be
  at least 2x faster: every cell comes back as a deserialized
  artifact, not a re-run flow.

Exits nonzero if either property fails, so CI can gate on it.

Usage::

    PYTHONPATH=src python tools/bench_runner.py [--out BENCH_runner.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core import Policy
from repro.runner import FlowRunner, RunMatrix

SMOKE_DESIGN = "ckt64"
TIMING_DESIGN = "ckt256"
POLICIES = (Policy.NO_NDR, Policy.ALL_NDR, Policy.SMART)
MIN_WARM_SPEEDUP = 2.0


def _matrix(design: str) -> RunMatrix:
    return RunMatrix(designs=(design,), policies=POLICIES, slacks=(0.15,))


def _fresh_store() -> str:
    return tempfile.mkdtemp(prefix="repro-bench-runner-")


def smoke() -> dict:
    """ckt64 x 3 policies: a 2-worker pool must match the serial path."""
    serial = FlowRunner(store=_fresh_store()).run(_matrix(SMOKE_DESIGN))
    parallel = FlowRunner(store=_fresh_store()).run(_matrix(SMOKE_DESIGN),
                                                    jobs=2)
    matches = all(s.summary == p.summary
                  and s.rule_histogram == p.rule_histogram
                  and s.feasible == p.feasible
                  for s, p in zip(serial, parallel))
    return {
        "design": SMOKE_DESIGN,
        "policies": [p.value for p in POLICIES],
        "jobs": 2,
        "cells": len(serial),
        "parallel_matches_serial": matches,
    }


def timing() -> dict:
    """Cold vs warm ckt256 comparison through one artifact store."""
    store = _fresh_store()
    matrix = _matrix(TIMING_DESIGN)

    start = time.perf_counter()
    FlowRunner(store=store).run(matrix)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = FlowRunner(store=store).run(matrix)
    warm_s = time.perf_counter() - start

    return {
        "design": TIMING_DESIGN,
        "policies": [p.value for p in POLICIES],
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 2),
        "warm_cells_cached": all(r.cached for r in warm),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_runner.json"),
        help="output JSON path (default: repo-root BENCH_runner.json)")
    args = parser.parse_args(argv)

    record = {"smoke": smoke(), "timing": timing()}
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))

    ok = True
    if not record["smoke"]["parallel_matches_serial"]:
        print("FAIL: parallel summaries differ from serial", file=sys.stderr)
        ok = False
    if not record["timing"]["warm_cells_cached"]:
        print("FAIL: warm rerun re-executed at least one cell",
              file=sys.stderr)
        ok = False
    if record["timing"]["speedup"] < MIN_WARM_SPEEDUP:
        print(f"FAIL: warm speedup {record['timing']['speedup']}x "
              f"< {MIN_WARM_SPEEDUP}x", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
