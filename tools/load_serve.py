#!/usr/bin/env python
"""Load generator + benchmark gate for the serve daemon.

Boots a :class:`~repro.serve.ServeDaemon` on an ephemeral port with a
fresh artifact store, then drives three concurrent workloads over raw
sockets (exactly what an external client would send) and records the
results in ``BENCH_serve.json`` at the repo root:

* **hot-repeat** — N clients all posting the *identical* request:
  after one cold fill this measures the response-cache fast path;
* **cold-unique** — N clients posting N *distinct* requests (seed
  sweep): every one is a real flow computation on the worker pool;
* **sweep-burst** — a burst of identical sweep requests fired
  concurrently while cold: the coalescer must collapse them to one
  computation, so this is the single-flight proof.

Gates (exit nonzero so CI can block on them):

* hot-repeat throughput >= ``--min-speedup``x cold-unique throughput
  at equal concurrency;
* the sweep burst performs exactly one underlying computation
  (coalescer counters + worker-pool submission count agree);
* every response is HTTP 200 with ``status: ok``.

Usage::

    PYTHONPATH=src python tools/load_serve.py [--out BENCH_serve.json]
        [--clients 8] [--workers 2] [--design ckt64] [--min-speedup 3]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path


async def _post(host: str, port: int, path: str,
                payload: dict) -> tuple[int, dict, float]:
    """One request over a fresh connection; returns (status, body, s)."""
    started = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps(payload).encode()
    writer.write((f"POST {path} HTTP/1.1\r\nHost: {host}\r\n"
                  f"Content-Length: {len(body)}\r\n"
                  "Connection: close\r\n\r\n").encode() + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(rest), time.perf_counter() - started


def _percentiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)

    def pct(p: float) -> float:
        idx = min(len(ordered) - 1, round(p * (len(ordered) - 1)))
        return ordered[int(idx)]

    to_ms = 1e3  # static: ok[U002] wall-clock seconds -> report milliseconds
    return {"p50_ms": round(pct(0.50) * to_ms, 3),
            "p95_ms": round(pct(0.95) * to_ms, 3),
            "max_ms": round(ordered[-1] * to_ms, 3),
            "mean_ms": round(statistics.fmean(ordered) * to_ms, 3)}


async def _workload(daemon, path: str, payloads: list[dict]) -> dict:
    """Fire every payload concurrently; summarize latency/throughput."""
    started = time.perf_counter()
    outcomes = await asyncio.gather(*[
        _post(daemon.config.host, daemon.port, path, p) for p in payloads])
    wall = time.perf_counter() - started
    oks = [env for status, env, _ in outcomes
           if status == 200 and env.get("status") == "ok"]
    return {
        "requests": len(payloads),
        "ok": len(oks),
        "wall_s": round(wall, 4),
        "throughput_rps": round(len(payloads) / wall, 2),
        "coalesced": sum(1 for env in oks if env.get("coalesced")),
        "cached": sum(1 for env in oks if env.get("cached")),
        "latency": _percentiles([dt for _, _, dt in outcomes]),
    }


async def drive(args: argparse.Namespace) -> dict:
    from repro.serve import ServeConfig, ServeDaemon

    store_root = tempfile.mkdtemp(prefix="repro-load-serve-")
    daemon = ServeDaemon(ServeConfig(port=0, workers=args.workers,
                                     store_root=store_root))
    await daemon.start()
    try:
        record: dict = {"design": args.design, "clients": args.clients,
                        "workers": args.workers}

        # Cold fill so hot-repeat measures the steady state, not the
        # first computation.
        hot_payload = {"design": args.design, "slack": 0.3}
        await _post(daemon.config.host, daemon.port, "/v1/compare",
                    hot_payload)
        record["hot_repeat"] = await _workload(
            daemon, "/v1/compare", [hot_payload] * args.clients)

        cold_payloads = [{"design": args.design, "slack": 0.3,
                          "random_seed": seed, "policy": "smart"}
                         for seed in range(args.clients)]
        record["cold_unique"] = await _workload(
            daemon, "/v1/run", cold_payloads)

        before = daemon.coalescer.stats()
        submitted_before = daemon.pool.submitted
        burst_payload = {"design": args.design, "slacks": [0.5, 0.2]}
        record["sweep_burst"] = await _workload(
            daemon, "/v1/sweep", [burst_payload] * args.clients)
        after = daemon.coalescer.stats()
        record["sweep_burst"]["computations"] = (
            after["computations"] - before["computations"])
        record["sweep_burst"]["pool_submitted"] = (
            daemon.pool.submitted - submitted_before)

        stats = daemon.stats()
        total = sum(v for k, v in stats["counters"].items()
                    if k.startswith("requests."))
        served_warm = (stats["counters"].get("response_cache_hits", 0)
                       + stats["counters"].get("coalesced_requests", 0))
        record["totals"] = {
            "requests": total,
            "computations": stats["coalescer"]["computations"],
            "coalesced": stats["coalescer"]["coalesced"],
            "response_cache_hits":
                stats["counters"].get("response_cache_hits", 0),
            "coalesce_hit_rate": round(served_warm / total, 4),
            "store": stats["store"],
        }
        return record
    finally:
        await daemon.stop()


def check(record: dict, min_speedup: float) -> list[str]:
    failures = []
    for name in ("hot_repeat", "cold_unique", "sweep_burst"):
        load = record[name]
        if load["ok"] != load["requests"]:
            failures.append(f"{name}: {load['requests'] - load['ok']} "
                            "requests failed")
    hot = record["hot_repeat"]["throughput_rps"]
    cold = record["cold_unique"]["throughput_rps"]
    speedup = hot / cold if cold else float("inf")
    record["hot_over_cold_speedup"] = round(speedup, 2)
    if speedup < min_speedup:
        failures.append(f"hot-repeat is only {speedup:.2f}x cold-unique "
                        f"(need >= {min_speedup}x)")
    burst = record["sweep_burst"]
    if burst["computations"] != 1 or burst["pool_submitted"] != 1:
        failures.append(
            f"sweep burst ran {burst['computations']} computations / "
            f"{burst['pool_submitted']} pool submissions (want exactly 1)")
    if record["totals"]["coalesce_hit_rate"] <= 0:
        failures.append("coalesce hit rate is zero")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent clients per workload (default 8)")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon worker processes (default 2)")
    parser.add_argument("--design", default="ckt64")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required hot/cold throughput ratio")
    args = parser.parse_args()

    record = asyncio.run(drive(args))
    failures = check(record, args.min_speedup)
    record["failures"] = failures
    Path(args.out).write_text(json.dumps(record, indent=2,
                                         sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("load_serve: all gates passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
