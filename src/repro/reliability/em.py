"""Electromigration analysis of clock wires.

Clock wires are the classic EM hotspot: they toggle every cycle, so the
charge delivered through a wire per unit time is

    I_avg = C_downstream * Vdd * f        (one charge per cycle)

and the *effective* (RMS-like) current the EM budget is checked against
is ``I_eff = em_factor * I_avg`` — the factor absorbs the peaked pulse
shape of the charging current (signoff tools use 2-4 depending on slew;
we default to 3).  Current density divides by the wire cross-section
``width * thickness`` and is compared to the layer's ``em_jmax``.

Because a buffer electrically isolates its subtree, the downstream
capacitance is *stage-local*: the charge through a wire stops at the
next buffer's gate.

Widening a wire (width NDR) both halves the density directly and leaves
current unchanged to first order — which is why EM fixes are one of the
three classic motivations for clock NDRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Annotated

from repro.extract.rcnetwork import ClockRcNetwork
from repro.route.router import RoutingResult
from repro.units import Dim


#: Default peak-shape factor from average to effective EM current.
DEFAULT_EM_FACTOR: float = 3.0


@dataclass(frozen=True)
class WireCurrent:
    """EM exposure of one clock wire."""

    wire_id: int
    i_eff: float       # uA
    density: float     # uA/um^2
    jmax: float        # uA/um^2
    utilization: float  # density / jmax

    @property
    def violated(self) -> bool:
        return self.density > self.jmax


@dataclass
class EmReport:
    """EM analysis over all clock wires."""

    wires: list[WireCurrent] = field(default_factory=list)

    @property
    def violations(self) -> list[WireCurrent]:
        return [w for w in self.wires if w.violated]

    @property
    def num_violations(self) -> int:
        return len(self.violations)

    @property
    def worst_utilization(self) -> float:
        return max((w.utilization for w in self.wires), default=0.0)

    def utilization_of(self, wire_id: int) -> float:
        """EM utilisation of one wire (KeyError if unchecked)."""
        for w in self.wires:
            if w.wire_id == wire_id:
                return w.utilization
        raise KeyError(f"no EM record for wire {wire_id}")


def analyze_em(network: ClockRcNetwork, routing: RoutingResult,
               vdd: Annotated[float, Dim.VOLTAGE],
               freq: Annotated[float, Dim.FREQUENCY],
               em_factor: float = DEFAULT_EM_FACTOR) -> EmReport:
    """Check every clock wire's current density against its layer limit.

    ``freq`` in GHz, ``vdd`` in V; currents come out in uA (see
    :mod:`repro.units`).
    """
    if em_factor <= 0.0:
        raise ValueError("em_factor must be positive")
    report = EmReport()
    for stage in network.stages:
        down = stage.downstream_caps()
        for node in stage.nodes:
            if node.wire_id is None:
                continue
            wire = routing.tracks.wire(node.wire_id)
            i_eff = em_factor * down[node.idx] * vdd * freq
            area = wire.width * wire.layer.thickness
            density = i_eff / area
            report.wires.append(WireCurrent(
                wire_id=node.wire_id,
                i_eff=i_eff,
                density=density,
                jmax=wire.layer.em_jmax,
                utilization=density / wire.layer.em_jmax,
            ))
    return report
