"""Reliability checks: electromigration current density on clock wires.

Substrate S8 in DESIGN.md.
"""

from repro.reliability.em import EmReport, WireCurrent, analyze_em

__all__ = ["EmReport", "WireCurrent", "analyze_em"]
