"""Declarative run matrices.

An experiment in this suite is a matrix of (design x policy x slack)
cells, each cell one ``run_flow`` invocation.  :class:`RunMatrix`
declares the cells; :class:`JobSpec` is one cell, fully serializable
(designs are referenced by benchmark name or JSON path, never by live
object), so a job can cross a process boundary and be content-hashed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence, Union

from repro import obs
from repro.core.policies import Policy
from repro.core.stages import PolicyParams
from repro.netlist.design import Design

#: A design reference: a built-in benchmark name or a design-JSON path.
DesignRef = str


def resolve_design(ref: DesignRef) -> Design:
    """Materialise a design reference into a placed design."""
    from repro.designs import generate_design, spec_by_name
    from repro.io import load_design

    if Path(ref).suffix == ".json":
        return load_design(ref)
    return generate_design(spec_by_name(ref))


def design_ref_fingerprint(ref: DesignRef) -> str:
    """Content hash of what ``ref`` will build.

    Corpus names hash their spec's *content*
    (:func:`~repro.designs.spec_fingerprint`: every generator knob, the
    resolved seed salt, never the display name — renaming a registered
    design keeps its artifacts warm); JSON paths hash the file bytes,
    so editing the file invalidates dependent artifacts.
    """
    from repro.io.artifacts import fingerprint

    if Path(ref).suffix == ".json":
        digest = hashlib.sha256(Path(ref).read_bytes()).hexdigest()
        return fingerprint({"design_json": digest})
    from repro.designs import spec_by_name, spec_fingerprint
    return spec_fingerprint(spec_by_name(ref))


@dataclass(frozen=True)
class JobSpec:
    """One cell of the run matrix: one policy flow on one design.

    ``slack=None`` means period-derived budgets
    (:meth:`RobustnessTargets.for_period`); a float pegs the budgets to
    the design's all-NDR reference — the runner then schedules that
    reference as a shared upstream job.
    """

    design: DesignRef
    policy: Policy
    slack: Optional[float] = 0.15
    random_fraction: float = 0.3
    random_seed: int = 0
    lambda_track: float = 0.05
    #: analysis-engine backend name ("" = default); bit-identical
    #: across backends, so it never enters the cell fingerprint
    engine_backend: str = ""

    @property
    def label(self) -> str:
        slack = "period" if self.slack is None else f"{self.slack:.2f}"
        return f"{self.design}/{self.policy.value}@{slack}"

    def policy_params(self) -> PolicyParams:
        """The (normalised) policy-stage parameters of this cell."""
        return PolicyParams(policy=self.policy,
                            random_fraction=self.random_fraction,
                            random_seed=self.random_seed,
                            lambda_track=self.lambda_track,
                            engine_backend=self.engine_backend).normalized()

    def reference_job(self) -> Optional["JobSpec"]:
        """The upstream all-NDR reference this cell's budgets need."""
        if self.slack is None:
            return None
        return replace(self, policy=Policy.ALL_NDR, slack=None)


def expand_design_refs(designs: Sequence[DesignRef]) -> tuple[DesignRef, ...]:
    """Expand corpus selectors among ``designs`` into concrete refs.

    Entries with selector syntax — a ``family:`` prefix or glob
    characters — expand through the corpus registry
    (:func:`repro.designs.resolve_selectors`); everything else (exact
    names, JSON paths) passes through verbatim, so matrices over
    unregistered ad-hoc refs keep working.  Expansion dedups across the
    whole list (first win).
    """
    out: list[DesignRef] = []
    seen: set[str] = set()
    for ref in designs:
        if ref.startswith("family:") or any(ch in ref for ch in "*?["):
            from repro.designs import resolve_selectors

            expanded = resolve_selectors([ref])
        else:
            expanded = (ref,)
        for name in expanded:
            if name not in seen:
                seen.add(name)
                out.append(name)
    return tuple(out)


@dataclass(frozen=True)
class RunMatrix:
    """A declarative (designs x policies x slacks) job matrix.

    The cross product is ordered design-major, then policy, then slack
    — the order the serial CLI produces — plus any explicit
    ``extra_cells`` appended verbatim.  ``designs`` accepts corpus
    selectors (``"ckt*"``, ``"family:hierarchical"``, ``"family:*"``)
    alongside exact names and JSON paths; selectors expand at
    construction time, so ``len(matrix)`` and ``describe()`` report the
    concrete cell count.
    """

    designs: tuple[DesignRef, ...]
    policies: tuple[Policy, ...]
    slacks: tuple[Optional[float], ...] = (0.15,)
    random_fraction: float = 0.3
    random_seed: int = 0
    lambda_track: float = 0.05
    engine_backend: str = ""
    extra_cells: tuple[JobSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        expanded = expand_design_refs(self.designs)
        if expanded != self.designs:
            object.__setattr__(self, "designs", expanded)
        if not self.designs and not self.extra_cells:
            raise ValueError("empty run matrix: no designs and no cells")
        if self.designs and not self.policies:
            raise ValueError("run matrix has designs but no policies")

    def jobs(self) -> list[JobSpec]:
        """Expand the matrix into its job list."""
        out = [JobSpec(design=d, policy=p, slack=s,
                       random_fraction=self.random_fraction,
                       random_seed=self.random_seed,
                       lambda_track=self.lambda_track,
                       engine_backend=self.engine_backend)
               for d in self.designs
               for p in self.policies
               for s in self.slacks]
        out.extend(self.extra_cells)
        obs.counter("runner.matrix_expansions").inc()
        obs.gauge("runner.matrix_cells").set(float(len(out)))
        return out

    def __len__(self) -> int:
        return (len(self.designs) * len(self.policies) * len(self.slacks)
                + len(self.extra_cells))

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs())

    def describe(self) -> str:
        """One-line human summary of the matrix shape."""
        return (f"{len(self)} jobs = {len(self.designs)} designs x "
                f"{len(self.policies)} policies x "
                f"{len(self.slacks)} slacks"
                + (f" + {len(self.extra_cells)} extra"
                   if self.extra_cells else ""))


def matrix_of(designs: Union[DesignRef, Sequence[DesignRef]],
              policies: Union[Policy, Sequence[Policy]],
              slacks: Union[None, float, Sequence[Optional[float]]] = 0.15,
              **kwargs: Any) -> RunMatrix:
    """Convenience constructor accepting scalars or sequences."""
    if isinstance(designs, str):
        designs = (designs,)
    if isinstance(policies, Policy):
        policies = (policies,)
    if slacks is None or isinstance(slacks, float):
        slacks = (slacks,)
    return RunMatrix(designs=tuple(designs), policies=tuple(policies),
                     slacks=tuple(slacks), **kwargs)
