"""The parallel flow runner.

:class:`FlowRunner` executes a :class:`~repro.runner.matrix.RunMatrix`
(or any list of :class:`~repro.runner.matrix.JobSpec`) with a process
pool, deduplicating shared prerequisites and content-addressing every
product through an :class:`~repro.io.artifacts.ArtifactStore`:

* the all-NDR *reference* flow each slack-pegged cell needs for its
  budgets runs once per design — a cached upstream job, not a per-cell
  recomputation;
* the default-rule *build* is shared across every policy/slack cell of
  a design (each cell mutates its own snapshot);
* completed *cells* are cached whole, so a warm rerun of the same
  matrix is pure deserialisation;
* an ALL-NDR cell is the reference flow under different budgets — the
  runner re-wraps the cached reference instead of re-running it.

Workers stream a full :mod:`repro.obs` trace — their span tree plus
metric deltas — and static verification diagnostics back to the
parent inside each :class:`JobResult`; when the parent session is
traced, :meth:`FlowRunner.run` re-roots every worker trace under its
``runner.matrix`` span, so a parallel run yields one coherent trace.
The ``REPRO_VERIFY_FLOWS`` hook fires identically inside workers (the
pool initializer forwards the parent's setting into each worker's
environment before any flow runs).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

from repro import obs
from repro.core.flow import FlowResult, run_flow
from repro.engine.backends import default_backend_name
from repro.core.policies import Policy
from repro.core.targets import RobustnessTargets
from repro.io.artifacts import ArtifactStore, content_key
from repro.netlist.design import Design
from repro.runner.matrix import (DesignRef, JobSpec, RunMatrix,
                                 design_ref_fingerprint, resolve_design)
from repro.tech.technology import Technology, default_technology

#: (worst_delta_ps, skew_3sigma_ps) of a design's all-NDR reference.
RefMetrics = tuple[float, float]

#: Environment variables the runner deliberately forwards into (or
#: honors inside) worker processes.  The static determinism analyzer
#: (``repro lint --static``) allows env access to exactly these names
#: from worker-reachable code; reading anything else is a D003/S003
#: finding because a worker would silently diverge from the parent.
FORWARDED_ENV_WHITELIST: tuple[str, ...] = ("REPRO_VERIFY_FLOWS",
                                            "REPRO_CACHE_DIR",
                                            "REPRO_ENGINE_BACKEND")


@dataclass
class JobResult:
    """What one matrix cell streams back to the parent.

    Always lightweight-serializable: summary metrics, rule histogram,
    per-phase timings and verification diagnostics.  ``trace`` is the
    cell's full span tree + metric deltas
    (:meth:`repro.obs.Tracer.export_payload`) when the cell ran under
    a tracer the caller cannot see (a worker process, or an untraced
    parent); it is ``None`` once a traced parent has adopted it —
    adoption is by span identity, exactly once.  The full
    :class:`FlowResult` rides along only when the caller asked for it
    (``return_flows=True``); it is pickled across the process boundary
    in that case.
    """

    job: JobSpec
    summary: dict[str, float]
    rule_histogram: dict[str, int]
    ndr_track_cost: float
    feasible: bool
    runtime: float
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    diagnostics: list[dict[str, object]] = field(default_factory=list)
    cached: bool = False
    trace: Optional[dict[str, Any]] = None
    flow: Optional[FlowResult] = None


@dataclass
class _ExecContext:
    """Everything a job execution needs besides the job itself."""

    tech: Technology
    store: Optional[ArtifactStore]
    verify: bool
    guide: object = None
    return_flows: bool = False


def _reference_targets(design: Design, tech: Technology,
                       metrics: Optional[RefMetrics],
                       slack: Optional[float]) -> RobustnessTargets:
    """The cell's budgets: period-derived, or pegged to the reference."""
    if slack is None or metrics is None:
        return RobustnessTargets.for_period(design.clock_period,
                                            tech.max_slew)
    worst_delta, skew_3sigma = metrics
    return RobustnessTargets.from_reference(worst_delta=worst_delta,
                                            skew_3sigma=skew_3sigma,
                                            max_slew=tech.max_slew,
                                            slack=slack)


def _guide_fingerprint(guide: Any) -> str:
    """Content hash of a fitted guide (cached on the instance)."""
    from repro.io.artifacts import fingerprint
    from repro.ml.serialize import forest_to_dict

    fp = getattr(guide, "_content_fp", None)
    if fp is None:
        fp = fingerprint(forest_to_dict(guide.model))
        guide._content_fp = fp
    return str(fp)


def _cell_key(job: JobSpec, ctx: _ExecContext,
              targets: RobustnessTargets) -> str:
    """Content hash identifying one completed cell result."""
    parts = {
        "design": design_ref_fingerprint(job.design),
        "tech": ctx.tech,
        "policy": job.policy_params(),
        "targets": targets,
    }
    if job.policy == Policy.SMART_ML and ctx.guide is not None:
        parts["guide"] = _guide_fingerprint(ctx.guide)
    return content_key("flow-cell", **parts)


def _verify_diagnostics(flow: FlowResult, label: str) -> list[dict[str, object]]:
    """Run the static verifier; return diagnostics, raise on ERRORs."""
    from repro.verify import (VerificationError, VerifyContext, run_checks)

    report = run_checks(VerifyContext.from_flow(flow))
    if report.has_errors:
        raise VerificationError(report, label)
    return [d.to_dict() for d in report.diagnostics]


def _execute_job(job: JobSpec, metrics: Optional[RefMetrics],  # static: ok[C001] engine_backend is a perf knob; backends are verified bit-identical, so cells sharing a cache entry across backends is the intended behavior
                 ctx: _ExecContext) -> JobResult:
    """Run (or load) one cell and package the streamed result.

    The cell always executes under a captured tracer wrapped in one
    ``runner.cell`` span, so per-phase timings stream back even when
    the session is untraced.  A traced caller sees the cell's spans
    re-rooted under its current span on capture exit (identity
    adoption — the span-level fix for the old ``perf.capture`` flat
    merge that double-counted cells run in-process on a cache
    fallback); otherwise the payload rides back on ``JobResult.trace``
    for the parent process to adopt.
    """
    start = time.perf_counter()  # static: ok[D002] feeds JobResult.runtime metadata only
    design = resolve_design(job.design)
    targets = _reference_targets(design, ctx.tech, metrics, job.slack)
    store = ctx.store
    key = _cell_key(job, ctx, targets) if store is not None else None

    with obs.capture(f"cell:{job.label}") as tracer:
        with tracer.span(obs.CELL_SPAN, cell=job.label,
                         design=str(job.design),
                         policy=job.policy.value) as cell:
            flow: Optional[FlowResult] = None
            cached = False
            if key is not None and store is not None:
                loaded = store.load(key)
                if isinstance(loaded, FlowResult):
                    flow, cached = loaded, True
            if flow is None and key is not None and store is not None \
                    and job.policy == Policy.ALL_NDR and job.slack is not None:
                # An ALL-NDR cell is the reference flow under pegged
                # budgets; re-wrap the cached reference instead of
                # re-running it (deterministic, so numerically identical).
                ref_job = job.reference_job()
                assert ref_job is not None  # slack is not None here
                ref_targets = _reference_targets(design, ctx.tech, None, None)
                ref_key = _cell_key(ref_job, ctx, ref_targets)
                reference = store.load(ref_key)
                if isinstance(reference, FlowResult):
                    flow, cached = replace(reference, targets=targets), True
                    store.save(key, flow)
            if flow is None:
                # The forwarded-variable seam: REPRO_ENGINE_BACKEND is
                # read exactly here (whitelisted), once per job, never
                # again further down the flow.
                flow = run_flow(design, ctx.tech, policy=job.policy,
                                targets=targets,
                                random_fraction=job.random_fraction,
                                random_seed=job.random_seed,
                                lambda_track=job.lambda_track,
                                engine_backend=(job.engine_backend
                                                or default_backend_name()),
                                guide=ctx.guide, store=ctx.store)
                if key is not None and store is not None:
                    store.save(key, flow)
            diagnostics: list[dict[str, object]] = []
            if ctx.verify:
                diagnostics = _verify_diagnostics(flow, f"runner:{job.label}")
            cell.attrs["cached"] = cached
            tracer.metrics.counter(
                "runner.cells_cached" if cached
                else "runner.cells_computed").inc()
        phases = tracer.phase_totals()

    return JobResult(
        job=job,
        summary=flow.summary(),
        rule_histogram=dict(flow.rule_histogram),
        ndr_track_cost=flow.ndr_track_cost,
        feasible=flow.feasible,
        runtime=time.perf_counter() - start,  # static: ok[D002] feeds JobResult.runtime metadata only
        phases=phases,
        diagnostics=diagnostics,
        cached=cached,
        trace=None if obs.active() is not None else tracer.export_payload(),
        flow=flow if ctx.return_flows else None,
    )


# -- worker-process plumbing --------------------------------------------------

_WORKER_CTX: Optional[_ExecContext] = None


def _pool_init(tech: Technology, store_root: Optional[str], verify: bool,
               guide: object, return_flows: bool,
               engine_backend: str) -> None:
    """Per-worker initializer: rebuild the execution context.

    ``REPRO_VERIFY_FLOWS`` and ``REPRO_ENGINE_BACKEND`` are forwarded
    explicitly — captured once in the parent, replayed here — so the
    in-flow verification hook and the backend selection behave in
    workers exactly as they would in the parent, regardless of how the
    pool was spawned.
    """
    global _WORKER_CTX
    # A forked worker inherits the parent's installed tracer; drop it so
    # every cell's trace streams back on JobResult.trace (the parent
    # adopts it exactly once) instead of vanishing into the fork copy.
    obs.disable()
    if verify:
        os.environ["REPRO_VERIFY_FLOWS"] = "1"
    else:
        os.environ.pop("REPRO_VERIFY_FLOWS", None)
    os.environ["REPRO_ENGINE_BACKEND"] = engine_backend
    store = ArtifactStore(store_root) if store_root is not None else None
    _WORKER_CTX = _ExecContext(tech=tech, store=store, verify=verify,  # static: ok[D004] per-worker context slot, written once by the pool initializer before any job runs
                               guide=guide, return_flows=return_flows)


def _pool_run(job: JobSpec, metrics: Optional[RefMetrics]) -> JobResult:
    """Pool entry point: execute one job under the worker context."""
    assert _WORKER_CTX is not None, "pool used before initialization"
    return _execute_job(job, metrics, _WORKER_CTX)


class FlowRunner:
    """Schedules a job matrix over a process pool with artifact reuse.

    Parameters
    ----------
    tech:
        Technology shared by every cell (default technology if omitted).
    store:
        ``ArtifactStore`` instance, a path for one, or ``None`` to
        disable caching entirely.  Defaults to the persistent
        per-user cache (:func:`~repro.io.artifacts.default_cache_dir`).
    jobs:
        Default worker count for :meth:`run`; ``1`` executes in-process
        (same code path, no pool).
    guide:
        Fitted :class:`~repro.core.mlguide.NdrClassifierGuide` for
        SMART_ML cells; shipped to each worker once via the pool
        initializer.
    verify:
        Run the static verifier on every cell and stream its
        diagnostics back.  ``None`` follows ``REPRO_VERIFY_FLOWS``.
    """

    def __init__(self, tech: Optional[Technology] = None,
                 store: Union[ArtifactStore, str, Path, None, bool] = True,
                 jobs: int = 1, guide: object = None,
                 verify: Optional[bool] = None) -> None:
        self.tech = tech if tech is not None else default_technology()
        resolved: Optional[ArtifactStore]
        if isinstance(store, ArtifactStore):
            resolved = store
        elif isinstance(store, bool):
            resolved = ArtifactStore() if store else None
        elif store is None:
            resolved = None
        else:
            resolved = ArtifactStore(store)
        self.store: Optional[ArtifactStore] = resolved
        self.jobs = max(1, int(jobs))
        self.guide = guide
        if verify is None:
            verify = bool(os.environ.get("REPRO_VERIFY_FLOWS"))
        self.verify = verify
        self._ref_metrics: dict[DesignRef, RefMetrics] = {}

    # -- single-cell API ------------------------------------------------------

    def _context(self, return_flows: bool) -> _ExecContext:
        return _ExecContext(tech=self.tech, store=self.store,
                            verify=self.verify, guide=self.guide,
                            return_flows=return_flows)

    def run_job(self, job: JobSpec, return_flow: bool = True) -> JobResult:
        """Execute one cell in-process (references resolved as needed)."""
        metrics = self._metrics_for(job)
        return _execute_job(job, metrics, self._context(return_flow))

    def reference(self, design: DesignRef) -> FlowResult:
        """The design's all-NDR reference flow (cached upstream job)."""
        job = JobSpec(design=design, policy=Policy.ALL_NDR, slack=None)
        result = _execute_job(job, None, self._context(True))
        self._ref_metrics.setdefault(
            design, (result.summary["worst_delta_ps"],
                     result.summary["skew_3sigma_ps"]))
        assert result.flow is not None
        return result.flow

    def targets_for(self, design: DesignRef,
                    slack: float = 0.15) -> RobustnessTargets:
        """Budgets pegged to the design's cached all-NDR reference."""
        metrics = self._ref_metrics.get(design)
        if metrics is None:
            self.reference(design)
            metrics = self._ref_metrics[design]
        worst_delta, skew_3sigma = metrics
        return RobustnessTargets.from_reference(worst_delta=worst_delta,
                                                skew_3sigma=skew_3sigma,
                                                max_slew=self.tech.max_slew,
                                                slack=slack)

    def _metrics_for(self, job: JobSpec) -> Optional[RefMetrics]:
        if job.slack is None:
            return None
        if job.design not in self._ref_metrics:
            self.reference(job.design)
        return self._ref_metrics[job.design]

    # -- matrix API -----------------------------------------------------------

    def run(self, matrix: Union[RunMatrix, Iterable[JobSpec]],
            jobs: Optional[int] = None, return_flows: bool = False,
            on_result: Optional[Callable[[JobResult], None]] = None
            ) -> list[JobResult]:
        """Execute every cell; results in matrix order.

        Phase 1 computes the deduplicated all-NDR references (one per
        design, shared by every slack and policy); phase 2 runs the
        cells.  With ``jobs > 1`` both phases use a process pool.
        Duplicate cells execute once and fan out to every position.
        ``on_result`` fires in completion order as cells finish.

        When the session is traced, the whole run is one
        ``runner.matrix`` span; every worker's streamed trace payload
        is adopted (re-identified and re-rooted) directly under it, so
        the parallel run reads as one tree.
        """
        job_list = list(matrix)
        n_workers = self.jobs if jobs is None else max(1, int(jobs))
        n_workers = min(n_workers, max(len(job_list), 1))

        ref_jobs: list[JobSpec] = []
        seen_refs: set[DesignRef] = set()
        for job in job_list:
            ref = job.reference_job()
            if ref is not None and job.design not in seen_refs \
                    and job.design not in self._ref_metrics:
                seen_refs.add(job.design)
                ref_jobs.append(ref)

        with obs.span(obs.MATRIX_SPAN, cells=len(job_list),
                      references=len(ref_jobs),
                      workers=n_workers) as matrix_span:
            if n_workers <= 1:
                for ref in ref_jobs:
                    self.reference(ref.design)
                serial: list[JobResult] = []
                for job in job_list:
                    result = self.run_job(job, return_flow=return_flows)
                    if on_result is not None:
                        on_result(result)
                    serial.append(result)
                return serial
            results = self._run_pool(job_list, ref_jobs, n_workers,
                                     return_flows, on_result, matrix_span)
        return results

    def _run_pool(self, job_list: list[JobSpec], ref_jobs: list[JobSpec],
                  n_workers: int, return_flows: bool,
                  on_result: Optional[Callable[[JobResult], None]],
                  matrix_span: Optional[obs.SpanRecord]) -> list[JobResult]:
        """The pooled phases of :meth:`run` (references, then cells)."""
        tracer = obs.active()

        def absorb(result: JobResult) -> None:
            # Re-root the worker's span tree + metric deltas under the
            # matrix span, once; the payload is consumed so no later
            # pass can count it again.
            if tracer is not None and result.trace is not None:
                parent = (matrix_span.span_id
                          if matrix_span is not None else None)
                tracer.adopt(result.trace, parent_id=parent)
                result.trace = None

        with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_pool_init,
                initargs=(self.tech,
                          str(self.store.root) if self.store else None,
                          self.verify, self.guide, return_flows,
                          default_backend_name())) as pool:
            # Phase 1: deduplicated upstream references.
            for result in pool.map(_pool_run, ref_jobs,
                                   [None] * len(ref_jobs)):
                absorb(result)
                self._ref_metrics.setdefault(
                    result.job.design,
                    (result.summary["worst_delta_ps"],
                     result.summary["skew_3sigma_ps"]))

            # Phase 2: the cells, duplicates submitted once.
            unique: dict[JobSpec, list[int]] = {}
            for i, job in enumerate(job_list):
                unique.setdefault(job, []).append(i)
            obs.counter("runner.cells_deduped").inc(
                len(job_list) - len(unique))
            future_of = {
                pool.submit(_pool_run, job, self._metrics_for(job)): job
                for job in unique
            }
            slots: list[Optional[JobResult]] = [None] * len(job_list)
            pending = set(future_of)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    result = future.result()
                    absorb(result)
                    if on_result is not None:
                        on_result(result)
                    for i in unique[future_of[future]]:
                        slots[i] = result
        results = [r for r in slots if r is not None]
        assert len(results) == len(job_list)
        return results
