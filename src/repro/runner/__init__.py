"""Staged flow execution: declarative job matrices over a process pool.

The experiment suite is a matrix of (design x policy x slack) flow
runs.  This package turns that matrix into a schedulable workload:

* :class:`~repro.runner.matrix.RunMatrix` / :class:`~repro.runner.matrix.JobSpec`
  — declarative, serializable cell descriptions;
* :class:`~repro.runner.runner.FlowRunner` — executes the matrix with
  ``--jobs N`` worker processes, deduplicates the shared all-NDR
  reference jobs, and content-addresses builds and finished cells
  through the :class:`~repro.io.artifacts.ArtifactStore`;
* :class:`~repro.runner.runner.JobResult` — the per-cell record
  streamed back to the parent (summary metrics, phase timings,
  verification diagnostics).
"""

from repro.runner.matrix import (DesignRef, JobSpec, RunMatrix,
                                 design_ref_fingerprint, expand_design_refs,
                                 matrix_of, resolve_design)
from repro.runner.runner import FlowRunner, JobResult

__all__ = [
    "DesignRef",
    "FlowRunner",
    "JobResult",
    "JobSpec",
    "RunMatrix",
    "design_ref_fingerprint",
    "expand_design_refs",
    "matrix_of",
    "resolve_design",
]
