"""The check registry.

A *check* is one named rule: a function from a
:class:`~repro.verify.context.VerifyContext` to an iterable of
:class:`~repro.verify.diagnostics.Diagnostic` records.  Checks register
themselves under a stable rule id and a *kind*:

* ``"drc"``  — domain design-rule / electrical-rule checks over the
  routed geometry and the RC network;
* ``"oracle"`` — engine-coherence checks that recompute incrementally
  maintained state from scratch and diff;
* ``"static"`` — whole-program determinism / cache-soundness rules
  over the source itself (:mod:`repro.analysis`); they receive a
  :class:`~repro.analysis.report.StaticContext` instead of a
  :class:`VerifyContext` and skip silently when handed anything else.
* ``"import"`` — DEF-lite document schema/geometry validation
  (:mod:`repro.designs.importer`); they receive an
  :class:`~repro.designs.importer.ImportContext` and likewise skip
  silently on any other context type.

``run_checks`` executes a selection and collects one
:class:`~repro.verify.diagnostics.VerifyReport`.  A check that raises
is itself reported as an ERROR diagnostic under its own rule id — a
crashing checker must never mask the corruption it was about to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro import obs
from repro.verify.context import VerifyContext
from repro.verify.diagnostics import Diagnostic, Severity, VerifyReport

CheckFn = Callable[[VerifyContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Check:
    """One registered verifier rule."""

    rule: str
    kind: str
    doc: str
    fn: CheckFn


_REGISTRY: dict[str, Check] = {}


def register(rule: str, kind: str) -> Callable[[CheckFn], CheckFn]:
    """Class the decorated function as the checker for ``rule``.

    The function's first docstring line becomes the check's one-line
    description in ``registered_checks`` listings.
    """
    if kind not in ("drc", "oracle", "static", "import"):
        raise ValueError(f"unknown check kind {kind!r}")

    def decorate(fn: CheckFn) -> CheckFn:
        if rule in _REGISTRY:
            raise ValueError(f"check {rule!r} registered twice")
        doc = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        _REGISTRY[rule] = Check(rule=rule, kind=kind, doc=doc, fn=fn)
        return fn

    return decorate


def registered_checks(kinds: Optional[Iterable[str]] = None) -> list[Check]:
    """All registered checks, optionally filtered by kind, id-sorted."""
    wanted = None if kinds is None else set(kinds)
    return sorted((c for c in _REGISTRY.values()  # static: ok[C003] populated at import time
                   if wanted is None or c.kind in wanted),
                  key=lambda c: c.rule)


def run_checks(ctx: VerifyContext,
               rules: Optional[Iterable[str]] = None,
               kinds: Optional[Iterable[str]] = None) -> VerifyReport:
    """Run a selection of checks over ``ctx`` and collect the report.

    ``rules`` selects specific rule ids; ``kinds`` selects whole
    families.  With neither, every registered check runs.
    """
    selected = registered_checks(kinds)
    if rules is not None:
        wanted = set(rules)
        unknown = wanted - {c.rule for c in selected}
        if unknown:
            raise KeyError(f"unknown check rule(s): {sorted(unknown)}")
        selected = [c for c in selected if c.rule in wanted]
    report = VerifyReport()
    for check in selected:
        try:
            report.extend(list(check.fn(ctx)))
        except Exception as exc:  # noqa: BLE001 - reported, never masked
            report.extend([Diagnostic(
                rule=check.rule, severity=Severity.ERROR,
                message=f"checker crashed: {type(exc).__name__}: {exc}",
                hint="a crashing checker usually means the structure it "
                     "walks is itself corrupt")])
        report.checks_run.append(check.rule)
    obs.counter("verify.checks_run").inc(float(len(selected)))
    for diagnostic in report.diagnostics:
        obs.counter(
            f"verify.{diagnostic.severity.name.lower()}_diagnostics").inc()
    return report
