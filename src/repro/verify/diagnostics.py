"""Typed diagnostic records emitted by the static verifier.

A :class:`Diagnostic` is one finding of one check: a stable rule id, a
severity, a location inside the design (wire / stage / RC node), a
human-readable message and, where the fix is mechanical, a hint.  A
:class:`VerifyReport` collects the findings of one verification run
along with the list of checks that actually executed, and renders to
text or JSON for the CLI.

Severity policy (see ``docs/VERIFY.md``):

* ``ERROR`` — an internal inconsistency: the data structures disagree
  with each other (or with physics) in a way that makes analysis
  results wrong *within the model*.  Zero tolerance; ``repro lint``
  exits non-zero.
* ``WARN`` — a divergence between the model's idealisation and the
  literal geometry (e.g. a spacing rule whose guaranteed spacing the
  neighboring occupancy does not physically honor), or a flow-level
  quality problem (an EM budget violation).  Legal states a clean flow
  can produce; worth eyes, not a gate.
* ``INFO`` — statistics and observations.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Optional


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARN = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one verifier check.

    Attributes
    ----------
    rule:
        Stable check identifier, e.g. ``"track-overlap"``.
    severity:
        See the module docstring for the policy.
    message:
        Human-readable description of the finding.
    wire_id / stage / node:
        Location of the finding, where applicable: routed wire id,
        stage index in the clock RC network, RC node index within the
        stage.
    obj:
        Free-form location for findings that are not wire/stage shaped
        (e.g. ``"M5/track 12"``).
    hint:
        How to fix or further debug the finding, when mechanical.
    """

    rule: str
    severity: Severity
    message: str
    wire_id: Optional[int] = None
    stage: Optional[int] = None
    node: Optional[int] = None
    obj: Optional[str] = None
    hint: Optional[str] = None

    def location(self) -> str:
        """Compact location string for the text rendering."""
        parts: list[str] = []
        if self.wire_id is not None:
            parts.append(f"wire {self.wire_id}")
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        if self.node is not None:
            parts.append(f"node {self.node}")
        if self.obj is not None:
            parts.append(self.obj)
        return "/".join(parts) if parts else "-"

    def render(self) -> str:
        """One-line text form: ``ERROR track-overlap [wire 3]: ...``."""
        line = f"{self.severity} {self.rule} [{self.location()}]: {self.message}"
        if self.hint:
            line += f"  (hint: {self.hint})"
        return line

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict (``None`` locations omitted)."""
        out: dict[str, object] = {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
        }
        for key in ("wire_id", "stage", "node", "obj", "hint"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass
class VerifyReport:
    """All diagnostics of one verification run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)

    def extend(self, items: list[Diagnostic]) -> None:
        """Append ``items`` to the report's diagnostics."""
        self.diagnostics.extend(items)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARN]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def by_rule(self, rule: str) -> list[Diagnostic]:
        """All diagnostics emitted under one rule id."""
        return [d for d in self.diagnostics if d.rule == rule]

    def counts(self) -> dict[str, int]:
        """``{"ERROR": n, "WARN": n, "INFO": n}`` (zero entries included)."""
        out = {str(sev): 0 for sev in Severity}
        for diag in self.diagnostics:
            out[str(diag.severity)] += 1
        return out

    def render(self, max_lines: int = 0) -> str:
        """Multi-line text report, worst findings first."""
        lines: list[str] = []
        ordered = sorted(self.diagnostics,
                         key=lambda d: (-int(d.severity), d.rule))
        shown = ordered if max_lines <= 0 else ordered[:max_lines]
        for diag in shown:
            lines.append(diag.render())
        if max_lines > 0 and len(ordered) > max_lines:
            lines.append(f"... {len(ordered) - max_lines} more")
        counts = self.counts()
        lines.append(f"{len(self.checks_run)} checks run: "
                     f"{counts['ERROR']} errors, {counts['WARN']} warnings, "
                     f"{counts['INFO']} notes")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Machine-readable report for ``repro lint --json``."""
        return json.dumps({
            "checks_run": self.checks_run,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }, indent=2, sort_keys=True)


class VerificationError(RuntimeError):
    """Raised when a verification gate finds ERROR diagnostics."""

    def __init__(self, report: VerifyReport, context: str = "") -> None:
        self.report = report
        head = f"verification failed ({context}): " if context \
            else "verification failed: "
        errors = report.errors
        detail = "; ".join(d.render() for d in errors[:5])
        if len(errors) > 5:
            detail += f"; ... {len(errors) - 5} more"
        super().__init__(head + detail)
