"""Static verification: clock-tree DRC/ERC linter + engine oracle.

The package checks already-built state — routed geometry, the RC
network, the incremental engine's caches — without re-running any
analysis, and reports typed :class:`Diagnostic` records through a
check registry.  See ``docs/VERIFY.md`` for the rule catalogue, the
severity policy, and how to add a check.

Entry points
------------
* ``repro lint`` (CLI) — run the checks on a flow and print/exit.
* :func:`verify_flow` / :func:`verify_physical` — library API.
* :func:`assert_flow_clean` — raise :class:`VerificationError` on any
  ERROR diagnostic (used by the ``REPRO_VERIFY_FLOWS`` test hook and
  the optimizer's ``verify_every`` debug mode).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.verify.context import VerifyContext
from repro.verify.diagnostics import (Diagnostic, Severity,
                                      VerificationError, VerifyReport)
from repro.verify.registry import (Check, register, registered_checks,
                                   run_checks)

# Importing the check modules registers every rule; keep these after the
# registry import (they decorate into it).
from repro.verify import drc as _drc          # noqa: E402,F401
from repro.verify import oracle as _oracle    # noqa: E402,F401

if TYPE_CHECKING:
    from repro.core.flow import FlowResult
    from repro.core.physical import PhysicalDesign

__all__ = [
    "Check",
    "Diagnostic",
    "Severity",
    "VerificationError",
    "VerifyContext",
    "VerifyReport",
    "assert_flow_clean",
    "register",
    "registered_checks",
    "run_checks",
    "verify_flow",
    "verify_physical",
]


def verify_flow(flow: "FlowResult",
                rules: Optional[Iterable[str]] = None,
                kinds: Optional[Iterable[str]] = None) -> VerifyReport:
    """Run checks over a finished flow result."""
    return run_checks(VerifyContext.from_flow(flow), rules=rules,
                      kinds=kinds)


def verify_physical(physical: "PhysicalDesign",
                    rules: Optional[Iterable[str]] = None,
                    kinds: Optional[Iterable[str]] = None) -> VerifyReport:
    """Run checks over a physical design (pre-optimization state)."""
    return run_checks(VerifyContext.from_physical(physical), rules=rules,
                      kinds=kinds)


def assert_flow_clean(flow: "FlowResult",
                      context: str = "flow result") -> VerifyReport:
    """Verify a flow and raise :class:`VerificationError` on any ERROR."""
    report = verify_flow(flow)
    if report.has_errors:
        raise VerificationError(report, context)
    return report
