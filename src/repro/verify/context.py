"""The state bundle a verification run walks.

Checks never re-run analyses; they read the already-built objects —
routing, extraction, the stage-structured RC network, and (for the
engine-coherence oracle) the incremental engine's caches — and compare
them against each other or against freshly recomputed ground truth.

A :class:`VerifyContext` carries everything optional: checks that need
an absent piece (e.g. the oracle when no engine ran) skip themselves
by emitting nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.cts.tree import ClockTree
from repro.extract.extractor import Extraction
from repro.netlist.design import Design
from repro.route.router import RoutingResult
from repro.tech.technology import Technology

if TYPE_CHECKING:  # runtime import would be cyclic / needlessly heavy
    from repro.core.flow import FlowResult
    from repro.core.sensitivity import SensitivityCache
    from repro.engine.incremental import AnalysisEngine


@dataclass
class VerifyContext:
    """Everything one verification run may inspect.

    Attributes
    ----------
    tech / tree / routing / extraction:
        The physical state every check family reads.
    engine:
        The incremental :class:`~repro.engine.incremental.AnalysisEngine`
        whose caches the oracle diffs against ground truth (optional).
    sens_cache:
        The optimizer's what-if memoisation cache (optional).
    clock_period:
        Clock period in ps, for delay unit-sanity range checks
        (optional — the range check degrades gracefully without it).
    freq / design:
        Clock frequency in GHz and the source design, for EM
        utilisation and blockage checks (optional).
    """

    tech: Technology
    tree: ClockTree
    routing: RoutingResult
    extraction: Extraction
    engine: Optional["AnalysisEngine"] = None
    sens_cache: Optional["SensitivityCache"] = None
    clock_period: Optional[float] = None
    freq: Optional[float] = None
    design: Optional[Design] = None

    @classmethod
    def from_flow(cls, flow: "FlowResult") -> "VerifyContext":
        """Build a context from a finished :func:`repro.core.flow.run_flow`."""
        physical = flow.physical
        engine: Optional["AnalysisEngine"] = None
        if flow.optimize is not None and flow.optimize.engine is not None:
            engine = flow.optimize.engine  # type: ignore[assignment]
        return cls(
            tech=physical.tech,
            tree=physical.tree,
            routing=physical.routing,
            extraction=physical.extraction,
            engine=engine,
            clock_period=physical.design.clock_period,
            freq=physical.design.clock_freq,
            design=physical.design,
        )

    @classmethod
    def from_physical(cls, physical: object) -> "VerifyContext":
        """Build a context from a :class:`~repro.core.flow.PhysicalDesign`."""
        design: Design = physical.design          # type: ignore[attr-defined]
        return cls(
            tech=physical.tech,                   # type: ignore[attr-defined]
            tree=physical.tree,                   # type: ignore[attr-defined]
            routing=physical.routing,             # type: ignore[attr-defined]
            extraction=physical.extraction,       # type: ignore[attr-defined]
            clock_period=design.clock_period,
            freq=design.clock_freq,
            design=design,
        )
