"""Domain DRC/ERC checks over routed geometry and the RC network.

Every check walks already-built state — no analysis is re-run.  See
``docs/VERIFY.md`` for the severity policy; in short: structural
corruption is ERROR, model-vs-geometry idealisation gaps and quality
(budget) violations are WARN.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.reliability.em import analyze_em
from repro.route.wires import RoutedWire
from repro.verify.context import VerifyContext
from repro.verify.diagnostics import Diagnostic, Severity
from repro.verify.registry import register

#: Relative tolerance for float identities that hold exactly by
#: construction (same arithmetic, possibly different summation order).
REL_TOL = 1e-9
ABS_TOL = 1e-12


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


@register("track-overlap", kind="drc")
def check_track_overlap(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """No two wires may occupy overlapping spans of the same track.

    The router's ``nearest_free_track`` guarantees this except when it
    overflows (no free track in the search window) and falls back to a
    double-booked placement, counting the event.  Each overflow event
    places ONE wire on an occupied track — possibly across many
    existing wires — so the budget is attributed per offending wire,
    not per overlapping pair: if removing at most ``overflows`` wires
    (chosen greedily by overlap degree) explains every overlap, the
    overlaps are WARN (known congestion fallback); anything left over
    is bookkeeping corruption.
    """
    tracks = ctx.routing.tracks
    pairs: list[tuple[str, int, int, int, float]] = []
    for lname, track, intervals in tracks.occupancy():
        # Intervals are lo-sorted: sweep, keeping the active set.
        active: list[tuple[float, int]] = []  # (hi, wire_id)
        for lo, hi, wire_id in intervals:
            active = [(h, w) for h, w in active if h > lo]
            for h, other_id in active:
                overlap = min(h, hi) - lo
                if overlap > 0.0:
                    pairs.append((lname, track, other_id, wire_id, overlap))
            active.append((hi, wire_id))
    pairs.sort()
    # Greedy attribution: repeatedly blame the wire involved in the
    # most unexplained overlaps, up to the recorded overflow count.
    degree: dict[int, int] = {}
    for _, _, a, b, _ in pairs:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    blamed: set[int] = set()
    remaining = list(pairs)
    for _ in range(tracks.overflows):
        if not remaining:
            break
        worst = max(degree, key=lambda w: degree[w])
        blamed.add(worst)
        for _, _, a, b, _ in remaining:
            if worst in (a, b):
                degree[a] -= 1
                degree[b] -= 1
        remaining = [p for p in remaining if worst not in (p[2], p[3])]
    for lname, track, a, b, overlap in pairs:
        severity = (Severity.WARN if a in blamed or b in blamed
                    else Severity.ERROR)
        yield Diagnostic(
            rule="track-overlap", severity=severity,
            message=f"wires {a} and {b} overlap by {overlap:.3f} um on "
                    f"{lname}/track {track}"
                    + (" (router overflow fallback)"
                       if severity == Severity.WARN else ""),
            wire_id=b, obj=f"{lname}/track {track}",
            hint="double registration or an is_free/register mismatch"
            if severity == Severity.ERROR else
            "congestion: enlarge the die or the search window")


@register("blockage-overlap", kind="drc")
def check_blockage_overlap(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """No wire may cross a hard keep-out span on its own track."""
    tracks = ctx.routing.tracks
    for wire in tracks.iter_wires():
        if wire.segment.length <= 0.0:
            continue  # zero-span stubs occupy no track length
        lo, hi = wire.segment.lo, wire.segment.hi
        for b_lo, b_hi in tracks.blocked_spans(wire.layer.name, wire.track):
            if b_lo < hi and b_hi > lo:
                yield Diagnostic(
                    rule="blockage-overlap", severity=Severity.ERROR,
                    message=f"wire {wire.wire_id} [{lo:.2f}, {hi:.2f}] "
                            f"crosses keep-out [{b_lo:.2f}, {b_hi:.2f}] on "
                            f"{wire.layer.name}/track {wire.track}",
                    wire_id=wire.wire_id,
                    obj=f"{wire.layer.name}/track {wire.track}",
                    hint="the macro-avoid router must split segments "
                         "around blockages before placement")


@register("shield-continuity", kind="drc")
def check_shield_continuity(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Shielded wires need both adjacent tracks available for shields.

    A shield that cannot physically exist (the wire sits on the first or
    last track of the grid) is an ERROR — the extraction models coupling
    to shields that have nowhere to be drawn.  Foreign wires or
    keep-outs overlapping the shield tracks break shield continuity:
    WARN, because the post-route assigner works on fixed signal
    geometry and the model knowingly idealises the shields in.
    """
    tracks = ctx.routing.tracks
    grid = tracks.grid
    for wire in ctx.routing.clock_wires:
        if not wire.shielded:
            continue
        n = grid.num_tracks(wire.layer)
        for side in (-1, +1):
            shield_track = wire.track + side
            if shield_track < 0 or shield_track >= n:
                yield Diagnostic(
                    rule="shield-continuity", severity=Severity.ERROR,
                    message=f"shielded wire {wire.wire_id} on "
                            f"{wire.layer.name}/track {wire.track} has no "
                            f"track {shield_track} for its "
                            f"{'lower' if side < 0 else 'upper'} shield",
                    wire_id=wire.wire_id,
                    obj=f"{wire.layer.name}/track {shield_track}",
                    hint="do not shield wires on the grid boundary")
                continue
            lo, hi = wire.segment.lo, wire.segment.hi
            if hi <= lo:
                continue
            gaps: list[tuple[float, float, str]] = []
            for lname, track, intervals in tracks.occupancy():
                if lname != wire.layer.name or track != shield_track:
                    continue
                for o_lo, o_hi, other_id in intervals:
                    if o_lo < hi and o_hi > lo:
                        gaps.append((o_lo, o_hi, f"wire {other_id}"))
            for b_lo, b_hi in tracks.blocked_spans(wire.layer.name,
                                                   shield_track):
                if b_lo < hi and b_hi > lo:
                    gaps.append((b_lo, b_hi, "keep-out"))
            for g_lo, g_hi, what in sorted(gaps):
                yield Diagnostic(
                    rule="shield-continuity", severity=Severity.WARN,
                    message=f"shield of wire {wire.wire_id} on "
                            f"{wire.layer.name}/track {shield_track} is "
                            f"broken over [{max(g_lo, lo):.2f}, "
                            f"{min(g_hi, hi):.2f}] by {what}",
                    wire_id=wire.wire_id,
                    obj=f"{wire.layer.name}/track {shield_track}",
                    hint="shield coverage is partial; coupling is "
                         "under-modelled over the gap")


@register("ndr-spacing", kind="drc")
def check_ndr_spacing(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Spacing-NDR wires whose guarantee the literal geometry breaks.

    The post-route assigner upgrades rules on fixed geometry, so the
    extractor *clamps* neighbor spacing up to the rule guarantee — the
    model is self-consistent, but the drawn geometry may not honor it.
    Each neighbor physically closer than the guaranteed spacing is a
    WARN: it marks where a real router would have to rip up and shove.
    """
    tracks = ctx.routing.tracks
    grid = tracks.grid
    occupancy = {(lname, track): intervals
                 for lname, track, intervals in tracks.occupancy()}
    for wire in ctx.routing.clock_wires:
        guaranteed = wire.guaranteed_spacing()
        if guaranteed <= wire.layer.min_spacing or wire.shielded:
            continue
        layer = wire.layer
        lo, hi = wire.segment.lo, wire.segment.hi
        if hi <= lo:
            continue
        max_step = int(guaranteed / layer.pitch) + 2
        for step in range(1, max_step + 1):
            for track in (wire.track - step, wire.track + step):
                if track < 0 or track >= grid.num_tracks(layer):
                    continue
                for o_lo, o_hi, other_id in occupancy.get(
                        (layer.name, track), ()):
                    if o_lo >= hi or o_hi <= lo:
                        continue
                    other = tracks.wire(other_id)
                    spacing = grid.edge_spacing(layer, wire.track,
                                                wire.width, track,
                                                other.width)
                    if spacing < guaranteed - ABS_TOL:
                        yield Diagnostic(
                            rule="ndr-spacing", severity=Severity.WARN,
                            message=f"wire {wire.wire_id} "
                                    f"({wire.rule.name.value}) guarantees "
                                    f"{guaranteed:.3f} um spacing but wire "
                                    f"{other_id} sits {spacing:.3f} um away "
                                    f"on {layer.name}/track {track}",
                            wire_id=wire.wire_id,
                            obj=f"{layer.name}/track {track}",
                            hint="extraction clamps this spacing up to "
                                 "the guarantee; geometry does not move")


@register("rc-topology", kind="drc")
def check_rc_topology(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Each stage is a rooted tree; the stage graph is a rooted tree too.

    Node invariants: dense ``idx`` numbering, node 0 is the single
    parentless root, and parents precede children (the topological
    order every downstream accumulation relies on).  Stage invariants:
    ``stage_of_tree_node`` is the exact inverse of stage identity, each
    sink is a flop pin xor a next-stage link, and every stage is
    reachable from ``root_stage`` exactly once.
    """
    network = ctx.extraction.network
    for stage_idx, stage in enumerate(network.stages):
        for i, node in enumerate(stage.nodes):
            if node.idx != i:
                yield Diagnostic(
                    rule="rc-topology", severity=Severity.ERROR,
                    message=f"node at position {i} carries idx {node.idx}",
                    stage=stage_idx, node=i,
                    hint="stage rebuild must renumber nodes densely")
                continue
            if i == 0:
                if node.parent is not None:
                    yield Diagnostic(
                        rule="rc-topology", severity=Severity.ERROR,
                        message=f"stage root has parent {node.parent}",
                        stage=stage_idx, node=0)
            elif node.parent is None or not 0 <= node.parent < i:
                yield Diagnostic(
                    rule="rc-topology", severity=Severity.ERROR,
                    message=f"node {i} has parent {node.parent}; parents "
                            f"must precede children",
                    stage=stage_idx, node=i,
                    hint="a cycle or forward reference breaks every "
                         "downstream-cap accumulation")
        mapped = network.stage_of_tree_node.get(stage.tree_node_id)
        if mapped != stage_idx:
            yield Diagnostic(
                rule="rc-topology", severity=Severity.ERROR,
                message=f"stage_of_tree_node[{stage.tree_node_id}] is "
                        f"{mapped}, expected {stage_idx}",
                stage=stage_idx)
        for sink in stage.sinks:
            if not 0 <= sink.node_idx < len(stage.nodes):
                yield Diagnostic(
                    rule="rc-topology", severity=Severity.ERROR,
                    message=f"sink node index {sink.node_idx} out of range",
                    stage=stage_idx)
            if (sink.sink_pin is None) == (sink.next_stage_tree_id is None):
                yield Diagnostic(
                    rule="rc-topology", severity=Severity.ERROR,
                    message="sink must be a flop pin xor a next-stage link",
                    stage=stage_idx, node=sink.node_idx)
            elif (sink.next_stage_tree_id is not None
                  and sink.next_stage_tree_id not in
                  network.stage_of_tree_node):
                yield Diagnostic(
                    rule="rc-topology", severity=Severity.ERROR,
                    message=f"sink links to unknown stage tree node "
                            f"{sink.next_stage_tree_id}",
                    stage=stage_idx, node=sink.node_idx)
    # Stage-graph reachability: every stage visited exactly once.
    if not 0 <= network.root_stage < len(network.stages):
        yield Diagnostic(
            rule="rc-topology", severity=Severity.ERROR,
            message=f"root_stage {network.root_stage} out of range")
        return
    seen: set[int] = set()
    work = [network.root_stage]
    while work:
        idx = work.pop()
        if idx in seen:
            yield Diagnostic(
                rule="rc-topology", severity=Severity.ERROR,
                message=f"stage {idx} reached twice (stage graph cycle "
                        f"or diamond)", stage=idx)
            continue
        seen.add(idx)
        work.extend(network.stage_children(idx))
    for idx in range(len(network.stages)):
        if idx not in seen:
            yield Diagnostic(
                rule="rc-topology", severity=Severity.ERROR,
                message=f"stage {idx} unreachable from the root stage",
                stage=idx,
                hint="orphan stages silently drop their flops from "
                     "every analysis")


@register("rc-values", kind="drc")
def check_rc_values(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """R/C entries must be physical: no negative values, wires resistive.

    A negative resistance or capacitance silently corrupts every Elmore
    product downstream; a zero-resistance wire node marks a degenerate
    wire the router should not have emitted.
    """
    network = ctx.extraction.network
    for stage_idx, stage in enumerate(network.stages):
        if stage.pad_cap < 0.0 or stage.snake_cap < 0.0:
            yield Diagnostic(
                rule="rc-values", severity=Severity.ERROR,
                message=f"negative pad/snake cap ({stage.pad_cap:.4f}, "
                        f"{stage.snake_cap:.4f}) fF",
                stage=stage_idx)
        for node in stage.nodes:
            if node.r < 0.0:
                yield Diagnostic(
                    rule="rc-values", severity=Severity.ERROR,
                    message=f"negative resistance {node.r:.6f} kOhm",
                    stage=stage_idx, node=node.idx, wire_id=node.wire_id)
            elif node.wire_id is not None and node.r <= 0.0:
                yield Diagnostic(
                    rule="rc-values", severity=Severity.WARN,
                    message="wire node with zero resistance "
                            "(degenerate wire)",
                    stage=stage_idx, node=node.idx, wire_id=node.wire_id)
            if node.cap_fixed < 0.0:
                yield Diagnostic(
                    rule="rc-values", severity=Severity.ERROR,
                    message=f"negative fixed cap {node.cap_fixed:.6f} fF",
                    stage=stage_idx, node=node.idx)
            for wid, c_area_half, c_rest_half in node.cap_wire:
                if c_area_half < 0.0 or c_rest_half < 0.0:
                    yield Diagnostic(
                        rule="rc-values", severity=Severity.ERROR,
                        message=f"negative wire cap halves "
                                f"({c_area_half:.6f}, {c_rest_half:.6f}) fF",
                        stage=stage_idx, node=node.idx, wire_id=wid)


@register("rc-wire-sites", kind="drc")
def check_rc_wire_sites(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Clock wires, RC nodes, and parasitics must correspond one-to-one.

    Every clock wire of the routing appears as exactly one RC node's
    incoming wire and carries a parasitics entry; every RC wire node
    refers back to a registered clock wire.  Any gap means an analysis
    is reading (or missing) state the others do not see.
    """
    network = ctx.extraction.network
    wires = ctx.extraction.wires
    routed = {w.wire_id for w in ctx.routing.clock_wires}
    seen: dict[int, tuple[int, int]] = {}
    for stage_idx, stage in enumerate(network.stages):
        for node in stage.nodes:
            if node.wire_id is None:
                continue
            if node.wire_id in seen:
                prev_stage, prev_node = seen[node.wire_id]
                yield Diagnostic(
                    rule="rc-wire-sites", severity=Severity.ERROR,
                    message=f"wire {node.wire_id} owns RC nodes in stage "
                            f"{prev_stage} (node {prev_node}) and stage "
                            f"{stage_idx} (node {node.idx})",
                    stage=stage_idx, node=node.idx, wire_id=node.wire_id)
            seen[node.wire_id] = (stage_idx, node.idx)
            if node.wire_id not in routed:
                yield Diagnostic(
                    rule="rc-wire-sites", severity=Severity.ERROR,
                    message=f"RC node refers to unrouted wire "
                            f"{node.wire_id}",
                    stage=stage_idx, node=node.idx, wire_id=node.wire_id)
            if node.wire_id not in wires:
                yield Diagnostic(
                    rule="rc-wire-sites", severity=Severity.ERROR,
                    message=f"no parasitics extracted for wire "
                            f"{node.wire_id}",
                    stage=stage_idx, node=node.idx, wire_id=node.wire_id)
    for wire_id in sorted(routed - set(seen)):
        yield Diagnostic(
            rule="rc-wire-sites", severity=Severity.ERROR,
            message=f"clock wire {wire_id} is routed but absent from the "
                    f"RC network", wire_id=wire_id,
            hint="the stage builder dropped an edge wire")
    for wire_id in sorted(routed - set(wires)):
        yield Diagnostic(
            rule="rc-wire-sites", severity=Severity.ERROR,
            message=f"clock wire {wire_id} has no parasitics entry",
            wire_id=wire_id)


@register("em-width", kind="drc")
def check_em_width(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Width floors: drawn width >= layer minimum; EM budgets respected.

    A drawn width below the layer minimum is a hard DRC (ERROR) — the
    rule lattice cannot produce one, so it marks a corrupted rule.  EM
    utilisation above 1.0 is a quality violation a legal (infeasible)
    flow state can carry: WARN.
    """
    for wire in ctx.routing.clock_wires:
        if wire.width < wire.layer.min_width - ABS_TOL:
            yield Diagnostic(
                rule="em-width", severity=Severity.ERROR,
                message=f"drawn width {wire.width:.4f} um below layer "
                        f"minimum {wire.layer.min_width:.4f} um",
                wire_id=wire.wire_id, obj=wire.layer.name,
                hint="routing rules only widen; the rule object is "
                     "corrupt")
    if ctx.freq is None:
        return
    report = analyze_em(ctx.extraction.network, ctx.routing,
                        ctx.tech.vdd, ctx.freq)
    for record in report.violations:
        yield Diagnostic(
            rule="em-width", severity=Severity.WARN,
            message=f"EM utilisation {record.utilization:.2f} exceeds 1.0 "
                    f"({record.density:.0f} of {record.jmax:.0f} uA/um^2)",
            wire_id=record.wire_id,
            hint="widen the wire or re-synthesize with smaller stages")


@register("delay-sanity", kind="drc")
def check_delay_sanity(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Per-sink stage Elmore delays must be non-negative and sub-cycle.

    A negative Elmore contribution is arithmetically impossible with
    physical R/C — it marks sign corruption upstream.  A single stage's
    wire delay beyond one clock period is unit-breakage territory (a
    fF/pF or ps/ns mix-up produces exactly this signature), flagged
    WARN because period-relative limits are policy, not structure.
    """
    network = ctx.extraction.network
    period = ctx.clock_period
    for stage_idx, stage in enumerate(network.stages):
        for sink in stage.sinks:
            delay = stage.elmore_to(sink.node_idx)
            if delay < -ABS_TOL:
                yield Diagnostic(
                    rule="delay-sanity", severity=Severity.ERROR,
                    message=f"negative stage Elmore delay {delay:.4f} ps "
                            f"to sink node {sink.node_idx}",
                    stage=stage_idx, node=sink.node_idx)
            elif period is not None and delay > period:
                yield Diagnostic(
                    rule="delay-sanity", severity=Severity.WARN,
                    message=f"stage Elmore delay {delay:.1f} ps to sink "
                            f"node {sink.node_idx} exceeds one clock "
                            f"period ({period:.1f} ps)",
                    stage=stage_idx, node=sink.node_idx,
                    hint="check units: kOhm x fF = ps only in the "
                         "library's coherent system")


@register("coupling-sanity", kind="drc")
def check_coupling_sanity(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Per-wire parasitics must be internally consistent.

    All capacitance components non-negative; the per-aggressor coupling
    entries must sum to ``cc_signal``; quiet-aggressor loading means
    ``c_rest`` includes ``cc_signal``; aggressor activities are
    probabilities; shielded wires carry no aggressor coupling at all.
    """
    tracks = ctx.routing.tracks
    for wire_id in sorted(ctx.extraction.wires):
        para = ctx.extraction.wires[wire_id]
        wire: RoutedWire = tracks.wire(wire_id)
        for name, value in (("c_area", para.c_area), ("c_rest", para.c_rest),
                            ("cc_signal", para.cc_signal),
                            ("cc_clock", para.cc_clock)):
            if value < 0.0:
                yield Diagnostic(
                    rule="coupling-sanity", severity=Severity.ERROR,
                    message=f"negative {name} = {value:.6f} fF",
                    wire_id=wire_id)
        total_cc = 0.0
        for entry in para.couplings:
            total_cc += entry.cc
            if entry.cc < 0.0:
                yield Diagnostic(
                    rule="coupling-sanity", severity=Severity.ERROR,
                    message=f"negative coupling entry {entry.cc:.6f} fF",
                    wire_id=wire_id)
            if not 0.0 <= entry.activity <= 1.0:
                yield Diagnostic(
                    rule="coupling-sanity", severity=Severity.ERROR,
                    message=f"aggressor activity {entry.activity} outside "
                            f"[0, 1]", wire_id=wire_id)
        if not _close(total_cc, para.cc_signal):
            yield Diagnostic(
                rule="coupling-sanity", severity=Severity.ERROR,
                message=f"coupling entries sum to {total_cc:.6f} fF but "
                        f"cc_signal is {para.cc_signal:.6f} fF",
                wire_id=wire_id,
                hint="the per-aggressor list and the total were updated "
                     "out of step")
        if para.c_rest < para.cc_signal - ABS_TOL \
                and not _close(para.c_rest, para.cc_signal):
            yield Diagnostic(
                rule="coupling-sanity", severity=Severity.ERROR,
                message=f"c_rest {para.c_rest:.6f} fF below cc_signal "
                        f"{para.cc_signal:.6f} fF (quiet aggressors must "
                        f"load the wire)", wire_id=wire_id)
        if wire.shielded and (para.cc_signal > 0.0 or para.couplings):
            yield Diagnostic(
                rule="coupling-sanity", severity=Severity.ERROR,
                message="shielded wire carries aggressor coupling",
                wire_id=wire_id,
                hint="stale extraction: the shield assignment was not "
                     "propagated")
