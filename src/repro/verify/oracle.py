"""Engine-coherence oracle: recompute incremental state and diff.

Every structure the incremental engine maintains in place — cached
capacitance totals, the patched RC network, the neighbor dependency
index, the compiled stage kernels, the frozen Monte-Carlo factors, the
sensitivity cache — has a from-scratch definition.  Each oracle check
recomputes that definition and diffs it against the maintained value,
so a skipped dirty bit or a desynchronised cache surfaces as a *named*
diagnostic instead of a subtly wrong number three analyses later.

Recomputation uses the exact same arithmetic as the builders (same
functions, same ordering), so the comparisons hold to float identity up
to summation-order round-off; tolerances are ``rel_tol=1e-9``.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.sensitivity import _what_if_parasitics
from repro.engine.kernel import StageKernel
from repro.extract.capmodel import WireParasitics, extract_wire
from repro.tech.ndr import rule_by_name
from repro.timing.montecarlo import wire_variation_factors
from repro.verify.context import VerifyContext
from repro.verify.diagnostics import Diagnostic, Severity
from repro.verify.registry import register

REL_TOL = 1e-9
ABS_TOL = 1e-12


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def _para_diffs(stored: WireParasitics,
                fresh: WireParasitics) -> Iterator[str]:
    """Named scalar fields on which two parasitics records disagree."""
    for name in ("r", "c_area", "c_rest", "cc_signal", "cc_clock"):
        a, b = getattr(stored, name), getattr(fresh, name)
        if not _close(a, b):
            yield f"{name} {a:.9g} vs {b:.9g}"
    if len(stored.couplings) != len(fresh.couplings):
        yield (f"coupling count {len(stored.couplings)} vs "
               f"{len(fresh.couplings)}")


@register("cap-totals", kind="oracle")
def check_cap_totals(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Cached switched/coupling cap totals equal a from-scratch sum.

    ``Extraction.set_wire`` must null both totals on every store; a
    surviving stale total silently skews the power analysis.  Only
    non-``None`` cached values are diffed — ``None`` means "stale, will
    recompute", which is always coherent.
    """
    wire_total, coupling_total = ctx.extraction.cached_cap_totals()
    clock_wires = ctx.routing.clock_wires
    if wire_total is not None:
        fresh = sum(ctx.extraction.wires[w.wire_id].c_switched
                    for w in clock_wires)
        if not _close(wire_total, fresh):
            yield Diagnostic(
                rule="cap-totals", severity=Severity.ERROR,
                message=f"cached clock wire cap {wire_total:.9g} fF, "
                        f"from-scratch sum {fresh:.9g} fF",
                hint="a set_wire path skipped the cache invalidation")
    if coupling_total is not None:
        fresh = sum(ctx.extraction.wires[w.wire_id].cc_signal
                    for w in clock_wires)
        if not _close(coupling_total, fresh):
            yield Diagnostic(
                rule="cap-totals", severity=Severity.ERROR,
                message=f"cached coupling cap {coupling_total:.9g} fF, "
                        f"from-scratch sum {fresh:.9g} fF",
                hint="a set_wire path skipped the cache invalidation")


@register("network-rc-sync", kind="oracle")
def check_network_rc_sync(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """The patched RC network mirrors the parasitics store exactly.

    Each wire's far node must carry ``para.r`` and both of its RC nodes
    must carry the ``(c_area/2, c_rest/2)`` halves of the *current*
    parasitics.  A mismatch means ``patch_wire`` was skipped (or patched
    with stale values) after a re-extraction.
    """
    network = ctx.extraction.network
    wires = ctx.extraction.wires
    for stage_idx, stage in enumerate(network.stages):
        for node in stage.nodes:
            sites = [(wid, a, b) for wid, a, b in node.cap_wire]
            for wid, c_area_half, c_rest_half in sites:
                para = wires.get(wid)
                if para is None:
                    continue  # rc-wire-sites owns the missing-entry case
                if not _close(c_area_half, para.c_area / 2.0) \
                        or not _close(c_rest_half, para.c_rest / 2.0):
                    yield Diagnostic(
                        rule="network-rc-sync", severity=Severity.ERROR,
                        message=f"node carries wire halves "
                                f"({c_area_half:.9g}, {c_rest_half:.9g}) "
                                f"fF; parasitics say "
                                f"({para.c_area / 2.0:.9g}, "
                                f"{para.c_rest / 2.0:.9g}) fF",
                        stage=stage_idx, node=node.idx, wire_id=wid,
                        hint="patch_wire was not called after "
                             "re-extraction")
            if node.wire_id is not None:
                para = wires.get(node.wire_id)
                if para is not None and not _close(node.r, para.r):
                    yield Diagnostic(
                        rule="network-rc-sync", severity=Severity.ERROR,
                        message=f"far node resistance {node.r:.9g} kOhm; "
                                f"parasitics say {para.r:.9g} kOhm",
                        stage=stage_idx, node=node.idx,
                        wire_id=node.wire_id,
                        hint="patch_wire was not called after "
                             "re-extraction")


@register("extraction-fresh", kind="oracle")
def check_extraction_fresh(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Stored parasitics equal a fresh extraction of today's geometry.

    Single-wire extraction is deterministic in the wire's (rule,
    shield) state and its live track neighbors, so re-running it must
    reproduce the store bit-for-bit.  A diff means a rule or shield was
    assigned without notifying re-extraction — the classic skipped
    dirty bit.
    """
    tracks = ctx.routing.tracks
    for wire in ctx.routing.clock_wires:
        stored = ctx.extraction.wires.get(wire.wire_id)
        if stored is None:
            continue  # rc-wire-sites owns the missing-entry case
        fresh = extract_wire(wire, tracks.neighbors_of(wire))
        diffs = list(_para_diffs(stored, fresh))
        if diffs:
            yield Diagnostic(
                rule="extraction-fresh", severity=Severity.ERROR,
                message="stored parasitics are stale: " + "; ".join(diffs),
                wire_id=wire.wire_id,
                hint="a rule/shield assignment bypassed re-extraction "
                     "(skipped dirty bit)")


@register("neighbor-index-sync", kind="oracle")
def check_neighbor_index_sync(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """The neighbor dependency index matches live neighbor queries.

    Forward sets must equal ``neighbors_of`` recomputed now, and the
    reverse map must be the exact inverse of the forward map.  A stale
    entry makes ``dependents_of`` miss (or over-dirty) wires on the
    next incremental re-extraction.
    """
    fwd, rev = ctx.extraction.neighbor_index()
    tracks = ctx.routing.tracks
    for wire in ctx.routing.clock_wires:
        if wire.wire_id not in fwd:
            continue  # never extracted through the index; nothing to sync
        live = frozenset(nb.neighbor_id
                         for nb in tracks.neighbors_of(wire))
        recorded = fwd[wire.wire_id]
        if recorded != live:
            missing = sorted(live - recorded)
            extra = sorted(recorded - live)
            yield Diagnostic(
                rule="neighbor-index-sync", severity=Severity.ERROR,
                message=f"recorded neighbor set is stale "
                        f"(missing {missing}, extra {extra})",
                wire_id=wire.wire_id,
                hint="record_neighbors was skipped after the wire's "
                     "reach changed")
    inverse: dict[int, set[int]] = {}
    for victim, neighbor_ids in fwd.items():
        for nid in neighbor_ids:
            inverse.setdefault(nid, set()).add(victim)
    for nid in sorted(set(rev) | set(inverse)):
        want = frozenset(inverse.get(nid, set()))
        have = rev.get(nid, frozenset())
        if want != have:
            yield Diagnostic(
                rule="neighbor-index-sync", severity=Severity.ERROR,
                message=f"reverse index for wire {nid} is "
                        f"{sorted(have)}; inverse of the forward map is "
                        f"{sorted(want)}", wire_id=nid,
                hint="forward and reverse maps were updated out of step")


@register("kernel-sync", kind="oracle")
def check_kernel_sync(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Compiled stage kernels equal a fresh compile of today's network.

    Rebuilds every :class:`StageKernel` from the current stages and
    parasitics and diffs all patched-in-place arrays.  Requires an
    engine in the context; silently skipped otherwise.
    """
    engine = ctx.engine
    if engine is None:
        return
    if engine.extraction is not ctx.extraction:
        yield Diagnostic(
            rule="kernel-sync", severity=Severity.ERROR,
            message="engine wraps a different Extraction object than the "
                    "one under verification",
            hint="the flow rebuilt extraction without rebuilding the "
                 "engine")
        return
    network = ctx.extraction.network
    if engine.kernel.num_stages != len(network.stages):
        yield Diagnostic(
            rule="kernel-sync", severity=Severity.ERROR,
            message=f"kernel has {engine.kernel.num_stages} stages; the "
                    f"network has {len(network.stages)}")
        return
    for stage_idx, stage in enumerate(network.stages):
        have = engine.kernel.stage_view(stage_idx)
        want = StageKernel(stage, ctx.extraction.wires, ctx.routing)
        if have.wire_ids != want.wire_ids or have.n != want.n:
            yield Diagnostic(
                rule="kernel-sync", severity=Severity.ERROR,
                message=f"kernel stage shape ({have.n} nodes, wires "
                        f"{have.wire_ids}) differs from a fresh compile "
                        f"({want.n} nodes, wires {want.wire_ids})",
                stage=stage_idx,
                hint="a stage rebuild skipped recompile_stage")
            continue
        for name in ("r", "cap_fixed", "area_half", "rest_half",
                     "cc_half", "act_half", "width", "thickness",
                     "jmax"):
            a = getattr(have, name)
            b = getattr(want, name)
            if not np.allclose(a, b, rtol=REL_TOL, atol=ABS_TOL):
                worst = int(np.argmax(np.abs(a - b)))
                yield Diagnostic(
                    rule="kernel-sync", severity=Severity.ERROR,
                    message=f"kernel array {name!r} is stale (worst at "
                            f"index {worst}: {a[worst]:.9g} vs "
                            f"{b[worst]:.9g})",
                    stage=stage_idx,
                    hint="patch_wire/retrim missed this stage kernel")
        for name in ("parent", "ent_node", "ent_col"):
            if not np.array_equal(getattr(have, name),
                                  getattr(want, name)):
                yield Diagnostic(
                    rule="kernel-sync", severity=Severity.ERROR,
                    message=f"kernel structure {name!r} differs from a "
                            f"fresh compile", stage=stage_idx,
                    hint="topology changed without recompile_stage")


@register("frozen-mc-sync", kind="oracle")
def check_frozen_mc_sync(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Frozen Monte-Carlo factors equal a recompute from frozen draws.

    The draws themselves are invariant; the per-wire width/resistance
    factors must track the wires' *current* widths.  A stale factor
    means ``refresh_wire`` was skipped after a rule change, silently
    degrading the variation analysis.  Requires an engine; skipped
    otherwise.
    """
    engine = ctx.engine
    if engine is None:
        return
    frozen = engine.frozen
    if len(frozen.buf_scale) != len(ctx.extraction.network.stages):
        yield Diagnostic(
            rule="frozen-mc-sync", severity=Severity.ERROR,
            message=f"frozen buffer scales cover {len(frozen.buf_scale)} "
                    f"stages; the network has "
                    f"{len(ctx.extraction.network.stages)}",
            hint="FrozenVariation predates a stage-count change; "
                 "rebuild the engine")
        return
    for wire in ctx.routing.clock_wires:
        wid = wire.wire_id
        if wid not in frozen.cells or wid not in frozen.z_rand:
            yield Diagnostic(
                rule="frozen-mc-sync", severity=Severity.ERROR,
                message="wire has no frozen variation draws",
                wire_id=wid,
                hint="FrozenVariation predates this wire; rebuild the "
                     "engine")
            continue
        cell = frozen.cells[wid]
        area, r = wire_variation_factors(
            frozen.var, wire, frozen.z_width[cell], frozen.z_rand[wid],
            frozen.z_thick[cell])
        for name, have, want in (("area_scale", frozen.area_scale[wid],
                                  area),
                                 ("r_scale", frozen.r_scale[wid], r)):
            if not np.allclose(have, want, rtol=REL_TOL, atol=ABS_TOL):
                worst = int(np.argmax(np.abs(have - want)))
                yield Diagnostic(
                    rule="frozen-mc-sync", severity=Severity.ERROR,
                    message=f"frozen {name} is stale (worst at sample "
                            f"{worst}: {have[worst]:.9g} vs "
                            f"{want[worst]:.9g})",
                    wire_id=wid,
                    hint="refresh_wire was skipped after the wire's "
                         "width moved")


@register("sens-cache-sync", kind="oracle")
def check_sens_cache_sync(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Live sensitivity-cache entries equal a fresh what-if extraction.

    Cache keys embed the neighbor-occupancy fingerprint, so entries
    whose fingerprint no longer matches the current occupancy are
    legitimately dead and skipped.  A *live* entry (fingerprint still
    current) must reproduce under a fresh what-if extraction; a diff
    means the memo was poisoned or the fingerprint under-captures a
    dependency.  Requires a sensitivity cache; skipped otherwise.
    """
    cache = ctx.sens_cache
    if cache is None:
        return
    for wid, rule_name, shielded, occ, stored in cache.entries():
        if occ != cache.occupancy(wid):
            continue  # self-invalidated by a neighbor's rule change
        fresh = _what_if_parasitics(ctx.routing, wid,
                                    rule_by_name(rule_name), shielded)
        diffs = list(_para_diffs(stored, fresh))
        if diffs:
            yield Diagnostic(
                rule="sens-cache-sync", severity=Severity.ERROR,
                message=f"cached what-if for rule {rule_name} "
                        f"(shielded={shielded}) is stale: "
                        + "; ".join(diffs),
                wire_id=wid,
                hint="the occupancy fingerprint under-captures a "
                     "dependency of single-wire extraction")


#: Re-exported for callers iterating oracle ids without the registry.
ORACLE_RULES: tuple[str, ...] = (
    "cap-totals", "network-rc-sync", "extraction-fresh",
    "neighbor-index-sync", "kernel-sync", "frozen-mc-sync",
    "sens-cache-sync")
