"""SVG rendering of a routed clock network, colored by routing rule.

No plotting dependencies: the renderer emits plain SVG.  The picture a
smart-NDR run produces is the paper's figure-1 intuition — a gray
default-rule tree with a handful of colored (protected) wires on the
trunks and hot spots.

Colors: default gray; width upgrades in blues; spacing upgrades in
greens; the full rules in orange/red; shielded wires drawn with a halo.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.cts.tree import ClockTree
from repro.route.router import RoutingResult

RULE_COLORS = {
    "W1S1": "#9aa0a6",
    "W2S1": "#1a73e8",
    "W1S2": "#188038",
    "W2S2": "#e8710a",
    "W4S2": "#d93025",
}
RULE_WIDTHS = {
    "W1S1": 1.0,
    "W2S1": 2.0,
    "W1S2": 1.0,
    "W2S2": 2.0,
    "W4S2": 3.5,
}
SHIELD_COLOR = "#b31412"
SINK_COLOR = "#5f6368"
BUFFER_COLOR = "#202124"


def render_clock_svg(tree: ClockTree, routing: RoutingResult,
                     size: float = 720.0,
                     title: Optional[str] = None,
                     blockages=None) -> str:
    """Render the routed clock tree as an SVG string.

    ``blockages`` (optional list of :class:`~repro.geom.rect.Rect`)
    draws hard macros as hatched gray boxes under the wires.
    """
    die = routing.tracks.grid.die
    scale = size / max(die.width, die.height)
    pad = 12.0

    def sx(x: float) -> float:
        return pad + (x - die.xlo) * scale

    def sy(y: float) -> float:
        # SVG y grows downward; die y grows upward.
        return pad + (die.yhi - y) * scale

    width = die.width * scale + 2 * pad
    height = die.height * scale + 2 * pad
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height + (22 if title else 0):.0f}" '
        f'viewBox="0 0 {width:.0f} {height + (22 if title else 0):.0f}">',
        f'<rect x="{pad}" y="{pad}" width="{die.width * scale:.1f}" '
        f'height="{die.height * scale:.1f}" fill="#ffffff" '
        f'stroke="#dadce0"/>',
    ]

    for blockage in blockages or []:
        parts.append(
            f'<rect x="{sx(blockage.xlo):.1f}" y="{sy(blockage.yhi):.1f}" '
            f'width="{blockage.width * scale:.1f}" '
            f'height="{blockage.height * scale:.1f}" fill="#e8eaed" '
            f'stroke="#bdc1c6"/>')

    # Wires (shield halos first so the wire draws on top).
    for wire in routing.clock_wires:
        seg = wire.segment
        if seg.is_point:
            continue
        x1, y1 = sx(seg.a.x), sy(seg.a.y)
        x2, y2 = sx(seg.b.x), sy(seg.b.y)
        rule = wire.rule.name.value
        if wire.shielded:
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                f'y2="{y2:.1f}" stroke="{SHIELD_COLOR}" '
                f'stroke-width="{RULE_WIDTHS[rule] + 4:.1f}" '
                f'stroke-opacity="0.25"/>')
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{RULE_COLORS[rule]}" '
            f'stroke-width="{RULE_WIDTHS[rule]:.1f}"/>')

    # Buffers and sinks.
    for node in tree:
        x, y = sx(node.location.x), sy(node.location.y)
        if node.buffer is not None:
            parts.append(
                f'<rect x="{x - 2.5:.1f}" y="{y - 2.5:.1f}" width="5" '
                f'height="5" fill="{BUFFER_COLOR}"/>')
        if node.is_sink:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="1.6" '
                f'fill="{SINK_COLOR}"/>')

    if title:
        parts.append(
            f'<text x="{pad}" y="{height + 15:.0f}" '
            f'font-family="sans-serif" font-size="12" '
            f'fill="#202124">{title}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_clock_svg(tree: ClockTree, routing: RoutingResult,
                   path: Union[str, Path], size: float = 720.0,
                   title: Optional[str] = None, blockages=None) -> None:
    """Render and write the SVG to ``path``."""
    Path(path).write_text(render_clock_svg(tree, routing, size=size,
                                           title=title,
                                           blockages=blockages))
