"""Visualization: self-contained SVG rendering of routed clock networks."""

from repro.viz.svg import render_clock_svg, save_clock_svg

__all__ = ["render_clock_svg", "save_clock_svg"]
