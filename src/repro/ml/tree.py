"""CART decision tree classifier (Gini impurity, binary splits).

A deliberately small, readable implementation: vectorised split search
with NumPy, depth/leaf-size regularisation, and per-feature importance
accounting.  Binary or multi-class labels (dense integer classes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    prediction: int = 0
    proba: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier:
    """CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum samples each child of a split must retain.
    max_features:
        If set, the number of features randomly considered per split
        (used by the random forest); ``None`` considers all.
    rng:
        NumPy generator for feature subsampling (only needed when
        ``max_features`` is set).
    """

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 5,
                 max_features: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._root: Optional[_Node] = None
        self._n_classes = 0
        self.n_features_: int = 0
        self.feature_importances_: Optional[np.ndarray] = None

    # -- training -----------------------------------------------------------------

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Grow the CART tree on (X, y)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        self._n_classes = int(y.max()) + 1 if y.size else 1
        self.n_features_ = X.shape[1]
        self.feature_importances_ = np.zeros(self.n_features_)
        self._root = self._grow(X, y, depth=0)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y, minlength=self._n_classes).astype(float)
        node = _Node(prediction=int(counts.argmax()),
                     proba=counts / counts.sum())
        if (depth >= self.max_depth
                or len(y) < 2 * self.min_samples_leaf
                or _gini(counts) <= 0.0):
            return node
        split = self._best_split(X, y, counts)
        if split is None:
            return node
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        self.feature_importances_[feature] += gain * len(y)
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray,
                    counts: np.ndarray) -> Optional[tuple[int, float, float]]:
        n = len(y)
        parent_gini = _gini(counts)
        best: Optional[tuple[int, float, float]] = None
        features = np.arange(X.shape[1])
        if self.max_features is not None and self.max_features < len(features):
            features = self._rng.choice(features, size=self.max_features,
                                        replace=False)
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            # Cumulative class counts left of each candidate boundary.
            onehot = np.zeros((n, self._n_classes))
            onehot[np.arange(n), ys] = 1.0
            left_counts = np.cumsum(onehot, axis=0)
            for i in range(self.min_samples_leaf - 1,
                           n - self.min_samples_leaf):
                if xs[i] == xs[i + 1]:
                    continue  # cannot split between equal values
                lc = left_counts[i]
                rc = counts - lc
                n_left = i + 1
                n_right = n - n_left
                gini = (n_left * _gini(lc) + n_right * _gini(rc)) / n
                gain = parent_gini - gini
                if best is None or gain > best[2]:
                    best = (int(feature), float((xs[i] + xs[i + 1]) / 2.0), gain)
        if best is None or best[2] <= 1e-12:
            return None
        return best

    # -- inference ----------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        """Most probable class per row of ``X``."""
        return np.argmax(self.predict_proba(X), axis=1)

    def predict_proba(self, X) -> np.ndarray:
        """Leaf class distributions per row of ``X``."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(f"X must be 2-D with {self.n_features_} features")
        out = np.zeros((X.shape[0], self._n_classes))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold \
                    else node.right
            out[i] = node.proba
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return walk(self._root)
