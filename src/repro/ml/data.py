"""Dataset utilities: teacher-set generation, splitting, standardisation.

:func:`teacher_dataset` is the training-set generator for the ML-guided
policy: it runs the greedy optimizer (the "teacher") over a list of
designs and returns every clock wire's default-state features with the
rule the teacher finally assigned.  Generation is a small run matrix —
one all-NDR reference plus one teacher run per design — so it goes
through the same artifact store as the flow runner (shared builds) and
fans out over worker processes with ``jobs > 1``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def _teacher_job(design, tech, targets, store_root: Optional[str]):
    """One design's (X, y) teacher samples (runs in a worker process)."""
    # Imports are local: repro.ml must stay importable without pulling
    # the whole flow stack (repro.core imports repro.ml.forest).
    from repro.core.evaluation import targets_from_reference
    from repro.core.flow import run_flow
    from repro.core.mlguide import collect_teacher_samples
    from repro.core.policies import Policy
    from repro.io.artifacts import ArtifactStore

    store = ArtifactStore(store_root) if store_root else None
    if targets is None:
        # Peg the teacher's budgets to the design's own all-NDR
        # reference — the same protocol evaluation uses — so the
        # learned labels transfer.
        reference = run_flow(design, tech, policy=Policy.ALL_NDR,
                             store=store)
        targets = targets_from_reference(reference.analyses, tech)
    return collect_teacher_samples(design, tech, targets, store=store)


def _materialize_designs(designs: Sequence) -> list:
    """Live design objects pass through; strings resolve as corpus refs.

    A string entry may be an exact corpus name, a glob, a
    ``family:NAME`` selector, or a design JSON path — the same grammar
    :class:`~repro.runner.RunMatrix` accepts.
    """
    from repro.runner import expand_design_refs, resolve_design

    out = []
    for item in designs:
        if isinstance(item, str):
            out.extend(resolve_design(ref)
                       for ref in expand_design_refs((item,)))
        else:
            out.append(item)
    return out


def teacher_dataset(designs: Sequence, tech=None, targets=None,
                    jobs: int = 1,
                    store=None) -> tuple[np.ndarray, np.ndarray]:
    """Stacked (X, y) of the greedy teacher's decisions over ``designs``.

    Parameters
    ----------
    designs:
        Placed :class:`~repro.netlist.design.Design` objects, corpus
        refs (names, globs, ``family:NAME`` selectors, JSON paths), or
        a mix; refs materialise through the corpus registry.
    targets:
        Fixed budgets for every design; ``None`` pegs each design to
        its own all-NDR reference.
    jobs:
        Worker processes; each design's reference + teacher run is one
        job (designs are independent, so this parallelises cleanly).
    store:
        Optional :class:`~repro.io.artifacts.ArtifactStore` (or path)
        shared with the flow runner: the reference build is then reused
        rather than re-synthesised per invocation.
    """
    if not designs:
        raise ValueError("need at least one training design")
    designs = _materialize_designs(designs)
    if tech is None:
        from repro.tech import default_technology
        tech = default_technology()
    store_root = None
    if store is not None:
        store_root = str(getattr(store, "root", store))
    if jobs > 1 and len(designs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
                max_workers=min(jobs, len(designs))) as pool:
            pairs = list(pool.map(_teacher_job, designs,
                                  [tech] * len(designs),
                                  [targets] * len(designs),
                                  [store_root] * len(designs)))
    else:
        pairs = [_teacher_job(d, tech, targets, store_root)
                 for d in designs]
    xs, ys = zip(*pairs)
    return np.vstack(xs), np.concatenate(ys)


def train_test_split(X, y, test_fraction: float = 0.25,
                     seed: int = 0) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray, np.ndarray]:
    """Shuffle and split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y length mismatch")
    rng = np.random.default_rng(seed)
    order = rng.permutation(X.shape[0])
    n_test = max(1, int(round(X.shape[0] * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    if train_idx.size == 0:
        raise ValueError("split leaves no training samples")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class Standardizer:
    """Per-feature zero-mean unit-variance scaling (fit on train only)."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X) -> "Standardizer":
        """Learn per-feature mean and standard deviation from ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std <= 0.0] = 1.0  # constant features pass through centred
        self.std_ = std
        return self

    def transform(self, X) -> np.ndarray:
        """Standardize ``X`` with the fitted statistics."""
        if self.mean_ is None:
            raise RuntimeError("standardizer is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.std_

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return it standardized."""
        return self.fit(X).transform(X)
