"""Dataset utilities: splitting and standardisation."""

from __future__ import annotations

from typing import Optional

import numpy as np


def train_test_split(X, y, test_fraction: float = 0.25,
                     seed: int = 0) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray, np.ndarray]:
    """Shuffle and split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y length mismatch")
    rng = np.random.default_rng(seed)
    order = rng.permutation(X.shape[0])
    n_test = max(1, int(round(X.shape[0] * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    if train_idx.size == 0:
        raise ValueError("split leaves no training samples")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class Standardizer:
    """Per-feature zero-mean unit-variance scaling (fit on train only)."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X) -> "Standardizer":
        """Learn per-feature mean and standard deviation from ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValueError("X must be a non-empty 2-D array")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std <= 0.0] = 1.0  # constant features pass through centred
        self.std_ = std
        return self

    def transform(self, X) -> np.ndarray:
        """Standardize ``X`` with the fitted statistics."""
        if self.mean_ is None:
            raise RuntimeError("standardizer is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.std_

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return it standardized."""
        return self.fit(X).transform(X)
