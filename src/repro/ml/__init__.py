"""From-scratch machine-learning substrate (no sklearn dependency).

Substrate S12 in DESIGN.md.  Provides exactly what the ML-guided rule
assignment (:mod:`repro.core.mlguide`) needs:

* :class:`~repro.ml.tree.DecisionTreeClassifier` — CART with Gini
  impurity,
* :class:`~repro.ml.forest.RandomForestClassifier` — bagged CART trees
  with feature subsampling,
* :class:`~repro.ml.logistic.LogisticRegression` — L2-regularised,
  gradient-descent trained,
* :mod:`repro.ml.metrics` — accuracy/precision/recall/F1/confusion,
* :mod:`repro.ml.data` — train/test split, standardisation.
"""

from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (accuracy, precision, recall, f1_score,
                              confusion_matrix)
from repro.ml.data import teacher_dataset, train_test_split, Standardizer

__all__ = [
    "teacher_dataset",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "LogisticRegression",
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_matrix",
    "train_test_split",
    "Standardizer",
]
