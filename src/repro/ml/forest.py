"""Random forest: bagged CART trees with feature subsampling."""

from __future__ import annotations

import math

import numpy as np

from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bagging ensemble of :class:`DecisionTreeClassifier`.

    Each tree trains on a bootstrap sample and considers
    ``sqrt(n_features)`` features per split (the standard default).
    Probabilities are the average of tree leaf distributions.
    """

    def __init__(self, n_trees: int = 25, max_depth: int = 10,
                 min_samples_leaf: int = 3, seed: int = 0) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] = []
        self.n_features_: int = 0

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit the ensemble on bootstrap samples of (X, y)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D and aligned with y")
        rng = np.random.default_rng(self.seed)
        n, self.n_features_ = X.shape
        max_features = max(1, int(math.sqrt(self.n_features_)))
        self.trees_ = []
        for _ in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=rng,
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities averaged over the ensemble."""
        if not self.trees_:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        # Trees may disagree on class count if a bootstrap missed the
        # top class; pad to the widest.
        probs = [t.predict_proba(X) for t in self.trees_]
        width = max(p.shape[1] for p in probs)
        acc = np.zeros((X.shape[0], width))
        for p in probs:
            acc[:, :p.shape[1]] += p
        return acc / len(probs)

    def predict(self, X) -> np.ndarray:
        """Majority-probability class per row of ``X``."""
        return np.argmax(self.predict_proba(X), axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("classifier is not fitted")
        return np.mean([t.feature_importances_ for t in self.trees_], axis=0)
