"""JSON serialization for the from-scratch classifiers.

Training the NDR guide costs several greedy optimizer runs; a team
wants to train once and ship the model.  Trees serialise to nested
dicts; the forest adds its hyperparameters; the round trip is exact
(identical predictions), which the tests pin down.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier, _Node

FOREST_SCHEMA = 1


def _node_to_dict(node: Optional[_Node]) -> Optional[dict]:
    if node is None:
        return None
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "prediction": node.prediction,
        "proba": None if node.proba is None else [float(p)
                                                  for p in node.proba],
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(data: Optional[dict]) -> Optional[_Node]:
    if data is None:
        return None
    return _Node(
        feature=data["feature"],
        threshold=data["threshold"],
        prediction=data["prediction"],
        proba=None if data["proba"] is None else np.asarray(data["proba"]),
        left=_node_from_dict(data["left"]),
        right=_node_from_dict(data["right"]),
    )


def tree_to_dict(tree: DecisionTreeClassifier) -> dict:
    """Serialise a fitted CART tree."""
    if tree._root is None:
        raise ValueError("cannot serialise an unfitted tree")
    return {
        "max_depth": tree.max_depth,
        "min_samples_leaf": tree.min_samples_leaf,
        "n_classes": tree._n_classes,
        "n_features": tree.n_features_,
        "importances": [float(v) for v in tree.feature_importances_],
        "root": _node_to_dict(tree._root),
    }


def tree_from_dict(data: dict) -> DecisionTreeClassifier:
    """Rebuild a CART tree from :func:`tree_to_dict` output."""
    tree = DecisionTreeClassifier(max_depth=data["max_depth"],
                                  min_samples_leaf=data["min_samples_leaf"])
    tree._n_classes = data["n_classes"]
    tree.n_features_ = data["n_features"]
    tree.feature_importances_ = np.asarray(data["importances"])
    tree._root = _node_from_dict(data["root"])
    return tree


def forest_to_dict(forest: RandomForestClassifier) -> dict:
    """Serialise a fitted random forest."""
    if not forest.trees_:
        raise ValueError("cannot serialise an unfitted forest")
    return {
        "schema": FOREST_SCHEMA,
        "n_trees": forest.n_trees,
        "max_depth": forest.max_depth,
        "min_samples_leaf": forest.min_samples_leaf,
        "seed": forest.seed,
        "n_features": forest.n_features_,
        "trees": [tree_to_dict(tree) for tree in forest.trees_],
    }


def forest_from_dict(data: dict) -> RandomForestClassifier:
    """Rebuild a random forest from :func:`forest_to_dict` output."""
    if data.get("schema") != FOREST_SCHEMA:
        raise ValueError(f"unsupported forest schema {data.get('schema')!r}")
    forest = RandomForestClassifier(
        n_trees=data["n_trees"], max_depth=data["max_depth"],
        min_samples_leaf=data["min_samples_leaf"], seed=data["seed"])
    forest.n_features_ = data["n_features"]
    forest.trees_ = [tree_from_dict(t) for t in data["trees"]]
    return forest
