"""L2-regularised logistic regression trained by batch gradient descent."""

from __future__ import annotations

from typing import Optional

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() in range; gradients saturate anyway out there.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression:
    """Binary logistic regression.

    Expects standardized features (see :class:`repro.ml.data.Standardizer`)
    for sensible convergence at the default learning rate.
    """

    def __init__(self, learning_rate: float = 0.1, n_iterations: int = 500,
                 l2: float = 1e-3) -> None:  # static: ok[U002] regularizer hyper-parameter
        if learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if l2 < 0.0:
            raise ValueError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0

    def fit(self, X, y) -> "LogisticRegression":
        """Train weights by batch gradient descent on (X, y)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be 2-D and aligned with y")
        if not np.all((y == 0) | (y == 1)):
            raise ValueError("labels must be binary (0/1)")
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iterations):
            p = _sigmoid(X @ w + b)
            err = p - y
            grad_w = X.T @ err / n + self.l2 * w
            grad_b = float(err.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights_ = w
        self.bias_ = b
        return self

    def predict_proba(self, X) -> np.ndarray:
        """(P(class 0), P(class 1)) per row of ``X``."""
        if self.weights_ is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        p1 = _sigmoid(X @ self.weights_ + self.bias_)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        """Class labels at the 0.5 probability threshold."""
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(int)
