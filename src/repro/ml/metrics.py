"""Classification metrics."""

from __future__ import annotations

import numpy as np


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    yt = np.asarray(y_true, dtype=int)
    yp = np.asarray(y_pred, dtype=int)
    if yt.shape != yp.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if yt.size == 0:
        raise ValueError("empty label arrays")
    return yt, yp


def accuracy(y_true, y_pred) -> float:
    """Fraction of predictions matching the labels."""
    yt, yp = _validate(y_true, y_pred)
    return float(np.mean(yt == yp))


def precision(y_true, y_pred, positive: int = 1) -> float:
    """Fraction of predicted positives that are true positives (1.0 if none predicted)."""
    yt, yp = _validate(y_true, y_pred)
    predicted = yp == positive
    if not predicted.any():
        return 1.0
    return float(np.mean(yt[predicted] == positive))


def recall(y_true, y_pred, positive: int = 1) -> float:
    """Fraction of actual positives found (1.0 if no actual positives)."""
    yt, yp = _validate(y_true, y_pred)
    actual = yt == positive
    if not actual.any():
        return 1.0
    return float(np.mean(yp[actual] == positive))


def f1_score(y_true, y_pred, positive: int = 1) -> float:
    """Harmonic mean of precision and recall (0 when both absent)."""
    p = precision(y_true, y_pred, positive)
    r = recall(y_true, y_pred, positive)
    if p + r <= 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """Square matrix with true classes as rows, predicted as columns."""
    yt, yp = _validate(y_true, y_pred)
    k = int(max(yt.max(), yp.max())) + 1
    matrix = np.zeros((k, k), dtype=int)
    for t, p in zip(yt, yp):
        matrix[t, p] += 1
    return matrix
