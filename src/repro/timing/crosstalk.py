"""Coupling-induced delta delay on clock sinks.

Model: a victim clock edge switching while an adjacent aggressor
switches the opposite way sees the coupling capacitance Miller-doubled.
The nominal analysis already counts each coupling cap once (quiet
aggressor = grounded); the *extra* capacitance under opposing switching
is therefore ``+1 x Cc``, and by Elmore linearity the resulting delta
delay at a sink is

    dd(sink) = sum_v dC_v * (r_drive + R_shared(v, sink))

where ``R_shared`` is the resistance common to the paths from the stage
driver to the coupling site ``v`` and to the sink.

Two aggregations are reported per flop:

* **worst**: every aggressor switches against the victim in the same
  cycle (the bounding analysis signoff uses), and
* **expected**: each aggressor weighted by its toggle activity and an
  alignment probability (how often its transition lands inside the
  clock edge's timing window).

Delta delay accumulates down the stage chain: a shift on a buffer input
shifts every flop below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Annotated

from repro.extract.capmodel import WireParasitics
from repro.extract.rcnetwork import ClockRcNetwork, Stage
from repro.netlist.cell import Pin
from repro.timing.arrival import ClockTiming
from repro.units import Dim


@dataclass
class SinkDelta:
    """Crosstalk exposure of one flop clock pin."""

    pin: Pin
    worst: float      # ps, all aggressors opposing
    expected: float   # ps, activity- and alignment-weighted


@dataclass
class CrosstalkReport:
    """Delta-delay analysis of one clock network."""

    sinks: list[SinkDelta] = field(default_factory=list)
    alignment: float = 0.5

    @property
    def worst_delta(self) -> float:
        return max((s.worst for s in self.sinks), default=0.0)

    @property
    def mean_worst_delta(self) -> float:
        if not self.sinks:
            return 0.0
        return sum(s.worst for s in self.sinks) / len(self.sinks)

    def degraded_skew(self, timing: ClockTiming) -> float:
        """Worst-case skew with crosstalk, ps.

        Opposing aggressors can slow the latest sink down and (switching
        in-phase) speed the earliest sink up by a comparable amount, so
        both tails widen.
        """
        by_pin = {s.pin.full_name: s for s in self.sinks}
        late = max(t.arrival + by_pin[t.pin.full_name].worst
                   for t in timing.sinks)
        early = min(t.arrival - by_pin[t.pin.full_name].worst
                    for t in timing.sinks)
        return late - early


def _stage_deltas(stage: Stage, parasitics: dict[int, WireParasitics],
                  alignment: float) -> list[tuple[float, float]]:
    """(worst, expected) delta delay for each stage sink, in sink order."""
    nodes = stage.nodes
    # Coupling capacitance injected at each RC node: half of each
    # incident wire's aggressor coupling lands on each of its two ends.
    worst_c = [0.0] * len(nodes)
    exp_c = [0.0] * len(nodes)
    for node in nodes:
        for wire_id, _c_area, _c_rest in node.cap_wire:
            para = parasitics[wire_id]
            worst_c[node.idx] += para.cc_signal / 2.0
            exp_c[node.idx] += sum(e.cc * e.activity for e in para.couplings) \
                * alignment / 2.0

    # Resistance from the driver to each node (driver resistance is
    # common to every path and charged separately below).
    r_path = [0.0] * len(nodes)
    for node in nodes:
        if node.parent is not None:
            r_path[node.idx] = r_path[node.parent] + node.r

    r_drive = stage.driver.r_drive
    results: list[tuple[float, float]] = []
    for sink in stage.sinks:
        on_path = [False] * len(nodes)
        for idx in stage.path_to_root(sink.node_idx):
            on_path[idx] = True
        # meet[v]: deepest ancestor of v that lies on the sink path.
        meet = [0] * len(nodes)
        for node in nodes:  # topo order: parent before child
            if on_path[node.idx]:
                meet[node.idx] = node.idx
            elif node.parent is not None:
                meet[node.idx] = meet[node.parent]
        worst = 0.0
        expected = 0.0
        for node in nodes:
            shared = r_drive + r_path[meet[node.idx]]
            worst += worst_c[node.idx] * shared
            expected += exp_c[node.idx] * shared
        results.append((worst, expected))
    return results


def window_alignment(victim_window: tuple, aggressor_window,
                     clock_period: Annotated[float, Dim.TIME],
                     activity: float) -> float:
    """Probability an aggressor transition lands in the victim's window.

    The aggressor toggles with ``activity`` per cycle, uniformly within
    its switching window (or the whole cycle when it has none); only
    transitions inside the victim clock edge's sensitivity window
    ``(v_lo, v_hi)`` disturb the edge.
    """
    v_lo, v_hi = victim_window
    if aggressor_window is None:
        a_lo, a_hi = 0.0, clock_period
    else:
        a_lo, a_hi = aggressor_window
    width = a_hi - a_lo
    if width <= 0.0:
        return 0.0
    overlap = max(0.0, min(v_hi, a_hi) - max(v_lo, a_lo))
    return activity * min(1.0, overlap / width)


def analyze_crosstalk_windows(network: ClockRcNetwork,
                              parasitics: dict[int, WireParasitics],
                              timing,
                              clock_period: Annotated[float, Dim.TIME],
                              sensitivity: float = 0.0) -> CrosstalkReport:
    """Window-pruned crosstalk analysis.

    Like :func:`analyze_crosstalk`, but the *expected* delta delay
    weights each aggressor by the probability its transition actually
    lands inside the victim clock edge's sensitivity window (centered at
    the flop's arrival, width = ``sensitivity`` or the sink's slew) —
    the timing-window pruning signoff tools apply.  Worst-case numbers
    are identical to the unpruned analysis by construction.

    ``timing`` is a :class:`~repro.timing.arrival.ClockTiming` of the
    same network.
    """
    if clock_period <= 0.0:
        raise ValueError("clock period must be positive")
    slew_of = {s.pin.full_name: s.slew for s in timing.sinks}
    arrival_of = {s.pin.full_name: s.arrival for s in timing.sinks}

    # Stage parents and the via node each chain hop passes through.
    parent_of: dict[int, tuple[int, int]] = {}
    for idx, stage in enumerate(network.stages):
        for sink in stage.sinks:
            if sink.next_stage_tree_id is not None:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                parent_of[child] = (idx, sink.node_idx)

    report = CrosstalkReport(alignment=1.0)
    base = analyze_crosstalk(network, parasitics, alignment=1.0)
    worst_of = {s.pin.full_name: s.worst for s in base.sinks}

    for stage_idx, flop in network.flop_sinks():
        pin = flop.sink_pin.full_name
        width = sensitivity if sensitivity > 0.0 else \
            max(slew_of[pin], 1.0)
        arrival = arrival_of[pin] % clock_period
        victim = (arrival - width / 2.0, arrival + width / 2.0)

        expected = 0.0
        idx, via = stage_idx, flop.node_idx
        while True:
            stage = network.stages[idx]
            expected += _stage_expected_for_sink(
                stage, parasitics, via, victim, clock_period)
            if idx not in parent_of:
                break
            idx, via = parent_of[idx]
        report.sinks.append(SinkDelta(pin=flop.sink_pin,
                                      worst=worst_of[pin],
                                      expected=expected))
    return report


def _stage_expected_for_sink(stage: Stage,
                             parasitics: dict[int, WireParasitics],
                             via_node: int, victim_window: tuple,
                             clock_period: float) -> float:
    """Window-weighted expected delta of one stage toward ``via_node``."""
    nodes = stage.nodes
    r_path = [0.0] * len(nodes)
    for node in nodes:
        if node.parent is not None:
            r_path[node.idx] = r_path[node.parent] + node.r
    on_path = [False] * len(nodes)
    for idx in stage.path_to_root(via_node):
        on_path[idx] = True
    meet = [0] * len(nodes)
    for node in nodes:
        if on_path[node.idx]:
            meet[node.idx] = node.idx
        elif node.parent is not None:
            meet[node.idx] = meet[node.parent]
    r_drive = stage.driver.r_drive
    expected = 0.0
    for node in nodes:
        shared = r_drive + r_path[meet[node.idx]]
        for wire_id, _ca, _cr in node.cap_wire:
            for entry in parasitics[wire_id].couplings:
                p = window_alignment(victim_window, entry.window,
                                     clock_period, entry.activity)
                expected += (entry.cc / 2.0) * shared * p
    return expected


def analyze_crosstalk(network: ClockRcNetwork,
                      parasitics: dict[int, WireParasitics],
                      alignment: float = 0.5) -> CrosstalkReport:
    """Compute per-flop delta delays over the whole clock network."""
    if not 0.0 <= alignment <= 1.0:
        raise ValueError(f"alignment must be in [0, 1], got {alignment}")
    report = CrosstalkReport(alignment=alignment)
    # (stage idx, accumulated worst, accumulated expected)
    work: list[tuple[int, float, float]] = [(network.root_stage, 0.0, 0.0)]
    while work:
        stage_idx, acc_w, acc_e = work.pop()
        stage = network.stages[stage_idx]
        deltas = _stage_deltas(stage, parasitics, alignment)
        for sink, (worst, expected) in zip(stage.sinks, deltas):
            if sink.is_flop:
                report.sinks.append(SinkDelta(
                    pin=sink.sink_pin,
                    worst=acc_w + worst,
                    expected=acc_e + expected,
                ))
            else:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                work.append((child, acc_w + worst, acc_e + expected))
    return report
