"""Static clock timing: per-sink arrival times and slews over the stage network.

Two delay models are supported:

* ``"elmore"`` (default) — the first moment; additive, monotone, the
  model every optimization decision uses.
* ``"d2m"`` — the two-moment D2M estimate (Alpert et al.), which
  tightens Elmore's pessimism on resistive paths.  Offered for accuracy
  studies (see ``benchmarks/bench_table5_delaymodel.py``); rule
  assignment deliberately stays on Elmore, whose monotonicity the
  greedy relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Annotated

from repro.extract.rcnetwork import ClockRcNetwork
from repro.netlist.cell import Pin
from repro.tech.technology import Technology
from repro.timing.elmore import d2m_correction, stage_moments
from repro.timing.slew import propagate_slew
from repro.units import Dim


@dataclass
class SinkTiming:
    """Arrival and slew at one flop clock pin."""

    pin: Pin
    arrival: float  # ps from the clock source edge
    slew: float     # ps


@dataclass
class ClockTiming:
    """Full static-timing picture of one clock network."""

    sinks: list[SinkTiming] = field(default_factory=list)
    #: per-stage driver load capacitance, fF (stage index order)
    stage_loads: list[float] = field(default_factory=list)
    #: per-stage driver delay, ps
    stage_delays: list[float] = field(default_factory=list)
    max_slew_limit: float = 0.0

    @property
    def arrivals(self) -> list[float]:
        return [s.arrival for s in self.sinks]

    @property
    def latency(self) -> Annotated[float, Dim.TIME]:
        """Maximum source-to-sink insertion delay, ps."""
        return max(s.arrival for s in self.sinks)

    @property
    def skew(self) -> Annotated[float, Dim.TIME]:
        """Global skew: max minus min arrival, ps."""
        arr = self.arrivals
        return max(arr) - min(arr)

    @property
    def worst_slew(self) -> float:
        return max(s.slew for s in self.sinks)

    @property
    def slew_violations(self) -> int:
        return sum(1 for s in self.sinks if s.slew > self.max_slew_limit)

    def arrival_of(self, pin_name: str) -> float:
        """Arrival time of the named sink pin (KeyError if absent)."""
        for s in self.sinks:
            if s.pin.full_name == pin_name:
                return s.arrival
        raise KeyError(f"no sink pin named {pin_name!r}")


def analyze_clock_timing(network: ClockRcNetwork, tech: Technology,
                         delay_model: str = "elmore") -> ClockTiming:
    """Propagate arrivals and slews from the clock source to every flop.

    Per stage, the driver contributes ``d_intrinsic + r_drive * C_stage``
    and the wire tree adds its per-sink delay under ``delay_model``
    ("elmore" or "d2m"); slews compose by the PERI rule.  Stage entry
    time/slew feed the next stage at each buffer-input sink.
    """
    if delay_model not in ("elmore", "d2m"):
        raise ValueError(f"unknown delay model {delay_model!r}; "
                         "expected 'elmore' or 'd2m'")
    timing = ClockTiming(max_slew_limit=tech.max_slew)
    timing.stage_loads = [0.0] * len(network.stages)
    timing.stage_delays = [0.0] * len(network.stages)

    # (stage index, entry arrival) — entry is when the stage driver's
    # input switches; the driver's own delay is charged inside.
    work: list[tuple[int, float]] = [(network.root_stage, 0.0)]
    while work:
        stage_idx, entry = work.pop()
        stage = network.stages[stage_idx]
        down = stage.downstream_caps()
        total_cap = down[0]
        driver_delay = stage.driver.delay(total_cap)
        driver_slew = stage.driver.output_slew(total_cap)
        timing.stage_loads[stage_idx] = total_cap
        timing.stage_delays[stage_idx] = driver_delay

        for sink in stage.sinks:
            elmore = 0.0
            for idx in stage.path_to_root(sink.node_idx):
                node = stage.nodes[idx]
                if node.parent is not None:
                    elmore += node.r * down[idx]
            if delay_model == "d2m":
                # D2M replaces the (driver-R + wire) RC portion; the
                # driver's intrinsic delay stays load-independent.
                m1, m2 = stage_moments(stage, sink.node_idx,
                                       stage.driver.r_drive)
                rc_delay = min(d2m_correction(m1, m2), m1)
                t = entry + stage.driver.d_intrinsic + rc_delay
            else:
                t = entry + driver_delay + elmore
            if sink.is_flop:
                timing.sinks.append(SinkTiming(
                    pin=sink.sink_pin,
                    arrival=t,
                    slew=propagate_slew(driver_slew, elmore),
                ))
            else:
                child_stage = network.stage_of_tree_node[sink.next_stage_tree_id]
                work.append((child_stage, t))
    return timing
