"""Clock timing analysis: Elmore delay, slew, skew, crosstalk, Monte Carlo.

Substrate S7 in DESIGN.md.

* :mod:`repro.timing.elmore` — RC-tree delay primitives (Elmore, D2M).
* :mod:`repro.timing.slew` — slew propagation (PERI-style).
* :mod:`repro.timing.arrival` — static analysis over the stage network:
  per-sink arrival times and slews.
* :mod:`repro.timing.skew` — skew metrics over arrival times.
* :mod:`repro.timing.crosstalk` — coupling-induced delta delay and the
  crosstalk-degraded skew.
* :mod:`repro.timing.montecarlo` — vectorised process-variation engine.
"""

from repro.timing.elmore import wire_elmore, d2m_correction
from repro.timing.arrival import ClockTiming, analyze_clock_timing
from repro.timing.skew import global_skew, local_skew, latency_range
from repro.timing.crosstalk import CrosstalkReport, analyze_crosstalk
from repro.timing.montecarlo import MonteCarloResult, run_monte_carlo
from repro.timing.corners import CornerReport, analyze_corners, corner_timing

__all__ = [
    "CornerReport",
    "analyze_corners",
    "corner_timing",
    "wire_elmore",
    "d2m_correction",
    "ClockTiming",
    "analyze_clock_timing",
    "global_skew",
    "local_skew",
    "latency_range",
    "CrosstalkReport",
    "analyze_crosstalk",
    "MonteCarloResult",
    "run_monte_carlo",
]
