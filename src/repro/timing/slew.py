"""Slew (transition time) propagation.

We use the PERI square-root composition rule: the transition at the end
of an RC path is the RSS of the driver's output transition and the
wire's own step response spread, with the latter approximated by the
standard ``ln 9 * Elmore`` (10/90) metric:

    slew_sink^2 = slew_driver^2 + (ln 9 * elmore_wire)^2

This is the composition commercial timers reduce to at first order, and
it is monotone in the wire Elmore — which is the property rule
assignment relies on (wider wire -> lower R -> sharper edge).
"""

from __future__ import annotations

import math
from typing import Annotated

import numpy as np

from repro.units import Dim

LN9: float = math.log(9.0)


def wire_slew(elmore: Annotated[float, Dim.TIME],
              ) -> Annotated[float, Dim.TIME]:
    """10/90 step-response transition of a wire path with ``elmore`` delay."""
    if elmore < 0.0:
        raise ValueError("Elmore delay must be non-negative")
    return LN9 * elmore

def propagate_slew(driver_slew: Annotated[float, Dim.TIME],
                   elmore: Annotated[float, Dim.TIME],
                   ) -> Annotated[float, Dim.TIME]:
    """Transition time at the end of a wire path (PERI composition), ps."""
    if driver_slew < 0.0:
        raise ValueError("driver slew must be non-negative")
    w = wire_slew(elmore)
    return math.sqrt(driver_slew * driver_slew + w * w)


def propagate_slew_array(driver_slew: np.ndarray,
                         elmore: np.ndarray) -> np.ndarray:
    """Vectorised :func:`propagate_slew` over matched per-sink arrays.

    Issues the same float operations elementwise (``np.sqrt`` matches
    ``math.sqrt`` bit for bit on float64), so batched results equal the
    scalar path exactly.
    """
    if driver_slew.size and float(driver_slew.min()) < 0.0:
        raise ValueError("driver slew must be non-negative")
    if elmore.size and float(elmore.min()) < 0.0:
        raise ValueError("Elmore delay must be non-negative")
    w = LN9 * elmore
    return np.sqrt(driver_slew * driver_slew + w * w)
