"""Skew metrics over per-sink arrival times."""

from __future__ import annotations

from typing import Annotated

from repro.timing.arrival import ClockTiming
from repro.units import Dim


def global_skew(timing: ClockTiming) -> Annotated[float, Dim.TIME]:
    """Max minus min arrival over all sinks, ps."""
    return timing.skew


def latency_range(timing: ClockTiming) -> tuple[float, float]:
    """(min, max) source-to-sink insertion delay, ps."""
    arrivals = timing.arrivals
    return min(arrivals), max(arrivals)


def local_skew(timing: ClockTiming,
               radius: Annotated[float, Dim.LENGTH],
               ) -> Annotated[float, Dim.TIME]:
    """Worst skew between sink pairs within ``radius`` um of each other.

    Local skew is the metric that actually constrains short register-to-
    register paths; it is always <= global skew.  O(n^2) over sinks —
    adequate for analysis reporting (not used in optimization loops).
    """
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    worst = 0.0
    sinks = timing.sinks
    for i in range(len(sinks)):
        pi = sinks[i].pin.location
        for j in range(i + 1, len(sinks)):
            pj = sinks[j].pin.location
            if pi.manhattan_to(pj) <= radius:
                worst = max(worst, abs(sinks[i].arrival - sinks[j].arrival))
    return worst
