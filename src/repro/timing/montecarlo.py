"""Vectorised Monte-Carlo process-variation analysis of clock skew.

Variation sources (see :class:`repro.tech.variation.VariationModel`):

* **Wire width** — one Gaussian draw per spatial-correlation cell per
  sample, scaled by the layer's default width.  A wire's *relative*
  width noise is the absolute noise divided by its drawn width, so NDR
  (2x) wires see half the relative noise — the physical mechanism that
  makes NDR tighten the skew distribution.  Width noise moves R
  inversely and the area part of C proportionally.
* **Wire thickness** — per-cell draw, moves R inversely.
* **Buffer delay** — a die-to-die component (one draw per sample,
  common to all buffers) plus a random per-stage component.

Everything is evaluated as NumPy vectors over samples; the per-sample
work is the same stage walk the static timer does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.extract.capmodel import WireParasitics
from repro.extract.rcnetwork import ClockRcNetwork
from repro.route.router import RoutingResult
from repro.tech.technology import Technology


@dataclass
class MonteCarloResult:
    """Skew and latency distributions over process samples."""

    skew_samples: np.ndarray        # (n_samples,)
    latency_samples: np.ndarray     # (n_samples,)
    arrivals: np.ndarray            # (n_flops, n_samples)
    sink_names: list[str] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return int(self.skew_samples.shape[0])

    @property
    def mean_skew(self) -> float:
        return float(np.mean(self.skew_samples))

    @property
    def std_skew(self) -> float:
        return float(np.std(self.skew_samples))

    @property
    def skew_3sigma(self) -> float:
        """The mu + 3 sigma point of the skew distribution, ps."""
        return self.mean_skew + 3.0 * self.std_skew

    def skew_quantile(self, q: float) -> float:
        """The q-quantile of the skew samples, ps."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.skew_samples, q))

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latency_samples))

    def arrival_sigma(self) -> np.ndarray:
        """Per-sink arrival standard deviation, ps."""
        return np.std(self.arrivals, axis=1)


def _correlation_cells(routing: RoutingResult, corr_grid: float) -> dict[int, int]:
    """Map each clock wire id to a dense spatial-correlation cell index."""
    cell_ids: dict[tuple[int, int], int] = {}
    assignment: dict[int, int] = {}
    for wire in routing.clock_wires:
        mid = wire.segment.midpoint
        key = (int(mid.x // corr_grid), int(mid.y // corr_grid))
        if key not in cell_ids:
            cell_ids[key] = len(cell_ids)
        assignment[wire.wire_id] = cell_ids[key]
    return assignment


def wire_variation_factors(var, wire, z_cell_width: np.ndarray,
                           z_rand: np.ndarray, z_cell_thick: np.ndarray,
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample (area_scale, r_scale) factors of one wire.

    The relative width noise is the absolute noise normalised to the
    wire's drawn width, so wide (NDR) wires see proportionally less of
    it; width moves the area cap proportionally and R inversely, and
    thickness moves R inversely.  Shared by the batch Monte Carlo and
    the incremental engine so both produce bit-identical factors.
    """
    rel_w = ((z_cell_width * var.width_sigma
              + z_rand * var.width_rand_sigma)
             * wire.layer.min_width / wire.width)
    rel_t = z_cell_thick * var.thickness_sigma
    w_factor = np.clip(1.0 + rel_w, 0.3, None)
    t_factor = np.clip(1.0 + rel_t, 0.3, None)
    return w_factor, 1.0 / (w_factor * t_factor)


def run_monte_carlo(network: ClockRcNetwork,
                    parasitics: dict[int, WireParasitics],
                    routing: RoutingResult,
                    tech: Technology,
                    n_samples: int = 200,
                    seed: int = 1) -> MonteCarloResult:
    """Sample the skew distribution of one extracted clock network."""
    if n_samples < 2:
        raise ValueError("need at least 2 samples")
    var = tech.variation
    rng = np.random.default_rng(seed)

    cells = _correlation_cells(routing, var.corr_grid)
    n_cells = max(cells.values(), default=0) + 1
    z_width = rng.standard_normal((n_cells, n_samples))
    z_thick = rng.standard_normal((n_cells, n_samples))

    # Per-wire multiplicative factors: systematic (per correlation cell)
    # plus random per-wire width noise, both normalised to the layer's
    # default width so wide wires see proportionally less relative noise.
    area_scale: dict[int, np.ndarray] = {}
    r_scale: dict[int, np.ndarray] = {}
    for wire in routing.clock_wires:
        cell = cells[wire.wire_id]
        z_rand = rng.standard_normal(n_samples)
        w_factor, inv_rc = wire_variation_factors(
            var, wire, z_width[cell], z_rand, z_thick[cell])
        area_scale[wire.wire_id] = w_factor
        r_scale[wire.wire_id] = inv_rc

    # Buffer delay factors: die-to-die plus per-stage random.
    d2d = rng.standard_normal(n_samples) * var.buffer_d2d_sigma
    buf_scale = []
    for _stage in network.stages:
        rand = rng.standard_normal(n_samples) * var.buffer_rand_sigma
        buf_scale.append(np.clip(1.0 + d2d + rand, 0.3, None))

    arrivals: list[np.ndarray] = []
    sink_names: list[str] = []
    work: list[tuple[int, np.ndarray]] = [
        (network.root_stage, np.zeros(n_samples))]
    while work:
        stage_idx, entry = work.pop()
        stage = network.stages[stage_idx]
        n_nodes = len(stage.nodes)
        caps = np.zeros((n_nodes, n_samples))
        for node in stage.nodes:
            row = caps[node.idx]
            row += node.cap_fixed
            for wire_id, c_area, c_rest in node.cap_wire:
                row += c_area * area_scale[wire_id] + c_rest
        down = caps.copy()
        for node in reversed(stage.nodes):  # topo order: parents first
            if node.parent is not None:
                down[node.parent] += down[node.idx]
        total = down[0]
        driver = stage.driver
        driver_delay = (driver.d_intrinsic + driver.r_drive * total) \
            * buf_scale[stage_idx]

        for sink in stage.sinks:
            elmore = np.zeros(n_samples)
            for idx in stage.path_to_root(sink.node_idx):
                node = stage.nodes[idx]
                if node.parent is None:
                    continue
                if node.wire_id is not None:
                    elmore += node.r * r_scale[node.wire_id] * down[idx]
                else:
                    # Trim elements (root snakes) are variation-free.
                    elmore += node.r * down[idx]
            t = entry + driver_delay + elmore
            if sink.is_flop:
                arrivals.append(t)
                sink_names.append(sink.sink_pin.full_name)
            else:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                work.append((child, t))

    arr = np.vstack(arrivals)
    skew = arr.max(axis=0) - arr.min(axis=0)
    latency = arr.max(axis=0)
    return MonteCarloResult(
        skew_samples=skew,
        latency_samples=latency,
        arrivals=arr,
        sink_names=sink_names,
    )
