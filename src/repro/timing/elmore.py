"""RC-tree delay primitives.

The Elmore delay (first moment of the impulse response) is the workhorse
metric: it is additive along paths, monotone in every R and C, and
therefore exactly what an optimizer needs for *relative* decisions.
The D2M correction ("delay to mid-point", Alpert et al.) is provided for
accuracy studies — it tightens Elmore's pessimism on far sinks using the
second moment.
"""

from __future__ import annotations

import math
from typing import Annotated

from repro.extract.rcnetwork import Stage
from repro.units import Dim


def wire_elmore(r_per_um: Annotated[float, Dim.RESISTANCE_PER_LENGTH],
                c_per_um: Annotated[float, Dim.CAPACITANCE_PER_LENGTH],
                length: Annotated[float, Dim.LENGTH],
                c_load: Annotated[float, Dim.CAPACITANCE],
                ) -> Annotated[float, Dim.TIME]:
    """Elmore delay of a uniform distributed-RC line into ``c_load``, ps."""
    if length < 0.0:
        raise ValueError("length must be non-negative")
    return r_per_um * length * (c_per_um * length / 2.0 + c_load)


def stage_moments(stage: Stage, node_idx: int,
                  r_drive: Annotated[float, Dim.RESISTANCE],
                  ) -> tuple[float, float]:
    """First and second moments (m1, m2) from driver to ``node_idx``.

    ``m1`` is the Elmore delay including the driver resistance; ``m2``
    uses the standard recursive moment computation
    ``m2(sink) = sum_k R_shared(k, sink) * C_k * m1(k)``.
    """
    down = stage.downstream_caps()
    # m1 per node (driver resistance charges everything).
    m1 = [0.0] * len(stage.nodes)
    total_cap = down[0]
    for node in stage.nodes:
        if node.parent is None:
            m1[node.idx] = r_drive * total_cap
        else:
            m1[node.idx] = m1[node.parent] + node.r * down[node.idx]

    # Shared resistance between the paths to `node` and to `node_idx` is
    # the resistance of their common prefix.  Nodes are stored parents
    # first, so one top-down pass suffices: an edge contributes to the
    # running prefix only while the walk is still on the target's path —
    # once it leaves, no deeper edge can be shared again.
    path = set(stage.path_to_root(node_idx))
    shared = [0.0] * len(stage.nodes)
    m2 = 0.0
    for node in stage.nodes:
        if node.parent is None:
            shared[node.idx] = r_drive
        else:
            shared[node.idx] = shared[node.parent] \
                + (node.r if node.idx in path else 0.0)
        m2 += shared[node.idx] * node.cap_nominal * m1[node.idx]
    return m1[node_idx], m2


def d2m_correction(m1: Annotated[float, Dim.TIME],
                   m2: float) -> Annotated[float, Dim.TIME]:
    """D2M delay estimate from the first two moments, ps.

    ``D2M = (m1^2 / sqrt(m2)) * ln 2``; falls back to Elmore when the
    moments degenerate (very small nets).
    """
    if m2 <= 0.0 or m1 <= 0.0:
        return m1 * math.log(2.0) if m1 > 0.0 else 0.0
    return (m1 * m1 / math.sqrt(m2)) * math.log(2.0)
