"""Advanced on-chip-variation (AOCV) derated skew.

Flat OCV derates every path by a fixed early/late factor; AOCV
recognises that random stage variation averages out along deep paths,
so the derate *per stage* shrinks with path depth:

    derate(depth) = 1 +/- base / sqrt(depth)

The derated skew is the classic signoff pessimism metric: the latest
sink timed with every stage late against the earliest sink timed with
every stage early,

    skew_ocv = max_i late(i) - min_j early(j)

computed over the buffered stage chain (each stage's driver delay and
wire Elmore derated by the sink's chain depth).  Compare with the
Monte-Carlo skew: AOCV is the tractable bound, MC the reference — the
gap between them is the cost of graph-based pessimism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.extract.rcnetwork import ClockRcNetwork
from repro.tech.technology import Technology


@dataclass(frozen=True)
class OcvDerates:
    """AOCV derate magnitudes (1-sigma-like base factors).

    ``base`` is the per-stage late/early fraction at depth 1; with
    ``aocv`` enabled it shrinks as ``base / sqrt(depth)``; otherwise it
    applies flat (classic OCV).
    """

    base: float = 0.05
    aocv: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.base < 0.5:
            raise ValueError(f"derate base must be in [0, 0.5), got "
                             f"{self.base}")

    def late(self, depth: int) -> float:
        """Multiplier for the late path at chain depth ``depth``."""
        return 1.0 + self._effective(depth)

    def early(self, depth: int) -> float:
        """Multiplier for the early path at chain depth ``depth``."""
        return 1.0 - self._effective(depth)

    def _effective(self, depth: int) -> float:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if not self.aocv:
            return self.base
        return self.base / math.sqrt(depth)


@dataclass
class OcvReport:
    """Derated arrival bounds and the resulting skew."""

    late_arrivals: dict[str, float]
    early_arrivals: dict[str, float]
    nominal_skew: float

    @property
    def skew_ocv(self) -> float:
        """max(late) - min(early): the derated signoff skew, ps."""
        return max(self.late_arrivals.values()) \
            - min(self.early_arrivals.values())

    @property
    def pessimism(self) -> float:
        """How much derating added over the nominal skew, ps."""
        return self.skew_ocv - self.nominal_skew


def analyze_ocv(network: ClockRcNetwork, tech: Technology,
                derates: OcvDerates = OcvDerates()) -> OcvReport:
    """Compute derated early/late arrivals over the stage network."""
    late: dict[str, float] = {}
    early: dict[str, float] = {}
    nominal: dict[str, float] = {}

    # (stage idx, depth, nominal entry, late entry, early entry)
    work = [(network.root_stage, 1, 0.0, 0.0, 0.0)]
    while work:
        stage_idx, depth, t_nom, t_late, t_early = work.pop()
        stage = network.stages[stage_idx]
        down = stage.downstream_caps()
        driver_delay = stage.driver.delay(down[0])
        d_late = derates.late(depth)
        d_early = derates.early(depth)

        for sink in stage.sinks:
            elmore = stage.elmore_to(sink.node_idx)
            stage_delay = driver_delay + elmore
            nom = t_nom + stage_delay
            lat = t_late + stage_delay * d_late
            ear = t_early + stage_delay * d_early
            if sink.is_flop:
                pin = sink.sink_pin.full_name
                nominal[pin] = nom
                late[pin] = lat
                early[pin] = ear
            else:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                work.append((child, depth + 1, nom, lat, ear))

    arr = list(nominal.values())
    return OcvReport(late_arrivals=late, early_arrivals=early,
                     nominal_skew=max(arr) - min(arr))
