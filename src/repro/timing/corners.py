"""Multi-corner static timing over the stage network.

Replays the static stage walk with a corner's multiplicative scales:
wire R and the *wire* share of node capacitance scale with the corner;
pin and gate capacitances stay (their shift is folded into the buffer
delay scale, as cell characterisation does).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extract.rcnetwork import ClockRcNetwork, Stage
from repro.tech.corners import DEFAULT_CORNERS, ProcessCorner
from repro.tech.technology import Technology
from repro.timing.arrival import ClockTiming, SinkTiming
from repro.timing.slew import propagate_slew


def _stage_caps(stage: Stage, wire_c: float) -> list[float]:
    caps = []
    for node in stage.nodes:
        wire_part = sum(a + b for _w, a, b in node.cap_wire)
        caps.append(node.cap_fixed + wire_c * wire_part)
    return caps


def corner_timing(network: ClockRcNetwork, tech: Technology,
                  corner: ProcessCorner) -> ClockTiming:
    """Static arrivals/slews at one process corner."""
    timing = ClockTiming(max_slew_limit=tech.max_slew)
    timing.stage_loads = [0.0] * len(network.stages)
    timing.stage_delays = [0.0] * len(network.stages)

    work: list[tuple[int, float]] = [(network.root_stage, 0.0)]
    while work:
        stage_idx, entry = work.pop()
        stage = network.stages[stage_idx]
        caps = _stage_caps(stage, corner.wire_c)
        down = list(caps)
        for node in reversed(stage.nodes):
            if node.parent is not None:
                down[node.parent] += down[node.idx]
        total = down[0]
        driver_delay = stage.driver.delay(total) * corner.buffer_delay
        driver_slew = stage.driver.output_slew(total) * corner.buffer_slew
        timing.stage_loads[stage_idx] = total
        timing.stage_delays[stage_idx] = driver_delay

        for sink in stage.sinks:
            elmore = 0.0
            for idx in stage.path_to_root(sink.node_idx):
                node = stage.nodes[idx]
                if node.parent is not None:
                    elmore += corner.wire_r * node.r * down[idx]
            t = entry + driver_delay + elmore
            if sink.is_flop:
                timing.sinks.append(SinkTiming(
                    pin=sink.sink_pin, arrival=t,
                    slew=propagate_slew(driver_slew, elmore)))
            else:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                work.append((child, t))
    return timing


@dataclass
class CornerReport:
    """Static timing at every corner of a set."""

    timings: dict[str, ClockTiming] = field(default_factory=dict)

    @property
    def worst_skew(self) -> float:
        return max(t.skew for t in self.timings.values())

    @property
    def worst_slew(self) -> float:
        return max(t.worst_slew for t in self.timings.values())

    def latency_range(self) -> tuple[float, float]:
        """(fastest-corner, slowest-corner) max insertion delay."""
        latencies = [t.latency for t in self.timings.values()]
        return min(latencies), max(latencies)

    def slew_violations(self) -> int:
        """Worst per-corner count of sinks over the slew limit."""
        return max(t.slew_violations for t in self.timings.values())


def analyze_corners(network: ClockRcNetwork, tech: Technology,
                    corners=DEFAULT_CORNERS) -> CornerReport:
    """Run static timing at every corner in ``corners``."""
    if not corners:
        raise ValueError("need at least one corner")
    report = CornerReport()
    for corner in corners:
        report.timings[corner.name] = corner_timing(network, tech, corner)
    return report
