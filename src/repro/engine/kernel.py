"""Vectorised RC analysis kernels over compiled stage structures.

This module is the ``numpy-dense`` backend (see
:mod:`repro.engine.backends`): one :class:`StageKernel` per RC stage,
analyses driven by a Python work-stack over stages.  It is the
legacy-shaped backend — per-stage arrays, per-stage Python dispatch —
kept as the bit-exact reference the whole-design ``numpy-sparse``
backend (:mod:`repro.engine.batched`) is verified against.

A :class:`StageKernel` is the array mirror of one
:class:`~repro.extract.rcnetwork.Stage`:

* per-node ``parent`` / ``r`` / ``cap_fixed`` vectors (node index order
  is topological — parents precede children by construction), plus the
  per-depth ``levels`` index arrays of
  :func:`repro.engine.treeops.build_levels`;
* a flat incidence entry list ``(ent_node, ent_col)`` — one entry per
  (node, local wire) capacitance site, in extraction order — with
  per-wire half-cap vectors (``area_half``, ``rest_half``) so nominal
  and Monte-Carlo capacitance profiles are one ordered scatter-add
  (:func:`repro.engine.treeops.scatter_add`);
* per-wire geometry (width, thickness, jmax) for EM and variation.

Elmore delays and crosstalk shared-resistance sums run as the
bottom-up/top-down sweeps of :mod:`repro.engine.treeops` — no dense
node x node membership matrix is ever materialised (the old ``M`` was
O(n^2) per stage and only ever consumed through its sink-row slice).
Because both backends issue the same float additions in the same order
(see the treeops module docstring), their results agree bit for bit.

All of it is patchable in place: a rule re-assignment touches one wire
column plus one resistance entry, after which the cached downstream /
path products are invalidated and lazily rebuilt.
"""

from __future__ import annotations

from typing import Annotated, Optional

import numpy as np

from repro.engine.treeops import (accumulate_downstream, accumulate_prefix,
                                  build_levels, scatter_add)
from repro.extract.capmodel import WireParasitics
from repro.extract.rcnetwork import ClockRcNetwork, Stage
from repro.reliability.em import DEFAULT_EM_FACTOR, EmReport, WireCurrent
from repro.route.router import RoutingResult
from repro.tech.technology import Technology
from repro.timing.arrival import ClockTiming, SinkTiming
from repro.timing.crosstalk import CrosstalkReport, SinkDelta
from repro.timing.montecarlo import MonteCarloResult
from repro.timing.slew import propagate_slew
from repro.units import Dim


class StageKernel:
    """One stage compiled to numpy arrays; see the module docstring."""

    def __init__(self, stage: Stage,
                 parasitics: dict[int, WireParasitics],
                 routing: RoutingResult) -> None:
        nodes = stage.nodes
        n = len(nodes)
        self.n = n
        self.driver = stage.driver
        self.parent = np.array(
            [-1 if nd.parent is None else nd.parent for nd in nodes],
            dtype=np.int64)
        self.levels = build_levels(self.parent)
        self.r = np.array([nd.r for nd in nodes])
        self.cap_fixed = np.array([nd.cap_fixed for nd in nodes])

        # Local wire columns, ordered by far-node index (every wire owns
        # exactly one node, so this matches the legacy per-node scans).
        col_of: dict[int, int] = {}
        wire_far: list[int] = []
        wire_ids: list[int] = []
        for nd in nodes:
            if nd.wire_id is not None:
                col_of[nd.wire_id] = len(wire_far)
                wire_far.append(nd.idx)
                wire_ids.append(nd.wire_id)
        m = len(wire_far)
        self.m = m
        self.col_of = col_of
        self.wire_far = np.array(wire_far, dtype=np.int64)
        self.wire_ids = wire_ids
        #: node index -> local wire column (-1 for root/snake nodes)
        self.node_col = np.full(n, -1, dtype=np.int64)
        self.node_col[self.wire_far] = np.arange(m, dtype=np.int64)

        # Incidence entries in extraction order: one (node, column) pair
        # per capacitance site.  Scatter-adds over this list replace the
        # old dense node x wire matrix ``B``.
        ent_node: list[int] = []
        ent_col: list[int] = []
        for nd in nodes:
            for wid, _a, _b in nd.cap_wire:
                ent_node.append(nd.idx)
                ent_col.append(col_of[wid])
        self.ent_node = np.array(ent_node, dtype=np.int64)
        self.ent_col = np.array(ent_col, dtype=np.int64)

        self.area_half = np.zeros(m)
        self.rest_half = np.zeros(m)
        self.cc_half = np.zeros(m)
        self.act_half = np.zeros(m)
        self.width = np.zeros(m)
        self.thickness = np.zeros(m)
        self.jmax = np.ones(m)
        for wid, col in col_of.items():
            self._load_wire(col, parasitics[wid], routing.tracks.wire(wid))

        self.sink_nodes = [s.node_idx for s in stage.sinks]
        self.sink_pins = [s.sink_pin for s in stage.sinks]
        self.sink_next_tree = [s.next_stage_tree_id for s in stage.sinks]
        self._sink_nodes_arr = np.array(self.sink_nodes, dtype=np.int64)

        self._down: Optional[np.ndarray] = None
        self._timing = None     # (total, driver_delay, driver_slew, elm)
        self._xtalk = None      # (alignment, worst, expected) per sink

    def _load_wire(self, col: int, para: WireParasitics, wire) -> None:
        self.area_half[col] = para.c_area / 2.0
        self.rest_half[col] = para.c_rest / 2.0
        self.cc_half[col] = para.cc_signal / 2.0
        self.act_half[col] = sum(
            e.cc * e.activity for e in para.couplings) / 2.0
        self.width[col] = wire.width
        self.thickness[col] = wire.layer.thickness
        self.jmax[col] = wire.layer.em_jmax

    def patch_wire(self, wire_id: int, para: WireParasitics, wire) -> None:
        """Apply one wire's new parasitics/geometry in place."""
        self._load_wire(self.col_of[wire_id], para, wire)
        self.r[self.wire_far[self.col_of[wire_id]]] = para.r
        self._down = None
        self._timing = None
        self._xtalk = None

    def retrim(self, stage: Stage) -> None:
        """Refresh root pad/snake scalars from a re-trimmed stage.

        A retrim touches only the first one or two nodes (root and the
        optional snake); the wire columns and topology are unchanged.
        """
        nodes = stage.nodes
        self.cap_fixed[0] = nodes[0].cap_fixed
        if self.n > 1 and nodes[1].wire_id is None:
            self.cap_fixed[1] = nodes[1].cap_fixed
            self.r[1] = nodes[1].r
        self._down = None
        self._timing = None
        self._xtalk = None

    # -- nominal profiles --------------------------------------------------

    def down_nominal(self) -> np.ndarray:
        """Nominal downstream capacitance per node (cached)."""
        if self._down is None:
            down = self.cap_fixed.copy()
            half_sum = self.area_half + self.rest_half
            scatter_add(down, self.ent_node, half_sum[self.ent_col])
            accumulate_downstream(down, self.parent, self.levels)
            self._down = down
        return self._down

    def timing_arrays(self):
        """(stage load, driver delay, driver slew, per-sink wire Elmore)."""
        if self._timing is None:
            down = self.down_nominal()
            total = float(down[0])
            acc = self.r * down
            accumulate_prefix(acc, self.parent, self.levels)
            elm = acc[self._sink_nodes_arr]
            self._timing = (total, self.driver.delay(total),
                            self.driver.output_slew(total), elm)
        return self._timing

    def crosstalk_arrays(self, alignment: float):
        """Per-sink (worst, expected) delta delay for this stage.

        The shared-resistance sum is re-associated as a tree sweep:
        with ``cc_sub[v]`` the subtree sum of per-node coupling halves,

            worst[s] = r_drive * cc_sub[root]
                       + sum over path(s) of r[v] * cc_sub[v]

        — the same quantity the dense sink x node shared-resistance
        matrix used to produce, without materialising it.
        """
        if self._xtalk is None or self._xtalk[0] != alignment:
            worst = self._path_coupling(self.cc_half)
            expected = self._path_coupling(self.act_half) * alignment
            self._xtalk = (alignment, worst, expected)
        return self._xtalk[1], self._xtalk[2]

    def _path_coupling(self, half: np.ndarray) -> np.ndarray:
        """Per-sink ``sum_k shared_r(s, k) * coupling_node(k)``."""
        cc_node = np.zeros(self.n)
        scatter_add(cc_node, self.ent_node, half[self.ent_col])
        accumulate_downstream(cc_node, self.parent, self.levels)
        acc = self.r * cc_node
        accumulate_prefix(acc, self.parent, self.levels)
        return (self.driver.r_drive * cc_node[0]
                + acc[self._sink_nodes_arr])


class NetworkKernel:
    """All stage kernels of one clock network, analysis entry points."""

    backend_name = "numpy-dense"

    def __init__(self, network: ClockRcNetwork, routing: RoutingResult,
                 parasitics: dict[int, WireParasitics]) -> None:
        self.network = network
        self.routing = routing
        self.stages = [StageKernel(s, parasitics, routing)
                       for s in network.stages]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage_view(self, stage_idx: int) -> StageKernel:
        """Backend-agnostic per-stage array view (oracle entry point)."""
        return self.stages[stage_idx]

    def invalidate_caches(self) -> None:
        """Drop every derived-array cache (benchmark / debugging hook)."""
        for sk in self.stages:
            sk._down = None
            sk._timing = None
            sk._xtalk = None

    def patch_wire(self, stage_idx: int, wire_id: int,
                   para: WireParasitics) -> None:
        """Push one wire's new parasitics into its stage kernel."""
        self.stages[stage_idx].patch_wire(
            wire_id, para, self.routing.tracks.wire(wire_id))

    def retrim_stage(self, stage_idx: int, stage: Stage) -> None:
        """Refresh one stage's pad/snake scalars after a retrim."""
        self.stages[stage_idx].retrim(stage)

    def recompile_stage(self, stage_idx: int,
                        parasitics: dict[int, WireParasitics]) -> None:
        """Re-derive one stage kernel after a topology edit (trims)."""
        self.stages[stage_idx] = StageKernel(
            self.network.stages[stage_idx], parasitics, self.routing)

    # -- analyses ----------------------------------------------------------

    def static_timing(self, tech: Technology) -> ClockTiming:
        """Elmore static timing; mirrors ``analyze_clock_timing``."""
        timing = ClockTiming(max_slew_limit=tech.max_slew)
        timing.stage_loads = [0.0] * len(self.stages)
        timing.stage_delays = [0.0] * len(self.stages)
        work: list[tuple[int, float]] = [(self.network.root_stage, 0.0)]
        while work:
            stage_idx, entry = work.pop()
            sk = self.stages[stage_idx]
            total, driver_delay, driver_slew, elm = sk.timing_arrays()
            timing.stage_loads[stage_idx] = total
            timing.stage_delays[stage_idx] = driver_delay
            for i, pin in enumerate(sk.sink_pins):
                t = entry + driver_delay + float(elm[i])
                if pin is not None:
                    timing.sinks.append(SinkTiming(
                        pin=pin, arrival=t,
                        slew=propagate_slew(driver_slew, float(elm[i]))))
                else:
                    child = self.network.stage_of_tree_node[
                        sk.sink_next_tree[i]]
                    work.append((child, t))
        return timing

    def crosstalk(self, alignment: float = 0.5) -> CrosstalkReport:
        """Delta-delay analysis; mirrors ``analyze_crosstalk``."""
        if not 0.0 <= alignment <= 1.0:
            raise ValueError(
                f"alignment must be in [0, 1], got {alignment}")
        report = CrosstalkReport(alignment=alignment)
        work: list[tuple[int, float, float]] = [
            (self.network.root_stage, 0.0, 0.0)]
        while work:
            stage_idx, acc_w, acc_e = work.pop()
            sk = self.stages[stage_idx]
            worst, expected = sk.crosstalk_arrays(alignment)
            for i, pin in enumerate(sk.sink_pins):
                w = acc_w + float(worst[i])
                e = acc_e + float(expected[i])
                if pin is not None:
                    report.sinks.append(SinkDelta(
                        pin=pin, worst=w, expected=e))
                else:
                    child = self.network.stage_of_tree_node[
                        sk.sink_next_tree[i]]
                    work.append((child, w, e))
        return report

    def em(self, vdd: Annotated[float, Dim.VOLTAGE],
           freq: Annotated[float, Dim.FREQUENCY],
           em_factor: float = DEFAULT_EM_FACTOR) -> EmReport:
        """Current-density check; mirrors ``analyze_em``."""
        if em_factor <= 0.0:
            raise ValueError("em_factor must be positive")
        report = EmReport()
        for sk in self.stages:
            if sk.m == 0:
                continue
            down = sk.down_nominal()
            i_eff = em_factor * down[sk.wire_far] * vdd * freq
            area = sk.width * sk.thickness
            density = i_eff / area
            for col, wire_id in enumerate(sk.wire_ids):
                report.wires.append(WireCurrent(
                    wire_id=wire_id,
                    i_eff=float(i_eff[col]),
                    density=float(density[col]),
                    jmax=float(sk.jmax[col]),
                    utilization=float(density[col] / sk.jmax[col]),
                ))
        return report

    def monte_carlo(self, frozen) -> MonteCarloResult:
        """Process-variation sampling over frozen draws.

        ``frozen`` is a
        :class:`~repro.engine.incremental.FrozenVariation`; with the
        same seed the result matches ``run_monte_carlo`` to float
        round-off (the draws are bit-identical, only summation order
        along sink paths differs).
        """
        n_samples = frozen.n_samples
        arrivals: list[np.ndarray] = []
        sink_names: list[str] = []
        work: list[tuple[int, np.ndarray]] = [
            (self.network.root_stage, np.zeros(n_samples))]
        while work:
            stage_idx, entry = work.pop()
            sk = self.stages[stage_idx]
            area_scale, r_scale = frozen.stage_scales(stage_idx, sk)

            caps = np.broadcast_to(
                sk.cap_fixed[:, None], (sk.n, n_samples)).copy()
            if sk.m:
                contrib = (sk.area_half[sk.ent_col][:, None]
                           * area_scale[sk.ent_col]
                           + sk.rest_half[sk.ent_col][:, None])
                np.add.at(caps, sk.ent_node, contrib)
            down = caps
            accumulate_downstream(down, sk.parent, sk.levels)
            total = down[0]
            driver = sk.driver
            driver_delay = (driver.d_intrinsic + driver.r_drive * total) \
                * frozen.buf_scale[stage_idx]

            r_eff = np.repeat(sk.r[:, None], n_samples, axis=1)
            if sk.m:
                r_eff[sk.wire_far] *= r_scale
            rd = r_eff * down
            accumulate_prefix(rd, sk.parent, sk.levels)
            elm = rd[sk._sink_nodes_arr]

            for i, pin in enumerate(sk.sink_pins):
                t = entry + driver_delay + elm[i]
                if pin is not None:
                    arrivals.append(t)
                    sink_names.append(pin.full_name)
                else:
                    child = self.network.stage_of_tree_node[
                        sk.sink_next_tree[i]]
                    work.append((child, t))

        arr = np.vstack(arrivals)
        return MonteCarloResult(
            skew_samples=arr.max(axis=0) - arr.min(axis=0),
            latency_samples=arr.max(axis=0),
            arrivals=arr,
            sink_names=sink_names,
        )
