"""Analysis-engine backend registry.

The engine seam (:class:`~repro.engine.incremental.AnalysisEngine`,
``SmartNdrOptimizer(use_engine=...)``) selects a *backend*: a factory
that compiles one clock network into a kernel object exposing the
shared analysis API (``static_timing`` / ``crosstalk`` / ``em`` /
``monte_carlo`` plus the incremental-update and ``stage_view``
entry points).  Registered backends:

* ``numpy-dense`` — per-stage kernels, Python work-stack dispatch
  (:mod:`repro.engine.kernel`).  The legacy-shaped reference.
* ``numpy-sparse`` — whole-design batched arenas, one sweep per
  analysis (:mod:`repro.engine.batched`).  The default.
* ``numba`` — jit-compiled sweeps over the batched arenas; registered
  only when numba is importable, otherwise requesting it raises with
  an install hint (:mod:`repro.engine.numba_backend`).

All backends are verified bit-identical (``np.array_equal``) by the
backend-equivalence suite, so the choice is purely a performance knob:
it never changes artifact content, and
:meth:`~repro.core.stages.PolicyParams.normalized` strips it from
cache keys.

Selection order: an explicit name beats :data:`DEFAULT_BACKEND`.
The ``REPRO_ENGINE_BACKEND`` environment variable is *not* consulted
here on the fallback path — it is captured exactly once per job by the
runner's forwarded-variable seam (:func:`default_backend_name` called
from ``_execute_job``, replayed into workers by ``_pool_init``), so
worker processes and the parent agree on the selection and the static
analyzer's env-seam rules (D003/S003) hold without suppressions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

DEFAULT_BACKEND = "numpy-sparse"

ENV_VAR = "REPRO_ENGINE_BACKEND"


@dataclass(frozen=True)
class EngineBackend:
    """One registered backend: a named kernel factory."""

    name: str
    #: ``(network, routing, parasitics) -> kernel``
    factory: Callable[..., Any] = field(repr=False)
    description: str = ""

    def build(self, network: Any, routing: Any, parasitics: Any) -> Any:
        """Compile one clock network with this backend."""
        return self.factory(network, routing, parasitics)


_REGISTRY: dict[str, EngineBackend] = {}
#: name -> reason it cannot be used in this environment
_UNAVAILABLE: dict[str, str] = {}


def register_backend(backend: EngineBackend) -> EngineBackend:
    """Register (or replace) a backend under its name."""
    _REGISTRY[backend.name] = backend
    _UNAVAILABLE.pop(backend.name, None)
    return backend


def register_unavailable(name: str, reason: str) -> None:
    """Record a known backend that cannot run here (missing dep)."""
    if name not in _REGISTRY:
        _UNAVAILABLE[name] = reason


def available_backends() -> tuple[str, ...]:
    """Names of the backends usable in this environment, sorted."""
    return tuple(sorted(_REGISTRY))  # static: ok[C003] import-time registry, fixed pre-flow


def get_backend(name: str) -> EngineBackend:
    """Look up a backend by name; raise helpfully when it cannot run."""
    backend = _REGISTRY.get(name)  # static: ok[C003] import-time registry, fixed pre-flow
    if backend is not None:
        return backend
    if name in _UNAVAILABLE:  # static: ok[C003] import-time map, only feeds the error text
        raise RuntimeError(
            f"engine backend {name!r} is not available: "
            f"{_UNAVAILABLE[name]}")  # static: ok[C003] import-time map, only feeds the error text
    raise KeyError(
        f"unknown engine backend {name!r}; "
        f"available: {', '.join(available_backends())}")


def default_backend_name() -> str:
    """The environment-selected default backend name.

    This is the *one* place the ``REPRO_ENGINE_BACKEND`` variable is
    read.  Only the runner's job seam (``_execute_job``) calls it, so
    the selection is captured once per job and forwarded to workers
    with the rest of the env whitelist.
    """
    return os.environ.get(ENV_VAR, DEFAULT_BACKEND) or DEFAULT_BACKEND  # static: ok[C003] perf knob; backends are bit-identical, artifact content unchanged


def resolve_backend(spec: object = None) -> EngineBackend:
    """Resolve a ``use_engine``-style spec to a backend.

    ``spec`` may be a backend name, or ``None`` / ``True`` (any
    non-string truthy) for :data:`DEFAULT_BACKEND`.  Environment
    selection happens upstream (:func:`default_backend_name` via the
    runner seam) — deliberately not here, which keeps every in-flow
    caller deterministic in its arguments.
    """
    if isinstance(spec, str) and spec:
        return get_backend(spec)
    return get_backend(DEFAULT_BACKEND)


def _register_builtin() -> None:
    from repro.engine.batched import BatchedNetworkKernel
    from repro.engine.kernel import NetworkKernel
    register_backend(EngineBackend(
        name="numpy-dense", factory=NetworkKernel,
        description="per-stage kernels, Python work-stack dispatch"))
    register_backend(EngineBackend(
        name="numpy-sparse", factory=BatchedNetworkKernel,
        description="whole-design batched arenas, one sweep per analysis"))

    from repro.engine import numba_backend
    numba_backend.register()


_register_builtin()
