"""Dirty-tracked analysis over a patched extraction.

:class:`AnalysisEngine` wraps one :class:`Extraction` with compiled
kernels and keeps every analysis result cached until its inputs move:

* **rule changes** (``apply_rule_changes``) re-extract the touched
  wires plus their coupling dependents, patch the RC network and the
  kernels in place, and invalidate everything — but re-running is now
  a handful of stage-local array updates, not a network rebuild;
* **trims** (``rebuild_stages``) rebuild only the touched stages.  EM
  survives a trim untouched: pad/snake capacitance hangs at or above
  every wire node, so no wire's downstream charge changes;
* **Monte Carlo** keeps its seeded draws frozen
  (:class:`FrozenVariation`).  A rule change only moves the touched
  wires' width-normalised variation factors, which are recomputed from
  the frozen draws — so the incremental MC equals a fresh seeded run.

Anything the dirty rules cannot express (buffer re-sizing, tree
topology edits) needs a fresh engine — construction is one full
compile, the same price as the legacy full rebuild.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro import obs
from repro.core.evaluation import AnalysisBundle
from repro.core.targets import RobustnessTargets
from repro.cts.tree import ClockTree
from repro.engine.kernel import NetworkKernel, StageKernel
from repro.extract.extractor import Extraction, incremental_re_extract
from repro.power.clockpower import PowerReport, analyze_power
from repro.reliability.em import DEFAULT_EM_FACTOR, EmReport
from repro.route.router import RoutingResult
from repro.tech.technology import Technology
from repro.timing.arrival import ClockTiming
from repro.timing.crosstalk import CrosstalkReport
from repro.timing.montecarlo import (MonteCarloResult, _correlation_cells,
                                     wire_variation_factors)


class FrozenVariation:
    """Monte-Carlo draws frozen once per optimizer run.

    Replicates ``run_monte_carlo``'s rng consumption order exactly
    (cell draws, per-wire draws in ``clock_wires`` order, die-to-die,
    per-stage), so factors are bit-identical to a fresh seeded run.
    The draws only depend on invariants of a rule-assignment run —
    wire midpoints (correlation cells), the wire list, and the stage
    count — which neither rule changes nor trims move.
    """

    def __init__(self, network, routing: RoutingResult, tech: Technology,
                 n_samples: int = 200, seed: int = 1) -> None:
        if n_samples < 2:
            raise ValueError("need at least 2 samples")
        self.var = tech.variation
        self.n_samples = n_samples
        rng = np.random.default_rng(seed)

        self.cells = _correlation_cells(routing, self.var.corr_grid)
        n_cells = max(self.cells.values(), default=0) + 1
        self.z_width = rng.standard_normal((n_cells, n_samples))
        self.z_thick = rng.standard_normal((n_cells, n_samples))
        self.z_rand: dict[int, np.ndarray] = {}
        self.area_scale: dict[int, np.ndarray] = {}
        self.r_scale: dict[int, np.ndarray] = {}
        for wire in routing.clock_wires:
            self.z_rand[wire.wire_id] = rng.standard_normal(n_samples)
            self._factors(wire)

        d2d = rng.standard_normal(n_samples) * self.var.buffer_d2d_sigma
        self.buf_scale: list[np.ndarray] = []
        for _stage in network.stages:
            rand = rng.standard_normal(n_samples) \
                * self.var.buffer_rand_sigma
            self.buf_scale.append(np.clip(1.0 + d2d + rand, 0.3, None))

        #: stage index -> (area_scale, r_scale) matrices in column order
        self._stage_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _factors(self, wire) -> None:
        cell = self.cells[wire.wire_id]
        area, r = wire_variation_factors(
            self.var, wire, self.z_width[cell],
            self.z_rand[wire.wire_id], self.z_thick[cell])
        self.area_scale[wire.wire_id] = area
        self.r_scale[wire.wire_id] = r

    def refresh_wire(self, wire, stage_idx: Optional[int] = None) -> None:
        """Recompute one wire's factors (its width moved) from frozen draws."""
        self._factors(wire)
        if stage_idx is not None:
            self._stage_cache.pop(stage_idx, None)

    def invalidate_stage(self, stage_idx: int) -> None:
        """Drop one stage's stacked-scale cache (its wire set changed)."""
        self._stage_cache.pop(stage_idx, None)

    def stage_scales(self, stage_idx: int, kernel: StageKernel,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """(area_scale, r_scale) stacked per local wire column, cached."""
        cached = self._stage_cache.get(stage_idx)
        if cached is None:
            if kernel.m:
                area = np.vstack([self.area_scale[wid]
                                  for wid in kernel.wire_ids])
                r = np.vstack([self.r_scale[wid]
                               for wid in kernel.wire_ids])
            else:
                area = np.zeros((0, self.n_samples))
                r = np.zeros((0, self.n_samples))
            cached = (area, r)
            self._stage_cache[stage_idx] = cached
        return cached


class AnalysisEngine:
    """Incremental analysis of one extraction; see the module docstring."""

    def __init__(self, extraction: Extraction, tree: ClockTree,
                 tech: Technology, freq: float,
                 targets: RobustnessTargets) -> None:
        self.extraction = extraction
        self.tree = tree
        self.tech = tech
        self.freq = freq
        self.targets = targets
        self.kernel = NetworkKernel(extraction.network, extraction.routing,
                                    extraction.wires)
        self.frozen = FrozenVariation(
            extraction.network, extraction.routing, tech,
            n_samples=targets.mc_samples, seed=targets.mc_seed)
        self._timing: Optional[ClockTiming] = None
        self._xtalk: Optional[CrosstalkReport] = None
        self._em: Optional[EmReport] = None
        self._power: Optional[PowerReport] = None
        self._mc: Optional[MonteCarloResult] = None

    # -- change notifications ----------------------------------------------

    def apply_rule_changes(self, wire_ids: Iterable[int]) -> set[int]:
        """Incrementally re-extract after rule/shield changes.

        Returns the dirty wire set (touched wires plus coupling
        dependents); every analysis is invalidated — caps and
        resistances moved, so nothing survives — but all recomputes
        are now stage-local.
        """
        dirty, stages = incremental_re_extract(self.extraction, wire_ids)
        obs.counter("engine.incremental_re_extracts").inc()
        obs.histogram("engine.dirty_wires").observe(float(len(dirty)))
        network = self.extraction.network
        tracks = self.extraction.routing.tracks
        for wire_id in dirty:
            stage_idx = network.wire_stage(wire_id)
            self.kernel.patch_wire(stage_idx, wire_id,
                                   self.extraction.wires[wire_id])
            self.frozen.refresh_wire(tracks.wire(wire_id), stage_idx)
        self._timing = self._xtalk = self._em = None
        self._power = self._mc = None
        return dirty

    def rebuild_stages(self, tree_node_ids: Iterable[int]) -> None:
        """Rebuild the stages of trimmed tree nodes (pad/snake edits).

        EM stays cached: trim capacitance hangs at or above every wire
        node of the stage, so wire downstream charge is unchanged.
        """
        network = self.extraction.network
        for tree_id in tree_node_ids:
            stage_idx = network.stage_of_tree_node[tree_id]
            if network.retrim_stage(stage_idx, self.tree):
                # Common case: pad/snake values moved but the snake node
                # neither appeared nor vanished — patch scalars in place.
                self.kernel.stages[stage_idx].retrim(
                    network.stages[stage_idx])
                obs.counter("engine.stage_retrims").inc()
                continue
            network.rebuild_stage(stage_idx, self.tree,
                                  self.extraction.routing,
                                  self.extraction.wires)
            self.kernel.recompile_stage(stage_idx, self.extraction.wires)
            self.frozen.invalidate_stage(stage_idx)
            obs.counter("engine.stage_rebuilds").inc()
        self._timing = self._xtalk = None
        self._power = self._mc = None

    # -- analyses ----------------------------------------------------------

    def static_timing(self) -> ClockTiming:
        """Elmore static timing, cached until a change notification."""
        if self._timing is None:
            self._timing = self.kernel.static_timing(self.tech)
        return self._timing

    def analyze(self) -> AnalysisBundle:
        """The full bundle, recomputing only invalidated analyses."""
        if self._xtalk is None:
            self._xtalk = self.kernel.crosstalk(
                alignment=self.targets.alignment)
        if self._em is None:
            self._em = self.kernel.em(self.tech.vdd, self.freq,
                                      em_factor=DEFAULT_EM_FACTOR)
        if self._power is None:
            self._power = analyze_power(self.extraction, self.tech,
                                        self.freq)
        if self._mc is None:
            self._mc = self.kernel.monte_carlo(self.frozen)
        return AnalysisBundle(timing=self.static_timing(),
                              crosstalk=self._xtalk, em=self._em,
                              power=self._power, mc=self._mc)
