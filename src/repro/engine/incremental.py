"""Dirty-tracked analysis over a patched extraction.

:class:`AnalysisEngine` wraps one :class:`Extraction` with compiled
kernels and keeps every analysis result cached until its inputs move:

* **rule changes** (``apply_rule_changes``) re-extract the touched
  wires plus their coupling dependents, patch the RC network and the
  kernels in place, and invalidate everything — but re-running is now
  a handful of stage-local array updates, not a network rebuild;
* **trims** (``rebuild_stages``) rebuild only the touched stages.  EM
  survives a trim untouched: pad/snake capacitance hangs at or above
  every wire node, so no wire's downstream charge changes;
* **Monte Carlo** keeps its seeded draws frozen
  (:class:`FrozenVariation`).  A rule change only moves the touched
  wires' width-normalised variation factors, which are recomputed from
  the frozen draws — so the incremental MC equals a fresh seeded run.

Anything the dirty rules cannot express (buffer re-sizing, tree
topology edits) needs a fresh engine — construction is one full
compile, the same price as the legacy full rebuild.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro import obs
from repro.core.evaluation import AnalysisBundle
from repro.core.targets import RobustnessTargets
from repro.cts.tree import ClockTree
from repro.engine.backends import resolve_backend
from repro.engine.kernel import StageKernel
from repro.extract.extractor import Extraction, incremental_re_extract
from repro.power.clockpower import PowerReport, analyze_power
from repro.reliability.em import DEFAULT_EM_FACTOR, EmReport
from repro.route.router import RoutingResult
from repro.tech.technology import Technology
from repro.timing.arrival import ClockTiming
from repro.timing.crosstalk import CrosstalkReport
from repro.timing.montecarlo import (MonteCarloResult, _correlation_cells,
                                     wire_variation_factors)


class FrozenVariation:
    """Monte-Carlo draws frozen once per optimizer run.

    Replicates ``run_monte_carlo``'s rng consumption order exactly
    (cell draws, per-wire draws in ``clock_wires`` order, die-to-die,
    per-stage), so factors are bit-identical to a fresh seeded run.
    The draws only depend on invariants of a rule-assignment run —
    wire midpoints (correlation cells), the wire list, and the stage
    count — which neither rule changes nor trims move.
    """

    def __init__(self, network, routing: RoutingResult, tech: Technology,
                 n_samples: int = 200, seed: int = 1) -> None:
        if n_samples < 2:
            raise ValueError("need at least 2 samples")
        self.var = tech.variation
        self.n_samples = n_samples
        rng = np.random.default_rng(seed)

        self.cells = _correlation_cells(routing, self.var.corr_grid)
        n_cells = max(self.cells.values(), default=0) + 1
        self.z_width = rng.standard_normal((n_cells, n_samples))
        self.z_thick = rng.standard_normal((n_cells, n_samples))

        # One (wires, samples) draw equals the legacy per-wire sequence
        # bit for bit (row-major fill), and one matrix expression equals
        # the per-wire `wire_variation_factors` rows (the scalar factors
        # broadcast elementwise in the same association).
        wires = list(routing.clock_wires)
        #: wire id -> row in the factor matrices (clock_wires order)
        self.wire_row = {w.wire_id: i for i, w in enumerate(wires)}
        self._z_rand_mat = rng.standard_normal((len(wires), n_samples))
        if wires:
            cells_idx = np.array([self.cells[w.wire_id] for w in wires],
                                 dtype=np.int64)
            minw = np.array([w.layer.min_width for w in wires])
            width = np.array([w.width for w in wires])
            rel_w = ((self.z_width[cells_idx] * self.var.width_sigma
                      + self._z_rand_mat * self.var.width_rand_sigma)
                     * minw[:, None] / width[:, None])
            rel_t = self.z_thick[cells_idx] * self.var.thickness_sigma
            w_factor = np.clip(1.0 + rel_w, 0.3, None)
            t_factor = np.clip(1.0 + rel_t, 0.3, None)
            self._area_mat = w_factor
            self._r_mat = 1.0 / (w_factor * t_factor)
        else:
            self._area_mat = np.zeros((0, n_samples))
            self._r_mat = np.zeros((0, n_samples))

        # Per-wire dict views into the matrices (row refreshes write
        # through, so the views never go stale).
        self.z_rand: dict[int, np.ndarray] = {
            w.wire_id: self._z_rand_mat[i] for i, w in enumerate(wires)}
        self.area_scale: dict[int, np.ndarray] = {
            w.wire_id: self._area_mat[i] for i, w in enumerate(wires)}
        self.r_scale: dict[int, np.ndarray] = {
            w.wire_id: self._r_mat[i] for i, w in enumerate(wires)}

        d2d = rng.standard_normal(n_samples) * self.var.buffer_d2d_sigma
        n_stages = len(network.stages)
        rand = rng.standard_normal((n_stages, n_samples)) \
            * self.var.buffer_rand_sigma
        self._buf_mat = np.clip(1.0 + d2d[None, :] + rand, 0.3, None)
        self.buf_scale: list[np.ndarray] = [
            self._buf_mat[i] for i in range(n_stages)]

        #: stage index -> (area_scale, r_scale) matrices in column order
        self._stage_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def area_matrix(self) -> np.ndarray:
        """(wires, samples) area-cap scale factors, ``wire_row`` order."""
        return self._area_mat

    def r_matrix(self) -> np.ndarray:
        """(wires, samples) resistance scale factors, ``wire_row`` order."""
        return self._r_mat

    def buf_matrix(self) -> np.ndarray:
        """(stages, samples) buffer delay scale factors."""
        return self._buf_mat

    def refresh_wire(self, wire, stage_idx: Optional[int] = None) -> None:
        """Recompute one wire's factors (its width moved) from frozen draws."""
        row = self.wire_row[wire.wire_id]
        cell = self.cells[wire.wire_id]
        area, r = wire_variation_factors(
            self.var, wire, self.z_width[cell],
            self._z_rand_mat[row], self.z_thick[cell])
        self._area_mat[row] = area
        self._r_mat[row] = r
        if stage_idx is not None:
            self._stage_cache.pop(stage_idx, None)

    def invalidate_stage(self, stage_idx: int) -> None:
        """Drop one stage's stacked-scale cache (its wire set changed)."""
        self._stage_cache.pop(stage_idx, None)

    def stage_scales(self, stage_idx: int, kernel: StageKernel,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """(area_scale, r_scale) stacked per local wire column, cached."""
        cached = self._stage_cache.get(stage_idx)
        if cached is None:
            if kernel.m:
                area = np.vstack([self.area_scale[wid]
                                  for wid in kernel.wire_ids])
                r = np.vstack([self.r_scale[wid]
                               for wid in kernel.wire_ids])
            else:
                area = np.zeros((0, self.n_samples))
                r = np.zeros((0, self.n_samples))
            cached = (area, r)
            self._stage_cache[stage_idx] = cached
        return cached


class AnalysisEngine:
    """Incremental analysis of one extraction; see the module docstring."""

    def __init__(self, extraction: Extraction, tree: ClockTree,
                 tech: Technology, freq: float,
                 targets: RobustnessTargets,
                 backend: Union[bool, str, None] = None) -> None:
        self.extraction = extraction
        self.tree = tree
        self.tech = tech
        self.freq = freq
        self.targets = targets
        self.backend = resolve_backend(backend)
        with obs.span("engine.compile", backend=self.backend.name):
            self.kernel = self.backend.build(
                extraction.network, extraction.routing, extraction.wires)
        self.frozen = FrozenVariation(
            extraction.network, extraction.routing, tech,
            n_samples=targets.mc_samples, seed=targets.mc_seed)
        self._timing: Optional[ClockTiming] = None
        self._xtalk: Optional[CrosstalkReport] = None
        self._em: Optional[EmReport] = None
        self._power: Optional[PowerReport] = None
        self._mc: Optional[MonteCarloResult] = None

    # -- change notifications ----------------------------------------------

    def apply_rule_changes(self, wire_ids: Iterable[int]) -> set[int]:
        """Incrementally re-extract after rule/shield changes.

        Returns the dirty wire set (touched wires plus coupling
        dependents); every analysis is invalidated — caps and
        resistances moved, so nothing survives — but all recomputes
        are now stage-local.
        """
        dirty, stages = incremental_re_extract(self.extraction, wire_ids)
        obs.counter("engine.incremental_re_extracts").inc()
        obs.histogram("engine.dirty_wires").observe(float(len(dirty)))
        network = self.extraction.network
        tracks = self.extraction.routing.tracks
        for wire_id in dirty:
            stage_idx = network.wire_stage(wire_id)
            self.kernel.patch_wire(stage_idx, wire_id,
                                   self.extraction.wires[wire_id])
            self.frozen.refresh_wire(tracks.wire(wire_id), stage_idx)
        self._timing = self._xtalk = self._em = None
        self._power = self._mc = None
        return dirty

    def rebuild_stages(self, tree_node_ids: Iterable[int]) -> None:
        """Rebuild the stages of trimmed tree nodes (pad/snake edits).

        EM stays cached: trim capacitance hangs at or above every wire
        node of the stage, so wire downstream charge is unchanged.
        """
        network = self.extraction.network
        for tree_id in tree_node_ids:
            stage_idx = network.stage_of_tree_node[tree_id]
            if network.retrim_stage(stage_idx, self.tree):
                # Common case: pad/snake values moved but the snake node
                # neither appeared nor vanished — patch scalars in place.
                self.kernel.retrim_stage(stage_idx,
                                         network.stages[stage_idx])
                obs.counter("engine.stage_retrims").inc()
                continue
            network.rebuild_stage(stage_idx, self.tree,
                                  self.extraction.routing,
                                  self.extraction.wires)
            self.kernel.recompile_stage(stage_idx, self.extraction.wires)
            self.frozen.invalidate_stage(stage_idx)
            obs.counter("engine.stage_rebuilds").inc()
        self._timing = self._xtalk = None
        self._power = self._mc = None

    # -- analyses ----------------------------------------------------------

    def _mark_rss(self) -> None:
        """Publish the process peak-RSS after a stage-batch analysis."""
        obs.gauge("engine.peak_rss_bytes").set(float(obs.peak_rss_bytes()))

    def static_timing(self) -> ClockTiming:
        """Elmore static timing, cached until a change notification."""
        if self._timing is None:
            with obs.span("engine.static_timing",
                          backend=self.backend.name):
                self._timing = self.kernel.static_timing(self.tech)
            self._mark_rss()
        return self._timing

    def analyze(self) -> AnalysisBundle:
        """The full bundle, recomputing only invalidated analyses."""
        if self._xtalk is None:
            with obs.span("engine.crosstalk", backend=self.backend.name):
                self._xtalk = self.kernel.crosstalk(
                    alignment=self.targets.alignment)
            self._mark_rss()
        if self._em is None:
            with obs.span("engine.em", backend=self.backend.name):
                self._em = self.kernel.em(self.tech.vdd, self.freq,
                                          em_factor=DEFAULT_EM_FACTOR)
            self._mark_rss()
        if self._power is None:
            self._power = analyze_power(self.extraction, self.tech,
                                        self.freq)
        if self._mc is None:
            with obs.span("engine.monte_carlo",
                          backend=self.backend.name):
                self._mc = self.kernel.monte_carlo(self.frozen)
            self._mark_rss()
        return AnalysisBundle(timing=self.static_timing(),
                              crosstalk=self._xtalk, em=self._em,
                              power=self._power, mc=self._mc)
