"""Declared state invariants of the engine layer.

The incremental engine's correctness rests on manual bookkeeping: a
mutation of compiled arena state must be paired with the matching
invalidation (cache drop, stale mark), and every analysis entry point
must pass a recompile barrier before reading arena state that a
pending mutation may have doomed.  This module *declares* those
pairings so the static analyzer (:mod:`repro.analysis.rules_invalidation`)
can prove them over the AST instead of trusting code review:

* :data:`ENGINE_STATE_INVARIANTS` — one :class:`StateInvariant` per
  stateful class, naming the guarded attribute writes, the paired
  invalidators, the stale flag and the recompile barrier (codes
  I001–I003);
* :data:`KERNEL_PARITY` — the shared kernel surface every registered
  backend class must expose with matching signatures (codes
  B001–B002, :mod:`repro.analysis.rules_backends`).

Keep these in sync with the classes they describe: the analyzer's
``static-config`` check errors on entries naming unknown classes, and
I002 errors on declared invalidators or guarded fields that no longer
exist in the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class StateInvariant:
    """Mutation→invalidation pairing contract of one stateful class."""

    #: Qualified class name ("repro.engine.batched.BatchedNetworkKernel").
    cls: str
    #: Attributes whose (direct or subscripted) writes must be paired
    #: with an invalidation on every path to function exit.
    guarded_fields: tuple[str, ...]
    #: Method names whose call counts as the paired invalidation.
    invalidators: tuple[str, ...] = ()
    #: Attributes whose ``self.attr = None`` assignment counts as the
    #: paired invalidation (inline cache drops).
    cache_attrs: tuple[str, ...] = ()
    #: Boolean attribute marking the compiled state doomed; assigning
    #: it ``True`` also counts as invalidation.
    stale_flag: Optional[str] = None
    #: Method that recompiles when the stale flag is set; public
    #: methods reading guarded state must call it (or test the stale
    #: flag) first — code I003.
    barrier: Optional[str] = None
    #: Methods allowed to write guarded fields without pairing: the
    #: constructor and the (re)compile path, which build the guarded
    #: state in the first place.
    exempt: tuple[str, ...] = ()


@dataclass(frozen=True)
class KernelParitySpec:
    """The backend-parity contract (B001).

    Every class listed in ``classes`` must define every method in
    ``surface`` with an identical parameter list and identical
    defaults — the engine seam dispatches on the shared surface, so a
    drifted signature is a latent per-backend behavior fork.
    """

    classes: tuple[str, ...]
    surface: tuple[str, ...]


ENGINE_STATE_INVARIANTS: tuple[StateInvariant, ...] = (
    StateInvariant(
        cls="repro.engine.batched.BatchedNetworkKernel",
        guarded_fields=("r", "cap_fixed", "area_half", "rest_half",
                        "cc_half", "act_half", "width", "thickness",
                        "jmax"),
        invalidators=("_invalidate",),
        cache_attrs=("_down", "_xtalk"),
        stale_flag="_stale",
        barrier="_ensure",
        exempt=("__init__", "_compile"),
    ),
    StateInvariant(
        cls="repro.engine.kernel.StageKernel",
        guarded_fields=("r", "cap_fixed", "area_half", "rest_half",
                        "cc_half", "act_half", "width", "thickness",
                        "jmax"),
        cache_attrs=("_down", "_timing", "_xtalk"),
        exempt=("__init__", "_load_wire"),
    ),
)

#: The two always-available kernel classes.  The numba backend wraps
#: the batched arenas behind the same surface but is defined inside an
#: import-gated factory, which the module-level AST collector cannot
#: see; its parity is covered at runtime by the bit-identity suite.
KERNEL_PARITY = KernelParitySpec(
    classes=("repro.engine.kernel.NetworkKernel",
             "repro.engine.batched.BatchedNetworkKernel"),
    surface=("num_stages", "stage_view", "invalidate_caches",
             "patch_wire", "retrim_stage", "recompile_stage",
             "static_timing", "crosstalk", "em", "monte_carlo"),
)
