"""Compiled analysis kernels and incremental re-evaluation.

The optimizer's inner loop is extract -> analyze -> plan -> repeat; this
package makes one iteration cost proportional to what *changed* rather
than to the design:

* :class:`~repro.engine.kernel.NetworkKernel` compiles each RC stage
  once per topology into dense numpy structures so static timing,
  crosstalk, EM and Monte Carlo run as matrix ops.
* :class:`~repro.engine.incremental.AnalysisEngine` owns the dirty
  tracking: rule changes patch wire columns in place, trims rebuild
  single stages, and each analysis recomputes only when its inputs
  moved.  Monte Carlo keeps its seeded draws frozen across iterations.
"""

from repro.engine.backends import (EngineBackend, available_backends,
                                   get_backend, resolve_backend)
from repro.engine.batched import BatchedNetworkKernel
from repro.engine.incremental import AnalysisEngine, FrozenVariation
from repro.engine.kernel import NetworkKernel, StageKernel

__all__ = [
    "AnalysisEngine",
    "BatchedNetworkKernel",
    "EngineBackend",
    "FrozenVariation",
    "NetworkKernel",
    "StageKernel",
    "available_backends",
    "get_backend",
    "resolve_backend",
]
