"""Optional numba-accelerated backend (import-gated stub).

The batched ``numpy-sparse`` backend spends its time in a handful of
level sweeps (:mod:`repro.engine.treeops`); numba can fuse those into
single jit kernels and drop the per-level dispatch entirely.  This
module registers a ``numba`` backend only when numba is importable —
the container this repo ships in does not install it, so by default
requesting ``numba`` raises a :class:`RuntimeError` with an install
hint instead of an :class:`ImportError` at import time.

The current implementation is a correctness-first stub: it reuses
:class:`~repro.engine.batched.BatchedNetworkKernel` arrays and sweeps
unchanged (so it stays inside the bit-identity contract of the
backend-equivalence suite) and only relabels the kernel.  Replacing
the treeops sweeps with ``@njit`` loops is the intended follow-up once
the dependency is available.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # noqa: F401

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

UNAVAILABLE_REASON = ("numba is not installed in this environment "
                      "(pip install numba to enable)")


def register() -> None:
    """Register the numba backend, or record why it is unavailable."""
    from repro.engine import backends

    if not NUMBA_AVAILABLE:
        backends.register_unavailable("numba", UNAVAILABLE_REASON)
        return

    from repro.engine.batched import BatchedNetworkKernel

    class NumbaNetworkKernel(BatchedNetworkKernel):  # pragma: no cover
        backend_name = "numba"

    backends.register_backend(backends.EngineBackend(
        name="numba", factory=NumbaNetworkKernel,
        description="jit-compiled sweeps over the batched arenas"))
