"""Order-controlled scatter-add passes over parent-pointer forests.

Both analysis backends (the per-stage ``numpy-dense`` kernels and the
whole-design ``numpy-sparse`` batched kernel) reduce every tree
computation to three primitives over a parent-pointer array:

* :func:`accumulate_downstream` — bottom-up suffix sum (downstream
  capacitance), the vectorised replacement for the legacy reversed
  Python loop;
* :func:`accumulate_prefix` — top-down prefix sum along root-to-node
  paths (Elmore delay, shared-resistance path sums);
* :func:`scatter_add` — entry-ordered incidence application (per-node
  wire capacitance), replacing the dense node x wire matmul.

Floating-point addition is not associative, so *backend equivalence to
the bit* requires both backends to issue the same additions in the same
order.  The primitives pin that order down:

* ``accumulate_downstream`` processes depth levels deepest-first and,
  within a level, nodes in **descending index order** — exactly the
  order of the legacy ``for i in range(n - 1, 0, -1)`` loop (node
  indices are topological, and all children of a node share its
  level+1, so the legacy loop adds siblings into their parent in
  descending index order).  ``np.add.at`` applies duplicate indices
  sequentially in index-array order, which makes the level pass a
  faithful re-ordering of the same float additions — bit-identical, not
  merely close.
* ``accumulate_prefix`` is collision-free (each node reads its already
  final parent value), so only the per-node association
  ``acc[v] = acc[parent] + x[v]`` needs pinning.
* ``scatter_add`` applies incidence entries in construction order, the
  order the extraction recorded them.

Because additions into a parent only ever come from its own children
(same stage, same level), the primitives produce bit-identical results
whether a forest is processed stage-by-stage or as one concatenated
whole-design forest — the property the backend-equivalence suite
asserts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "build_levels",
    "accumulate_downstream",
    "accumulate_downstream_loop",
    "accumulate_prefix",
    "scatter_add",
]


def build_levels(parent: np.ndarray) -> list[np.ndarray]:
    """Per-depth node index arrays of a parent-pointer forest.

    ``parent[v]`` is the index of ``v``'s parent, or ``-1`` for roots;
    parents must precede children (topological index order).  Returns
    one ascending ``int64`` index array per depth, shallowest first.
    Level 0 holds the roots.
    """
    n = len(parent)
    depth = np.zeros(n, dtype=np.int64)
    parent = np.asarray(parent, dtype=np.int64)
    for i in range(n):
        p = parent[i]
        if p >= 0:
            if p >= i:
                raise ValueError(
                    f"parent[{i}] = {p} does not precede its child; "
                    f"node order must be topological")
            depth[i] = depth[p] + 1
    levels: list[np.ndarray] = []
    if n:
        order = np.argsort(depth, kind="stable")
        bounds = np.searchsorted(depth[order],
                                 np.arange(int(depth.max()) + 2))
        for d in range(len(bounds) - 1):
            levels.append(np.sort(order[bounds[d]:bounds[d + 1]]))
    return levels


def accumulate_downstream(values: np.ndarray, parent: np.ndarray,
                          levels: list[np.ndarray]) -> np.ndarray:
    """Bottom-up suffix sum: fold every node into its parent, in place.

    After the call, ``values[v]`` holds the sum of ``v``'s whole
    subtree.  ``values`` may be 1-D ``(n,)`` or 2-D ``(n, k)`` (the
    Monte-Carlo sample axis rides along).  Bit-identical to
    :func:`accumulate_downstream_loop` — see the module docstring for
    why the descending-index level order reproduces the legacy reversed
    loop exactly.
    """
    for level in reversed(levels[1:]):
        idx = level[::-1]  # descending index: the legacy loop's order
        np.add.at(values, parent[idx], values[idx])
    return values


def accumulate_downstream_loop(values: np.ndarray,
                               parent: np.ndarray) -> np.ndarray:
    """The legacy reversed-loop suffix sum (reference for micro-asserts).

    Kept as the executable specification of the accumulation order;
    tests assert :func:`accumulate_downstream` matches it bit for bit
    on seeded random trees.
    """
    for i in range(len(parent) - 1, 0, -1):
        p = parent[i]
        if p >= 0:
            values[p] += values[i]
    return values


def accumulate_prefix(values: np.ndarray, parent: np.ndarray,
                      levels: list[np.ndarray]) -> np.ndarray:
    """Top-down prefix sum along root-to-node paths, in place.

    After the call, ``values[v]`` holds the sum of the original values
    over the path from ``v``'s root down to ``v`` (roots keep their own
    value), associated as ``acc[v] = acc[parent[v]] + x[v]``.  Each
    level is a pure gather from the already-final parent level, so the
    pass is collision-free and deterministic.  ``values`` may be 1-D or
    2-D as in :func:`accumulate_downstream`.
    """
    for level in levels[1:]:
        values[level] += values[parent[level]]
    return values


def scatter_add(out: np.ndarray, index: np.ndarray,
                values: np.ndarray) -> np.ndarray:
    """Entry-ordered ``out[index[e]] += values[e]``, in place.

    ``np.add.at`` applies duplicate indices sequentially in entry
    order, which is the ordering contract the backends share for
    incidence (node <- wire capacitance) application.
    """
    np.add.at(out, index, values)
    return out
