"""Whole-design batched analysis kernel (the ``numpy-sparse`` backend).

The dense backend (:mod:`repro.engine.kernel`) dispatches a Python
work-stack over per-stage kernels — at 16k+ sinks the per-stage Python
overhead, not the array math, dominates every analysis.  This module
compiles the *entire* clock network into one concatenated
parent-pointer forest plus flat CSR-style incidence entries, so static
timing, crosstalk, EM and Monte Carlo each run as a handful of
vectorized sweeps over the full design:

* all stage RC trees live in one global node arena (``parent`` is -1
  at each stage root); downstream capacitance is one bottom-up
  level sweep, per-sink Elmore one top-down prefix sweep
  (:mod:`repro.engine.treeops`);
* the stage graph itself is scheduled as breadth-first levels, so
  entry times propagate stage-to-stage with one gather/scatter per
  tree depth instead of one Python frame per stage;
* Monte Carlo broadcasts the frozen per-wire variation rows
  (:class:`~repro.engine.incremental.FrozenVariation`) into global
  column order and reuses the same sweeps with a trailing sample axis.

Equivalence is bit-exact, not approximate: both backends issue the
same float operations in the same order (shared treeops primitives,
shared association for driver delay/slew/coupling sums — see the
treeops module docstring for the ordering argument), and the
backend-equivalence suite asserts ``np.array_equal`` across backends.

Results come back in the dense backend's DFS emission order — the
compile step precomputes the work-stack visit order so sink lists,
arrival matrices and per-wire EM records line up row for row.
"""

from __future__ import annotations

from typing import Annotated, Optional

import numpy as np

from repro.engine.treeops import (accumulate_downstream, accumulate_prefix,
                                  build_levels, scatter_add)
from repro.extract.capmodel import WireParasitics
from repro.extract.rcnetwork import ClockRcNetwork, Stage
from repro.reliability.em import DEFAULT_EM_FACTOR, EmReport, WireCurrent
from repro.route.router import RoutingResult
from repro.tech.technology import Technology
from repro.timing.arrival import ClockTiming, SinkTiming
from repro.timing.crosstalk import CrosstalkReport, SinkDelta
from repro.timing.montecarlo import MonteCarloResult
from repro.timing.slew import propagate_slew_array
from repro.units import Dim

#: Monte-Carlo sample-block width: 32 columns keeps the (nodes, block)
#: working set inside the last-level cache up to ~64k-sink designs.
_MC_BLOCK = 32


class _StageSlice:
    """Per-stage view into the global arenas (oracle entry point).

    Float arrays are numpy *views* — mutating them corrupts the live
    kernel exactly like mutating a dense :class:`StageKernel` array,
    which is what the verify-oracle fault-injection tests rely on.
    Index arrays (``parent``, ``ent_node``, ``ent_col``) are re-based
    local copies.
    """

    __slots__ = ("n", "m", "wire_ids", "parent", "ent_node", "ent_col",
                 "r", "cap_fixed", "area_half", "rest_half", "cc_half",
                 "act_half", "width", "thickness", "jmax")

    def __init__(self, **attrs) -> None:
        for name, value in attrs.items():
            setattr(self, name, value)


class BatchedNetworkKernel:
    """One clock network compiled to whole-design flat arrays."""

    backend_name = "numpy-sparse"

    def __init__(self, network: ClockRcNetwork, routing: RoutingResult,
                 parasitics: dict[int, WireParasitics]) -> None:
        self.network = network
        self.routing = routing
        self._parasitics = parasitics
        self._stale = False
        self._compile()

    # -- compilation -------------------------------------------------------

    def _compile(self) -> None:
        network = self.network
        routing = self.routing
        parasitics = self._parasitics
        stages = network.stages
        n_stages = len(stages)
        self.n_stages = n_stages

        node_base = np.zeros(n_stages + 1, dtype=np.int64)
        for s, st in enumerate(stages):
            node_base[s + 1] = node_base[s] + len(st.nodes)
        n = int(node_base[-1])
        self.node_base = node_base
        self.n = n
        self.root_node = node_base[:-1].copy()

        parent = np.full(n, -1, dtype=np.int64)
        r = np.zeros(n)
        cap_fixed = np.zeros(n)

        col_of: dict[int, int] = {}
        wire_ids: list[int] = []
        wire_far: list[int] = []
        col_base = np.zeros(n_stages + 1, dtype=np.int64)
        ent_node: list[int] = []
        ent_col: list[int] = []
        ent_base = np.zeros(n_stages + 1, dtype=np.int64)

        d_int = np.zeros(n_stages)
        r_drv = np.zeros(n_stages)
        s_int = np.zeros(n_stages)
        kr = np.zeros(n_stages)

        for s, st in enumerate(stages):
            base = int(node_base[s])
            for nd in st.nodes:
                g = base + nd.idx
                if nd.parent is not None:
                    parent[g] = base + nd.parent
                r[g] = nd.r
                cap_fixed[g] = nd.cap_fixed
                if nd.wire_id is not None:
                    col_of[nd.wire_id] = len(wire_far)
                    wire_far.append(g)
                    wire_ids.append(nd.wire_id)
            col_base[s + 1] = len(wire_far)
            for nd in st.nodes:
                for wid, _a, _b in nd.cap_wire:
                    ent_node.append(base + nd.idx)
                    ent_col.append(col_of[wid])
            ent_base[s + 1] = len(ent_node)
            drv = st.driver
            d_int[s] = drv.d_intrinsic
            r_drv[s] = drv.r_drive
            s_int[s] = drv.s_intrinsic
            kr[s] = drv.k_slew * drv.r_drive

        self.parent = parent
        self.levels = build_levels(parent)
        self.r = r
        self.cap_fixed = cap_fixed
        self.col_of = col_of
        self.wire_ids = wire_ids
        self.m = len(wire_far)
        self.wire_far = np.array(wire_far, dtype=np.int64)
        self.col_base = col_base
        self.ent_node = np.array(ent_node, dtype=np.int64)
        self.ent_col = np.array(ent_col, dtype=np.int64)
        self.ent_base = ent_base
        self.d_int, self.r_drv, self.s_int, self.kr = d_int, r_drv, s_int, kr

        m = self.m
        self.area_half = np.zeros(m)
        self.rest_half = np.zeros(m)
        self.cc_half = np.zeros(m)
        self.act_half = np.zeros(m)
        self.width = np.zeros(m)
        self.thickness = np.zeros(m)
        self.jmax = np.ones(m)
        for wid, col in col_of.items():
            self._load_wire(col, parasitics[wid], routing.tracks.wire(wid))

        # Flat sink arena: per-stage sink order, stage-major.
        sink_node: list[int] = []
        sink_stage: list[int] = []
        child_stage: list[int] = []
        pins: list = []
        sinks_of_stage: list[list[int]] = []
        for s, st in enumerate(stages):
            flat: list[int] = []
            base = int(node_base[s])
            for sk in st.sinks:
                fi = len(sink_node)
                flat.append(fi)
                sink_node.append(base + sk.node_idx)
                sink_stage.append(s)
                pins.append(sk.sink_pin)
                if sk.sink_pin is None:
                    child_stage.append(
                        network.stage_of_tree_node[sk.next_stage_tree_id])
                else:
                    child_stage.append(-1)
            sinks_of_stage.append(flat)
        self.sink_node = np.array(sink_node, dtype=np.int64)
        self.sink_stage = np.array(sink_stage, dtype=np.int64)
        self.child_stage = np.array(child_stage, dtype=np.int64)
        self.sink_pins = pins

        # Stage-graph schedule: breadth-first levels for entry-time
        # propagation (each child stage has exactly one entry sink, so
        # the per-level scatter is collision-free).
        sched: list[tuple[np.ndarray, np.ndarray]] = []
        level = [network.root_stage] if n_stages else []
        while level:
            lsinks = [fi for s in level for fi in sinks_of_stage[s]]
            lconn = [fi for fi in lsinks if child_stage[fi] >= 0]
            sched.append((np.array(lsinks, dtype=np.int64),
                          np.array(lconn, dtype=np.int64)))
            level = [child_stage[fi] for fi in lconn]
        self._sched = sched

        # Flop emission order: the dense backend's DFS work-stack order
        # (stack is LIFO, so the last-pushed child stage runs first).
        emit: list[int] = []
        work = [network.root_stage] if n_stages else []
        while work:
            s = work.pop()
            for fi in sinks_of_stage[s]:
                if child_stage[fi] < 0:
                    emit.append(fi)
                else:
                    work.append(child_stage[fi])
        self.emit_order = np.array(emit, dtype=np.int64)
        self.flop_pins = [pins[fi] for fi in emit]
        self.flop_names = [p.full_name for p in self.flop_pins]

        self._down: Optional[np.ndarray] = None
        self._xtalk = None  # (alignment, worst, expected) per flat sink
        self._frozen_ref = None
        self._frozen_perm: Optional[np.ndarray] = None

    def _load_wire(self, col: int, para: WireParasitics, wire) -> None:
        self.area_half[col] = para.c_area / 2.0
        self.rest_half[col] = para.c_rest / 2.0
        self.cc_half[col] = para.cc_signal / 2.0
        self.act_half[col] = sum(
            e.cc * e.activity for e in para.couplings) / 2.0
        self.width[col] = wire.width
        self.thickness[col] = wire.layer.thickness
        self.jmax[col] = wire.layer.em_jmax

    def _ensure(self) -> None:
        if self._stale:
            self._compile()
            self._stale = False

    def _invalidate(self) -> None:
        self._down = None
        self._xtalk = None

    def invalidate_caches(self) -> None:
        """Drop every derived-array cache (benchmark / debugging hook)."""
        self._invalidate()

    # -- incremental updates (NetworkKernel-compatible API) ----------------

    @property
    def num_stages(self) -> int:
        return len(self.network.stages)

    def stage_view(self, stage_idx: int) -> _StageSlice:
        """Backend-agnostic per-stage array view (oracle entry point)."""
        self._ensure()
        b0 = int(self.node_base[stage_idx])
        b1 = int(self.node_base[stage_idx + 1])
        c0 = int(self.col_base[stage_idx])
        c1 = int(self.col_base[stage_idx + 1])
        e0 = int(self.ent_base[stage_idx])
        e1 = int(self.ent_base[stage_idx + 1])
        parent = self.parent[b0:b1].copy()
        parent[parent >= 0] -= b0
        return _StageSlice(
            n=b1 - b0, m=c1 - c0, wire_ids=self.wire_ids[c0:c1],
            parent=parent,
            ent_node=self.ent_node[e0:e1] - b0,
            ent_col=self.ent_col[e0:e1] - c0,
            r=self.r[b0:b1], cap_fixed=self.cap_fixed[b0:b1],
            area_half=self.area_half[c0:c1],
            rest_half=self.rest_half[c0:c1],
            cc_half=self.cc_half[c0:c1], act_half=self.act_half[c0:c1],
            width=self.width[c0:c1], thickness=self.thickness[c0:c1],
            jmax=self.jmax[c0:c1])

    def patch_wire(self, stage_idx: int, wire_id: int,
                   para: WireParasitics) -> None:
        """Apply one wire's new parasitics/geometry in place."""
        if self._stale:
            # A recompile is already pending; it re-reads the live
            # extraction, so patching the doomed arena is wasted work.
            return
        col = self.col_of[wire_id]
        self._load_wire(col, para, self.routing.tracks.wire(wire_id))
        self.r[self.wire_far[col]] = para.r
        self._invalidate()

    def retrim_stage(self, stage_idx: int, stage: Stage) -> None:
        """Refresh one stage's pad/snake scalars after a retrim."""
        if self._stale:
            # The pending recompile reads the retrimmed network.
            return
        base = int(self.node_base[stage_idx])
        nodes = stage.nodes
        self.cap_fixed[base] = nodes[0].cap_fixed
        if len(nodes) > 1 and nodes[1].wire_id is None:
            self.cap_fixed[base + 1] = nodes[1].cap_fixed
            self.r[base + 1] = nodes[1].r
        self._invalidate()

    def recompile_stage(self, stage_idx: int,
                        parasitics: dict[int, WireParasitics]) -> None:
        """Mark the arena stale after a topology edit (lazy recompile).

        Topology edits shift every downstream global index, so the
        whole arena is rebuilt — lazily, once, however many stages the
        caller rebuilds in a batch.  One compile is a single pass over
        the network (~node count), far below one analysis sweep.
        """
        self._parasitics = parasitics
        self._stale = True
        self._invalidate()

    # -- shared sweeps -----------------------------------------------------

    def _down_nominal(self) -> np.ndarray:
        if self._down is None:
            down = self.cap_fixed.copy()
            half_sum = self.area_half + self.rest_half
            scatter_add(down, self.ent_node, half_sum[self.ent_col])
            accumulate_downstream(down, self.parent, self.levels)
            self._down = down
        return self._down

    def _propagate(self, per_sink: np.ndarray,
                   stage_base: Optional[np.ndarray]) -> np.ndarray:
        """Accumulate per-sink values across the stage graph.

        ``t[sink] = entry[stage] (+ stage_base[stage]) + per_sink[sink]``
        with each connector sink's ``t`` becoming its child stage's
        entry — the association of the dense backend's work-stack walk,
        level-batched.  Works for 1-D values and for ``(sinks, samples)``
        Monte-Carlo matrices alike.
        """
        entry = np.zeros((self.n_stages,) + per_sink.shape[1:])
        t = np.zeros_like(per_sink)
        for lsinks, lconn in self._sched:
            ss = self.sink_stage[lsinks]
            if stage_base is None:
                t[lsinks] = entry[ss] + per_sink[lsinks]
            else:
                t[lsinks] = (entry[ss] + stage_base[ss]) + per_sink[lsinks]
            if lconn.size:
                entry[self.child_stage[lconn]] = t[lconn]
        return t

    def _path_coupling(self, half: np.ndarray) -> np.ndarray:
        """Per-sink ``sum_k shared_r(s, k) * coupling_node(k)``."""
        cc_node = np.zeros(self.n)
        scatter_add(cc_node, self.ent_node, half[self.ent_col])
        accumulate_downstream(cc_node, self.parent, self.levels)
        acc = self.r * cc_node
        accumulate_prefix(acc, self.parent, self.levels)
        drive = self.r_drv * cc_node[self.root_node]
        return drive[self.sink_stage] + acc[self.sink_node]

    # -- analyses ----------------------------------------------------------

    def static_timing(self, tech: Technology) -> ClockTiming:
        """Elmore static timing; mirrors ``analyze_clock_timing``."""
        self._ensure()
        down = self._down_nominal()
        total = down[self.root_node]
        if total.size and float(total.min()) < 0.0:
            raise ValueError(
                f"load capacitance must be non-negative, "
                f"got {float(total.min())}")
        driver_delay = self.d_int + self.r_drv * total
        driver_slew = self.s_int + self.kr * total
        acc = self.r * down
        accumulate_prefix(acc, self.parent, self.levels)
        elm = acc[self.sink_node]
        t = self._propagate(elm, driver_delay)

        timing = ClockTiming(max_slew_limit=tech.max_slew)
        timing.stage_loads = total.tolist()
        timing.stage_delays = driver_delay.tolist()
        eo = self.emit_order
        slews = propagate_slew_array(
            driver_slew[self.sink_stage[eo]], elm[eo])
        timing.sinks = [
            SinkTiming(pin=pin, arrival=arrival, slew=slew)
            for pin, arrival, slew in zip(self.flop_pins, t[eo].tolist(),
                                          slews.tolist())]
        return timing

    def crosstalk(self, alignment: float = 0.5) -> CrosstalkReport:
        """Delta-delay analysis; mirrors ``analyze_crosstalk``."""
        if not 0.0 <= alignment <= 1.0:
            raise ValueError(
                f"alignment must be in [0, 1], got {alignment}")
        self._ensure()
        if self._xtalk is None or self._xtalk[0] != alignment:
            worst = self._path_coupling(self.cc_half)
            expected = self._path_coupling(self.act_half) * alignment
            self._xtalk = (alignment, worst, expected)
        w = self._propagate(self._xtalk[1], None)
        e = self._propagate(self._xtalk[2], None)
        report = CrosstalkReport(alignment=alignment)
        eo = self.emit_order
        report.sinks = [
            SinkDelta(pin=pin, worst=worst, expected=expected)
            for pin, worst, expected in zip(self.flop_pins, w[eo].tolist(),
                                            e[eo].tolist())]
        return report

    def em(self, vdd: Annotated[float, Dim.VOLTAGE],
           freq: Annotated[float, Dim.FREQUENCY],
           em_factor: float = DEFAULT_EM_FACTOR) -> EmReport:
        """Current-density check; mirrors ``analyze_em``."""
        if em_factor <= 0.0:
            raise ValueError("em_factor must be positive")
        self._ensure()
        down = self._down_nominal()
        i_eff = em_factor * down[self.wire_far] * vdd * freq
        density = i_eff / (self.width * self.thickness)
        util = density / self.jmax
        report = EmReport()
        report.wires = [
            WireCurrent(wire_id=wid, i_eff=i, density=d, jmax=j,
                        utilization=u)
            for wid, i, d, j, u in zip(self.wire_ids, i_eff.tolist(),
                                       density.tolist(), self.jmax.tolist(),
                                       util.tolist())]
        return report

    def monte_carlo(self, frozen) -> MonteCarloResult:
        """Process-variation sampling over frozen draws, whole-design.

        Samples are processed in blocks of :data:`_MC_BLOCK` columns so
        every sweep stays cache-resident instead of streaming the full
        ``(nodes, samples)`` matrices from main memory.  Columns are
        elementwise-independent throughout, so blocking cannot change a
        single bit of the result.
        """
        self._ensure()
        k = frozen.n_samples
        area_scale, r_scale = self._frozen_scales(frozen)
        buf = frozen.buf_matrix()

        arr = np.empty((len(self.emit_order), k))
        for lo in range(0, k, _MC_BLOCK):
            hi = min(lo + _MC_BLOCK, k)
            arr[:, lo:hi] = self._mc_block(area_scale[:, lo:hi],
                                           r_scale[:, lo:hi],
                                           buf[:, lo:hi])
        return MonteCarloResult(
            skew_samples=arr.max(axis=0) - arr.min(axis=0),
            latency_samples=arr.max(axis=0),
            arrivals=arr,
            sink_names=list(self.flop_names),
        )

    def _mc_block(self, area_scale: np.ndarray, r_scale: np.ndarray,
                  buf: np.ndarray) -> np.ndarray:
        """One sample-block of the Monte-Carlo sweep (emit-order rows)."""
        kb = area_scale.shape[1]
        caps = np.broadcast_to(self.cap_fixed[:, None],
                               (self.n, kb)).copy()
        if self.m:
            # Both entries of a column carry the same half-cap, so the
            # per-wire contribution is computed once and gathered.
            contrib = (self.area_half[:, None] * area_scale
                       + self.rest_half[:, None])
            np.add.at(caps, self.ent_node, contrib[self.ent_col])
        accumulate_downstream(caps, self.parent, self.levels)
        total = caps[self.root_node]
        driver_delay = (self.d_int[:, None]
                        + self.r_drv[:, None] * total) * buf

        r_eff = np.repeat(self.r[:, None], kb, axis=1)
        if self.m:
            r_eff[self.wire_far] *= r_scale
        rd = r_eff * caps
        accumulate_prefix(rd, self.parent, self.levels)
        t = self._propagate(rd[self.sink_node], driver_delay)
        return t[self.emit_order]

    def _frozen_scales(self, frozen) -> tuple[np.ndarray, np.ndarray]:
        """Frozen per-wire variation rows gathered into column order."""
        if self._frozen_ref is not frozen or self._frozen_perm is None:
            self._frozen_perm = np.array(
                [frozen.wire_row[wid] for wid in self.wire_ids],
                dtype=np.int64)
            self._frozen_ref = frozen
        perm = self._frozen_perm
        return frozen.area_matrix()[perm], frozen.r_matrix()[perm]
