"""Unit conventions used throughout the library.

The library uses a single coherent unit system chosen so that the common
physical products come out in convenient magnitudes with *no* conversion
factors sprinkled through the code:

===============  ==========  =======================================
Quantity         Unit        Notes
===============  ==========  =======================================
length           micrometer  all geometry (die, wires, spacing)
resistance       kiloohm     wire and driver resistance
capacitance      femtofarad  wire, pin and gate capacitance
time             picosecond  kOhm x fF = ps exactly
voltage          volt
frequency        gigahertz   1/ns; clock frequencies
energy           femtojoule  fF x V^2 = fJ
power            microwatt   fJ x GHz = uW exactly
current          microamp    fF x V x GHz = uA exactly
current density  uA/um^2
===============  ==========  =======================================

Because ``kOhm * fF == ps``, Elmore delays computed as plain products of
resistances and capacitances are already in picoseconds, and because
``fJ * GHz == uW``, switched-capacitance power ``alpha * f * C * V^2``
is already in microwatts.  Helper constants below exist purely for
readability at call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import ClassVar, Dict, Tuple, Union

# Length
UM: float = 1.0
NM: float = 1e-3
MM: float = 1e3

# Resistance
KOHM: float = 1.0
OHM: float = 1e-3

# Capacitance
FF: float = 1.0
PF: float = 1e3
AF: float = 1e-3

# Time
PS: float = 1.0
NS: float = 1e3

# Frequency
GHZ: float = 1.0
MHZ: float = 1e-3

# Power / energy
UW: float = 1.0
MW: float = 1e3
FJ: float = 1.0

# Current
UA: float = 1.0
MA: float = 1e3


# ---------------------------------------------------------------------------
# Abstract physical dimensions
# ---------------------------------------------------------------------------
#
# Every quantity in the coherent system above is a product of powers of
# four *base* dimensions: length (um), resistance (kOhm), capacitance
# (fF) and voltage (V).  Time, frequency, energy, power and current are
# derived — ``kOhm x fF = ps`` is not a numeric accident but the
# dimensional identity ``TIME = RESISTANCE * CAPACITANCE``, and the
# same holds for every other "exact" product in the table.  The
# :class:`Dim` lattice makes that algebra machine-checkable: the static
# analyzer (:mod:`repro.analysis.dimensions`) propagates dimensions
# through arithmetic and across calls, and the ``DIMENSIONS`` manifest
# below declares, once, which field/parameter names carry which
# dimension.

_Exp = Tuple[Fraction, Fraction, Fraction, Fraction]
_ExpLike = Union[int, Fraction]


def _exps(length: _ExpLike = 0, resistance: _ExpLike = 0,
          capacitance: _ExpLike = 0, voltage: _ExpLike = 0) -> _Exp:
    return (Fraction(length), Fraction(resistance),
            Fraction(capacitance), Fraction(voltage))


_BASE_SYMBOLS: Tuple[str, str, str, str] = ("L", "R", "C", "V")


@dataclass(frozen=True)
class Dim:
    """One point of the abstract dimension lattice.

    A concrete dimension is an exponent vector over the base
    dimensions ``(length, resistance, capacitance, voltage)``; the two
    special elements are ``Dim.TOP`` (unknown / conflicting — absorbs
    every operation, so an unknown can never launder into a concrete
    dimension) and ``Dim.BOTTOM`` (no value yet — the identity of
    :meth:`join`).
    """

    exps: _Exp = field(default_factory=_exps)
    special: str = ""  # "" (concrete) | "top" | "bottom"

    # The named quantities of the coherent unit system (assigned after
    # the class body; declared here so mypy knows them).
    DIMENSIONLESS: ClassVar["Dim"]
    LENGTH: ClassVar["Dim"]
    RESISTANCE: ClassVar["Dim"]
    CAPACITANCE: ClassVar["Dim"]
    VOLTAGE: ClassVar["Dim"]
    TIME: ClassVar["Dim"]
    FREQUENCY: ClassVar["Dim"]
    ENERGY: ClassVar["Dim"]
    POWER: ClassVar["Dim"]
    CURRENT: ClassVar["Dim"]
    CURRENT_DENSITY: ClassVar["Dim"]
    RESISTANCE_PER_LENGTH: ClassVar["Dim"]
    CAPACITANCE_PER_LENGTH: ClassVar["Dim"]
    CAPACITANCE_PER_AREA: ClassVar["Dim"]
    TOP: ClassVar["Dim"]
    BOTTOM: ClassVar["Dim"]

    # -- lattice / algebra ---------------------------------------------------

    @property
    def is_concrete(self) -> bool:
        """True for an actual dimension (neither ``TOP`` nor ``BOTTOM``)."""
        return not self.special

    @property
    def is_dimensionless(self) -> bool:
        return not self.special and all(e == 0 for e in self.exps)

    def _combine(self, other: "Dim", sign: int) -> "Dim":
        if "bottom" in (self.special, other.special):
            return Dim.BOTTOM
        if "top" in (self.special, other.special):
            return Dim.TOP
        return Dim(_exps(*(a + sign * b
                           for a, b in zip(self.exps, other.exps))))

    def mul(self, other: "Dim") -> "Dim":
        """Dimension of a product: exponents add."""
        return self._combine(other, 1)

    def div(self, other: "Dim") -> "Dim":
        """Dimension of a quotient: exponents subtract."""
        return self._combine(other, -1)

    def pow(self, k: _ExpLike) -> "Dim":
        """Dimension of a power: exponents scale (``pow(1/2)`` = sqrt)."""
        if self.special:
            return self
        kk = Fraction(k)
        return Dim(_exps(*(e * kk for e in self.exps)))

    def inverse(self) -> "Dim":
        """Dimension of a reciprocal (``1/TIME == FREQUENCY``)."""
        return self.pow(-1)

    def join(self, other: "Dim") -> "Dim":
        """Lattice join: least element above both (merge points)."""
        if self.special == "bottom":
            return other
        if other.special == "bottom":
            return self
        if self == other:
            return self
        return Dim.TOP

    # -- rendering -----------------------------------------------------------

    def label(self) -> str:
        """Human-readable name: ``"time"``, ``"C/L^2"``, ``"<top>"``."""
        if self.special:
            return f"<{self.special}>"
        for name, dim in DIM_NAMES.items():
            if dim == self:
                return name.lower().replace("_", "-")
        num = [f"{s}^{e}" if e != 1 else s
               for s, e in zip(_BASE_SYMBOLS, self.exps) if e > 0]
        den = [f"{s}^{-e}" if e != -1 else s
               for s, e in zip(_BASE_SYMBOLS, self.exps) if e < 0]
        head = "*".join(num) or "1"
        return f"{head}/{'*'.join(den)}" if den else head

    def __str__(self) -> str:
        return self.label()


Dim.DIMENSIONLESS = Dim()
Dim.LENGTH = Dim(_exps(length=1))
Dim.RESISTANCE = Dim(_exps(resistance=1))
Dim.CAPACITANCE = Dim(_exps(capacitance=1))
Dim.VOLTAGE = Dim(_exps(voltage=1))
# kOhm x fF = ps: time *is* resistance x capacitance in this system.
Dim.TIME = Dim.RESISTANCE.mul(Dim.CAPACITANCE)
Dim.FREQUENCY = Dim.TIME.inverse()
# fF x V^2 = fJ
Dim.ENERGY = Dim.CAPACITANCE.mul(Dim.VOLTAGE).mul(Dim.VOLTAGE)
# fJ x GHz = uW
Dim.POWER = Dim.ENERGY.mul(Dim.FREQUENCY)
# fF x V x GHz = uA
Dim.CURRENT = Dim.CAPACITANCE.mul(Dim.VOLTAGE).mul(Dim.FREQUENCY)
Dim.CURRENT_DENSITY = Dim.CURRENT.div(Dim.LENGTH.pow(2))
# Per-unit-length (and per-area) coefficients of the tech layer tables:
# kOhm/um, fF/um and fF/um^2.
Dim.RESISTANCE_PER_LENGTH = Dim.RESISTANCE.div(Dim.LENGTH)
Dim.CAPACITANCE_PER_LENGTH = Dim.CAPACITANCE.div(Dim.LENGTH)
Dim.CAPACITANCE_PER_AREA = Dim.CAPACITANCE.div(Dim.LENGTH.pow(2))
Dim.TOP = Dim(special="top")
Dim.BOTTOM = Dim(special="bottom")

#: The named quantities, for labels and for the ``Dim.X`` annotation
#: syntax the static analyzer recognises.
DIM_NAMES: Dict[str, Dim] = {
    "DIMENSIONLESS": Dim.DIMENSIONLESS,
    "LENGTH": Dim.LENGTH,
    "RESISTANCE": Dim.RESISTANCE,
    "CAPACITANCE": Dim.CAPACITANCE,
    "VOLTAGE": Dim.VOLTAGE,
    "TIME": Dim.TIME,
    "FREQUENCY": Dim.FREQUENCY,
    "ENERGY": Dim.ENERGY,
    "POWER": Dim.POWER,
    "CURRENT": Dim.CURRENT,
    "CURRENT_DENSITY": Dim.CURRENT_DENSITY,
    "RESISTANCE_PER_LENGTH": Dim.RESISTANCE_PER_LENGTH,
    "CAPACITANCE_PER_LENGTH": Dim.CAPACITANCE_PER_LENGTH,
    "CAPACITANCE_PER_AREA": Dim.CAPACITANCE_PER_AREA,
    "TOP": Dim.TOP,
    "BOTTOM": Dim.BOTTOM,
}

#: Dimension of every unit constant defined above, keyed by the
#: constant's name.  ``3.0 * NS`` therefore *infers* as a time without
#: any annotation — multiplying by a named unit constant is the one
#: blessed way to write a conversion.
UNIT_DIMENSIONS: Dict[str, Dim] = {
    "UM": Dim.LENGTH, "NM": Dim.LENGTH, "MM": Dim.LENGTH,
    "KOHM": Dim.RESISTANCE, "OHM": Dim.RESISTANCE,
    "FF": Dim.CAPACITANCE, "PF": Dim.CAPACITANCE, "AF": Dim.CAPACITANCE,
    "PS": Dim.TIME, "NS": Dim.TIME,
    "GHZ": Dim.FREQUENCY, "MHZ": Dim.FREQUENCY,
    "UW": Dim.POWER, "MW": Dim.POWER,
    "FJ": Dim.ENERGY,
    "UA": Dim.CURRENT, "MA": Dim.CURRENT,
}

#: The machine-readable dimension manifest: field / parameter / mapping
#: key names used across the technology model, the design specs, the
#: DEF-lite importer and the analysis engines, mapped to the dimension
#: their docstring convention promises.  The static analyzer seeds its
#: interprocedural inference from these names (``tech.vdd`` is a
#: voltage wherever it flows) and rule Q005 checks every consumption of
#: a declared field against this table.  Add a name here when a new
#: unit-bearing field enters a spec/tech/engine surface; the Q004
#: coverage ratchet then requires public signatures using that name to
#: carry an ``Annotated[float, Dim.X]`` marker.
DIMENSIONS: Dict[str, Dim] = {
    # geometry (um)
    "die_edge": Dim.LENGTH,
    "min_width": Dim.LENGTH,
    "pitch": Dim.LENGTH,
    "min_spacing": Dim.LENGTH,
    "thickness": Dim.LENGTH,
    "coupling_reach": Dim.LENGTH,
    "corr_grid": Dim.LENGTH,
    "radius": Dim.LENGTH,
    "length": Dim.LENGTH,
    "width": Dim.LENGTH,
    "spacing": Dim.LENGTH,
    # resistance (kOhm)
    "r": Dim.RESISTANCE,
    "r_drive": Dim.RESISTANCE,
    "sheet_res": Dim.RESISTANCE,
    # capacitance (fF)
    "cap": Dim.CAPACITANCE,
    "cap_fixed": Dim.CAPACITANCE,
    "cap_ff": Dim.CAPACITANCE,
    "load_ff": Dim.CAPACITANCE,
    "c_in": Dim.CAPACITANCE,
    "c_load": Dim.CAPACITANCE,
    "c_total": Dim.CAPACITANCE,
    "c_switched": Dim.CAPACITANCE,
    "c_rest": Dim.CAPACITANCE,
    "cc": Dim.CAPACITANCE,
    "cc_signal": Dim.CAPACITANCE,
    "cc_clock": Dim.CAPACITANCE,
    "max_cap": Dim.CAPACITANCE,
    "flop_cin": Dim.CAPACITANCE,
    "clock_pin_cap": Dim.CAPACITANCE,
    "pad_cap": Dim.CAPACITANCE,
    "snake_cap": Dim.CAPACITANCE,
    "wire_cap": Dim.CAPACITANCE,
    "pin_cap": Dim.CAPACITANCE,
    "buffer_in_cap": Dim.CAPACITANCE,
    "coupling_cap": Dim.CAPACITANCE,
    "clock_wire_cap": Dim.CAPACITANCE,
    "clock_coupling_cap": Dim.CAPACITANCE,
    # per-length RC coefficients
    "r_per_um": Dim.RESISTANCE_PER_LENGTH,
    "c_per_um": Dim.CAPACITANCE_PER_LENGTH,
    "c_fringe": Dim.CAPACITANCE_PER_LENGTH,
    "c_fringe_far": Dim.CAPACITANCE_PER_LENGTH,
    "c_area": Dim.CAPACITANCE_PER_AREA,
    # time (ps)
    "clock_period": Dim.TIME,
    "period_ps": Dim.TIME,
    "max_slew": Dim.TIME,
    "max_slew_limit": Dim.TIME,
    "d_intrinsic": Dim.TIME,
    "s_intrinsic": Dim.TIME,
    "arrival": Dim.TIME,
    "slew": Dim.TIME,
    "driver_slew": Dim.TIME,
    "skew": Dim.TIME,
    "latency": Dim.TIME,
    "elmore": Dim.TIME,
    "m1": Dim.TIME,
    # frequency (GHz)
    "freq": Dim.FREQUENCY,
    "clock_freq": Dim.FREQUENCY,
    # voltage (V)
    "vdd": Dim.VOLTAGE,
    # energy (fJ) / power (uW)
    "e_internal": Dim.ENERGY,
    "p_leak": Dim.POWER,
    "p_wire": Dim.POWER,
    "p_pin": Dim.POWER,
    "p_buffer_cap": Dim.POWER,
    "p_pad": Dim.POWER,
    "p_buffer_internal": Dim.POWER,
    "p_leakage": Dim.POWER,
    "p_dynamic": Dim.POWER,
    "p_total": Dim.POWER,
    # current (uA) / current density (uA/um^2)
    "i_eff": Dim.CURRENT,
    "em_jmax": Dim.CURRENT_DENSITY,
    "jmax": Dim.CURRENT_DENSITY,
    "density": Dim.CURRENT_DENSITY,
    # declared-dimensionless ratios and probabilities
    "activity": Dim.DIMENSIONLESS,
    "mean_activity": Dim.DIMENSIONLESS,
    "alignment": Dim.DIMENSIONLESS,
    "utilization": Dim.DIMENSIONLESS,
    "width_mult": Dim.DIMENSIONLESS,
    "space_mult": Dim.DIMENSIONLESS,
    "gate_enable": Dim.DIMENSIONLESS,
    "enable_probability": Dim.DIMENSIONLESS,
    "em_factor": Dim.DIMENSIONLESS,
    "blockage_fraction": Dim.DIMENSIONLESS,
    "aggressors_per_sink": Dim.DIMENSIONLESS,
}


def ohm_per_um(sheet_res_ohm: float, width_um: float) -> float:
    """Wire resistance per micron of length, in kOhm/um.

    ``sheet_res_ohm`` is the sheet resistance in ohms/square (the unit
    foundry tech files use); ``width_um`` is the drawn wire width.
    """
    if width_um <= 0.0:
        raise ValueError(f"wire width must be positive, got {width_um}")
    return (sheet_res_ohm * OHM) / width_um
