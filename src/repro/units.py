"""Unit conventions used throughout the library.

The library uses a single coherent unit system chosen so that the common
physical products come out in convenient magnitudes with *no* conversion
factors sprinkled through the code:

===============  ==========  =======================================
Quantity         Unit        Notes
===============  ==========  =======================================
length           micrometer  all geometry (die, wires, spacing)
resistance       kiloohm     wire and driver resistance
capacitance      femtofarad  wire, pin and gate capacitance
time             picosecond  kOhm x fF = ps exactly
voltage          volt
frequency        gigahertz   1/ns; clock frequencies
energy           femtojoule  fF x V^2 = fJ
power            microwatt   fJ x GHz = uW exactly
current          microamp    fF x V x GHz = uA exactly
current density  uA/um^2
===============  ==========  =======================================

Because ``kOhm * fF == ps``, Elmore delays computed as plain products of
resistances and capacitances are already in picoseconds, and because
``fJ * GHz == uW``, switched-capacitance power ``alpha * f * C * V^2``
is already in microwatts.  Helper constants below exist purely for
readability at call sites.
"""

from __future__ import annotations

# Length
UM: float = 1.0
NM: float = 1e-3
MM: float = 1e3

# Resistance
KOHM: float = 1.0
OHM: float = 1e-3

# Capacitance
FF: float = 1.0
PF: float = 1e3
AF: float = 1e-3

# Time
PS: float = 1.0
NS: float = 1e3

# Frequency
GHZ: float = 1.0
MHZ: float = 1e-3

# Power / energy
UW: float = 1.0
MW: float = 1e3
FJ: float = 1.0

# Current
UA: float = 1.0
MA: float = 1e3


def ohm_per_um(sheet_res_ohm: float, width_um: float) -> float:
    """Wire resistance per micron of length, in kOhm/um.

    ``sheet_res_ohm`` is the sheet resistance in ohms/square (the unit
    foundry tech files use); ``width_um`` is the drawn wire width.
    """
    if width_um <= 0.0:
        raise ValueError(f"wire width must be positive, got {width_um}")
    return (sheet_res_ohm * OHM) / width_um
