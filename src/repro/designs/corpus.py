"""The built-in design corpus: registered families.

Four families ship with the package:

* ``synthetic`` — the legacy ``ckt*`` suite (Table 1) plus the macro
  variants and the scaling rungs.  Every spec pins ``seed_salt`` to
  its historical name, so these regenerate **bit-identically** to the
  pre-corpus generator (the golden-hash tests enforce it).
* ``hierarchical`` — center-driven H-tree SoCs: sinks cluster in the
  leaf regions of a recursive-center split, with a blockage-heavy
  variant.
* ``gated`` — multi-domain SoCs with gated (quiet) secondary domains
  and non-uniform aggressor traffic.
* ``imported`` — DEF-lite JSON descriptions shipped under
  ``repro/designs/data`` and built through the validating importer.
"""

from __future__ import annotations

from repro.designs.registry import register_design_family
from repro.designs.spec import DesignSpec

#: The six-design suite every table iterates over (Table 1 reports it).
_SUITE: tuple[DesignSpec, ...] = (
    DesignSpec("ckt64", n_sinks=64, die_edge=280.0, seed=11,
               seed_salt="ckt64"),
    DesignSpec("ckt128", n_sinks=128, die_edge=400.0, seed=12,
               seed_salt="ckt128"),
    DesignSpec("ckt256", n_sinks=256, die_edge=560.0, seed=13,
               seed_salt="ckt256"),
    DesignSpec("ckt512", n_sinks=512, die_edge=800.0, seed=14,
               seed_salt="ckt512"),
    DesignSpec("ckt1024", n_sinks=1024, die_edge=1120.0, seed=15,
               seed_salt="ckt1024"),
    DesignSpec("ckt2048", n_sinks=2048, die_edge=1600.0, seed=16,
               seed_salt="ckt2048"),
)

#: Macro variants plus the scaling-benchmark rungs above Table-1 sizes.
_EXTRA: tuple[DesignSpec, ...] = (
    DesignSpec("ckt256m", n_sinks=256, die_edge=560.0, seed=13,
               n_blockages=3, seed_salt="ckt256m"),
    DesignSpec("ckt512m", n_sinks=512, die_edge=800.0, seed=14,
               n_blockages=4, seed_salt="ckt512m"),
    DesignSpec("ckt4096", n_sinks=4096, die_edge=2240.0, seed=17,
               seed_salt="ckt4096"),
    DesignSpec("ckt16384", n_sinks=16384, die_edge=4480.0, seed=19,
               seed_salt="ckt16384"),
)

_HIERARCHICAL: tuple[DesignSpec, ...] = (
    DesignSpec("soc_h64", n_sinks=64, die_edge=280.0, seed=21,
               seed_salt="soc_h64", generator="htree", htree_levels=2),
    DesignSpec("soc_h256", n_sinks=256, die_edge=560.0, seed=22,
               seed_salt="soc_h256", generator="htree", htree_levels=3),
    DesignSpec("soc_h256m", n_sinks=256, die_edge=560.0, seed=23,
               seed_salt="soc_h256m", generator="htree", htree_levels=3,
               n_blockages=4, blockage_fraction=0.14),
    DesignSpec("soc_h1024", n_sinks=1024, die_edge=1120.0, seed=24,
               seed_salt="soc_h1024", generator="htree", htree_levels=4),
)

_GATED: tuple[DesignSpec, ...] = (
    DesignSpec("soc_g128", n_sinks=128, die_edge=400.0, seed=31,
               seed_salt="soc_g128", generator="htree", htree_levels=2,
               n_domains=2, gate_enable=0.35, traffic="hotspot"),
    DesignSpec("soc_g256", n_sinks=256, die_edge=560.0, seed=32,
               seed_salt="soc_g256", generator="htree", htree_levels=3,
               n_domains=4, gate_enable=0.25, traffic="edge",
               n_blockages=3, blockage_fraction=0.14,
               aggressor_windows=True),
)

_IMPORTED: tuple[DesignSpec, ...] = (
    DesignSpec("imp_uart", n_sinks=48, die_edge=240.0,
               seed_salt="imp_uart", generator="imported",
               source="imp_uart.json"),
    DesignSpec("imp_noc", n_sinks=96, die_edge=360.0,
               seed_salt="imp_noc", generator="imported",
               source="imp_noc.json"),
)


def register_builtin_families() -> None:
    """Register the shipped corpus (idempotence is the caller's job)."""
    register_design_family(
        "synthetic",
        "legacy ckt* suite: clustered sinks, flat aggressor traffic",
        _SUITE + _EXTRA)
    register_design_family(
        "hierarchical",
        "center-driven H-tree SoCs with block-local subtrees",
        _HIERARCHICAL)
    register_design_family(
        "gated",
        "multi-domain SoCs with gated quiet domains and hotspot/edge traffic",
        _GATED)
    register_design_family(
        "imported",
        "DEF-lite JSON floorplans built through the validating importer",
        _IMPORTED)


def benchmark_suite() -> tuple[DesignSpec, ...]:
    """The standard six-design suite used by all experiments."""
    return _SUITE
