"""Spec -> placed design: the generator dispatcher.

Each :class:`~repro.designs.spec.DesignSpec` names its generator;
:func:`generate_design` seeds the RNG from the spec (salt from
``seed_salt``, never from the display name of a registered spec),
builds the empty die, and hands off to the registered generator
function.  ``"imported"`` is special: the design comes from the spec's
DEF-lite source file instead of a seeded construction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.designs.soc import generate_htree
from repro.designs.spec import DesignSpec, resolve_source, seeded_rng
from repro.designs.synthetic import generate_clustered
from repro.geom.rect import Rect
from repro.netlist.design import Design

#: A generator populates the prepared (die-only) design in place.
GeneratorFn = Callable[[DesignSpec, np.random.Generator, Design], None]

_GENERATORS: dict[str, GeneratorFn] = {
    "clustered": generate_clustered,
    "htree": generate_htree,
}


def register_generator(name: str, fn: GeneratorFn) -> None:
    """Register a custom generator under ``name`` (unique)."""
    if name in _GENERATORS or name == "imported":
        raise ValueError(f"generator {name!r} registered twice")
    _GENERATORS[name] = fn


def generator_names() -> tuple[str, ...]:
    """Every usable ``DesignSpec.generator`` value, sorted."""
    return tuple(sorted(_GENERATORS)) + ("imported",)  # static: ok[C003] populated at import time


def generate_design(spec: DesignSpec) -> Design:
    """Deterministically build the placed design for ``spec``."""
    if spec.generator == "imported":
        from repro.designs.importer import import_design

        design = import_design(resolve_source(spec), name=spec.name)
        return design
    if spec.n_sinks < 1:
        raise ValueError("need at least one sink")
    try:
        generator = _GENERATORS[spec.generator]  # static: ok[C003] populated at import time
    except KeyError:
        raise KeyError(f"spec {spec.name!r} names unknown generator "
                       f"{spec.generator!r}; "
                       f"registered: {generator_names()}") from None
    rng = seeded_rng(spec)
    die = Rect(0.0, 0.0, spec.die_edge, spec.die_edge)
    design = Design(name=spec.name, die=die, clock_period=spec.clock_period)
    generator(spec, rng, design)
    design.validate()
    return design
