"""DEF-lite JSON import: externally-described floorplans.

The DEF-lite schema is the exchange format for bringing real designs
into the corpus without a full DEF/LEF parser: a die box, the clock
(period + source), sink pins, hard blockages, and aggressor nets with
switching activities (optionally windows).  Everything is plain JSON in
um/ps/fF.

Schema validation runs through the existing verifier check registry
(:mod:`repro.verify.registry`) as ``kind="import"`` checks: each rule
yields typed :class:`~repro.verify.diagnostics.Diagnostic` records, so
``repro designs validate`` renders findings exactly like ``repro
lint``, and :func:`import_design` raises
:class:`~repro.verify.diagnostics.VerificationError` when any check
reports an ERROR.

Example document::

    {
      "deflite": 1,
      "name": "uart_top",
      "die": [0.0, 0.0, 300.0, 300.0],
      "clock": {"period_ps": 1000.0, "source_xy": [150.0, 0.0]},
      "pins": [{"name": "u0_ff1", "xy": [12.5, 40.0], "cap_ff": 1.8}],
      "blockages": [[50.0, 50.0, 110.0, 110.0]],
      "aggressors": [
        {"name": "bus0", "activity": 0.30,
         "driver_xy": [20.0, 20.0],
         "sink_xys": [[30.0, 25.0], [18.0, 40.0]],
         "load_ff": 1.2,
         "window_ps": [100.0, 400.0]}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.cell import CellKind, PinDirection
from repro.netlist.design import Design
from repro.netlist.net import NetKind
from repro.verify.diagnostics import (Diagnostic, Severity,
                                      VerificationError, VerifyReport)
from repro.verify.registry import register, run_checks

#: Supported DEF-lite schema version.
DEFLITE_SCHEMA = 1

#: Default aggressor sink pin load when the document omits ``load_ff``.
DEFAULT_LOAD_FF = 1.2


@dataclass(frozen=True)
class ImportContext:
    """What the ``kind="import"`` checks inspect: the parsed document."""

    data: dict[str, Any]
    path: Optional[Path] = None


def _is_xy(value: Any) -> bool:
    return (isinstance(value, (list, tuple)) and len(value) == 2
            and all(isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in value))


def _is_box(value: Any) -> bool:
    return (isinstance(value, (list, tuple)) and len(value) == 4
            and all(isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in value))


@register("import-schema", kind="import")
def check_deflite_schema(ctx: Any) -> Iterator[Diagnostic]:
    """DEF-lite document structure: version, required keys, field types."""
    if not isinstance(ctx, ImportContext):
        return
    data = ctx.data
    version = data.get("deflite")
    if version != DEFLITE_SCHEMA:
        yield Diagnostic(rule="import-schema", severity=Severity.ERROR,
                         message=f"unsupported deflite schema {version!r} "
                                 f"(expected {DEFLITE_SCHEMA})",
                         hint='the document must carry "deflite": 1')
        return
    if not isinstance(data.get("name"), str) or not data.get("name"):
        yield Diagnostic(rule="import-schema", severity=Severity.ERROR,
                         message='"name" must be a non-empty string')
    if not _is_box(data.get("die")):
        yield Diagnostic(rule="import-schema", severity=Severity.ERROR,
                         message='"die" must be [xlo, ylo, xhi, yhi] in um')
    clock = data.get("clock")
    if not isinstance(clock, dict) or not _is_xy(clock.get("source_xy")) \
            or not isinstance(clock.get("period_ps"), (int, float)):
        yield Diagnostic(rule="import-schema", severity=Severity.ERROR,
                         message='"clock" must carry "period_ps" and '
                                 '"source_xy"')
    pins = data.get("pins")
    if not isinstance(pins, list) or not pins:
        yield Diagnostic(rule="import-schema", severity=Severity.ERROR,
                         message='"pins" must be a non-empty list of sink '
                                 'pins')
        pins = []
    for i, pin in enumerate(pins):
        if not isinstance(pin, dict) or not isinstance(pin.get("name"), str) \
                or not _is_xy(pin.get("xy")):
            yield Diagnostic(rule="import-schema", severity=Severity.ERROR,
                             obj=f"pins[{i}]",
                             message='each pin needs "name" and "xy"')
    for i, box in enumerate(data.get("blockages", [])):
        if not _is_box(box):
            yield Diagnostic(rule="import-schema", severity=Severity.ERROR,
                             obj=f"blockages[{i}]",
                             message="each blockage must be "
                                     "[xlo, ylo, xhi, yhi]")
    for i, agg in enumerate(data.get("aggressors", [])):
        if not isinstance(agg, dict) \
                or not isinstance(agg.get("name"), str) \
                or not _is_xy(agg.get("driver_xy")) \
                or not isinstance(agg.get("sink_xys"), list) \
                or not agg.get("sink_xys") \
                or not all(_is_xy(xy) for xy in agg["sink_xys"]):
            yield Diagnostic(rule="import-schema", severity=Severity.ERROR,
                             obj=f"aggressors[{i}]",
                             message='each aggressor needs "name", '
                                     '"driver_xy" and non-empty "sink_xys"')


@register("import-geometry", kind="import")
def check_deflite_geometry(ctx: Any) -> Iterator[Diagnostic]:
    """Geometric sanity: everything on the die, nothing inside a macro."""
    if not isinstance(ctx, ImportContext):
        return
    data = ctx.data
    if not _is_box(data.get("die")):
        return  # import-schema already reported it
    die = Rect(*data["die"])
    if die.xhi <= die.xlo or die.yhi <= die.ylo:
        yield Diagnostic(rule="import-geometry", severity=Severity.ERROR,
                         message=f"die box {data['die']} is degenerate")
        return
    blockages = [Rect(*b) for b in data.get("blockages", [])
                 if _is_box(b)]

    def on_die(xy: Any) -> bool:
        return die.contains(Point(float(xy[0]), float(xy[1])))

    def in_macro(xy: Any) -> bool:
        p = Point(float(xy[0]), float(xy[1]))
        return any(b.contains(p) for b in blockages)

    clock = data.get("clock", {})
    if isinstance(clock, dict) and _is_xy(clock.get("source_xy")) \
            and not on_die(clock["source_xy"]):
        yield Diagnostic(rule="import-geometry", severity=Severity.ERROR,
                         message="clock source is outside the die")
    for i, box in enumerate(data.get("blockages", [])):
        if _is_box(box):
            rect = Rect(*box)
            if not (die.contains(Point(rect.xlo, rect.ylo))
                    and die.contains(Point(rect.xhi, rect.yhi))):
                yield Diagnostic(rule="import-geometry",
                                 severity=Severity.ERROR,
                                 obj=f"blockages[{i}]",
                                 message="blockage extends outside the die")
    for i, pin in enumerate(data.get("pins", [])):
        if not isinstance(pin, dict) or not _is_xy(pin.get("xy")):
            continue
        if not on_die(pin["xy"]):
            yield Diagnostic(rule="import-geometry", severity=Severity.ERROR,
                             obj=f"pins[{i}]",
                             message=f"pin {pin.get('name')!r} is outside "
                                     f"the die")
        elif in_macro(pin["xy"]):
            yield Diagnostic(rule="import-geometry", severity=Severity.ERROR,
                             obj=f"pins[{i}]",
                             message=f"pin {pin.get('name')!r} sits inside "
                                     f"a blockage")
    for i, agg in enumerate(data.get("aggressors", [])):
        if not isinstance(agg, dict):
            continue
        for label, xys in (("driver", [agg.get("driver_xy")]),
                           ("sink", agg.get("sink_xys", []))):
            if not isinstance(xys, list):
                continue
            for xy in xys:
                if _is_xy(xy) and (not on_die(xy) or in_macro(xy)):
                    yield Diagnostic(rule="import-geometry",
                                     severity=Severity.ERROR,
                                     obj=f"aggressors[{i}]",
                                     message=f"{label} pin of "
                                             f"{agg.get('name')!r} is off-die "
                                             f"or inside a blockage")


@register("import-electrical", kind="import")
def check_deflite_electrical(ctx: Any) -> Iterator[Diagnostic]:
    """Electrical sanity: caps, period, activities, switching windows."""
    if not isinstance(ctx, ImportContext):
        return
    data = ctx.data
    clock = data.get("clock", {})
    period = clock.get("period_ps") if isinstance(clock, dict) else None
    if isinstance(period, (int, float)) and period <= 0:
        yield Diagnostic(rule="import-electrical", severity=Severity.ERROR,
                         message=f"clock period {period} ps must be positive")
    for i, pin in enumerate(data.get("pins", [])):
        if isinstance(pin, dict) and "cap_ff" in pin:
            cap = pin["cap_ff"]
            if not isinstance(cap, (int, float)) or cap <= 0:
                yield Diagnostic(rule="import-electrical",
                                 severity=Severity.ERROR,
                                 obj=f"pins[{i}]",
                                 message=f"pin cap {cap!r} fF must be a "
                                         f"positive number")
    for i, agg in enumerate(data.get("aggressors", [])):
        if not isinstance(agg, dict):
            continue
        activity = agg.get("activity")
        if not isinstance(activity, (int, float)) \
                or not 0.0 <= float(activity) <= 1.0:
            yield Diagnostic(rule="import-electrical",
                             severity=Severity.ERROR,
                             obj=f"aggressors[{i}]",
                             message=f"activity {activity!r} must be in "
                                     f"[0, 1]")
        window = agg.get("window_ps")
        if window is not None:
            bad = (not isinstance(window, (list, tuple)) or len(window) != 2
                   or not all(isinstance(v, (int, float)) for v in window)
                   or window[0] < 0 or window[1] <= window[0])
            if bad:
                yield Diagnostic(rule="import-electrical",
                                 severity=Severity.ERROR,
                                 obj=f"aggressors[{i}]",
                                 message=f"window {window!r} must be "
                                         f"[start, end] with start < end")
            elif isinstance(period, (int, float)) and window[1] > period:
                yield Diagnostic(rule="import-electrical",
                                 severity=Severity.WARN,
                                 obj=f"aggressors[{i}]",
                                 message=f"window {window!r} extends past "
                                         f"the clock period ({period} ps)")


@register("import-names", kind="import")
def check_deflite_names(ctx: Any) -> Iterator[Diagnostic]:
    """Name uniqueness: duplicate pins or nets would collide on import."""
    if not isinstance(ctx, ImportContext):
        return
    data = ctx.data
    seen: set[str] = set()
    for i, pin in enumerate(data.get("pins", [])):
        name = pin.get("name") if isinstance(pin, dict) else None
        if isinstance(name, str):
            if name in seen:
                yield Diagnostic(rule="import-names", severity=Severity.ERROR,
                                 obj=f"pins[{i}]",
                                 message=f"duplicate pin name {name!r}")
            seen.add(name)
    nets: set[str] = set()
    for i, agg in enumerate(data.get("aggressors", [])):
        name = agg.get("name") if isinstance(agg, dict) else None
        if isinstance(name, str):
            if name in nets:
                yield Diagnostic(rule="import-names", severity=Severity.ERROR,
                                 obj=f"aggressors[{i}]",
                                 message=f"duplicate aggressor net {name!r}")
            nets.add(name)


def load_deflite(path: Union[str, Path]) -> dict[str, Any]:
    """Parse a DEF-lite JSON file (malformed JSON raises ValueError)."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(f"{path}: top level must be a JSON object")
    return data


def validate_deflite(data: Union[dict[str, Any], str, Path],
                     path: Optional[Path] = None) -> VerifyReport:
    """Run every ``kind="import"`` check over a document (or file)."""
    if not isinstance(data, dict):
        path = Path(data)
        data = load_deflite(path)
    ctx = ImportContext(data=data, path=path)
    return run_checks(ctx, kinds=["import"])  # type: ignore[arg-type]


def deflite_to_design(data: dict[str, Any],
                      name: Optional[str] = None) -> Design:
    """Build a validated document into a placed design."""
    design = Design(name=name or str(data["name"]), die=Rect(*data["die"]),
                    clock_period=float(data["clock"]["period_ps"]))
    source = data["clock"]["source_xy"]
    design.add_clock_source(Point(float(source[0]), float(source[1])))
    for box in data.get("blockages", []):
        design.add_blockage(Rect(*[float(v) for v in box]))
    for pin in data["pins"]:
        design.add_flop(str(pin["name"]),
                        Point(float(pin["xy"][0]), float(pin["xy"][1])),
                        clock_pin_cap=float(pin.get("cap_ff", 1.8)))
    for agg in data.get("aggressors", []):
        net_name = str(agg["name"])
        load = float(agg.get("load_ff", DEFAULT_LOAD_FF))
        driver_inst = design.add_instance(
            f"{net_name}_drv", CellKind.GATE,
            Point(float(agg["driver_xy"][0]), float(agg["driver_xy"][1])),
            cell_name="INV")
        net = design.add_net(net_name, NetKind.SIGNAL,
                             activity=float(agg["activity"]))
        window = agg.get("window_ps")
        if window is not None:
            net.window = (float(window[0]), float(window[1]))
        net.connect_driver(driver_inst.add_pin("Z", PinDirection.OUTPUT))
        for k, xy in enumerate(agg["sink_xys"]):
            sink_inst = design.add_instance(
                f"{net_name}_snk{k}", CellKind.GATE,
                Point(float(xy[0]), float(xy[1])), cell_name="INV")
            net.connect_sink(sink_inst.add_pin("A", PinDirection.INPUT,
                                               cap=load))
    design.validate()
    return design


def import_design(path: Union[str, Path],
                  name: Optional[str] = None) -> Design:
    """Validate and build a DEF-lite file; ERROR diagnostics raise."""
    data = load_deflite(path)
    report = validate_deflite(data, path=Path(path))
    if report.has_errors:
        raise VerificationError(report, f"import:{path}")
    return deflite_to_design(data, name=name)


def design_to_deflite(design: Design) -> dict[str, Any]:
    """Export a design to a DEF-lite document (import round-trips)."""
    design.validate()
    aggressors = []
    for net in design.signal_nets:
        assert net.driver is not None
        entry: dict[str, Any] = {
            "name": net.name,
            "activity": net.activity,
            "driver_xy": [net.driver.location.x, net.driver.location.y],
            "sink_xys": [[p.location.x, p.location.y] for p in net.sinks],
        }
        loads = {p.cap for p in net.sinks}
        if loads and loads != {DEFAULT_LOAD_FF}:
            entry["load_ff"] = sorted(loads)[0]
        window = getattr(net, "window", None)
        if window is not None:
            entry["window_ps"] = [window[0], window[1]]
        aggressors.append(entry)
    assert design.clock_root is not None
    return {
        "deflite": DEFLITE_SCHEMA,
        "name": design.name,
        "die": [design.die.xlo, design.die.ylo,
                design.die.xhi, design.die.yhi],
        "clock": {"period_ps": design.clock_period,
                  "source_xy": [design.clock_root.location.x,
                                design.clock_root.location.y]},
        "pins": [{"name": pin.instance.name,
                  "xy": [pin.location.x, pin.location.y],
                  "cap_ff": pin.cap}
                 for pin in design.clock_sinks],
        "blockages": [[b.xlo, b.ylo, b.xhi, b.yhi]
                      for b in design.blockages],
        "aggressors": aggressors,
    }


def save_deflite(design: Design, path: Union[str, Path]) -> None:
    """Write a design as a DEF-lite JSON file."""
    Path(path).write_text(json.dumps(design_to_deflite(design), indent=1))
