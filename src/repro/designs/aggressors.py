"""Aggressor (signal) net generation.

Signal nets are what couples to the clock: local nets with a driver and
a handful of sinks within a locality radius, with toggle activities
drawn from a skewed distribution (most nets quiet, some hot) — the
standard shape of switching-activity profiles from real workloads.

The SoC generators place traffic non-uniformly by calling
:func:`generate_aggressors` once per region with a ``region`` rectangle
(driver placement constrained), a ``name_offset`` (so per-region
batches never collide on net names) and an ``activity_scale`` (hotspot
and gated-domain weighting).  The defaults reproduce the legacy flat
placement bit-identically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.cell import CellKind, PinDirection
from repro.netlist.design import Design
from repro.netlist.net import NetKind


def _clamped_point(rng: np.random.Generator, center: Point, radius: float,
                   design: Design) -> Point:
    die = design.die
    for _ in range(50):
        x = float(np.clip(center.x + rng.uniform(-radius, radius),
                          die.xlo, die.xhi))
        y = float(np.clip(center.y + rng.uniform(-radius, radius),
                          die.ylo, die.yhi))
        p = Point(x, y)
        if not any(b.contains(p) for b in design.blockages):
            return p
    # Desperation fallback: a uniformly random legal point.
    while True:
        p = Point(float(rng.uniform(die.xlo, die.xhi)),
                  float(rng.uniform(die.ylo, die.yhi)))
        if not any(b.contains(p) for b in design.blockages):
            return p


def generate_aggressors(design: Design, rng: np.random.Generator,
                        count: int, locality: float = 60.0,
                        mean_activity: float = 0.15,
                        fanout_range: tuple[int, int] = (2, 5),
                        with_windows: bool = False,
                        region: Optional[Rect] = None,
                        name_offset: int = 0,
                        activity_scale: float = 1.0) -> None:
    """Add ``count`` signal nets to ``design`` in place.

    Activities follow a Beta distribution shaped to ``mean_activity``
    (long quiet tail, a few hot nets), matching switching profiles from
    real traces.  With ``with_windows``, each net also gets a switching
    window (10-40% of the cycle, uniformly placed) — the input for
    timing-window crosstalk pruning.

    ``region`` confines driver placement to a sub-rectangle of the die
    (net sinks may still spill up to ``locality`` outside it);
    ``name_offset`` shifts the generated net/instance indices so
    repeated per-region calls compose; ``activity_scale`` multiplies
    every drawn activity (clipped to [0, 1]).
    """
    if count < 0:
        raise ValueError("aggressor count must be non-negative")
    area = design.die if region is None else region
    lo_fan, hi_fan = fanout_range
    if lo_fan < 1 or hi_fan < lo_fan:
        raise ValueError(f"bad fanout range {fanout_range}")
    # Beta(a, b) with mean a/(a+b) = mean_activity, a < 1 for a quiet-heavy
    # shape.
    a = 0.8
    b = a * (1.0 - mean_activity) / mean_activity
    for i in range(name_offset, name_offset + count):
        while True:
            driver_loc = Point(float(rng.uniform(area.xlo, area.xhi)),
                               float(rng.uniform(area.ylo, area.yhi)))
            if not any(b.contains(driver_loc) for b in design.blockages):
                break
        driver_inst = design.add_instance(
            f"agg_drv_{i}", CellKind.GATE, driver_loc, cell_name="INV")
        driver_pin = driver_inst.add_pin("Z", PinDirection.OUTPUT)

        activity = float(np.clip(rng.beta(a, b) * activity_scale, 0.0, 1.0))
        net = design.add_net(f"sig_{i}", NetKind.SIGNAL, activity=activity)
        if with_windows:
            width = float(rng.uniform(0.1, 0.4)) * design.clock_period
            start = float(rng.uniform(0.0, design.clock_period - width))
            net.window = (start, start + width)
        net.connect_driver(driver_pin)

        fanout = int(rng.integers(lo_fan, hi_fan + 1))
        for k in range(fanout):
            sink_loc = _clamped_point(rng, driver_loc, locality, design)
            sink_inst = design.add_instance(
                f"agg_snk_{i}_{k}", CellKind.GATE, sink_loc, cell_name="INV")
            sink_pin = sink_inst.add_pin("A", PinDirection.INPUT, cap=1.2)
            net.connect_sink(sink_pin)
