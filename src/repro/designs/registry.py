"""The corpus registry: named design families and corpus selectors.

A *family* is a named, documented tuple of
:class:`~repro.designs.spec.DesignSpec` — the unit the suite, the ML
corpus and the CLI select over.  Families register once at import time
(:mod:`repro.designs` registers the built-ins); downstream packages may
add their own with :func:`register_design_family`.

Selectors accepted by :func:`resolve_selectors`:

* an exact design name — ``"ckt256"``;
* a glob over design names — ``"ckt*"``, ``"soc_h?"``;
* a family — ``"family:hierarchical"``, or ``"family:*"`` for the
  whole corpus;
* a design-JSON path (anything ending in ``.json``), passed through
  untouched for :func:`repro.runner.matrix.resolve_design`.
"""

from __future__ import annotations

import difflib
import fnmatch
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.designs.spec import DesignSpec


@dataclass(frozen=True)
class DesignFamily:
    """One named, documented group of corpus designs."""

    name: str
    description: str
    specs: tuple[DesignSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError(f"family {self.name!r} has no specs")


_FAMILIES: dict[str, DesignFamily] = {}
_SPECS: dict[str, DesignSpec] = {}


def register_design_family(name: str, description: str,
                           specs: Iterable[DesignSpec]) -> DesignFamily:
    """Register a family; design names must be corpus-unique."""
    if name in _FAMILIES:
        raise ValueError(f"design family {name!r} registered twice")
    family = DesignFamily(name=name, description=description,
                          specs=tuple(specs))
    clashes = [s.name for s in family.specs if s.name in _SPECS]
    if clashes:
        raise ValueError(f"design name(s) {clashes} already registered "
                         f"(family {name!r})")
    _FAMILIES[name] = family
    for spec in family.specs:
        _SPECS[spec.name] = spec
    return family


def families() -> tuple[DesignFamily, ...]:
    """Every registered family, registration-ordered."""
    return tuple(_FAMILIES.values())  # static: ok[C003] populated at import time


def family(name: str) -> DesignFamily:
    """Look up one family by name."""
    try:
        return _FAMILIES[name]  # static: ok[C003] populated at import time
    except KeyError:
        raise KeyError(f"no design family named {name!r}; available: "
                       f"{sorted(_FAMILIES)}") from None


def iter_specs() -> Iterator[DesignSpec]:
    """Every registered spec, family-registration-ordered."""
    for fam in families():
        yield from fam.specs


def spec_names() -> tuple[str, ...]:
    """Every registered design name, family-registration-ordered."""
    return tuple(_SPECS)  # static: ok[C003] populated at import time


def family_of(design_name: str) -> str:
    """The family a registered design belongs to."""
    for fam in families():
        if any(s.name == design_name for s in fam.specs):
            return fam.name
    raise KeyError(f"design {design_name!r} is not registered")


def spec_by_name(name: str) -> DesignSpec:
    """Look up a registered spec by design name.

    An unknown name raises a KeyError that lists close matches and the
    available families, so a typo'd ``ckt258`` points at ``ckt256``
    instead of a bare miss.
    """
    spec = _SPECS.get(name)  # static: ok[C003] populated at import time
    if spec is not None:
        return spec
    close = difflib.get_close_matches(name, list(_SPECS), n=3, cutoff=0.5)  # static: ok[C003] populated at import time
    lines = [f"no design named {name!r}"]
    if close:
        lines.append(f"did you mean: {', '.join(close)}?")
    lines.append("families: " + "; ".join(
        f"{fam.name} ({', '.join(s.name for s in fam.specs)})"
        for fam in families()))
    raise KeyError(". ".join(lines))


def resolve_selectors(selectors: Iterable[str]) -> tuple[str, ...]:
    """Expand corpus selectors into concrete design names.

    Order follows the selector list, then registry order within each
    selector; duplicates are dropped (first win).  A selector matching
    nothing is an error — silent empties hide typos.
    """
    out: list[str] = []
    seen: set[str] = set()

    def add(name: str) -> None:
        if name not in seen:
            seen.add(name)
            out.append(name)

    for selector in selectors:
        if selector.endswith(".json"):
            add(selector)
            continue
        if selector.startswith("family:"):
            pattern = selector[len("family:"):]
            matched = [f for f in families()
                       if fnmatch.fnmatchcase(f.name, pattern)]
            if not matched:
                raise KeyError(f"selector {selector!r} matches no family; "
                               f"available: {sorted(_FAMILIES)}")
            for fam in matched:
                for spec in fam.specs:
                    add(spec.name)
            continue
        if any(ch in selector for ch in "*?["):
            matched_names = [n for n in _SPECS  # static: ok[C003] populated at import time
                             if fnmatch.fnmatchcase(n, selector)]
            if not matched_names:
                raise KeyError(f"selector {selector!r} matches no "
                               f"registered design")
            for n in matched_names:
                add(n)
            continue
        # An exact name: let spec_by_name produce the helpful error.
        add(spec_by_name(selector).name)
    return tuple(out)
