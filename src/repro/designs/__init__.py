"""repro.designs: the design-corpus subsystem.

Workloads enter the flow here.  A declarative, versioned
:class:`DesignSpec` names a generator and its knobs; the corpus
registry groups specs into named families (``synthetic``,
``hierarchical``, ``gated``, ``imported``) selectable with corpus
selectors (``family:*``, globs, exact names); the DEF-lite importer
brings externally-described floorplans in through schema validation;
and :func:`spec_fingerprint` gives every spec a *content* identity —
the hash the artifact store keys flow products by, decoupled from the
display name.

See ``docs/WORKLOADS.md`` for the schema, the importer format, and how
cache keys derive from specs.
"""

from repro.designs.aggressors import generate_aggressors
from repro.designs.corpus import benchmark_suite, register_builtin_families
from repro.designs.generate import (generate_design, generator_names,
                                    register_generator)
from repro.designs.importer import (DEFLITE_SCHEMA, ImportContext,
                                    deflite_to_design, design_to_deflite,
                                    import_design, load_deflite,
                                    save_deflite, validate_deflite)
from repro.designs.registry import (DesignFamily, families, family,
                                    family_of, iter_specs,
                                    register_design_family,
                                    resolve_selectors, spec_by_name,
                                    spec_names)
from repro.designs.spec import (SPEC_SCHEMA, DesignSpec, spec_fingerprint,
                                spec_from_dict, spec_to_dict)

register_builtin_families()

__all__ = [
    "DEFLITE_SCHEMA",
    "SPEC_SCHEMA",
    "DesignFamily",
    "DesignSpec",
    "ImportContext",
    "benchmark_suite",
    "deflite_to_design",
    "design_to_deflite",
    "families",
    "family",
    "family_of",
    "generate_aggressors",
    "generate_design",
    "generator_names",
    "import_design",
    "iter_specs",
    "load_deflite",
    "register_builtin_families",
    "register_design_family",
    "register_generator",
    "resolve_selectors",
    "save_deflite",
    "spec_by_name",
    "spec_fingerprint",
    "spec_from_dict",
    "spec_names",
    "spec_to_dict",
    "validate_deflite",
]
