"""The clustered synthetic generator (the legacy ``ckt*`` family).

Seeded generators produce placed designs with clustered sink flops and
locality-bounded aggressor nets whose geometry statistics (sink pitch,
aggressor density, activity) are the knobs the experiments sweep.  The
draw sequence here is frozen: the registered ``ckt*`` designs must
regenerate bit-identically across refactors (the golden-hash tests pin
every registered design's content fingerprint).
"""

from __future__ import annotations

import numpy as np

from repro.designs.aggressors import generate_aggressors
from repro.designs.spec import DesignSpec
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.design import Design


def generate_clustered(spec: DesignSpec, rng: np.random.Generator,
                       design: Design) -> None:
    """Clustered-plus-uniform sinks, flat aggressor traffic (legacy)."""
    design.add_clock_source(Point(spec.die_edge / 2.0, 0.0))
    place_blockages(rng, spec, design)
    locations = sink_locations(rng, spec, design)
    for i, loc in enumerate(locations):
        design.add_flop(f"ff_{i}", loc, clock_pin_cap=spec.flop_cin)

    generate_aggressors(
        design, rng,
        count=spec.n_aggressors,
        locality=max(40.0, spec.die_edge * 0.08),
        mean_activity=spec.mean_activity,
        with_windows=spec.aggressor_windows,
    )


def place_blockages(rng: np.random.Generator, spec: DesignSpec,
                    design: Design) -> None:
    """Drop disjoint hard macros on the die (keep-out margin between them)."""
    if spec.n_blockages <= 0:
        return
    edge = spec.die_edge * spec.blockage_fraction
    margin = spec.die_edge * 0.08
    placed: list[Rect] = []
    attempts = 0
    while len(placed) < spec.n_blockages and attempts < 200:
        attempts += 1
        x = float(rng.uniform(margin, spec.die_edge - margin - edge))
        y = float(rng.uniform(margin, spec.die_edge - margin - edge))
        rect = Rect(x, y, x + edge, y + edge)
        if any(rect.expanded(4.0).intersects(other) for other in placed):
            continue
        placed.append(rect)
        design.add_blockage(rect)


def sink_locations(rng: np.random.Generator, spec: DesignSpec,
                   design: Design) -> list[Point]:
    """Clustered-plus-uniform sink placement, deduplicated on a fine grid."""
    margin = spec.die_edge * 0.03
    lo, hi = margin, spec.die_edge - margin
    points: list[Point] = []
    taken: set[tuple[int, int]] = set()

    def try_add(x: float, y: float) -> None:
        x = float(np.clip(x, lo, hi))
        y = float(np.clip(y, lo, hi))
        p = Point(round(x, 3), round(y, 3))
        if any(b.contains(p) for b in design.blockages):
            return
        key = (int(x / 2.0), int(y / 2.0))  # 2 um exclusion grid
        if key in taken:
            return
        taken.add(key)
        points.append(p)

    if spec.n_clusters > 0:
        centers = [(float(rng.uniform(lo, hi)), float(rng.uniform(lo, hi)))
                   for _ in range(spec.n_clusters)]
        sigma = spec.die_edge * 0.10
        clustered_target = int(spec.n_sinks * 0.7)
        while len(points) < clustered_target:
            cx, cy = centers[int(rng.integers(0, spec.n_clusters))]
            try_add(float(rng.normal(cx, sigma)), float(rng.normal(cy, sigma)))
    while len(points) < spec.n_sinks:
        try_add(float(rng.uniform(lo, hi)), float(rng.uniform(lo, hi)))
    return points[:spec.n_sinks]
