"""The versioned, declarative design specification.

A :class:`DesignSpec` is everything needed to reproduce one corpus
design: the generator to run, its geometric and statistical knobs, and
the seed.  Specs are frozen dataclasses, JSON-round-trippable
(:func:`spec_to_dict` / :func:`spec_from_dict`), and content-hashable
(:func:`spec_fingerprint`).

Two seams that used to be implicit are explicit here:

* **Name vs identity.**  The design *name* is a display label and a
  registry key; it is excluded from :func:`spec_fingerprint`, so
  renaming a design neither changes its generated geometry nor its
  artifact cache keys.  The generator's RNG is salted by
  :attr:`DesignSpec.seed_salt` instead — a field that defaults to the
  name for back-compat with pre-corpus specs (where the name *was* the
  salt), but is pinned explicitly on every registered spec.
* **Spec vs file.**  Imported specs (``generator="imported"``) carry a
  ``source`` path; their fingerprint folds in the digest of the file
  bytes, so editing the file invalidates dependent artifacts exactly
  like editing a spec field would.
"""

from __future__ import annotations

import dataclasses
import hashlib
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.units import NS

#: Bump when the spec schema changes incompatibly (field renames,
#: semantic changes).  Folded into every spec fingerprint, so a schema
#: bump is also a cache migration.
SPEC_SCHEMA = 1

#: Aggressor traffic profiles a generator may honor.
TRAFFIC_PROFILES = ("uniform", "hotspot", "edge")


@dataclass(frozen=True)
class DesignSpec:
    """Everything needed to reproduce one corpus design.

    Attributes
    ----------
    name:
        Display name and registry key.  *Not* part of the content
        fingerprint; see :attr:`seed_salt`.
    n_sinks:
        Number of clock sink flops.
    die_edge:
        Die edge length, um (square die).
    aggressors_per_sink:
        Signal net count as a multiple of the sink count.
    mean_activity:
        Mean aggressor toggle probability per cycle.
    clock_period:
        ps.
    n_clusters:
        Sink placement clusters (0 = uniform); clustered generator only.
    seed:
        Generator seed.
    flop_cin:
        Clock pin capacitance of each sink flop, fF.
    n_blockages:
        Hard macros (placement + routing keep-outs) dropped on the die.
    blockage_fraction:
        Macro edge length as a fraction of the die edge.
    aggressor_windows:
        Give aggressor nets switching windows (for window-pruned SI).
    seed_salt:
        Extra RNG salt mixed with ``seed``.  Empty string means "use
        the name" (the legacy coupling); registered specs always pin it
        so renames are geometry-neutral.
    generator:
        Which registered generator builds the design ("clustered",
        "htree", "imported", ...); see :mod:`repro.designs.generate`.
    source:
        For ``generator="imported"``: the DEF-lite JSON source, either
        a path relative to ``repro/designs/data`` or an absolute path.
    htree_levels:
        H-tree recursion depth for the hierarchical generator (each
        level splits the region in half, alternating axis; sinks
        cluster in the 2**levels leaf regions).
    n_domains:
        Clock domains the sinks are organised into (region-major).
        The generated design still has one physical clock source — the
        flow is single-clock — but domain structure shapes placement
        and is recoverable downstream via
        :func:`repro.core.multiclock.split_domains`.
    gate_enable:
        Enable probability of gated subtrees (1.0 = ungated).  Gated
        domains beyond the first get their local aggressor activity
        scaled by this factor (a gated block's logic is quiet in
        gated-off cycles); it is also the enable a downstream
        :class:`~repro.power.gating.GatingPlan` should use.
    traffic:
        Aggressor traffic profile: "uniform" (flat density and
        activity), "hotspot" (one leaf region gets 3x density and
        doubled activity), "edge" (traffic concentrated near the die
        boundary).
    """

    name: str
    n_sinks: int
    die_edge: float
    aggressors_per_sink: float = 2.0
    mean_activity: float = 0.15
    clock_period: float = NS
    n_clusters: int = 4
    seed: int = 7
    flop_cin: float = 1.8
    n_blockages: int = 0
    blockage_fraction: float = 0.18
    aggressor_windows: bool = False
    seed_salt: str = ""
    generator: str = "clustered"
    source: str = ""
    htree_levels: int = 0
    n_domains: int = 1
    gate_enable: float = 1.0
    traffic: str = "uniform"

    def __post_init__(self) -> None:
        if self.traffic not in TRAFFIC_PROFILES:
            raise ValueError(f"unknown traffic profile {self.traffic!r}; "
                             f"expected one of {TRAFFIC_PROFILES}")
        if not 0.0 <= self.gate_enable <= 1.0:
            raise ValueError(f"gate_enable must be in [0, 1], "
                             f"got {self.gate_enable}")
        if self.n_domains < 1:
            raise ValueError("n_domains must be >= 1")

    @property
    def n_aggressors(self) -> int:
        return int(round(self.n_sinks * self.aggressors_per_sink))

    @property
    def effective_seed_salt(self) -> str:
        """The RNG salt actually used: ``seed_salt``, or the name."""
        return self.seed_salt or self.name


def seeded_rng(spec: DesignSpec) -> np.random.Generator:
    """The spec's deterministic generator RNG.

    zlib.crc32 is stable across interpreter runs (unlike ``hash()``),
    and the salt comes from :attr:`DesignSpec.effective_seed_salt` —
    never from the display name of a registered spec.
    """
    salt = zlib.crc32(spec.effective_seed_salt.encode()) % (2 ** 16)
    return np.random.default_rng(spec.seed + salt)


def spec_to_dict(spec: DesignSpec) -> dict[str, Any]:
    """Serialise a spec to a JSON-ready dict (schema-tagged)."""
    out: dict[str, Any] = {"schema": SPEC_SCHEMA}
    out.update(dataclasses.asdict(spec))
    return out


def spec_from_dict(data: dict[str, Any]) -> DesignSpec:
    """Rebuild a spec from :func:`spec_to_dict` output."""
    schema = data.get("schema")
    if schema != SPEC_SCHEMA:
        raise ValueError(f"unsupported design-spec schema {schema!r} "
                         f"(expected {SPEC_SCHEMA})")
    fields = {f.name for f in dataclasses.fields(DesignSpec)}
    unknown = set(data) - fields - {"schema"}
    if unknown:
        raise ValueError(f"unknown design-spec fields {sorted(unknown)}")
    kwargs = {k: v for k, v in data.items() if k in fields}
    return DesignSpec(**kwargs)


def resolve_source(spec: DesignSpec) -> Path:
    """Absolute path of an imported spec's DEF-lite source file."""
    if not spec.source:
        raise ValueError(f"spec {spec.name!r} has no source file")
    path = Path(spec.source)
    if not path.is_absolute():
        path = Path(__file__).parent / "data" / path
    return path


def spec_fingerprint(spec: DesignSpec) -> str:
    """Content hash of what the spec will generate.

    Hashes every field *except* ``name`` (with ``seed_salt`` resolved
    to its effective value), plus the spec schema version — so a
    renamed spec keeps its artifact cache keys, while any
    geometry-determining change invalidates them.  Imported specs also
    fold in the source file's byte digest: editing the file is a
    content change.
    """
    from repro.io.artifacts import fingerprint

    fields = {f.name: getattr(spec, f.name)
              for f in dataclasses.fields(spec) if f.name != "name"}
    fields["seed_salt"] = spec.effective_seed_salt
    parts: dict[str, Any] = {"schema": SPEC_SCHEMA, "fields": fields}
    if spec.generator == "imported":
        digest = hashlib.sha256(resolve_source(spec).read_bytes()).hexdigest()
        parts["source_digest"] = digest
    return fingerprint(parts)
