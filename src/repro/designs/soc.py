"""The hierarchical SoC generator.

Real SoC clock networks are not uniform sink clouds: a top-level H-tree
distributes the clock from the die center into block-local subtrees,
blocks belong to clock domains (some of them gated), hard macros punch
holes in the floorplan, and switching traffic concentrates where the
logic is.  This generator reproduces that structure declaratively from
a :class:`~repro.designs.spec.DesignSpec`:

* ``htree_levels`` — recursive-center splits of the die (alternating
  axis, the classic H-tree construction); sinks cluster around the
  2**levels leaf-region centers, so CTS naturally synthesises an
  H-tree top feeding local subtrees.
* ``n_domains`` — leaf regions are assigned region-major to domains;
  downstream consumers recover the domain structure with
  :func:`repro.core.multiclock.split_domains` (the generated design
  stays single-clock so it runs through the standard flow unchanged).
* ``gate_enable`` — domains beyond the first are treated as gated:
  their local aggressor activity scales by the enable probability (a
  gated block's logic is quiet in gated-off cycles).
* ``traffic`` — per-region aggressor density/activity weighting:
  "hotspot" (one hot leaf), "edge" (boundary-heavy), or "uniform".
* ``n_blockages`` — the same disjoint-macro placement as the synthetic
  family, for blockage-heavy floorplans.
"""

from __future__ import annotations

import numpy as np

from repro.designs.aggressors import generate_aggressors
from repro.designs.spec import DesignSpec
from repro.designs.synthetic import place_blockages
from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.design import Design


def htree_leaf_regions(die: Rect, levels: int) -> list[Rect]:
    """The 2**levels leaf regions of a recursive-center H-tree split.

    Each level halves every region, alternating the split axis
    (vertical first), which is exactly the region structure a
    center-driven H-tree serves.  Order is deterministic:
    depth-first, low half before high half.
    """
    regions = [die]
    for level in range(levels):
        vertical = level % 2 == 0
        split: list[Rect] = []
        for r in regions:
            if vertical:
                mid = 0.5 * (r.xlo + r.xhi)
                split.append(Rect(r.xlo, r.ylo, mid, r.yhi))
                split.append(Rect(mid, r.ylo, r.xhi, r.yhi))
            else:
                mid = 0.5 * (r.ylo + r.yhi)
                split.append(Rect(r.xlo, r.ylo, r.xhi, mid))
                split.append(Rect(r.xlo, mid, r.xhi, r.yhi))
        regions = split
    return regions


def domain_of_region(region_index: int, n_regions: int,
                     n_domains: int) -> int:
    """Region-major domain assignment: contiguous region runs per domain."""
    if n_domains <= 1:
        return 0
    per_domain = n_regions / n_domains
    return min(n_domains - 1, int(region_index / per_domain))


def _region_weights(spec: DesignSpec, regions: list[Rect], die: Rect,
                    hot_index: int) -> list[float]:
    """Relative aggressor-traffic weight per leaf region."""
    if spec.traffic == "hotspot":
        return [3.0 if i == hot_index else 1.0
                for i in range(len(regions))]
    if spec.traffic == "edge":
        eps = 1e-9
        weights = []
        for r in regions:
            on_edge = (r.xlo <= die.xlo + eps or r.xhi >= die.xhi - eps
                       or r.ylo <= die.ylo + eps or r.yhi >= die.yhi - eps)
            weights.append(2.0 if on_edge else 0.5)
        return weights
    return [1.0] * len(regions)


def _place_region_sinks(rng: np.random.Generator, spec: DesignSpec,
                        design: Design, region: Rect, count: int,
                        taken: set[tuple[int, int]],
                        points: list[Point]) -> None:
    """Cluster ``count`` sinks around the region center (grid-deduped)."""
    margin = spec.die_edge * 0.03
    lo, hi = margin, spec.die_edge - margin
    cx = 0.5 * (region.xlo + region.xhi)
    cy = 0.5 * (region.ylo + region.yhi)
    sigma = 0.18 * min(region.xhi - region.xlo, region.yhi - region.ylo)
    placed = 0
    attempts = 0
    # Local Gaussian cluster first; degrade to region-uniform, then
    # die-uniform, so saturated regions can never hang the generator.
    while placed < count and attempts < count * 60:
        attempts += 1
        if attempts <= count * 20:
            x = float(rng.normal(cx, sigma))
            y = float(rng.normal(cy, sigma))
        elif attempts <= count * 40:
            x = float(rng.uniform(region.xlo, region.xhi))
            y = float(rng.uniform(region.ylo, region.yhi))
        else:
            x = float(rng.uniform(lo, hi))
            y = float(rng.uniform(lo, hi))
        x = float(np.clip(x, lo, hi))
        y = float(np.clip(y, lo, hi))
        p = Point(round(x, 3), round(y, 3))
        if any(b.contains(p) for b in design.blockages):
            continue
        key = (int(x / 2.0), int(y / 2.0))  # 2 um exclusion grid
        if key in taken:
            continue
        taken.add(key)
        points.append(p)
        placed += 1
    if placed < count:
        raise ValueError(f"region {region} cannot hold {count} sinks "
                         f"(die too dense for spec {spec.name!r})")


def generate_htree(spec: DesignSpec, rng: np.random.Generator,
                   design: Design) -> None:
    """Hierarchical H-tree SoC: center-driven, domain- and traffic-aware."""
    if spec.htree_levels < 1:
        raise ValueError(f"spec {spec.name!r}: htree generator needs "
                         f"htree_levels >= 1")
    die = design.die
    design.add_clock_source(Point(0.5 * (die.xlo + die.xhi),
                                  0.5 * (die.ylo + die.yhi)))
    place_blockages(rng, spec, design)

    regions = htree_leaf_regions(die, spec.htree_levels)
    n_regions = len(regions)
    hot_index = int(rng.integers(0, n_regions))

    # Sinks: evenly split across leaf regions, remainder to the first.
    base, extra = divmod(spec.n_sinks, n_regions)
    taken: set[tuple[int, int]] = set()
    points: list[Point] = []
    region_of_sink: list[int] = []
    for i, region in enumerate(regions):
        count = base + (1 if i < extra else 0)
        _place_region_sinks(rng, spec, design, region, count, taken, points)
        region_of_sink.extend([i] * count)
    for i, loc in enumerate(points):
        design.add_flop(f"ff_{i}", loc, clock_pin_cap=spec.flop_cin)

    # Aggressors: per-region batches weighted by the traffic profile,
    # activity shaped by hotspot/gating.
    weights = _region_weights(spec, regions, die, hot_index)
    total_weight = sum(weights)
    locality = max(40.0, spec.die_edge * 0.08 / (2 ** (spec.htree_levels // 2)))
    offset = 0
    for i, region in enumerate(regions):
        count = int(round(spec.n_aggressors * weights[i] / total_weight))
        if count <= 0:
            continue
        activity_scale = 1.0
        if spec.traffic == "hotspot" and i == hot_index:
            activity_scale *= 2.0
        if domain_of_region(i, n_regions, spec.n_domains) > 0:
            activity_scale *= spec.gate_enable
        generate_aggressors(
            design, rng,
            count=count,
            locality=locality,
            mean_activity=spec.mean_activity,
            with_windows=spec.aggressor_windows,
            region=region,
            name_offset=offset,
            activity_scale=activity_scale,
        )
        offset += count
