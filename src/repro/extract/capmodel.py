"""Per-wire parasitic extraction.

For a wire of electrical length ``l`` drawn with width ``w`` at rule-
guaranteed spacing ``s`` to its track neighbors:

* resistance          ``R = (rho_sheet / w) * l``
* area (ground) cap   ``C_area = c_area * w * l``       — scales with w
* edge-to-ground cap  ``2 * c_fringe * l``              — width-independent
* lateral cap, per side: neighbor-covered portions couple at
  ``k_couple / s`` per um; uncovered portions see the far-field term.

The split between the width-proportional part (``c_area``) and the rest
matters downstream: under width variation only the area part tracks the
width, which is why doubling the width halves the *relative* RC noise.

Coupling to *same-net* neighbors (two branches of the clock running
side by side) is tracked separately: both ends switch together, so this
capacitance neither loads the transition (Miller factor 0) nor burns
switching power, but it still exists physically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Annotated

from repro.route.wires import NeighborCoupling, RoutedWire
from repro.units import Dim


@dataclass(frozen=True)
class CouplingEntry:
    """One victim-side coupling capacitor relevant to delta delay."""

    cc: float          # coupling capacitance, fF
    activity: float    # aggressor toggle probability per cycle
    window: tuple = None  # aggressor switching window (ps), if known


@dataclass
class WireParasitics:
    """Extracted parasitics of one routed wire.

    Attributes
    ----------
    wire_id:
        The routed wire this describes.
    r:
        Total series resistance, kOhm.
    c_area:
        Width-proportional ground capacitance, fF (scales with width
        variation).
    c_rest:
        Width-independent capacitance, fF: fringe, far-field, and
        nominal (grounded-aggressor) signal coupling.
    cc_signal:
        Total coupling capacitance to switching-independent (signal)
        neighbors, fF.  Included in ``c_rest`` for nominal delay and in
        switched capacitance for power.
    cc_clock:
        Total coupling to same-net clock neighbors, fF.  Excluded from
        delay and power (Miller factor 0), reported for completeness.
    couplings:
        Per-aggressor entries for delta-delay analysis.
    """

    wire_id: int
    r: float
    # NOTE: despite sharing its name with the tech layer's *per-area*
    # coefficient (fF/um^2 in the DIMENSIONS manifest), this field is
    # the already-integrated capacitance in fF — the explicit Annotated
    # dimension overrides the manifest's name-based default.  The
    # static dimension analyzer (Q001) caught exactly this collision.
    c_area: Annotated[float, Dim.CAPACITANCE]
    c_rest: float
    cc_signal: float
    cc_clock: float
    couplings: list[CouplingEntry] = field(default_factory=list)

    @property
    def c_total(self) -> Annotated[float, Dim.CAPACITANCE]:
        """Nominal (quiet-aggressor) capacitance used for delay, fF."""
        return self.c_area + self.c_rest

    @property
    def c_switched(self) -> Annotated[float, Dim.CAPACITANCE]:
        """Capacitance charged per clock transition, for power, fF."""
        return self.c_area + self.c_rest


def extract_wire(wire: RoutedWire,
                 neighbors: list[NeighborCoupling]) -> WireParasitics:
    """Extract one wire given its track-neighbor list.

    ``neighbors`` comes from
    :meth:`repro.route.tracks.TrackManager.neighbors_of`, with spacings
    already clamped to rule guarantees.
    """
    layer = wire.layer
    length = wire.length          # includes snaking detour
    span = wire.segment.length    # geometric span exposed to neighbors
    width = wire.width

    r = layer.resistance_per_um(width) * length
    c_area = layer.ground_cap_per_um(width) * length
    c_rest = 2.0 * layer.c_fringe * length

    # Snaking detour couples to nothing: both sides see far field.
    detour = wire.extra_length
    c_rest += 2.0 * layer.c_fringe_far * detour

    if wire.shielded:
        # Grounded shields on both adjacent tracks: no aggressor
        # coupling at all, but the victim now sees two grounded lines
        # at minimum spacing over its whole span — a static cap cost.
        c_rest += 2.0 * layer.coupling_cap_per_um(layer.min_spacing) * span
        return WireParasitics(
            wire_id=wire.wire_id,
            r=r,
            c_area=c_area,
            c_rest=c_rest,
            cc_signal=0.0,
            cc_clock=0.0,
            couplings=[],
        )

    cc_signal = 0.0
    cc_clock = 0.0
    couplings: list[CouplingEntry] = []
    covered = 0.0
    for nb in neighbors:
        overlap = min(nb.overlap, span)
        cc = layer.coupling_cap_per_um(nb.spacing) * overlap
        if nb.same_net:
            cc_clock += cc
        else:
            cc_signal += cc
            couplings.append(CouplingEntry(cc=cc, activity=nb.neighbor_activity,
                                           window=nb.neighbor_window))
        covered += overlap

    # Uncovered span portions (per side; 2 sides total = 2 * span).
    uncovered = max(0.0, 2.0 * span - covered)
    c_rest += layer.c_fringe_far * uncovered

    c_rest += cc_signal  # quiet aggressors load the wire like ground
    return WireParasitics(
        wire_id=wire.wire_id,
        r=r,
        c_area=c_area,
        c_rest=c_rest,
        cc_signal=cc_signal,
        cc_clock=cc_clock,
        couplings=couplings,
    )
