"""Drives extraction over a routing result."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cts.tree import ClockTree
from repro.extract.capmodel import WireParasitics, extract_wire
from repro.extract.rcnetwork import ClockRcNetwork, build_rc_network
from repro.route.router import RoutingResult


@dataclass
class Extraction:
    """Extracted parasitics plus the assembled clock RC network.

    Re-extraction after a rule re-assignment is cheap: only the touched
    wires change, and the network rebuild is linear.
    """

    routing: RoutingResult
    wires: dict[int, WireParasitics] = field(default_factory=dict)
    network: ClockRcNetwork = field(default_factory=ClockRcNetwork)

    @property
    def clock_wire_cap(self) -> float:
        """Total clock wire capacitance counted for power, fF."""
        return sum(self.wires[w.wire_id].c_switched
                   for w in self.routing.clock_wires)

    @property
    def clock_coupling_cap(self) -> float:
        """Total clock-to-signal coupling capacitance, fF."""
        return sum(self.wires[w.wire_id].cc_signal
                   for w in self.routing.clock_wires)


def extract(tree: ClockTree, routing: RoutingResult) -> Extraction:
    """Extract every clock wire and build the clock RC network.

    Signal wires are not individually extracted (they only matter as
    aggressors, which the clock-side extraction already captures), which
    keeps extraction proportional to the clock, not the design.
    """
    result = Extraction(routing=routing)
    for wire in routing.clock_wires:
        neighbors = routing.tracks.neighbors_of(wire)
        result.wires[wire.wire_id] = extract_wire(wire, neighbors)
    result.network = build_rc_network(tree, routing, result.wires)
    return result


def re_extract(extraction: Extraction, tree: ClockTree,
               wire_ids: list[int]) -> Extraction:
    """Update only ``wire_ids`` (after a rule change) and rebuild the network."""
    routing = extraction.routing
    for wire_id in wire_ids:
        wire = routing.tracks.wire(wire_id)
        neighbors = routing.tracks.neighbors_of(wire)
        extraction.wires[wire_id] = extract_wire(wire, neighbors)
    extraction.network = build_rc_network(tree, routing, extraction.wires)
    return extraction
