"""Drives extraction over a routing result.

Extraction is the inner-loop cost of the optimizer: every rule
re-assignment changes a handful of wires, and everything the analyses
read must follow.  Two structures keep that incremental:

* the *neighbor dependency index* — which victims' coupling read a
  given wire while it was extracted.  A rule change on wire ``w``
  dirties ``w`` plus every recorded dependent (their spacing to ``w``
  depends on ``w``'s width and rule guarantees), and nothing else.
* cached capacitance totals, invalidated whenever any wire's
  parasitics are stored, so the power analysis stops paying an
  O(#wires) sum per property access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Annotated, Iterable, Optional

from repro.cts.tree import ClockTree
from repro.extract.capmodel import WireParasitics, extract_wire
from repro.extract.rcnetwork import ClockRcNetwork, build_rc_network
from repro.route.router import RoutingResult
from repro.units import Dim


@dataclass
class Extraction:
    """Extracted parasitics plus the assembled clock RC network.

    Re-extraction after a rule re-assignment is cheap: only the touched
    wires and their recorded coupling dependents change, and the network
    is patched in place instead of rebuilt.
    """

    routing: RoutingResult
    wires: dict[int, WireParasitics] = field(default_factory=dict)
    network: ClockRcNetwork = field(default_factory=ClockRcNetwork)
    #: cached totals; ``None`` means stale (recomputed lazily)
    _wire_cap_total: Optional[float] = \
        field(default=None, repr=False, compare=False)
    _coupling_total: Optional[float] = \
        field(default=None, repr=False, compare=False)
    #: victim wire id -> neighbor wire ids its extraction read
    _neighbor_fwd: dict[int, frozenset[int]] = \
        field(default_factory=dict, repr=False, compare=False)
    #: wire id -> victim wire ids whose extraction read it
    _neighbor_rev: dict[int, set[int]] = \
        field(default_factory=dict, repr=False, compare=False)

    @property
    def clock_wire_cap(self) -> Annotated[float, Dim.CAPACITANCE]:
        """Total clock wire capacitance counted for power, fF."""
        if self._wire_cap_total is None:
            self._wire_cap_total = sum(
                self.wires[w.wire_id].c_switched
                for w in self.routing.clock_wires)
        return self._wire_cap_total

    @property
    def clock_coupling_cap(self) -> Annotated[float, Dim.CAPACITANCE]:
        """Total clock-to-signal coupling capacitance, fF."""
        if self._coupling_total is None:
            self._coupling_total = sum(
                self.wires[w.wire_id].cc_signal
                for w in self.routing.clock_wires)
        return self._coupling_total

    def set_wire(self, wire_id: int, para: WireParasitics) -> None:
        """Store one wire's parasitics and invalidate cached totals."""
        self.wires[wire_id] = para
        self._wire_cap_total = None
        self._coupling_total = None

    def record_neighbors(self, wire_id: int,
                         neighbor_ids: Iterable[int]) -> None:
        """Note which wires ``wire_id``'s extraction depended on."""
        new = frozenset(neighbor_ids)
        old = self._neighbor_fwd.get(wire_id, frozenset())
        for gone in old - new:
            deps = self._neighbor_rev.get(gone)
            if deps is not None:
                deps.discard(wire_id)
        for added in new - old:
            self._neighbor_rev.setdefault(added, set()).add(wire_id)
        self._neighbor_fwd[wire_id] = new

    def cached_cap_totals(self) -> tuple[Optional[float], Optional[float]]:
        """The raw cached ``(wire cap, coupling cap)`` totals, no recompute.

        ``None`` entries mean "stale, will be recomputed lazily" — the
        verifier's cap-total oracle only diffs the non-``None`` ones
        against a from-scratch sum.
        """
        return self._wire_cap_total, self._coupling_total

    def neighbor_index(self) -> tuple[dict[int, frozenset[int]],
                                      dict[int, frozenset[int]]]:
        """Copies of the (forward, reverse) neighbor dependency maps."""
        fwd = dict(self._neighbor_fwd)
        rev = {wid: frozenset(deps)
               for wid, deps in self._neighbor_rev.items()}
        return fwd, rev

    def dependents_of(self, wire_ids: Iterable[int]) -> set[int]:
        """Touched wires plus every victim whose coupling reads them."""
        dirty = set(wire_ids)
        for wire_id in tuple(dirty):
            dirty |= self._neighbor_rev.get(wire_id, set())
        return dirty


def _extract_one(extraction: Extraction, wire) -> WireParasitics:
    """Extract one wire, updating parasitics and the dependency index."""
    neighbors = extraction.routing.tracks.neighbors_of(wire)
    extraction.record_neighbors(
        wire.wire_id, (nb.neighbor_id for nb in neighbors))
    para = extract_wire(wire, neighbors)
    extraction.set_wire(wire.wire_id, para)
    return para


def extract(tree: ClockTree, routing: RoutingResult) -> Extraction:
    """Extract every clock wire and build the clock RC network.

    Signal wires are not individually extracted (they only matter as
    aggressors, which the clock-side extraction already captures), which
    keeps extraction proportional to the clock, not the design.
    """
    result = Extraction(routing=routing)
    for wire in routing.clock_wires:
        _extract_one(result, wire)
    result.network = build_rc_network(tree, routing, result.wires)
    return result


def incremental_re_extract(extraction: Extraction,
                           wire_ids: Iterable[int],
                           ) -> tuple[set[int], set[int]]:
    """Re-extract touched wires and patch the network in place.

    The dirty set is the closure of ``wire_ids`` over the neighbor
    dependency index: a rule change moves the touched wire's width and
    guaranteed spacing, which its track neighbors' coupling caps read.
    Topology never changes under a rule re-assignment, so every dirty
    wire maps onto an existing RC node pair via
    :meth:`ClockRcNetwork.patch_wire`.

    Returns ``(dirty wire ids, patched stage indices)`` for the
    analysis engine's dirty-tracking.
    """
    routing = extraction.routing
    dirty = extraction.dependents_of(wire_ids)
    stages: set[int] = set()
    for wire_id in sorted(dirty):
        wire = routing.tracks.wire(wire_id)
        para = _extract_one(extraction, wire)
        stages.add(extraction.network.patch_wire(wire_id, para))
    return dirty, stages


def re_extract(extraction: Extraction, tree: ClockTree,
               wire_ids: list[int]) -> Extraction:
    """Update ``wire_ids`` (after a rule change) plus coupling dependents.

    Patches the existing network in place when possible; falls back to
    a full :func:`build_rc_network` if the network predates this
    extraction (e.g. a hand-assembled :class:`Extraction`).
    """
    try:
        incremental_re_extract(extraction, wire_ids)
    except KeyError:
        routing = extraction.routing
        for wire_id in extraction.dependents_of(wire_ids):
            _extract_one(extraction, routing.tracks.wire(wire_id))
        extraction.network = build_rc_network(tree, routing,
                                              extraction.wires)
    return extraction
