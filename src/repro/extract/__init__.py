"""RC extraction: wire parasitics and the buffered clock RC network.

Substrate S6 in DESIGN.md.

* :mod:`repro.extract.capmodel` — per-wire R and C from geometry,
  routing rule and track neighbors.
* :mod:`repro.extract.rcnetwork` — the stage-structured RC tree of the
  buffered clock network (what the timer consumes).
* :mod:`repro.extract.extractor` — drives both over a routing result.
"""

from repro.extract.capmodel import WireParasitics, extract_wire
from repro.extract.rcnetwork import ClockRcNetwork, RcNode, Stage, StageSink
from repro.extract.extractor import Extraction, extract

__all__ = [
    "WireParasitics",
    "extract_wire",
    "ClockRcNetwork",
    "RcNode",
    "Stage",
    "StageSink",
    "Extraction",
    "extract",
]
