"""The stage-structured RC network of a buffered clock tree.

A buffer electrically decouples its subtree, so the clock network is a
*tree of stages*: each stage is an RC tree rooted at a buffer output
(or at the clock source) whose leaves are either flop clock pins or the
input pins of next-stage buffers.

Every wire becomes one pi segment: its resistance sits between two RC
nodes; half of its capacitance lands on each end (the pi model is
Elmore-exact for a distributed line).  Capacitance contributions stay
tagged with the wire that produced them, split into a width-tracking
part and a width-independent part, so the Monte-Carlo engine can scale
them per process sample without rebuilding anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cts.tree import ClockTree
from repro.extract.capmodel import WireParasitics
from repro.netlist.cell import Pin
from repro.route.router import RoutingResult
from repro.tech.buffers import BufferCell


@dataclass
class RcNode:
    """One node of a stage RC tree.

    Attributes
    ----------
    idx:
        Dense index within the stage (0 is the stage root).
    parent:
        Index of the parent node (None for the root).
    wire_id:
        Wire providing the resistance from the parent (None for root).
    r:
        Nominal resistance from the parent, kOhm.
    cap_fixed:
        Width-variation-independent capacitance at this node: pins,
        buffer inputs, fF.
    cap_wire:
        Wire capacitance contributions at this node, as
        ``(wire_id, c_area_half, c_rest_half)`` tuples.
    tree_node_id:
        The clock-tree node this RC node coincides with, if any.
    """

    idx: int
    parent: Optional[int]
    wire_id: Optional[int]
    r: float
    cap_fixed: float = 0.0
    cap_wire: list[tuple[int, float, float]] = field(default_factory=list)
    tree_node_id: Optional[int] = None

    @property
    def cap_nominal(self) -> float:
        return self.cap_fixed + sum(a + b for _, a, b in self.cap_wire)


@dataclass
class StageSink:
    """A leaf of a stage: a flop pin or a next-stage buffer input."""

    node_idx: int
    sink_pin: Optional[Pin] = None
    next_stage_tree_id: Optional[int] = None

    @property
    def is_flop(self) -> bool:
        return self.sink_pin is not None


@dataclass
class Stage:
    """One buffered stage of the clock network."""

    tree_node_id: int            # the buffered tree node driving this stage
    driver: BufferCell
    nodes: list[RcNode] = field(default_factory=list)
    sinks: list[StageSink] = field(default_factory=list)
    pad_cap: float = 0.0         # delay-equalising dummy load at the root, fF
    snake_cap: float = 0.0       # wire cap of the series root snake, fF

    @property
    def total_cap(self) -> float:
        """Nominal load capacitance seen by the driver, fF."""
        return sum(n.cap_nominal for n in self.nodes)

    def path_to_root(self, node_idx: int) -> list[int]:
        """RC node indices from ``node_idx`` up to and including the root."""
        path = [node_idx]
        while self.nodes[path[-1]].parent is not None:
            path.append(self.nodes[path[-1]].parent)
        return path

    def downstream_caps(self) -> list[float]:
        """Nominal capacitance below-and-including each node (by index)."""
        caps = [n.cap_nominal for n in self.nodes]
        for node in reversed(self.nodes):
            if node.parent is not None:
                caps[node.parent] += caps[node.idx]
        return caps

    def elmore_to(self, node_idx: int) -> float:
        """Nominal Elmore delay from the stage root to ``node_idx``, ps
        (wire only; the driver's contribution is added by the timer)."""
        down = self.downstream_caps()
        delay = 0.0
        for idx in self.path_to_root(node_idx):
            node = self.nodes[idx]
            if node.parent is not None:
                delay += node.r * down[idx]
        return delay


@dataclass
class ClockRcNetwork:
    """All stages of one clock network, linked into a tree of stages."""

    stages: list[Stage] = field(default_factory=list)
    root_stage: int = 0
    #: tree node id of a buffered node -> its stage index
    stage_of_tree_node: dict[int, int] = field(default_factory=dict)
    #: wire id -> (stage index, near RC node, far RC node); lazy, see _sites
    _wire_sites: Optional[dict[int, tuple[int, int, int]]] = \
        field(default=None, repr=False, compare=False)

    def stage_children(self, stage_idx: int) -> list[int]:
        """Stage indices driven through this stage's buffer sinks."""
        out = []
        for sink in self.stages[stage_idx].sinks:
            if sink.next_stage_tree_id is not None:
                out.append(self.stage_of_tree_node[sink.next_stage_tree_id])
        return out

    def flop_sinks(self) -> list[tuple[int, StageSink]]:
        """All (stage index, sink) pairs that are flop pins, in stage order."""
        result = []
        for idx, stage in enumerate(self.stages):
            for sink in stage.sinks:
                if sink.is_flop:
                    result.append((idx, sink))
        return result

    @property
    def total_wire_cap(self) -> float:
        return sum(stage.total_cap for stage in self.stages)

    # -- incremental patching --------------------------------------------------

    def _sites(self) -> dict[int, tuple[int, int, int]]:
        """Wire id -> (stage, near node, far node), built lazily."""
        if self._wire_sites is None:
            sites: dict[int, tuple[int, int, int]] = {}
            for stage_idx, stage in enumerate(self.stages):
                for node in stage.nodes:
                    if node.wire_id is not None:
                        sites[node.wire_id] = (stage_idx, node.parent,
                                               node.idx)
            self._wire_sites = sites
        return self._wire_sites

    def wire_stage(self, wire_id: int) -> int:
        """Stage index holding ``wire_id`` (KeyError if absent)."""
        return self._sites()[wire_id][0]

    def patch_wire(self, wire_id: int,
                   para: WireParasitics) -> int:
        """Update one wire's R/C entries in place; returns its stage index.

        Topology is untouched: only the far node's series resistance and
        the two half-capacitance entries change, which is exactly the
        footprint of a routing-rule re-assignment.
        """
        stage_idx, near_idx, far_idx = self._sites()[wire_id]
        stage = self.stages[stage_idx]
        half_area = para.c_area / 2.0
        half_rest = para.c_rest / 2.0
        for node_idx in (near_idx, far_idx):
            node = stage.nodes[node_idx]
            node.cap_wire = [
                (wid, half_area, half_rest) if wid == wire_id
                else (wid, a, b)
                for wid, a, b in node.cap_wire]
        stage.nodes[far_idx].r = para.r
        return stage_idx

    def retrim_stage(self, stage_idx: int, tree: ClockTree) -> bool:
        """Patch one stage's root pad/snake values after a trim change.

        A trim edits nothing but the stage root's dummy pad and the
        series snake, so when the snake node neither appears nor
        disappears the stage can be patched in place — no node rebuild,
        and the wire-site index stays valid.  Returns False when the
        topology did change (snake added or removed); the caller must
        fall back to :meth:`rebuild_stage`.
        """
        stage = self.stages[stage_idx]
        tree_node = tree.node(stage.tree_node_id)
        has_snake = len(stage.nodes) > 1 and stage.nodes[1].wire_id is None
        if has_snake != (tree_node.root_snake > 0.0):
            return False
        root = stage.nodes[0]
        half_delta = (tree_node.root_snake_c - stage.snake_cap) / 2.0
        root.cap_fixed += (tree_node.load_pad - stage.pad_cap) + half_delta
        if has_snake:
            snake = stage.nodes[1]
            snake.cap_fixed += half_delta
            snake.r = tree_node.root_snake_r
        stage.pad_cap = tree_node.load_pad
        stage.snake_cap = tree_node.root_snake_c
        return True

    def rebuild_stage(self, stage_idx: int, tree: ClockTree,
                      routing: RoutingResult,
                      parasitics: dict[int, WireParasitics]) -> None:
        """Re-derive one stage from the tree (after a trim change).

        Stage identity (index, ``tree_node_id``) is preserved; only the
        stage's own RC nodes and sinks are rebuilt, so references from
        other stages stay valid.
        """
        old = self.stages[stage_idx]
        tree_node = tree.node(old.tree_node_id)
        if tree_node.buffer is None:
            raise ValueError(
                f"stage {stage_idx} is rooted at tree node "
                f"{old.tree_node_id}, which no longer carries a buffer; "
                f"stages can only be rebuilt in place while the buffered "
                f"node set is unchanged")
        stage = Stage(tree_node_id=old.tree_node_id, driver=tree_node.buffer)
        _fill_stage(stage, tree, routing, parasitics)
        self.stages[stage_idx] = stage
        self._wire_sites = None


def _fill_stage(stage: Stage, tree: ClockTree, routing: RoutingResult,
                parasitics: dict[int, WireParasitics]) -> None:
    """Populate a fresh :class:`Stage` from the tree below its buffer."""
    buffered_tree_id = stage.tree_node_id
    tree_node = tree.node(buffered_tree_id)

    root = RcNode(idx=0, parent=None, wire_id=None, r=0.0,
                  tree_node_id=buffered_tree_id)
    # Delay-equalising dummy load hangs directly on the buffer output.
    root.cap_fixed += tree_node.load_pad
    stage.pad_cap = tree_node.load_pad
    stage.nodes.append(root)

    # Series root snake: a detour wire between the buffer output and
    # the stage's wire tree (cheap delay trim for big drivers).  It
    # has no routed wire id — it is variation-free by construction.
    attach_idx = 0
    if tree_node.root_snake > 0.0:
        half_c = tree_node.root_snake_c / 2.0
        root.cap_fixed += half_c
        snake_node = RcNode(idx=1, parent=0, wire_id=None,
                            r=tree_node.root_snake_r, cap_fixed=half_c)
        stage.nodes.append(snake_node)
        stage.snake_cap = tree_node.root_snake_c
        attach_idx = 1

    # A buffered node that is itself a sink (degenerate single-flop
    # tree): the buffer drives the flop pin directly.
    if tree_node.is_sink:
        node = stage.nodes[attach_idx]
        node.cap_fixed += tree_node.sink_pin.cap
        stage.sinks.append(StageSink(node_idx=attach_idx,
                                     sink_pin=tree_node.sink_pin))

    pending: list[tuple[int, int]] = [(buffered_tree_id, attach_idx)]
    while pending:
        parent_tree_id, parent_rc_idx = pending.pop()
        for child_id in tree.node(parent_tree_id).children:
            child = tree.node(child_id)
            rc_idx = parent_rc_idx
            for wire in routing.edge_wires.get(child_id, []):
                para = parasitics[wire.wire_id]
                half_area = para.c_area / 2.0
                half_rest = para.c_rest / 2.0
                stage.nodes[rc_idx].cap_wire.append(
                    (wire.wire_id, half_area, half_rest))
                node = RcNode(idx=len(stage.nodes), parent=rc_idx,
                              wire_id=wire.wire_id, r=para.r)
                node.cap_wire.append((wire.wire_id, half_area, half_rest))
                stage.nodes.append(node)
                rc_idx = node.idx
            # The last RC node coincides with the child tree node
            # (unless the edge had no wires, i.e. the nodes are
            # colocated — then the parent RC node stands for both).
            if rc_idx != parent_rc_idx:
                stage.nodes[rc_idx].tree_node_id = child_id

            if child.buffer is not None:
                stage.nodes[rc_idx].cap_fixed += child.buffer.c_in
                stage.sinks.append(StageSink(
                    node_idx=rc_idx, next_stage_tree_id=child_id))
                continue  # next stage handles the subtree
            if child.is_sink:
                stage.nodes[rc_idx].cap_fixed += child.sink_pin.cap
                stage.sinks.append(StageSink(
                    node_idx=rc_idx, sink_pin=child.sink_pin))
            if child.children:
                pending.append((child_id, rc_idx))


def build_rc_network(tree: ClockTree, routing: RoutingResult,
                     parasitics: dict[int, WireParasitics]) -> ClockRcNetwork:
    """Assemble the stage-structured RC network.

    ``parasitics`` maps wire id to its extraction.  The tree root must
    carry a buffer (it is the network driver).
    """
    if tree.root.buffer is None:
        raise ValueError("clock tree root must carry a buffer")

    network = ClockRcNetwork()

    def build_stage(buffered_tree_id: int) -> int:
        tree_node = tree.node(buffered_tree_id)
        if tree_node.buffer is None:
            raise ValueError(
                f"tree node {buffered_tree_id} was linked as a stage "
                f"root but carries no buffer; buffer insertion and "
                f"stage sinks are out of sync")
        stage = Stage(tree_node_id=buffered_tree_id, driver=tree_node.buffer)
        stage_idx = len(network.stages)
        network.stages.append(stage)
        network.stage_of_tree_node[buffered_tree_id] = stage_idx
        _fill_stage(stage, tree, routing, parasitics)
        return stage_idx

    # Build stages in BFS order over buffered nodes.
    network.root_stage = build_stage(tree.root_id)
    queue = [network.root_stage]
    while queue:
        stage_idx = queue.pop(0)
        for sink in network.stages[stage_idx].sinks:
            if sink.next_stage_tree_id is not None:
                child_idx = build_stage(sink.next_stage_tree_id)
                queue.append(child_idx)
    return network
