"""Sensitivity-guided greedy rule assignment — the paper's method.

Starting from all-default routing, the optimizer repairs each violated
robustness constraint with the cheapest effective upgrades, then runs a
peephole *downgrade* pass to reclaim upgrades made redundant along the
way.

Constraint-specific repair moves (each iteration plans a batch, applies
it, re-extracts, re-verifies — so every decision is made against real
extraction, not stale estimates):

* **EM** — only width helps (J ~ 1/width).  Each violating wire takes
  the cheapest rule whose width brings utilisation under the limit.
* **Slew** — driven by wire resistance; the worst-slew sink's stage
  gets its highest-R*C wire widened.
* **Delta delay** — per-sink decomposition attributes the worst sink's
  exposure to individual wires; the best reduction-per-cost upgrades
  (usually spacing) are taken until the sink is projected in budget.
* **3-sigma skew** — wires are ranked by the variation-footprint proxy
  (relative width noise x Elmore weight); the top contributors are
  widened, with batch size escalating while Monte Carlo stays violated.

The cost of an upgrade is its switched-capacitance increase plus a
congestion price for the tracks it blocks (``lambda_track`` per um) —
without the congestion term, spacing upgrades would look free and the
optimizer would stamp them everywhere.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Union

from repro import obs, perf
from repro.core.evaluation import AnalysisBundle, analyze_all
from repro.core.features import WireContext, wire_contexts
from repro.core.sensitivity import (RuleSensitivity, SensitivityCache,
                                    evaluate_rule)
from repro.core.targets import RobustnessTargets
from repro.cts.refine import refine_skew
from repro.cts.tree import ClockTree
from repro.extract.extractor import Extraction, extract
from repro.reliability.em import DEFAULT_EM_FACTOR
from repro.route.router import RoutingResult
from repro.tech.ndr import RoutingRule
from repro.tech.technology import Technology


@dataclass
class OptimizeResult:
    """Outcome of a smart-NDR run."""

    extraction: Extraction
    analyses: AnalysisBundle
    feasible: bool
    iterations: int
    upgraded: dict[int, str] = field(default_factory=dict)  # wire id -> rule
    downgraded: int = 0
    runtime: float = 0.0
    #: the incremental engine used (None on the legacy path); callers
    #: may keep driving it, e.g. for a final refine + re-analysis
    engine: object = field(default=None, repr=False, compare=False)

    @property
    def num_upgraded(self) -> int:
        return len(self.upgraded)


@dataclass(frozen=True)
class Move:
    """One planned change to a wire: a rule, optionally plus shields."""

    rule: RoutingRule
    shielded: bool = False

    @property
    def label(self) -> str:
        return self.rule.name.value + ("+SH" if self.shielded else "")


class SmartNdrOptimizer:
    """Greedy constraint-driven NDR assignment over one routed clock."""

    def __init__(self, tree: ClockTree, routing: RoutingResult,
                 tech: Technology, targets: RobustnessTargets, freq: float,
                 lambda_track: float = 0.05, max_iterations: int = 10,
                 use_shielding: bool = False,
                 use_engine: Union[bool, str] = True,
                 verify_every: int = 0) -> None:
        if lambda_track < 0.0:
            raise ValueError("lambda_track must be non-negative")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if verify_every < 0:
            raise ValueError("verify_every must be >= 0")
        self.use_shielding = use_shielding
        #: ``False`` = legacy full re-analysis; ``True`` = incremental
        #: engine on the default backend; a string names a registered
        #: engine backend (see :mod:`repro.engine.backends`)
        self.use_engine = use_engine
        #: debug mode: run the engine-coherence oracle every N applied
        #: iterations (0 = off); raises VerificationError on any ERROR
        self.verify_every = verify_every
        self.tree = tree
        self.routing = routing
        self.tech = tech
        self.targets = targets
        self.freq = freq
        self.lambda_track = lambda_track
        self.max_iterations = max_iterations
        self._default = tech.default_rule
        self._sens_cache: SensitivityCache | None = None

    # -- public ----------------------------------------------------------------

    def run(self) -> OptimizeResult:
        """Assign rules in place on the routing; returns the final state."""
        start = time.perf_counter()  # static: ok[D002] feeds OptimizeResult.runtime metadata only
        upgraded: dict[int, str] = {}
        with perf.phase("opt.extract"):
            extraction = extract(self.tree, self.routing)
        engine = None
        if self.use_engine:
            # Imported lazily: repro.engine pulls repro.core.evaluation
            # back in, which would cycle at module-import time.
            from repro.engine import AnalysisEngine
            engine = AnalysisEngine(extraction, self.tree, self.tech,
                                    self.freq, self.targets,
                                    backend=self.use_engine)
            self._sens_cache = SensitivityCache(self.routing,
                                               self.tech.rules)
        with perf.phase("opt.analyze"):
            analyses = analyze_all(extraction, self.tech, self.freq,
                                   self.targets, engine=engine)
        iterations = 0
        sigma_batch = 1.0  # escalation multiplier for the sigma planner
        prev_score = float("inf")
        stall = 0
        for _ in range(self.max_iterations):
            violations = analyses.violations(self.targets)
            if not violations:
                break
            score = self._violation_score(violations)
            # Two consecutive non-improving iterations = stuck (one is
            # tolerated: planner escalation may need a second round).
            if score >= 0.995 * prev_score:
                stall += 1
                if stall >= 2:
                    break
            else:
                stall = 0
            prev_score = min(prev_score, score)
            iterations += 1
            obs.counter("opt.iterations").inc()
            plan: dict[int, Move] = {}
            with perf.phase("opt.plan"):
                contexts = wire_contexts(self.tree, extraction)
                if "em" in violations:
                    self._plan_em(analyses, contexts, plan)
                if "slew" in violations:
                    self._plan_slew(extraction, analyses, contexts, plan)
                if "delta_delay" in violations:
                    self._plan_delta(extraction, analyses, contexts, plan)
                if "skew_3sigma" in violations:
                    self._plan_sigma(extraction, analyses, contexts, plan,
                                     sigma_batch)
                    sigma_batch *= 2
            if not plan:
                break  # nothing more to try; report infeasible below
            obs.histogram("opt.plan_wires").observe(float(len(plan)))
            for wire_id, move in plan.items():
                self.routing.assign_rule(wire_id, move.rule)
                if move.shielded:
                    self.routing.assign_shield(wire_id, True)
                upgraded[wire_id] = move.label
            # Rule changes shift stage delays and unbalance the tree;
            # re-trim before judging, or the Monte-Carlo skew conflates
            # nominal imbalance with variation.
            with perf.phase("opt.extract"):
                if engine is not None:
                    engine.apply_rule_changes(plan)
            with perf.phase("opt.refine"):
                extraction = refine_skew(self.tree, self.routing, self.tech,
                                         engine=engine).extraction
            with perf.phase("opt.analyze"):
                analyses = analyze_all(extraction, self.tech, self.freq,
                                       self.targets, engine=engine)
            if self.verify_every and iterations % self.verify_every == 0:
                self._run_oracle(extraction, engine, iterations)

        downgraded = 0
        if analyses.feasible(self.targets) and upgraded:
            extraction, analyses, downgraded = self._downgrade_pass(
                extraction, analyses, upgraded, engine)

        return OptimizeResult(
            extraction=extraction,
            analyses=analyses,
            feasible=analyses.feasible(self.targets),
            iterations=iterations,
            upgraded=upgraded,
            downgraded=downgraded,
            runtime=time.perf_counter() - start,  # static: ok[D002] feeds OptimizeResult.runtime metadata only
            engine=engine,
        )

    def _run_oracle(self, extraction: Extraction, engine,
                    iteration: int) -> None:
        """Debug hook: diff the engine's caches against ground truth.

        Runs the ``oracle`` check family over the optimizer's live
        state (engine, sensitivity cache included) and raises
        :class:`~repro.verify.VerificationError` on any ERROR — so a
        dirty-tracking bug aborts at the iteration that introduced it
        instead of surfacing as a wrong number at the end.
        """
        # Imported lazily: repro.verify type-checks against repro.engine,
        # and the oracle pulls analysis modules back in.
        from repro.verify import (VerificationError, VerifyContext,
                                  run_checks)
        ctx = VerifyContext(tech=self.tech, tree=self.tree,
                            routing=self.routing, extraction=extraction,
                            engine=engine, sens_cache=self._sens_cache,
                            freq=self.freq)
        report = run_checks(ctx, kinds=("oracle",))
        if report.has_errors:
            raise VerificationError(
                report, f"optimizer iteration {iteration}")

    def _violation_score(self, violations: dict[str, float]) -> float:
        """Total budget-normalised constraint excess (0 = feasible)."""
        budget_of = {
            "delta_delay": self.targets.max_worst_delta,
            "skew_3sigma": self.targets.max_skew_3sigma,
            "slew": self.targets.max_slew,
            "em": self.targets.max_em_util,
        }
        return sum(excess / budget_of[name]
                   for name, excess in violations.items())


    def _upgrades(self, rule: RoutingRule) -> tuple[RoutingRule, ...]:
        """Strictly more robust rules *within the technology's rule set*.

        Restricting ``tech.rules`` (ablations, constrained libraries)
        restricts the optimizer's decision space accordingly.
        """
        return tuple(r for r in self.tech.rules
                     if r.dominates(rule) and r != rule)

    def _widened(self, rule: RoutingRule) -> RoutingRule:
        """The cheapest available rule that doubles this rule's width.

        Falls back to ``rule`` itself when the technology offers no
        wider rule (restricted rule sets).
        """
        candidates = [r for r in self._upgrades(rule)
                      if r.width_mult > rule.width_mult]
        if not candidates:
            return rule
        return min(candidates,
                   key=lambda r: (r.width_mult, r.space_mult))

    # -- per-constraint planners -------------------------------------------------

    def _sens(self, wire_id: int, rule: RoutingRule, ctx: WireContext,
              shielded: bool = False) -> RuleSensitivity:
        return evaluate_rule(self.routing, wire_id, rule, ctx, self.freq,
                             self.tech.vdd, DEFAULT_EM_FACTOR,
                             shielded=shielded, cache=self._sens_cache)

    def _plan_em(self, analyses: AnalysisBundle,
                 contexts: dict[int, WireContext],
                 plan: dict[int, Move]) -> None:
        """Widen every EM-violating wire just enough."""
        for record in analyses.em.violations:
            wire = self.routing.tracks.wire(record.wire_id)
            ctx = contexts.get(record.wire_id)
            if ctx is None:
                continue
            current = self._sens(record.wire_id, wire.rule, ctx)
            best: RuleSensitivity | None = None
            for rule in self._upgrades(wire.rule):
                cand = self._sens(record.wire_id, rule, ctx)
                if cand.em_util > self.targets.max_em_util:
                    continue
                if best is None or (cand.cost_vs(current, self.lambda_track)
                                    < best.cost_vs(current, self.lambda_track)):
                    best = cand
            if best is None:
                # Nothing meets the budget; take the widest available.
                widest = max(self._upgrades(wire.rule),
                             key=lambda r: r.width_mult, default=None)
                if widest is None:
                    continue
                best = self._sens(record.wire_id, widest, ctx)
            plan[record.wire_id] = Move(best.rule)

    def _plan_slew(self, extraction: Extraction, analyses: AnalysisBundle,
                   contexts: dict[int, WireContext],
                   plan: dict[int, Move]) -> None:
        """Widen the dominant-R*C wire in each slew-violating sink's stage."""
        network = extraction.network
        stage_of_pin = {sink.sink_pin.full_name: idx
                        for idx, sink in network.flop_sinks()}
        seen_stages: set[int] = set()
        for sink in analyses.timing.sinks:
            if sink.slew <= self.targets.max_slew:
                continue
            stage_idx = stage_of_pin[sink.pin.full_name]
            if stage_idx in seen_stages:
                continue
            seen_stages.add(stage_idx)
            stage = network.stages[stage_idx]
            down = stage.downstream_caps()
            best_id, best_score = None, 0.0
            for node in stage.nodes:
                if node.wire_id is None or node.wire_id in plan:
                    continue
                wire = self.routing.tracks.wire(node.wire_id)
                if wire.rule.width_mult >= 2.0:
                    continue
                score = node.r * down[node.idx]
                if score > best_score:
                    best_id, best_score = node.wire_id, score
            if best_id is not None:
                wire = self.routing.tracks.wire(best_id)
                widened = self._widened(wire.rule)
                if widened != wire.rule:
                    plan[best_id] = Move(widened, wire.shielded)

    def _plan_delta(self, extraction: Extraction, analyses: AnalysisBundle,
                    contexts: dict[int, WireContext],
                    plan: dict[int, Move], top_sinks: int = 50) -> None:
        """Fix the worst delta-delay sinks by best reduction-per-cost upgrades.

        Sinks are processed worst-first; upgrades already planned for
        earlier sinks are credited to later ones (a shared trunk fix
        helps every sink below it), so shared aggressor exposure is not
        repaired twice.
        """
        budget = self.targets.max_worst_delta
        offenders = sorted(
            (s for s in analyses.crosstalk.sinks if s.worst > budget),
            key=lambda s: s.worst, reverse=True)[:top_sinks]
        # Coupling-survival ratio of wires already planned this round.
        planned_ratio: dict[int, float] = {}
        sens_cache: dict[tuple[int, str], RuleSensitivity] = {}

        def sens(wire_id: int, rule: RoutingRule,
                 shielded: bool = False) -> RuleSensitivity:
            key = (wire_id, rule.name.value + ("+SH" if shielded else ""))
            if key not in sens_cache:
                sens_cache[key] = self._sens(wire_id, rule,
                                             contexts[wire_id],
                                             shielded=shielded)
            return sens_cache[key]

        index = _dd_index(extraction)
        for offender in offenders:
            contributions, cc_through = _sink_dd_by_wire(
                extraction, offender.pin.full_name, index)
            projected = offender.worst - sum(
                contrib * (1.0 - planned_ratio[wid])
                for wid, contrib in contributions.items()
                if wid in planned_ratio)
            needed = projected - 0.85 * budget
            if needed <= 0.0:
                continue
            # Rank candidate upgrades by projected reduction per cost.
            # Two levers per wire: spacing cuts its own coupling caps;
            # width cuts the shared resistance that multiplies every
            # coupling downstream of it.
            #
            # A heap on (-score, seq) instead of a full sort: only the
            # consumed prefix pays log cost, and equal-score candidates
            # pop in insertion order — the old stable sort's tie-break,
            # so set iteration order still cannot leak into the plan.
            # Candidates come from cached sensitivities (``sens`` above),
            # so pushing is cheap and popping is the only ranked work.
            ranked: list[tuple[float, int, float, float, int, Move]] = []
            candidate_ids = sorted(set(contributions) | set(cc_through))
            for wire_id in candidate_ids:
                if wire_id in plan or wire_id not in contexts:
                    continue
                contrib = contributions.get(wire_id, 0.0)
                through = cc_through.get(wire_id, 0.0)
                wire = self.routing.tracks.wire(wire_id)
                current = sens(wire_id, wire.rule, wire.shielded)
                cc_now = current.parasitics.cc_signal
                moves = [Move(rule, wire.shielded)
                         for rule in self._upgrades(wire.rule)]
                if self.use_shielding and not wire.shielded:
                    moves.append(Move(wire.rule, shielded=True))
                for move in moves:
                    cand = sens(wire_id, move.rule, move.shielded)
                    ratio = (cand.parasitics.cc_signal / cc_now
                             if cc_now > 0.0 else 1.0)
                    reduction = contrib * (1.0 - ratio)
                    reduction += max(0.0, current.parasitics.r
                                     - cand.parasitics.r) * through
                    if reduction <= 1e-9:
                        continue
                    cost = max(cand.cost_vs(current, self.lambda_track), 1e-6)
                    ranked.append((-(reduction / cost), len(ranked),
                                   reduction, ratio, wire_id, move))
            heapq.heapify(ranked)
            while ranked and needed > 0.0:
                _, _, reduction, ratio, wire_id, move = \
                    heapq.heappop(ranked)
                if wire_id in plan:
                    continue
                plan[wire_id] = move
                planned_ratio[wire_id] = ratio
                needed -= reduction

    def _plan_sigma(self, extraction: Extraction, analyses: AnalysisBundle,
                    contexts: dict[int, WireContext],
                    plan: dict[int, Move],
                    escalation: float) -> None:
        """Widen top variation-footprint wires, scaled to the needed cut.

        Widening halves a wire's relative width noise, so upgrading
        wires carrying a fraction ``f`` of the total footprint trims
        roughly ``f/2`` of the (reducible) skew sigma.  We aim for twice
        the measured excess (reducible share is unknown: thickness and
        buffer noise set a floor NDR cannot touch) and let the outer
        loop escalate if Monte Carlo disagrees.
        """
        current = analyses.mc.skew_3sigma
        excess = current - self.targets.max_skew_3sigma
        if excess <= 0.0:
            return
        fraction = min(1.0, max(0.05, 4.0 * excess / current) * escalation)
        scored: list[tuple[float, int]] = []
        total_score = 0.0
        for wire_id, ctx in contexts.items():
            wire = self.routing.tracks.wire(wire_id)
            para = extraction.wires[wire_id]
            layer = wire.layer
            score = (layer.min_width / wire.width) * para.r * ctx.downstream_cap
            total_score += score
            if wire.rule.width_mult >= 2.0 or wire_id in plan:
                continue
            scored.append((-score, -wire_id))
        # Heap on (-score, -wire_id): pops match the old descending
        # tuple sort (score desc, then wire id desc on ties), but only
        # the covered prefix is ever ordered.
        heapq.heapify(scored)
        covered = 0.0
        while scored and covered < fraction * total_score:
            neg_score, neg_id = heapq.heappop(scored)
            score, wire_id = -neg_score, -neg_id
            wire = self.routing.tracks.wire(wire_id)
            widened = self._widened(wire.rule)
            if widened != wire.rule:
                plan[wire_id] = Move(widened, wire.shielded)
            covered += score

    # -- downgrade peephole --------------------------------------------------------

    def _downgrade_pass(self, extraction: Extraction,
                        analyses: AnalysisBundle,
                        upgraded: dict[int, str],
                        engine=None) -> tuple[Extraction,
                                              AnalysisBundle, int]:
        """Revert upgrades that look redundant; keep only if still feasible.

        Candidates are upgrades whose own EM and delta-delay footprints
        at the default rule sit well inside the budgets.  The batch is
        verified with the full analysis stack; on any violation the
        whole batch is restored (one shot, conservative).
        """
        contexts = wire_contexts(self.tree, extraction)
        candidates: list[int] = []
        for wire_id in upgraded:
            ctx = contexts.get(wire_id)
            if ctx is None:
                continue
            cand = self._sens(wire_id, self._default, ctx)
            if (cand.em_util <= 0.85 * self.targets.max_em_util
                    and cand.dd_own <= 0.05 * self.targets.max_worst_delta
                    and cand.sigma_score <= 0.5):
                candidates.append(wire_id)
        if not candidates:
            return extraction, analyses, 0

        saved = {wid: (self.routing.tracks.wire(wid).rule,
                       self.routing.tracks.wire(wid).shielded)
                 for wid in candidates}
        for wire_id in candidates:
            self.routing.assign_rule(wire_id, self._default)
            self.routing.assign_shield(wire_id, False)
        if engine is not None:
            engine.apply_rule_changes(candidates)
        new_extraction = refine_skew(self.tree, self.routing, self.tech,
                                     engine=engine).extraction
        new_analyses = analyze_all(new_extraction, self.tech, self.freq,
                                   self.targets, engine=engine)
        if new_analyses.feasible(self.targets):
            for wire_id in candidates:
                del upgraded[wire_id]
            return new_extraction, new_analyses, len(candidates)
        for wire_id, (rule, shielded) in saved.items():
            self.routing.assign_rule(wire_id, rule)
            self.routing.assign_shield(wire_id, shielded)
        if engine is not None:
            engine.apply_rule_changes(candidates)
        extraction = refine_skew(self.tree, self.routing, self.tech,
                                 engine=engine).extraction
        analyses = analyze_all(extraction, self.tech, self.freq,
                               self.targets, engine=engine)
        return extraction, analyses, 0


def _dd_index(extraction: Extraction) -> tuple[dict[int, int],
                                               dict[str, tuple[int, object]]]:
    """(stage parent map, flop pin -> (stage, sink)) for dd decomposition.

    Built once per planning pass and shared across sinks —
    :func:`_sink_dd_by_wire` otherwise rescans every stage per call.
    """
    network = extraction.network
    parent_of: dict[int, int] = {}
    for idx, stage in enumerate(network.stages):
        for sink in stage.sinks:
            if sink.next_stage_tree_id is not None:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                parent_of[child] = idx
    flop_of = {sink.sink_pin.full_name: (idx, sink)
               for idx, sink in network.flop_sinks()}
    return parent_of, flop_of


def _sink_dd_by_wire(extraction: Extraction,
                     pin_name: str,
                     index=None) -> tuple[dict[int, float],
                                          dict[int, float]]:
    """Decompose one flop pin's worst-case delta delay by wire.

    Walks the sink's stage chain; within each stage, each coupling cap
    contributes ``cc/2 * (r_drive + R_shared)`` per RC node it sits on.

    Returns ``(contributions, cc_through)``:

    * ``contributions[w]`` — delta delay injected by wire *w*'s own
      coupling caps (reducible by a spacing upgrade on *w*);
    * ``cc_through[w]`` — total coupling capacitance whose shared path
      to this sink flows through *w*, so cutting *w*'s resistance by
      ``dR`` cuts the sink's delta delay by ``dR * cc_through[w]``
      (the width-upgrade lever).
    """
    network = extraction.network
    parent_of, flop_of = index if index is not None \
        else _dd_index(extraction)
    if pin_name not in flop_of:
        raise KeyError(f"no flop pin named {pin_name!r}")
    target_stage, target_sink = flop_of[pin_name]

    # Chain from root stage to the sink's stage, with the victim node in
    # each stage (the node the path passes through).
    chain: list[tuple[int, int]] = [(target_stage, target_sink.node_idx)]
    while chain[0][0] in parent_of:
        child_idx = chain[0][0]
        parent_idx = parent_of[child_idx]
        parent_stage = network.stages[parent_idx]
        via = next(s.node_idx for s in parent_stage.sinks
                   if s.next_stage_tree_id is not None
                   and network.stage_of_tree_node[s.next_stage_tree_id]
                   == child_idx)
        chain.insert(0, (parent_idx, via))

    contributions: dict[int, float] = {}
    cc_through: dict[int, float] = {}
    for stage_idx, via_node in chain:
        stage = network.stages[stage_idx]
        nodes = stage.nodes
        r_path = [0.0] * len(nodes)
        for node in nodes:
            if node.parent is not None:
                r_path[node.idx] = r_path[node.parent] + node.r
        path = stage.path_to_root(via_node)
        on_path = [False] * len(nodes)
        for idx in path:
            on_path[idx] = True
        meet = [0] * len(nodes)
        for node in nodes:
            if on_path[node.idx]:
                meet[node.idx] = node.idx
            elif node.parent is not None:
                meet[node.idx] = meet[node.parent]
        r_drive = stage.driver.r_drive
        cc_at_meet = [0.0] * len(nodes)
        for node in nodes:
            shared = r_drive + r_path[meet[node.idx]]
            node_cc = 0.0
            for wire_id, _ca, _cr in node.cap_wire:
                cc = extraction.wires[wire_id].cc_signal
                if cc > 0.0:
                    contributions[wire_id] = (contributions.get(wire_id, 0.0)
                                              + (cc / 2.0) * shared)
                    node_cc += cc / 2.0
            cc_at_meet[meet[node.idx]] += node_cc
        # Suffix-accumulate coupling mass up the sink path: mass with a
        # meet at or below a path node flows through its incoming wire.
        running = 0.0
        for idx in path:  # deepest (via) first, root last
            running += cc_at_meet[idx]
            node = nodes[idx]
            if node.parent is not None and node.wire_id is not None:
                cc_through[node.wire_id] = (cc_through.get(node.wire_id, 0.0)
                                            + running)
    return contributions, cc_through
