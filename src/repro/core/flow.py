"""The end-to-end smart-NDR flow.

``run_flow`` is the library's front door: given a placed design and a
policy, it drives the four-stage pipeline (:mod:`repro.core.stages`) —
``build`` (CTS + route + trim), ``policy`` (rule assignment),
``retrim``, ``analyze`` — and returns a fully analyzed
:class:`FlowResult`.

Every policy starts from a *fresh* physical build of the same design so
comparisons are apples-to-apples (the skew-trimming pads are re-derived
under each policy's own extraction).  With an
:class:`~repro.io.artifacts.ArtifactStore` passed as ``store``, the
deterministic default-rule build is computed once per (design, tech,
stage params) and each policy receives its own snapshot of it — same
semantics, one build instead of one per cell.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.evaluation import AnalysisBundle
from repro.core.optimizer import OptimizeResult
from repro.core.policies import Policy
from repro.core.stages import (BuildParams, PolicyParams, analyze_stage,
                               build_stage, policy_stage, retrim_stage)
from repro.core.targets import RobustnessTargets
from repro.cts.refine import RefineResult
from repro.cts.synthesize import CtsResult
from repro.cts.tree import ClockTree
from repro.extract.extractor import Extraction
from repro.netlist.design import Design
from repro.route.router import RoutingResult
from repro.tech.technology import Technology, default_technology


@dataclass
class PhysicalDesign:
    """A synthesized, routed, skew-trimmed clock implementation."""

    design: Design
    tech: Technology
    tree: ClockTree
    routing: RoutingResult
    cts: CtsResult
    refine: RefineResult

    @property
    def extraction(self) -> Extraction:
        return self.refine.extraction


@dataclass
class FlowResult:
    """Everything one policy run produces on one design."""

    design_name: str
    policy: Policy
    targets: RobustnessTargets
    physical: PhysicalDesign
    analyses: AnalysisBundle
    rule_histogram: dict[str, int] = field(default_factory=dict)
    ndr_track_cost: float = 0.0
    optimize: Optional[OptimizeResult] = None
    runtime: float = 0.0

    @property
    def feasible(self) -> bool:
        return self.analyses.feasible(self.targets)

    @property
    def clock_power(self) -> float:
        """Total clock power, uW."""
        return self.analyses.power.p_total

    @property
    def switched_cap(self) -> float:
        """Total switched capacitance, fF."""
        return self.analyses.power.total_cap

    def summary(self) -> dict[str, float]:
        """Flat metric dict for tables."""
        a = self.analyses
        return {
            "power_uw": a.power.p_total,
            "wire_cap_ff": a.power.wire_cap,
            "total_cap_ff": a.power.total_cap,
            "skew_ps": a.timing.skew,
            "latency_ps": a.timing.latency,
            "worst_slew_ps": a.timing.worst_slew,
            "worst_delta_ps": a.crosstalk.worst_delta,
            "skew_3sigma_ps": a.mc.skew_3sigma,
            "em_violations": float(a.em.num_violations),
            "em_worst_util": a.em.worst_utilization,
            "ndr_track_um": self.ndr_track_cost,
            "feasible": 1.0 if self.feasible else 0.0,
        }


def build_physical_design(design: Design, tech: Optional[Technology] = None,
                          max_stage_cap: float = 0.0,
                          store=None) -> PhysicalDesign:
    """CTS + routing + skew trim, with all wires on the default rule.

    With ``store`` (an :class:`~repro.io.artifacts.ArtifactStore`), the
    build is content-addressed and a hit returns a fresh snapshot.
    """
    tech = tech if tech is not None else default_technology()
    return build_stage(design, tech,
                       BuildParams(max_stage_cap=max_stage_cap), store=store)


def run_flow(design: Design, tech: Optional[Technology] = None,
             policy: Policy = Policy.SMART,
             targets: Optional[RobustnessTargets] = None,
             random_fraction: float = 0.3, random_seed: int = 0,
             guide=None, lambda_track: float = 0.05,
             engine_backend: str = "",
             store=None) -> FlowResult:
    """Run one policy end to end on ``design``.

    Parameters
    ----------
    policy:
        Which rule-assignment strategy to use.  ``SMART_ML`` requires a
        fitted :class:`~repro.core.mlguide.NdrClassifierGuide` passed as
        ``guide``.
    targets:
        Robustness budgets; defaults to the period-derived spec
        (:meth:`RobustnessTargets.for_period`).
    random_fraction / random_seed:
        Only used by ``Policy.RANDOM``.
    engine_backend:
        Analysis-engine backend name for the optimizing policies
        ("" = registry default).  Backends are verified bit-identical,
        so this never changes the result — only how fast it arrives.
    store:
        Optional :class:`~repro.io.artifacts.ArtifactStore`; the build
        stage is then shared across invocations (each policy mutates
        its own snapshot, so results are bitwise identical to a fresh
        build).

    For the optimizing policies, an EM violation that survives with
    every violating wire already at the widest rule means no rule
    assignment can fix it — the charge per trunk is too high.  The flow
    then re-synthesizes with a halved stage-capacitance budget (more,
    smaller stages carry less charge per trunk) and retries, up to two
    times; this is the CTS/NDR interaction a real flow iterates on.
    """
    tech = tech if tech is not None else default_technology()
    if targets is None:
        targets = RobustnessTargets.for_period(design.clock_period,
                                               tech.max_slew)
    start = time.perf_counter()  # static: ok[D002] feeds FlowResult.runtime metadata only
    optimizing = policy in (Policy.SMART, Policy.SMART_SHIELD,
                            Policy.SMART_ML)
    policy_params = PolicyParams(policy=policy,
                                 random_fraction=random_fraction,
                                 random_seed=random_seed,
                                 lambda_track=lambda_track,
                                 engine_backend=engine_backend)
    # Track the stage budget explicitly so retries actually shrink it
    # (insert_buffers uses 25% of the largest buffer's load by default).
    stage_budget = 0.25 * tech.buffers.largest.max_cap
    max_stage_cap = 0.0  # build_stage's default (== stage_budget)
    widest = max(tech.rules, key=lambda r: r.width_mult)

    for attempt in range(3):
        physical = build_stage(design, tech,
                               BuildParams(max_stage_cap=max_stage_cap),
                               store=store)
        routing = physical.routing

        optimize = policy_stage(physical, targets, policy_params,
                                guide=guide)

        # Rule changes shift stage delays; re-trim and take final
        # analyses.  When the optimizer ran with its incremental engine,
        # keep driving it — the final refine then rebuilds only the
        # trimmed stages instead of re-extracting the network.
        engine = optimize.engine if optimize is not None else None
        retrim_stage(physical, engine=engine)
        analyses = analyze_stage(physical, targets, engine=engine)

        if not optimizing or _em_fixable_by_rules(analyses, routing, widest) \
                or analyses.feasible(targets) or attempt == 2:
            break
        # Re-synthesize with smaller stages: less charge per trunk wire.
        stage_budget /= 2.0
        max_stage_cap = stage_budget

    result = FlowResult(
        design_name=design.name,
        policy=policy,
        targets=targets,
        physical=physical,
        analyses=analyses,
        rule_histogram=routing.rule_histogram(),
        ndr_track_cost=routing.ndr_track_cost(),
        optimize=optimize,
        runtime=time.perf_counter() - start,  # static: ok[D002] feeds FlowResult.runtime metadata only
    )
    if os.environ.get("REPRO_VERIFY_FLOWS"):  # static: ok[C003] gates an assertion hook only; never alters artifact content
        # Test/CI hook: statically verify every flow result produced
        # anywhere in the process (set by the test suite's conftest).
        from repro.verify import assert_flow_clean
        assert_flow_clean(result,
                          f"run_flow({design.name!r}, {policy.value})")
    return result


def _em_fixable_by_rules(analyses: AnalysisBundle, routing: RoutingResult,
                         widest) -> bool:
    """False when EM violations persist on wires already at the widest rule.

    That is the signature of a structural problem (too much charge per
    trunk) that only re-synthesis can address.
    """
    for record in analyses.em.violations:
        wire = routing.tracks.wire(record.wire_id)
        if wire.rule.width_mult >= widest.width_mult:
            return False
    return True
