"""Baseline rule-assignment policies.

These are the comparison points every experiment reports against:

* ``NO_NDR``  — default rule everywhere: cheapest, least robust.
* ``ALL_NDR`` — full 2x/2x rule everywhere: the industry default for
  clock routing, and the robustness reference the smart policies must
  match.
* ``WIDTH_ONLY`` / ``SPACE_ONLY`` — uniform single-axis rules, the
  ablation points separating R-driven from coupling-driven effects.
* ``RANDOM`` — a random fraction of wires upgraded to full NDR: the
  sanity baseline showing that *where* the NDRs go matters, not just
  how many there are.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.route.router import RoutingResult
from repro.tech.ndr import RoutingRule, rule_by_name


class Policy(str, enum.Enum):
    """Named rule-assignment strategies used across experiments."""

    NO_NDR = "no-ndr"
    ALL_NDR = "all-ndr"
    WIDTH_ONLY = "width-only"
    SPACE_ONLY = "space-only"
    RANDOM = "random"
    SMART = "smart"      # sensitivity-guided greedy (the paper's method)
    SMART_ML = "smart-ml"  # classifier-guided variant
    SMART_SHIELD = "smart-shield"  # greedy with grounded shields enabled

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_UNIFORM_RULE: dict[Policy, str] = {
    Policy.NO_NDR: "W1S1",
    Policy.ALL_NDR: "W2S2",
    Policy.WIDTH_ONLY: "W2S1",
    Policy.SPACE_ONLY: "W1S2",
}


def uniform_rule_of(policy: Policy) -> RoutingRule:
    """The rule a uniform policy stamps on every wire."""
    try:
        return rule_by_name(_UNIFORM_RULE[policy])
    except KeyError:
        raise ValueError(f"{policy} is not a uniform policy") from None


def apply_uniform_policy(routing: RoutingResult, policy: Policy) -> None:
    """Stamp a uniform policy's rule on every clock wire, in place."""
    rule = uniform_rule_of(policy)
    for wire in routing.clock_wires:
        routing.assign_rule(wire.wire_id, rule)


def apply_random_policy(routing: RoutingResult, fraction: float,
                        seed: int = 0) -> list[int]:
    """Upgrade a random ``fraction`` of clock wires to full NDR.

    Remaining wires get the default rule.  Returns the upgraded wire
    ids (for reporting).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    full = rule_by_name("W2S2")
    default = rule_by_name("W1S1")
    upgraded: list[int] = []
    for wire in routing.clock_wires:
        if rng.random() < fraction:
            routing.assign_rule(wire.wire_id, full)
            upgraded.append(wire.wire_id)
        else:
            routing.assign_rule(wire.wire_id, default)
    return upgraded
