"""Per-wire feature extraction for analysis and ML-guided assignment.

Features are computed at the *default-rule* state of the design (the
state the classifier sees before any upgrade), so they are comparable
across designs:

==  =======================  =============================================
#   name                     meaning
==  =======================  =============================================
0   length                   electrical length, um
1   layer_index              metal layer position in the stack
2   n_aggressors             distinct coupled signal neighbors
3   coupling_overlap         total parallel-run length with aggressors, um
4   min_spacing              closest aggressor edge spacing, um
5   cc_signal                total aggressor coupling cap, fF
6   cc_weighted              activity-weighted aggressor coupling cap, fF
7   upstream_r               driver + wire resistance above the wire, kOhm
8   downstream_cap           stage-local capacitance below the wire, fF
9   downstream_flops         flops in the full subtree below the wire
10  depth                    tree depth of the wire's edge
11  wire_r                   the wire's own resistance, kOhm
12  em_util                  EM current-density utilisation at default rule
13  is_horizontal            1.0 for H wires, 0.0 for V
==  =======================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cts.tree import ClockTree
from repro.extract.extractor import Extraction
from repro.reliability.em import EmReport


WIRE_FEATURE_NAMES: tuple[str, ...] = (
    "length", "layer_index", "n_aggressors", "coupling_overlap",
    "min_spacing", "cc_signal", "cc_weighted", "upstream_r",
    "downstream_cap", "downstream_flops", "depth", "wire_r",
    "em_util", "is_horizontal",
)


@dataclass(frozen=True)
class WireContext:
    """Electrical context of one clock wire within its stage."""

    wire_id: int
    stage_idx: int
    node_idx: int          # RC node at the wire's far end
    upstream_r: float      # kOhm from stage driver to the wire's near end
    downstream_cap: float  # fF below (and including) the far node
    downstream_flops: int  # flops in the full subtree below the far node


def wire_contexts(tree: ClockTree, extraction: Extraction) -> dict[int, WireContext]:
    """Per-wire electrical context, derived from the stage network."""
    network = extraction.network

    # Full-subtree flop counts per stage (bottom-up over the stage tree).
    stage_flops: dict[int, int] = {}

    def count_stage_flops(stage_idx: int) -> int:
        if stage_idx in stage_flops:
            return stage_flops[stage_idx]
        total = 0
        for sink in network.stages[stage_idx].sinks:
            if sink.is_flop:
                total += 1
            else:
                total += count_stage_flops(
                    network.stage_of_tree_node[sink.next_stage_tree_id])
        stage_flops[stage_idx] = total
        return total

    for idx in range(len(network.stages)):
        count_stage_flops(idx)

    contexts: dict[int, WireContext] = {}
    for stage_idx, stage in enumerate(network.stages):
        down = stage.downstream_caps()
        r_path = [0.0] * len(stage.nodes)
        # Flops below each RC node, counting through next-stage buffers.
        flops_below = [0] * len(stage.nodes)
        for sink in stage.sinks:
            if sink.is_flop:
                flops_below[sink.node_idx] += 1
            else:
                child = network.stage_of_tree_node[sink.next_stage_tree_id]
                flops_below[sink.node_idx] += stage_flops[child]
        for node in stage.nodes:
            if node.parent is not None:
                r_path[node.idx] = r_path[node.parent] + node.r
        for node in reversed(stage.nodes):
            if node.parent is not None:
                flops_below[node.parent] += flops_below[node.idx]
        for node in stage.nodes:
            if node.wire_id is None:
                continue
            contexts[node.wire_id] = WireContext(
                wire_id=node.wire_id,
                stage_idx=stage_idx,
                node_idx=node.idx,
                upstream_r=stage.driver.r_drive + r_path[node.parent],
                downstream_cap=down[node.idx],
                downstream_flops=flops_below[node.idx],
            )
    return contexts


def wire_feature_matrix(tree: ClockTree, extraction: Extraction,
                        em: EmReport) -> tuple[list[int], np.ndarray]:
    """Feature matrix over all clock wires.

    Returns ``(wire_ids, X)`` with rows aligned; columns follow
    :data:`WIRE_FEATURE_NAMES`.
    """
    routing = extraction.routing
    contexts = wire_contexts(tree, extraction)
    em_util = {w.wire_id: w.utilization for w in em.wires}

    wire_ids: list[int] = []
    rows: list[list[float]] = []
    for wire in routing.clock_wires:
        if wire.wire_id not in contexts:
            continue  # zero-length stubs carry no RC node
        para = extraction.wires[wire.wire_id]
        ctx = contexts[wire.wire_id]
        neighbors = routing.tracks.neighbors_of(wire)
        aggressors = [nb for nb in neighbors if not nb.same_net]
        overlap = sum(nb.overlap for nb in aggressors)
        min_spacing = min((nb.spacing for nb in aggressors),
                          default=wire.layer.coupling_reach)
        cc_weighted = sum(e.cc * e.activity for e in para.couplings)
        rows.append([
            wire.length,
            float(wire.layer.index),
            float(len(aggressors)),
            overlap,
            min_spacing,
            para.cc_signal,
            cc_weighted,
            ctx.upstream_r,
            ctx.downstream_cap,
            float(ctx.downstream_flops),
            float(tree.depth(wire.edge_child_id)),
            para.r,
            em_util.get(wire.wire_id, 0.0),
            1.0 if wire.segment.horizontal else 0.0,
        ])
        wire_ids.append(wire.wire_id)
    return wire_ids, np.asarray(rows, dtype=float)
