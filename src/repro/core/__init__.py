"""Smart non-default routing: the paper's primary contribution.

The problem: clock routing traditionally applies a non-default rule
(2x width / 2x spacing) to *every* clock wire for crosstalk, slew,
variation and EM robustness — and pays for it in switched capacitance,
i.e. clock power.  Smart NDR assigns rules *per wire*: only where the
analysis says robustness is actually bought.

Public surface:

* :class:`~repro.core.targets.RobustnessTargets` — the constraint set
  every policy must meet (delta-delay, 3-sigma skew, slew, EM).
* :func:`~repro.core.policies.apply_uniform_policy` and friends — the
  baselines (ALL-NDR, NO-NDR, width-only, spacing-only, random).
* :class:`~repro.core.optimizer.SmartNdrOptimizer` — the
  sensitivity-guided greedy assignment (the paper's method).
* :class:`~repro.core.mlguide.NdrClassifierGuide` — the learned variant
  that predicts rule need from wire features.
* :func:`~repro.core.flow.run_flow` — one-call end-to-end flow
  producing a fully analyzed :class:`~repro.core.flow.FlowResult`.
"""

from repro.core.targets import RobustnessTargets
from repro.core.evaluation import (AnalysisBundle, analyze_all,
                                   targets_from_reference)
from repro.core.features import WIRE_FEATURE_NAMES, wire_feature_matrix
from repro.core.sensitivity import RuleSensitivity, rule_sensitivities
from repro.core.policies import (Policy, apply_uniform_policy,
                                 apply_random_policy)
from repro.core.optimizer import SmartNdrOptimizer, OptimizeResult
from repro.core.mlguide import NdrClassifierGuide
from repro.core.flow import FlowResult, run_flow, build_physical_design
from repro.core.multiclock import (ClockDomain, DomainResult,
                                   MultiClockResult, run_multiclock_flow,
                                   split_domains)

__all__ = [
    "RobustnessTargets",
    "AnalysisBundle",
    "analyze_all",
    "targets_from_reference",
    "WIRE_FEATURE_NAMES",
    "wire_feature_matrix",
    "RuleSensitivity",
    "rule_sensitivities",
    "Policy",
    "apply_uniform_policy",
    "apply_random_policy",
    "SmartNdrOptimizer",
    "OptimizeResult",
    "NdrClassifierGuide",
    "FlowResult",
    "run_flow",
    "build_physical_design",
    "ClockDomain",
    "DomainResult",
    "MultiClockResult",
    "run_multiclock_flow",
    "split_domains",
]
