"""Analytic what-if evaluation of routing rules on single wires.

The optimizer needs, for every (wire, candidate rule) pair: what happens
to switched capacitance, coupling, delta delay, EM utilisation and the
variation footprint — *without* a full re-route.  Because rule changes
only alter a wire's width and guaranteed spacing, the extractor's own
capacitance model answers this exactly: we temporarily stamp the rule
on the wire, re-run single-wire extraction against its live track
neighbors, and restore.

The derived quantities:

* ``cost`` — the optimizer's price of the rule: the change in switched
  capacitance (fF) plus ``lambda_track`` times the extra track length
  the rule blocks (a congestion price; spacing rules are nearly free in
  capacitance but expensive in tracks).
* ``dd_own`` — the wire's worst-case delta-delay injection at sinks
  below it: ``cc_signal * (R_upstream + R_wire / 2)``.
* ``em_util`` — current-density utilisation under the candidate width.
* ``sigma_score`` — a variation-footprint proxy: relative width noise
  times the wire's Elmore weight,
  ``(w_min / w) * R_wire * C_downstream``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import WireContext
from repro.extract.capmodel import WireParasitics, extract_wire
from repro.route.router import RoutingResult
from repro.tech.ndr import RoutingRule


@dataclass(frozen=True)
class RuleSensitivity:
    """What one wire looks like under one candidate (rule, shield) state."""

    wire_id: int
    rule: RoutingRule
    parasitics: WireParasitics
    dd_own: float        # worst delta-delay injection below the wire, ps
    em_util: float       # current-density utilisation
    sigma_score: float   # variation-footprint proxy, ps
    track_length: float  # track length blocked beyond the default, um
    shielded: bool = False

    @property
    def c_switched(self) -> float:
        return self.parasitics.c_switched

    def cost_vs(self, other: "RuleSensitivity", lambda_track: float) -> float:
        """Price of moving from ``other``'s rule to this one."""
        return ((self.c_switched - other.c_switched)
                + lambda_track * (self.track_length - other.track_length))


def _what_if_parasitics(routing: RoutingResult, wire_id: int,
                        rule: RoutingRule, shielded: bool) -> WireParasitics:
    """Extract one wire as if it carried ``(rule, shielded)``."""
    wire = routing.tracks.wire(wire_id)
    saved_rule = wire.rule
    saved_shield = wire.shielded
    try:
        wire.rule = rule
        wire.shielded = shielded
        neighbors = routing.tracks.neighbors_of(wire)
        return extract_wire(wire, neighbors)
    finally:
        wire.rule = saved_rule
        wire.shielded = saved_shield


class SensitivityCache:
    """Memoises what-if extraction per (wire, rule, shield, occupancy).

    The extraction of a candidate ``(wire, rule, shield)`` depends on
    nothing but that key and the *rules of the wire's clock neighbors*
    (their width and guaranteed spacing set the coupling distances;
    geometry never moves).  That neighbor-occupancy fingerprint is
    appended to the cache key, so entries self-invalidate when the
    optimizer reassigns a neighbor — no epochs to maintain.

    The potential-neighbor list is computed once per wire with the
    widest rule stamped (coupling reach grows with the victim's width,
    so the widest rule's neighbor set is a superset of every
    candidate's).
    """

    def __init__(self, routing: RoutingResult, rules) -> None:
        self.routing = routing
        self._widest = max(rules, key=lambda r: r.width_mult)
        #: wire id -> clock-wire potential neighbors (the wire objects
        #: themselves, id-sorted, so occupancy reads skip the registry)
        self._potential: dict[int, tuple] = {}
        self._cache: dict[tuple, WireParasitics] = {}

    def _potential_neighbors(self, wire_id: int) -> tuple:
        cached = self._potential.get(wire_id)
        if cached is None:
            wire = self.routing.tracks.wire(wire_id)
            saved = wire.rule
            try:
                wire.rule = self._widest
                neighbors = self.routing.tracks.neighbors_of(wire)
            finally:
                wire.rule = saved
            tracks = self.routing.tracks
            clock = {nb.neighbor_id for nb in neighbors
                     if tracks.wire(nb.neighbor_id).is_clock}
            cached = tuple(tracks.wire(nid) for nid in sorted(clock))
            self._potential[wire_id] = cached
        return cached

    def _occupancy(self, wire_id: int) -> tuple[str, ...]:
        return tuple(nb.rule.name.value
                     for nb in self._potential_neighbors(wire_id))

    def occupancy(self, wire_id: int) -> tuple[str, ...]:
        """Current neighbor-occupancy fingerprint of one wire (public view).

        The rule names of the wire's potential clock neighbors, in
        neighbor-id order — the self-invalidating component of every
        cache key, exposed for the engine-coherence verifier.
        """
        return self._occupancy(wire_id)

    def entries(self) -> list[tuple[int, str, bool, tuple[str, ...],
                                    WireParasitics]]:
        """Every memoised entry as ``(wire, rule, shielded, occ, para)``.

        Key-sorted, so verification output is deterministic.
        """
        return [(wid, rule_name, shielded, occ, para)
                for (wid, rule_name, shielded, occ), para
                in sorted(self._cache.items())]

    def parasitics(self, wire_id: int, rule: RoutingRule,
                   shielded: bool) -> WireParasitics:
        """What-if parasitics of one candidate, memoised by occupancy."""
        key = (wire_id, rule.name.value, shielded,
               self._occupancy(wire_id))
        para = self._cache.get(key)
        if para is None:
            para = _what_if_parasitics(self.routing, wire_id, rule,
                                       shielded)
            self._cache[key] = para
        return para


def _derive(routing: RoutingResult, wire_id: int, rule: RoutingRule,
            para: WireParasitics, ctx: WireContext, freq: float,
            vdd: float, em_factor: float,
            shielded: bool) -> RuleSensitivity:
    """Fold ctx-dependent scalars over cached what-if parasitics."""
    wire = routing.tracks.wire(wire_id)
    layer = wire.layer
    width = rule.width_on(layer)
    r_wire = para.r
    dd_own = para.cc_signal * (ctx.upstream_r + r_wire / 2.0)
    i_eff = em_factor * ctx.downstream_cap * vdd * freq
    em_util = i_eff / (width * layer.thickness) / layer.em_jmax
    sigma_score = (layer.min_width / width) * r_wire * ctx.downstream_cap
    track_length = (rule.track_span - 1 + (2 if shielded else 0)) \
        * wire.segment.length
    return RuleSensitivity(
        wire_id=wire_id,
        rule=rule,
        parasitics=para,
        dd_own=dd_own,
        em_util=em_util,
        sigma_score=sigma_score,
        track_length=track_length,
        shielded=shielded,
    )


def evaluate_rule(routing: RoutingResult, wire_id: int, rule: RoutingRule,
                  ctx: WireContext, freq: float, vdd: float,
                  em_factor: float, shielded: bool = False,
                  cache: SensitivityCache | None = None) -> RuleSensitivity:
    """Extract one wire as if it carried ``rule`` (optionally shielded).

    ``ctx`` supplies the stage-local electrical surroundings (upstream
    resistance, downstream capacitance) measured at the current state.
    With ``cache``, repeated what-if extraction of the same candidate
    against unchanged neighbor occupancy is a dict lookup.
    """
    if cache is not None:
        para = cache.parasitics(wire_id, rule, shielded)
    else:
        para = _what_if_parasitics(routing, wire_id, rule, shielded)
    return _derive(routing, wire_id, rule, para, ctx, freq, vdd,
                   em_factor, shielded)


def rule_sensitivities(routing: RoutingResult, wire_id: int,
                       ctx: WireContext, rules, freq: float, vdd: float,
                       em_factor: float,
                       cache: SensitivityCache | None = None,
                       ) -> dict[str, RuleSensitivity]:
    """Evaluate every rule in ``rules`` for one wire, keyed by rule name."""
    return {rule.name.value: evaluate_rule(routing, wire_id, rule, ctx,
                                           freq, vdd, em_factor,
                                           cache=cache)
            for rule in rules}
