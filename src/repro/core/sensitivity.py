"""Analytic what-if evaluation of routing rules on single wires.

The optimizer needs, for every (wire, candidate rule) pair: what happens
to switched capacitance, coupling, delta delay, EM utilisation and the
variation footprint — *without* a full re-route.  Because rule changes
only alter a wire's width and guaranteed spacing, the extractor's own
capacitance model answers this exactly: we temporarily stamp the rule
on the wire, re-run single-wire extraction against its live track
neighbors, and restore.

The derived quantities:

* ``cost`` — the optimizer's price of the rule: the change in switched
  capacitance (fF) plus ``lambda_track`` times the extra track length
  the rule blocks (a congestion price; spacing rules are nearly free in
  capacitance but expensive in tracks).
* ``dd_own`` — the wire's worst-case delta-delay injection at sinks
  below it: ``cc_signal * (R_upstream + R_wire / 2)``.
* ``em_util`` — current-density utilisation under the candidate width.
* ``sigma_score`` — a variation-footprint proxy: relative width noise
  times the wire's Elmore weight,
  ``(w_min / w) * R_wire * C_downstream``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.features import WireContext
from repro.extract.capmodel import WireParasitics, extract_wire
from repro.route.router import RoutingResult
from repro.tech.ndr import RoutingRule


@dataclass(frozen=True)
class RuleSensitivity:
    """What one wire looks like under one candidate (rule, shield) state."""

    wire_id: int
    rule: RoutingRule
    parasitics: WireParasitics
    dd_own: float        # worst delta-delay injection below the wire, ps
    em_util: float       # current-density utilisation
    sigma_score: float   # variation-footprint proxy, ps
    track_length: float  # track length blocked beyond the default, um
    shielded: bool = False

    @property
    def c_switched(self) -> float:
        return self.parasitics.c_switched

    def cost_vs(self, other: "RuleSensitivity", lambda_track: float) -> float:
        """Price of moving from ``other``'s rule to this one."""
        return ((self.c_switched - other.c_switched)
                + lambda_track * (self.track_length - other.track_length))


def evaluate_rule(routing: RoutingResult, wire_id: int, rule: RoutingRule,
                  ctx: WireContext, freq: float, vdd: float,
                  em_factor: float, shielded: bool = False) -> RuleSensitivity:
    """Extract one wire as if it carried ``rule`` (optionally shielded).

    ``ctx`` supplies the stage-local electrical surroundings (upstream
    resistance, downstream capacitance) measured at the current state.
    """
    wire = routing.tracks.wire(wire_id)
    saved_rule = wire.rule
    saved_shield = wire.shielded
    try:
        wire.rule = rule
        wire.shielded = shielded
        neighbors = routing.tracks.neighbors_of(wire)
        para = extract_wire(wire, neighbors)
        layer = wire.layer
        width = wire.width
        r_wire = para.r
        dd_own = para.cc_signal * (ctx.upstream_r + r_wire / 2.0)
        i_eff = em_factor * ctx.downstream_cap * vdd * freq
        em_util = i_eff / (width * layer.thickness) / layer.em_jmax
        sigma_score = (layer.min_width / width) * r_wire * ctx.downstream_cap
        track_length = (rule.track_span - 1 + (2 if shielded else 0)) \
            * wire.segment.length
    finally:
        wire.rule = saved_rule
        wire.shielded = saved_shield
    return RuleSensitivity(
        wire_id=wire_id,
        rule=rule,
        parasitics=para,
        dd_own=dd_own,
        em_util=em_util,
        sigma_score=sigma_score,
        track_length=track_length,
        shielded=shielded,
    )


def rule_sensitivities(routing: RoutingResult, wire_id: int,
                       ctx: WireContext, rules, freq: float, vdd: float,
                       em_factor: float) -> dict[str, RuleSensitivity]:
    """Evaluate every rule in ``rules`` for one wire, keyed by rule name."""
    return {rule.name.value: evaluate_rule(routing, wire_id, rule, ctx,
                                           freq, vdd, em_factor)
            for rule in rules}
