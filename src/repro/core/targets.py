"""The robustness constraint set rule assignment must satisfy.

These are the four classic reasons clock wires get NDRs; a rule
assignment is *feasible* when all four hold:

* worst per-sink crosstalk delta delay <= ``max_worst_delta`` (ps),
* Monte-Carlo mu+3sigma skew <= ``max_skew_3sigma`` (ps),
* worst sink slew <= ``max_slew`` (ps),
* every wire's EM current-density utilisation <= ``max_em_util``.

Budgets default to fractions of the clock period, the way a real clock
spec is written; :meth:`RobustnessTargets.for_period` fills them in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RobustnessTargets:
    """Constraint budgets for rule assignment.

    Attributes
    ----------
    max_worst_delta:
        Worst-case crosstalk delta delay at any sink, ps.
    max_skew_3sigma:
        mu + 3 sigma of the Monte-Carlo skew distribution, ps.
    max_slew:
        Worst sink transition time, ps.
    max_em_util:
        Current-density utilisation limit (1.0 = exactly at Jmax).
    mc_samples / mc_seed:
        Monte-Carlo settings used when verifying the 3-sigma budget.
    alignment:
        Aggressor alignment probability for expected-delta reporting.
    """

    max_worst_delta: float
    max_skew_3sigma: float
    max_slew: float
    max_em_util: float = 1.0
    mc_samples: int = 200
    mc_seed: int = 17
    alignment: float = 0.5

    def __post_init__(self) -> None:
        for name in ("max_worst_delta", "max_skew_3sigma", "max_slew",
                     "max_em_util"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        if self.mc_samples < 2:
            raise ValueError("mc_samples must be >= 2")

    @classmethod
    def for_period(cls, clock_period: float, max_slew: float,
                   delta_fraction: float = 0.005,
                   skew_fraction: float = 0.008) -> "RobustnessTargets":
        """Budgets as fractions of the clock period.

        Defaults: delta delay 0.5% and 3-sigma skew 0.8% of the period —
        the tight end of what a 1 GHz clock spec demands.
        """
        if clock_period <= 0.0:
            raise ValueError("clock period must be positive")
        return cls(
            max_worst_delta=delta_fraction * clock_period,
            max_skew_3sigma=skew_fraction * clock_period,
            max_slew=max_slew,
        )

    @classmethod
    def from_reference(cls, worst_delta: float, skew_3sigma: float,
                       max_slew: float, slack: float = 0.15,
                       **kwargs) -> "RobustnessTargets":
        """Budgets pegged to a reference implementation's achieved metrics.

        This is the paper's operational definition of "as robust as
        all-NDR": run the all-NDR reference, measure its delta delay
        and 3-sigma skew, and require every policy to land within
        ``slack`` (default 15%) of those numbers.
        """
        if slack < 0.0:
            raise ValueError("slack must be non-negative")
        return cls(
            max_worst_delta=worst_delta * (1.0 + slack),
            max_skew_3sigma=skew_3sigma * (1.0 + slack),
            max_slew=max_slew,
            **kwargs,
        )

    def relaxed(self, factor: float) -> "RobustnessTargets":
        """A copy with delta/skew budgets scaled by ``factor`` (sweeps)."""
        if factor <= 0.0:
            raise ValueError("factor must be positive")
        return replace(self,
                       max_worst_delta=self.max_worst_delta * factor,
                       max_skew_3sigma=self.max_skew_3sigma * factor)
