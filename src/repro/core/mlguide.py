"""Classifier-guided rule assignment (the "smart" predictive variant).

The greedy optimizer makes good decisions but pays for them in repeated
extraction/analysis loops.  The guide learns those decisions offline:

1. **Training**: run the greedy optimizer on (small) training designs;
   record every clock wire's *default-state* features
   (:mod:`repro.core.features`) and the rule the optimizer finally gave
   it.
2. **Inference**: on a new design, predict each wire's rule directly
   from its features, stamp the predictions, then run a short repair
   pass (the greedy planner with a low iteration cap) to mop up any
   residual constraint violations the classifier missed.

The classifier is the from-scratch random forest in :mod:`repro.ml`;
labels are the four rules.  Because features are computed at the
default-rule state, training and inference see identical
distributions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.features import WIRE_FEATURE_NAMES, wire_feature_matrix
from repro.core.flow import build_physical_design
from repro.core.optimizer import OptimizeResult, SmartNdrOptimizer
from repro.core.targets import RobustnessTargets
from repro.cts.tree import ClockTree
from repro.extract.extractor import extract
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy
from repro.netlist.design import Design
from repro.reliability.em import DEFAULT_EM_FACTOR, analyze_em
from repro.route.router import RoutingResult
from repro.tech.ndr import RULE_SET, rule_by_name
from repro.tech.technology import Technology, default_technology

#: Label index per rule name (classifier classes).
RULE_CLASSES: tuple[str, ...] = tuple(rule.name.value for rule in RULE_SET)


def collect_teacher_samples(design: Design, tech: Technology,
                            targets: RobustnessTargets,
                            store=None) -> tuple[np.ndarray, np.ndarray]:
    """Run the greedy teacher on one design; return (X, y).

    Features are computed at the default-rule state (before the
    optimizer touches rules), labels are the rules the optimizer
    finally assigned.  With ``store`` the default-rule build comes from
    the content-addressed artifact cache.
    """
    physical = build_physical_design(design, tech, store=store)
    tree, routing = physical.tree, physical.routing
    freq = design.clock_freq
    extraction = physical.extraction
    em = analyze_em(extraction.network, routing, tech.vdd, freq,
                    em_factor=DEFAULT_EM_FACTOR)
    wire_ids, X = wire_feature_matrix(tree, extraction, em)

    optimizer = SmartNdrOptimizer(tree, routing, tech, targets, freq)
    optimizer.run()
    label_of = {name: i for i, name in enumerate(RULE_CLASSES)}
    y = np.array([label_of[routing.tracks.wire(wid).rule.name.value]
                  for wid in wire_ids], dtype=int)
    return X, y


@dataclass
class TrainingStats:
    """What the guide saw during fitting."""

    n_samples: int
    label_counts: dict[str, int]
    train_accuracy: float
    feature_importances: dict[str, float] = field(default_factory=dict)


class NdrClassifierGuide:
    """Learns greedy rule decisions; predicts them on new designs."""

    def __init__(self, n_trees: int = 20, max_depth: int = 10,
                 seed: int = 0) -> None:
        self.model = RandomForestClassifier(n_trees=n_trees,
                                            max_depth=max_depth, seed=seed)
        self.stats: Optional[TrainingStats] = None

    # -- training -----------------------------------------------------------------

    def collect(self, design: Design, tech: Technology,
                targets: RobustnessTargets) -> tuple[np.ndarray, np.ndarray]:
        """Run the greedy teacher on one design; return (X, y)."""
        return collect_teacher_samples(design, tech, targets)

    def fit_designs(self, designs: Sequence[Design],
                    tech: Optional[Technology] = None,
                    targets: Optional[RobustnessTargets] = None,
                    jobs: int = 1, store=None) -> TrainingStats:
        """Train on the greedy optimizer's decisions over ``designs``.

        Sample generation goes through
        :func:`repro.ml.data.teacher_dataset`: with ``jobs > 1`` each
        design's teacher run executes in its own worker process, and
        with ``store`` the reference builds come from the shared
        artifact cache.
        """
        from repro.ml.data import teacher_dataset

        tech = tech if tech is not None else default_technology()
        X, y = teacher_dataset(designs, tech, targets=targets, jobs=jobs,
                               store=store)
        self.model.fit(X, y)
        pred = self.model.predict(X)
        counts = {name: int(np.sum(y == i))
                  for i, name in enumerate(RULE_CLASSES)}
        importances = dict(zip(WIRE_FEATURE_NAMES,
                               (float(v) for v in
                                self.model.feature_importances_)))
        self.stats = TrainingStats(
            n_samples=int(X.shape[0]),
            label_counts=counts,
            train_accuracy=accuracy(y, pred),
            feature_importances=importances,
        )
        return self.stats

    # -- persistence --------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the fitted guide (model + training stats) to JSON."""
        from repro.ml.serialize import forest_to_dict

        if self.stats is None:
            raise RuntimeError("guide is not fitted")
        payload = {
            "schema": 1,
            "forest": forest_to_dict(self.model),
            "stats": asdict(self.stats),
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "NdrClassifierGuide":
        """Rebuild a guide saved with :meth:`save`."""
        from repro.ml.serialize import forest_from_dict

        payload = json.loads(Path(path).read_text())
        if payload.get("schema") != 1:
            raise ValueError(f"unsupported guide schema "
                             f"{payload.get('schema')!r}")
        guide = cls()
        guide.model = forest_from_dict(payload["forest"])
        guide.stats = TrainingStats(**payload["stats"])
        return guide

    # -- inference ----------------------------------------------------------------

    def predict_rules(self, tree: ClockTree, routing: RoutingResult,
                      tech: Technology, freq: float) -> dict[int, str]:
        """Predicted rule name per clock wire (no mutation)."""
        if self.stats is None:
            raise RuntimeError("guide is not fitted")
        extraction = extract(tree, routing)
        em = analyze_em(extraction.network, routing, tech.vdd, freq,
                        em_factor=DEFAULT_EM_FACTOR)
        wire_ids, X = wire_feature_matrix(tree, extraction, em)
        labels = self.model.predict(X)
        return {wid: RULE_CLASSES[label]
                for wid, label in zip(wire_ids, labels)}

    def assign(self, tree: ClockTree, routing: RoutingResult,
               tech: Technology, targets: RobustnessTargets,
               freq: float, repair_iterations: int = 2) -> OptimizeResult:
        """Stamp predicted rules, then run a short greedy repair pass."""
        predictions = self.predict_rules(tree, routing, tech, freq)
        upgraded: dict[int, str] = {}
        for wire_id, rule_name in predictions.items():
            rule = rule_by_name(rule_name)
            routing.assign_rule(wire_id, rule)
            if not rule.is_default:
                upgraded[wire_id] = rule_name

        repair = SmartNdrOptimizer(tree, routing, tech, targets, freq,
                                   max_iterations=repair_iterations)
        result = repair.run()
        # Merge the ML-stamped upgrades with the repairs (repair entries
        # win: they are the final state of those wires).
        merged = dict(upgraded)
        merged.update(result.upgraded)
        # Drop anything the repair's downgrade pass reverted to default.
        merged = {wid: name for wid, name in merged.items()
                  if not routing.tracks.wire(wid).rule.is_default}
        result.upgraded = merged
        return result
