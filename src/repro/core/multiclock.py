"""Multiple clock domains sharing one die.

A second clock tree on the same routing layers is the nastiest
aggressor a clock can have: it toggles every cycle (activity 1.0), and
uniform-NDR practice protects each domain against *signals* but not
necessarily against the other clock.  This module builds N domains
sequentially into one shared track space, so each domain's extraction
sees the others' wires as full-activity neighbors, and runs the rule
assignment per domain.

Mechanics: each domain gets its own tree, its own per-domain
:class:`~repro.route.router.RoutingResult` view, and its own
extraction/analysis/optimization — all over the one shared
:class:`~repro.route.tracks.TrackManager`.  Cross-domain protection is
symmetric through the spacing guarantees both sides' rules impose.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.evaluation import AnalysisBundle, analyze_all
from repro.core.optimizer import OptimizeResult, SmartNdrOptimizer
from repro.core.policies import Policy, uniform_rule_of
from repro.core.targets import RobustnessTargets
from repro.cts.refine import refine_skew
from repro.cts.synthesize import synthesize_tree_for
from repro.cts.tree import ClockTree
from repro.extract.extractor import Extraction
from repro.geom.point import Point
from repro.netlist.cell import Pin
from repro.netlist.design import Design
from repro.route.router import Router, RoutingResult
from repro.tech.technology import Technology, default_technology


@dataclass(frozen=True)
class ClockDomain:
    """One clock domain: a name, its source point, and its sink pins."""

    name: str
    source: Point
    sinks: tuple[Pin, ...]

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"domain {self.name!r} has no sinks")


def split_domains(design: Design, n_domains: int = 2,
                  interleave: bool = False) -> list[ClockDomain]:
    """Partition a design's sinks into clock domains.

    Default: geographic vertical slabs (domain 0 leftmost), each source
    on the bottom die edge under its slab — per-region clocks whose
    trees barely meet.  With ``interleave``, sinks alternate between
    domains across the whole die — the overlapping-logic arrangement
    where the two trees weave through each other and inter-clock
    coupling is unavoidable.  Domain 0 keeps the design's original
    source.
    """
    if n_domains < 1:
        raise ValueError("need at least one domain")
    if n_domains > design.num_sinks:
        raise ValueError("more domains than sinks")
    ordered = sorted(design.clock_sinks, key=lambda p: (p.location.x,
                                                        p.location.y))
    groups: list[list[Pin]] = [[] for _ in range(n_domains)]
    if interleave:
        for i, pin in enumerate(ordered):
            groups[i % n_domains].append(pin)
    else:
        chunk = len(ordered) / n_domains
        for i in range(n_domains):
            groups[i] = ordered[int(i * chunk):int((i + 1) * chunk)]
    domains = []
    for i, sinks in enumerate(groups):
        if i == 0 and design.clock_root is not None:
            source = design.clock_root.location
        else:
            mid_x = sum(p.location.x for p in sinks) / len(sinks)
            source = Point(mid_x, design.die.ylo)
        domains.append(ClockDomain(name=f"clk{i}", source=source,
                                   sinks=tuple(sinks)))
    return domains


@dataclass
class DomainResult:
    """One domain's implementation and analyses."""

    domain: ClockDomain
    tree: ClockTree
    routing: RoutingResult          # per-domain view over the shared tracks
    extraction: Extraction
    analyses: AnalysisBundle
    targets: RobustnessTargets
    optimize: Optional[OptimizeResult] = None

    @property
    def feasible(self) -> bool:
        """True when this domain meets its robustness targets."""
        return self.analyses.feasible(self.targets)

    @property
    def clock_power(self) -> float:
        """This domain's total clock power, uW."""
        return self.analyses.power.p_total


@dataclass
class MultiClockResult:
    """All domains of one multi-clock build."""

    domains: list[DomainResult] = field(default_factory=list)
    runtime: float = 0.0

    def domain(self, name: str) -> DomainResult:
        """Look up one domain's result by name."""
        for result in self.domains:
            if result.domain.name == name:
                return result
        raise KeyError(f"no domain named {name!r}")

    @property
    def total_power(self) -> float:
        """Sum of all domains' clock power, uW."""
        return sum(d.clock_power for d in self.domains)

    @property
    def all_feasible(self) -> bool:
        """True when every domain meets its targets."""
        return all(d.feasible for d in self.domains)


def run_multiclock_flow(design: Design, domains: list[ClockDomain],
                        tech: Optional[Technology] = None,
                        policy: Policy = Policy.SMART,
                        targets=None,
                        lambda_track: float = 0.05) -> MultiClockResult:
    """Build, route and rule-assign every domain into one track space.

    Supported policies: the uniform ones and ``SMART`` (per domain).
    ``targets`` is either one :class:`RobustnessTargets` for every
    domain or a dict mapping domain names to per-domain targets (the
    reference-pegged protocol needs per-domain budgets: the domains'
    environments differ); defaults to the period-derived spec.
    """
    tech = tech if tech is not None else default_technology()
    if targets is None:
        targets = RobustnessTargets.for_period(design.clock_period,
                                               tech.max_slew)
    if isinstance(targets, RobustnessTargets):
        targets_of = {domain.name: targets for domain in domains}
    else:
        targets_of = dict(targets)
        missing = {d.name for d in domains} - set(targets_of)
        if missing:
            raise ValueError(f"no targets for domains {sorted(missing)}")
    if policy in (Policy.SMART_ML, Policy.SMART_SHIELD, Policy.RANDOM):
        raise ValueError(f"policy {policy} is not supported multi-domain")

    start = time.perf_counter()
    router = Router(design, tech)

    # 1. Synthesize and route every domain into the shared track space.
    trees: list[ClockTree] = []
    routings: list[RoutingResult] = []
    shared = None
    for domain in domains:
        cts = synthesize_tree_for(list(domain.sinks), domain.source,
                                  design, tech)
        trees.append(cts.tree)
        routing = router.route_clock_tree(cts.tree, net_name=domain.name,
                                          shared=shared)
        shared = routing.tracks
        routings.append(routing)
    router.route_signals(shared)

    # 2. Per-domain trim, policy, re-trim, analyses.
    result = MultiClockResult()
    freq = design.clock_freq
    for domain, tree, routing in zip(domains, trees, routings):
        domain_targets = targets_of[domain.name]
        refine_skew(tree, routing, tech)
        optimize: Optional[OptimizeResult] = None
        if policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.WIDTH_ONLY,
                      Policy.SPACE_ONLY):
            rule = uniform_rule_of(policy)
            for wire in routing.clock_wires:
                routing.assign_rule(wire.wire_id, rule)
        elif policy == Policy.SMART:
            optimizer = SmartNdrOptimizer(tree, routing, tech,
                                          domain_targets, freq,
                                          lambda_track=lambda_track)
            optimize = optimizer.run()
        refine = refine_skew(tree, routing, tech)
        analyses = analyze_all(refine.extraction, tech, freq,
                               domain_targets)
        result.domains.append(DomainResult(
            domain=domain,
            tree=tree,
            routing=routing,
            extraction=refine.extraction,
            analyses=analyses,
            targets=domain_targets,
            optimize=optimize,
        ))
    result.runtime = time.perf_counter() - start
    return result
