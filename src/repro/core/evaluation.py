"""One-stop analysis bundle: everything a rule assignment is judged on."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.targets import RobustnessTargets
from repro.extract.extractor import Extraction
from repro.power.clockpower import PowerReport, analyze_power
from repro.reliability.em import DEFAULT_EM_FACTOR, EmReport, analyze_em
from repro.tech.technology import Technology
from repro.timing.arrival import ClockTiming, analyze_clock_timing
from repro.timing.crosstalk import CrosstalkReport, analyze_crosstalk
from repro.timing.montecarlo import MonteCarloResult, run_monte_carlo


@dataclass
class AnalysisBundle:
    """All robustness/power analyses of one extracted clock network."""

    timing: ClockTiming
    crosstalk: CrosstalkReport
    em: EmReport
    power: PowerReport
    mc: MonteCarloResult

    def violations(self, targets: RobustnessTargets) -> dict[str, float]:
        """Positive excess per violated constraint (empty when feasible)."""
        out: dict[str, float] = {}
        dd = self.crosstalk.worst_delta - targets.max_worst_delta
        if dd > 0.0:
            out["delta_delay"] = dd
        sigma = self.mc.skew_3sigma - targets.max_skew_3sigma
        if sigma > 0.0:
            out["skew_3sigma"] = sigma
        slew = self.timing.worst_slew - targets.max_slew
        if slew > 0.0:
            out["slew"] = slew
        em = self.em.worst_utilization - targets.max_em_util
        if em > 0.0:
            out["em"] = em
        return out

    def feasible(self, targets: RobustnessTargets) -> bool:
        """True when no constraint in ``targets`` is violated."""
        return not self.violations(targets)


def analyze_all(extraction: Extraction, tech: Technology,
                freq: float, targets: RobustnessTargets,
                engine=None) -> AnalysisBundle:
    """Run the full analysis stack on one extraction.

    With ``engine`` (an :class:`~repro.engine.AnalysisEngine` wrapping
    this extraction), dirty-tracked kernel analyses are used instead:
    only analyses whose inputs changed since the last call recompute.
    """
    if engine is not None:
        return engine.analyze()
    timing = analyze_clock_timing(extraction.network, tech)
    crosstalk = analyze_crosstalk(extraction.network, extraction.wires,
                                  alignment=targets.alignment)
    em = analyze_em(extraction.network, extraction.routing, tech.vdd, freq,
                    em_factor=DEFAULT_EM_FACTOR)
    power = analyze_power(extraction, tech, freq)
    mc = run_monte_carlo(extraction.network, extraction.wires,
                         extraction.routing, tech,
                         n_samples=targets.mc_samples, seed=targets.mc_seed)
    return AnalysisBundle(timing=timing, crosstalk=crosstalk, em=em,
                          power=power, mc=mc)


def targets_from_reference(reference: AnalysisBundle, tech: Technology,
                           slack: float = 0.15, **kwargs) -> RobustnessTargets:
    """Robustness budgets pegged to a reference (usually all-NDR) run."""
    return RobustnessTargets.from_reference(
        worst_delta=reference.crosstalk.worst_delta,
        skew_3sigma=reference.mc.skew_3sigma,
        max_slew=tech.max_slew,
        slack=slack,
        **kwargs,
    )
