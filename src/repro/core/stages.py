"""The flow as a typed stage pipeline.

``run_flow`` used to be a monolith; it is now a composition of four
stages, each consuming and producing serializable artifacts:

``build``
    CTS + routing + skew trim with every wire on the default rule.
    Deterministic in (design, technology, stage params), so its product
    is content-addressed: with an :class:`~repro.io.artifacts.ArtifactStore`
    the build is computed once per design and *shared* across policies,
    slacks, and repeat invocations.  Per-policy fresh-build semantics
    are preserved because the store always hands back a snapshot (a
    fresh deserialisation) that the policy stage may mutate freely.
``policy``
    Rule assignment: one of the uniform baselines, the random baseline,
    the greedy optimizer, or the ML guide.  Mutates the routing in
    place and returns the optimizer result (None for baselines).
``retrim``
    Re-trim skew after the rule changes shifted stage delays.
``analyze``
    The full robustness/power analysis bundle of the final extraction.

Each stage reports into :mod:`repro.perf` under ``flow.<stage>`` so a
profiled run shows the pipeline breakdown per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import perf
from repro.core.evaluation import AnalysisBundle, analyze_all
from repro.core.optimizer import OptimizeResult, SmartNdrOptimizer
from repro.core.policies import (Policy, apply_random_policy,
                                 apply_uniform_policy)
from repro.core.targets import RobustnessTargets
from repro.cts.refine import refine_skew
from repro.cts.synthesize import synthesize_clock_tree
from repro.netlist.design import Design
from repro.route.router import Router
from repro.tech.technology import Technology


@dataclass(frozen=True)
class BuildParams:
    """Parameters the ``build`` stage is content-addressed by."""

    max_stage_cap: float = 0.0


@dataclass(frozen=True)
class PolicyParams:
    """Parameters the ``policy`` stage is content-addressed by.

    ``random_fraction``/``random_seed`` only matter to ``RANDOM``;
    ``lambda_track``/``verify_every`` only to the optimizing policies —
    they are normalised out of the fingerprint for the others (see
    :meth:`normalized`) so e.g. an ALL_NDR cell hashes identically no
    matter what optimizer knobs rode along.
    """

    policy: Policy = Policy.SMART
    random_fraction: float = 0.3
    random_seed: int = 0
    lambda_track: float = 0.05
    verify_every: int = 0
    #: engine backend name ("" = default); backends are verified
    #: bit-identical, so this is a pure performance knob and is always
    #: stripped from the fingerprint
    engine_backend: str = ""

    def normalized(self) -> "PolicyParams":
        """Drop knobs the policy does not read (stable cache keys).

        ``engine_backend`` is dropped unconditionally: every backend
        produces bit-identical artifacts, so cached cells stay valid
        across backend switches.
        """
        if self.policy == Policy.RANDOM:
            return PolicyParams(policy=self.policy,
                                random_fraction=self.random_fraction,
                                random_seed=self.random_seed)
        if self.policy in (Policy.SMART, Policy.SMART_SHIELD):
            return PolicyParams(policy=self.policy,
                                lambda_track=self.lambda_track,
                                verify_every=self.verify_every)
        return PolicyParams(policy=self.policy)


def build_stage(design: Design, tech: Technology,
                params: BuildParams = BuildParams(),
                store=None) -> "PhysicalDesign":
    """CTS + route + trim on the default rule; cached when ``store`` given.

    A cache hit returns a fresh deserialisation (never a shared live
    object), so the caller may mutate the result; a cache miss builds,
    snapshots the pristine state into the store, and returns the live
    build.
    """
    from repro.core.flow import PhysicalDesign

    if store is not None:
        from repro.io.artifacts import (content_key, design_fingerprint,
                                        technology_fingerprint)
        key = content_key("build",
                          design=design_fingerprint(design),
                          tech=technology_fingerprint(tech),
                          params=params)
        cached = store.load(key)
        if cached is not None and isinstance(cached, PhysicalDesign):
            return cached

    with perf.phase("flow.build"):
        cts = synthesize_clock_tree(design, tech,
                                    max_stage_cap=params.max_stage_cap)
        routing = Router(design, tech).route(cts.tree)
        refine = refine_skew(cts.tree, routing, tech)
        physical = PhysicalDesign(design=design, tech=tech, tree=cts.tree,
                                  routing=routing, cts=cts, refine=refine)
    if store is not None:
        store.save(key, physical)
    return physical


def policy_stage(physical: "PhysicalDesign", targets: RobustnessTargets,
                 params: PolicyParams,
                 guide=None) -> Optional[OptimizeResult]:
    """Assign routing rules per ``params.policy`` (mutates the routing)."""
    tree, routing, tech = physical.tree, physical.routing, physical.tech
    freq = physical.design.clock_freq
    policy = params.policy

    with perf.phase("flow.policy"):
        if policy in (Policy.NO_NDR, Policy.ALL_NDR, Policy.WIDTH_ONLY,
                      Policy.SPACE_ONLY):
            apply_uniform_policy(routing, policy)
            return None
        if policy == Policy.RANDOM:
            apply_random_policy(routing, params.random_fraction,
                                seed=params.random_seed)
            return None
        if policy in (Policy.SMART, Policy.SMART_SHIELD):
            optimizer = SmartNdrOptimizer(
                tree, routing, tech, targets, freq,
                lambda_track=params.lambda_track,
                use_shielding=(policy == Policy.SMART_SHIELD),
                use_engine=params.engine_backend or True,
                verify_every=params.verify_every)
            with perf.phase("flow.optimize"):
                return optimizer.run()
        if policy == Policy.SMART_ML:
            if guide is None:
                raise ValueError("Policy.SMART_ML requires a fitted guide")
            return guide.assign(tree, routing, tech, targets, freq)
        raise ValueError(f"unhandled policy {policy}")  # pragma: no cover


def retrim_stage(physical: "PhysicalDesign", engine=None) -> None:
    """Re-trim skew after rule changes; updates ``physical.refine``.

    With ``engine`` (the optimizer's incremental engine over the same
    routing), the trim rebuilds only the touched stages instead of
    re-extracting the whole network.
    """
    with perf.phase("flow.retrim"):
        physical.refine = refine_skew(physical.tree, physical.routing,
                                      physical.tech, engine=engine)


def analyze_stage(physical: "PhysicalDesign", targets: RobustnessTargets,
                  engine=None) -> AnalysisBundle:
    """Full analysis bundle of the (re-trimmed) extraction."""
    with perf.phase("flow.analyze"):
        return analyze_all(physical.extraction, physical.tech,
                           physical.design.clock_freq, targets,
                           engine=engine)
