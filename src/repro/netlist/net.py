"""Nets: one driver pin, many sink pins, plus switching activity."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.netlist.cell import Pin, PinDirection


class NetKind(str, enum.Enum):
    """Net class: the clock net, or a signal (crosstalk-aggressor) net."""

    CLOCK = "clock"
    SIGNAL = "signal"


@dataclass
class Net:
    """A net connecting one driver to one or more sinks.

    Attributes
    ----------
    name:
        Net name, unique within a design.
    kind:
        Clock or signal; signal nets act as crosstalk aggressors.
    activity:
        Toggle probability per clock cycle.  Clock nets toggle every
        cycle (activity 1.0 by convention); typical signal nets toggle
        far less often.
    window:
        Switching window within the clock cycle, ``(start, end)`` in ps:
        when the net transitions, the transition lands in this window.
        ``None`` means "anywhere in the cycle" — the conservative
        assumption signoff uses before timing windows are known.
    """

    name: str
    kind: NetKind
    activity: float = 0.15
    window: Optional[tuple[float, float]] = None
    driver: Optional[Pin] = None
    sinks: list[Pin] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {self.activity}")
        if self.window is not None:
            start, end = self.window
            if end <= start or start < 0.0:
                raise ValueError(f"bad switching window {self.window}")

    def connect_driver(self, pin: Pin) -> None:
        """Attach the single driving output pin."""
        if pin.direction != PinDirection.OUTPUT:
            raise ValueError(f"driver pin {pin.full_name} must be an output")
        if self.driver is not None:
            raise ValueError(f"net {self.name} already has a driver")
        self.driver = pin
        pin.net = self

    def connect_sink(self, pin: Pin) -> None:
        """Attach one more receiving input pin."""
        if pin.direction != PinDirection.INPUT:
            raise ValueError(f"sink pin {pin.full_name} must be an input")
        self.sinks.append(pin)
        pin.net = self

    @property
    def pins(self) -> list[Pin]:
        result = [] if self.driver is None else [self.driver]
        return result + list(self.sinks)

    @property
    def total_pin_cap(self) -> float:
        """Sum of sink pin capacitances, fF."""
        return sum(pin.cap for pin in self.sinks)

    def __repr__(self) -> str:
        return (f"Net({self.name!r}, {self.kind.value}, "
                f"{len(self.sinks)} sinks)")
