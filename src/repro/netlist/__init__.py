"""Design database: instances, pins, nets, the design container.

Substrate S3 in DESIGN.md.  The database is intentionally small — it
models exactly what clock routing needs: the clock source, the sink
flops, and the signal (aggressor) nets that share routing layers with
the clock.
"""

from repro.netlist.cell import CellKind, Instance, Pin, PinDirection
from repro.netlist.net import Net, NetKind
from repro.netlist.design import Design

__all__ = [
    "CellKind",
    "Instance",
    "Pin",
    "PinDirection",
    "Net",
    "NetKind",
    "Design",
]
