"""The design container tying floorplan, instances and nets together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.geom.point import Point
from repro.geom.rect import Rect
from repro.netlist.cell import CellKind, Instance, Pin, PinDirection
from repro.netlist.net import Net, NetKind
from repro.units import NS


@dataclass
class Design:
    """A placed design: die, instances, clock net, signal nets.

    The clock net is logical here — its physical tree (topology, buffers,
    wires) is produced by :mod:`repro.cts` and routed by
    :mod:`repro.route`.

    Attributes
    ----------
    name:
        Design name.
    die:
        Die bounding box, um.
    clock_period:
        Clock period in ps (frequency = 1000 / period GHz).
    """

    name: str
    die: Rect
    clock_period: float = NS
    instances: dict[str, Instance] = field(default_factory=dict)
    nets: dict[str, Net] = field(default_factory=dict)
    clock_root: Optional[Pin] = None
    clock_sinks: list[Pin] = field(default_factory=list)
    #: Hard macros: placement and routing keep-outs.
    blockages: list[Rect] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.clock_period <= 0.0:
            raise ValueError("clock period must be positive")

    @property
    def clock_freq(self) -> float:
        """Clock frequency in GHz."""
        return NS / self.clock_period

    # -- construction helpers -------------------------------------------------

    def add_blockage(self, rect: Rect) -> None:
        """Register a hard macro (placement and routing keep-out)."""
        if not (self.die.contains(Point(rect.xlo, rect.ylo))
                and self.die.contains(Point(rect.xhi, rect.yhi))):
            raise ValueError(f"blockage {rect} extends outside the die")
        self.blockages.append(rect)

    def add_instance(self, name: str, kind: CellKind, location: Point,
                     cell_name: str = "") -> Instance:
        """Place a cell instance on the die (outside any blockage)."""
        if name in self.instances:
            raise ValueError(f"design already has an instance named {name!r}")
        if not self.die.contains(location):
            raise ValueError(f"instance {name!r} at {location} is outside the die")
        for blockage in self.blockages:
            if blockage.contains(location):
                raise ValueError(
                    f"instance {name!r} at {location} sits inside a blockage")
        inst = Instance(name=name, kind=kind, location=location, cell_name=cell_name)
        self.instances[name] = inst
        return inst

    def add_net(self, name: str, kind: NetKind, activity: float = 0.15) -> Net:
        """Create and register a net (name must be unique)."""
        if name in self.nets:
            raise ValueError(f"design already has a net named {name!r}")
        net = Net(name=name, kind=kind, activity=activity)
        self.nets[name] = net
        return net

    def add_clock_source(self, location: Point) -> Pin:
        """Create the clock entry port and remember its output pin as root."""
        if self.clock_root is not None:
            raise ValueError("design already has a clock source")
        port = self.add_instance("clk_port", CellKind.PORT, location)
        self.clock_root = port.add_pin("CLK", PinDirection.OUTPUT)
        return self.clock_root

    def add_flop(self, name: str, location: Point, clock_pin_cap: float) -> Pin:
        """Create a sink flop; returns its clock pin and registers it as a sink."""
        flop = self.add_instance(name, CellKind.FLOP, location, cell_name="DFF")
        clock_pin = flop.add_pin("CK", PinDirection.INPUT, cap=clock_pin_cap)
        self.clock_sinks.append(clock_pin)
        return clock_pin

    # -- queries ---------------------------------------------------------------

    @property
    def signal_nets(self) -> list[Net]:
        return [net for net in self.nets.values() if net.kind == NetKind.SIGNAL]

    @property
    def num_sinks(self) -> int:
        return len(self.clock_sinks)

    def validate(self) -> None:
        """Raise ValueError if the design is not ready for CTS."""
        if self.clock_root is None:
            raise ValueError(f"design {self.name}: no clock source")
        if not self.clock_sinks:
            raise ValueError(f"design {self.name}: no clock sinks")
        for net in self.nets.values():
            if net.driver is None:
                raise ValueError(f"design {self.name}: net {net.name} has no driver")

    def __repr__(self) -> str:
        return (f"Design({self.name!r}, {self.num_sinks} sinks, "
                f"{len(self.signal_nets)} signal nets)")
