"""Placed instances and their pins."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.geom.point import Point


class CellKind(str, enum.Enum):
    """What a placed instance is, as far as clock routing cares."""

    FLOP = "flop"          # clock sink
    CLKBUF = "clkbuf"      # clock tree buffer
    GATE = "gate"          # combinational logic (aggressor driver/sink)
    PORT = "port"          # top-level port (e.g. the clock root)


class PinDirection(str, enum.Enum):
    """Whether a pin receives (input) or drives (output) its net."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Instance:
    """A placed cell instance."""

    name: str
    kind: CellKind
    location: Point
    cell_name: str = ""
    pins: dict[str, "Pin"] = field(default_factory=dict)

    def add_pin(self, pin_name: str, direction: PinDirection, cap: float = 0.0,
                offset: Optional[Point] = None) -> "Pin":
        """Create and attach a pin; pin location = instance location + offset."""
        if pin_name in self.pins:
            raise ValueError(f"instance {self.name} already has pin {pin_name!r}")
        location = self.location + offset if offset is not None else self.location
        pin = Pin(name=pin_name, instance=self, direction=direction,
                  cap=cap, location=location)
        self.pins[pin_name] = pin
        return pin

    def pin(self, pin_name: str) -> "Pin":
        """The named pin (KeyError if absent)."""
        try:
            return self.pins[pin_name]
        except KeyError:
            raise KeyError(f"instance {self.name} has no pin {pin_name!r}") from None

    def __repr__(self) -> str:
        return f"Instance({self.name!r}, {self.kind.value}, {self.location})"


@dataclass
class Pin:
    """A pin on a placed instance.

    ``cap`` is the pin's input capacitance in fF (0 for outputs).
    """

    name: str
    instance: Instance
    direction: PinDirection
    cap: float
    location: Point
    net: Optional["object"] = None  # back-reference set by Net.connect

    @property
    def full_name(self) -> str:
        return f"{self.instance.name}/{self.name}"

    def __repr__(self) -> str:
        return f"Pin({self.full_name!r})"
