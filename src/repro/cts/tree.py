"""The clock tree data structure.

A :class:`ClockTree` is a rooted tree of :class:`ClockNode`.  Leaves
correspond 1:1 to sink flop clock pins.  Internal nodes are merge points
(Steiner points of the clock net); any node may carry a buffer, which
electrically splits the tree into buffered *stages*.

Edges are logical here — the router realises each (parent, child) edge
as Manhattan segments and may add snaking length recorded in
``ClockNode.snake`` (extra wirelength inserted for delay balancing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.geom.point import Point
from repro.netlist.cell import Pin
from repro.tech.buffers import BufferCell


@dataclass
class ClockNode:
    """One node of the clock tree.

    Attributes
    ----------
    node_id:
        Dense integer id, unique within the tree.
    location:
        Placed location (um); set by embedding.
    parent:
        Parent node id, or ``None`` for the root.
    children:
        Child node ids in deterministic order.
    sink_pin:
        The flop clock pin this leaf drives (leaves only).
    buffer:
        Buffer cell placed at this node, if any.  The buffer drives the
        subtree below this node.
    snake:
        Extra (detour) wirelength in um added on the edge from
        ``parent`` to this node for zero-skew balancing.
    base_pad:
        Dummy capacitance (fF) hung on this node's buffer output by
        buffer insertion to equalise stage delays across a level.
    trim_pad:
        Additional dummy capacitance added by skew refinement.  Unlike
        ``base_pad`` it is *re-derived from scratch* on every refine
        run, so repeated refinement cannot ratchet capacitance upward.
    base_snake / trim_snake:
        Series detour wirelength (um) inserted at this node's buffer
        *output*, before the stage's wire tree.  A series snake delays
        the whole stage by ~``R_snake * C_stage`` while adding only its
        own wire capacitance — the cheap delay-trim knob for stages
        with big (low-resistance) drivers, where load pads would cost
        ``delay / r_drive`` femtofarads.  Same base/trim split as pads.
    snake_r_per_um / snake_c_per_um:
        RC coefficients of the snake wire (set together with the snake
        lengths by whoever inserts them, since the tree itself has no
        technology reference).
    """

    node_id: int
    location: Point = field(default_factory=lambda: Point(0.0, 0.0))
    parent: Optional[int] = None
    children: list[int] = field(default_factory=list)
    sink_pin: Optional[Pin] = None
    buffer: Optional[BufferCell] = None
    snake: float = 0.0
    base_pad: float = 0.0
    trim_pad: float = 0.0
    base_snake: float = 0.0
    trim_snake: float = 0.0
    snake_r_per_um: float = 0.0
    snake_c_per_um: float = 0.0

    @property
    def load_pad(self) -> float:
        """Total dummy capacitance at this node's buffer output, fF."""
        return self.base_pad + self.trim_pad

    @property
    def root_snake(self) -> float:
        """Total series detour at this node's buffer output, um."""
        return self.base_snake + self.trim_snake

    @property
    def root_snake_r(self) -> float:
        """Series resistance of the root snake, kOhm."""
        return self.root_snake * self.snake_r_per_um

    @property
    def root_snake_c(self) -> float:
        """Wire capacitance of the root snake, fF."""
        return self.root_snake * self.snake_c_per_um

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_sink(self) -> bool:
        return self.sink_pin is not None


class ClockTree:
    """A rooted clock tree with id-indexed nodes."""

    def __init__(self) -> None:
        self._nodes: dict[int, ClockNode] = {}
        self._next_id = 0
        self.root_id: Optional[int] = None

    # -- construction ----------------------------------------------------------

    def new_node(self, location: Optional[Point] = None,
                 sink_pin: Optional[Pin] = None) -> ClockNode:
        """Create a fresh node (optionally placed / bound to a sink pin)."""
        node = ClockNode(node_id=self._next_id)
        if location is not None:
            node.location = location
        node.sink_pin = sink_pin
        self._nodes[node.node_id] = node
        self._next_id += 1
        return node

    def set_root(self, node_id: int) -> None:
        """Declare an existing node as the tree root."""
        self._check_id(node_id)
        self.root_id = node_id

    def attach(self, parent_id: int, child_id: int) -> None:
        """Make ``child_id`` a child of ``parent_id``."""
        self._check_id(parent_id)
        self._check_id(child_id)
        child = self._nodes[child_id]
        if child.parent is not None:
            raise ValueError(f"node {child_id} already has a parent")
        if parent_id == child_id:
            raise ValueError("a node cannot be its own parent")
        child.parent = parent_id
        self._nodes[parent_id].children.append(child_id)

    def insert_above(self, node_id: int) -> ClockNode:
        """Insert a new node between ``node_id`` and its parent.

        The new node takes over the edge to the parent and starts at the
        child's location; the caller may move it.  Works for the root
        too (the new node becomes the root).
        """
        self._check_id(node_id)
        child = self._nodes[node_id]
        fresh = self.new_node(location=child.location)
        if child.parent is None:
            if self.root_id != node_id:
                raise ValueError(f"node {node_id} has no parent and is not the root")
            self.root_id = fresh.node_id
        else:
            parent = self._nodes[child.parent]
            parent.children[parent.children.index(node_id)] = fresh.node_id
            fresh.parent = parent.node_id
        child.parent = fresh.node_id
        fresh.children.append(node_id)
        # The snake on the old edge stays with the lower half.
        return fresh

    # -- access ----------------------------------------------------------------

    def node(self, node_id: int) -> ClockNode:
        """The node with the given id (KeyError if absent)."""
        self._check_id(node_id)
        return self._nodes[node_id]

    @property
    def root(self) -> ClockNode:
        if self.root_id is None:
            raise ValueError("tree has no root")
        return self._nodes[self.root_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ClockNode]:
        return iter(self._nodes.values())

    # -- traversal ---------------------------------------------------------------

    def topo_order(self) -> list[ClockNode]:
        """Nodes in root-first (preorder/BFS-compatible) topological order."""
        if self.root_id is None:
            return []
        order: list[ClockNode] = []
        stack = [self.root_id]
        while stack:
            node = self._nodes[stack.pop()]
            order.append(node)
            # Reverse so the leftmost child is processed first.
            stack.extend(reversed(node.children))
        return order

    def postorder(self) -> list[ClockNode]:
        """Nodes in children-first order."""
        return list(reversed(self.topo_order()))

    def sinks(self) -> list[ClockNode]:
        """All sink leaves, in deterministic (topological) order."""
        return [n for n in self.topo_order() if n.is_sink]

    def leaves(self) -> list[ClockNode]:
        """All leaf nodes, in topological order."""
        return [n for n in self.topo_order() if n.is_leaf]

    def buffered_nodes(self) -> list[ClockNode]:
        """All nodes carrying a buffer, in topological order."""
        return [n for n in self.topo_order() if n.buffer is not None]

    def depth(self, node_id: int) -> int:
        """Edge count from the root to ``node_id``."""
        self._check_id(node_id)
        depth = 0
        node = self._nodes[node_id]
        while node.parent is not None:
            node = self._nodes[node.parent]
            depth += 1
        return depth

    def path_to_root(self, node_id: int) -> list[ClockNode]:
        """Nodes from ``node_id`` up to and including the root."""
        self._check_id(node_id)
        path = [self._nodes[node_id]]
        while path[-1].parent is not None:
            path.append(self._nodes[path[-1].parent])
        return path

    def subtree_ids(self, node_id: int) -> list[int]:
        """Ids of all nodes in the subtree rooted at ``node_id`` (inclusive)."""
        self._check_id(node_id)
        result: list[int] = []
        stack = [node_id]
        while stack:
            nid = stack.pop()
            result.append(nid)
            stack.extend(reversed(self._nodes[nid].children))
        return result

    def edges(self) -> list[tuple[ClockNode, ClockNode]]:
        """All (parent, child) pairs in topological order."""
        return [(self._nodes[n.parent], n) for n in self.topo_order()
                if n.parent is not None]

    def edge_length(self, child_id: int) -> float:
        """Manhattan length (plus snake) of the edge into ``child_id``."""
        child = self.node(child_id)
        if child.parent is None:
            raise ValueError(f"node {child_id} has no incoming edge")
        parent = self._nodes[child.parent]
        return parent.location.manhattan_to(child.location) + child.snake

    def total_wirelength(self) -> float:
        """Total logical wirelength of the tree including snaking, um."""
        return sum(self.edge_length(child.node_id) for _, child in self.edges())

    def validate(self) -> None:
        """Check structural invariants; raise ValueError on corruption."""
        if self.root_id is None:
            raise ValueError("tree has no root")
        reached = {n.node_id for n in self.topo_order()}
        if reached != set(self._nodes):
            missing = set(self._nodes) - reached
            raise ValueError(f"unreachable nodes: {sorted(missing)}")
        for node in self._nodes.values():
            for child_id in node.children:
                if self._nodes[child_id].parent != node.node_id:
                    raise ValueError(
                        f"parent/child mismatch between {node.node_id} and {child_id}")
            if node.is_sink and node.children:
                raise ValueError(f"sink node {node.node_id} has children")

    def _check_id(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise KeyError(f"no node with id {node_id}")
