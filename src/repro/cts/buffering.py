"""Level-based buffer insertion with delay-equalising sizing and padding.

Buffers are inserted at whole topological *levels* of the (balanced)
tree so every root-to-sink path crosses the same number of buffers —
the precondition for the zero-skew embedding to survive buffering.

Level selection is capacitance-budget driven: walking down from the
root, a new buffer level is opened just before the worst-case stage
capacitance (wire + pins + next-level buffer inputs) would exceed the
budget.  Buffer levels are only placed at depths *above* the shallowest
leaf, so no sink path can skip a level.

Stage loads at the same level differ (geometry is never perfectly
symmetric), and with a uniform buffer size that load spread becomes
stage-delay spread — i.e. skew.  We therefore equalise per level, the
way production CTS does:

1. **Per-stage sizing.**  For each stage, every library cell that meets
   max-cap and slew is a candidate; the level's target delay ``T`` is
   the *slowest stage's fastest option* (so every stage can reach it).
2. **Dummy-load padding.**  Each stage picks the candidate cell that
   reaches ``T`` with the least added capacitance
   ``pad = (T - d_cell(C)) / r_drive`` and records that pad on the
   node (``ClockNode.load_pad``); the extractor hangs it on the buffer
   output.  Stage delays across the level then match *exactly* under
   the linear gate model.

Sizing runs bottom-up over levels because a stage's load includes the
chosen input capacitances of the buffers below it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cts.delaytrim import TrimChoice, cheapest_trim
from repro.cts.tree import ClockTree
from repro.tech.buffers import BufferCell
from repro.tech.technology import Technology


@dataclass(frozen=True)
class BufferingResult:
    """Summary of an insertion run."""

    buffer_levels: tuple[int, ...]
    num_buffers: int
    worst_stage_cap: float
    total_pad_cap: float


def _unit_cap(tech: Technology) -> float:
    """Average default-rule wire cap per um over the clock layer pair."""
    rule = tech.default_rule
    layer_h = tech.layer_for(horizontal=True)
    layer_v = tech.layer_for(horizontal=False)
    return (layer_h.isolated_cap_per_um(rule.width_on(layer_h))
            + layer_v.isolated_cap_per_um(rule.width_on(layer_v))) / 2.0


def _stage_cap(tree: ClockTree, node_id: int, cut_depths: set[int],
               depth: int, unit_cap: float, cin_of, sink_default: float) -> float:
    """Capacitance of the stage rooted at ``node_id``.

    Descends until it hits a depth in ``cut_depths`` — where
    ``cin_of(node_id)`` (the next buffer level's input cap) terminates
    the stage — or a leaf.
    """
    total = 0.0
    stack = [(node_id, depth)]
    while stack:
        nid, d = stack.pop()
        node = tree.node(nid)
        if d != depth and d in cut_depths:
            total += cin_of(nid)
            continue
        if node.is_leaf:
            total += node.sink_pin.cap if node.sink_pin is not None else sink_default
            continue
        for child_id in node.children:
            total += unit_cap * tree.edge_length(child_id)
            stack.append((child_id, d + 1))
    return total


def _candidates(tech: Technology, load: float) -> list[BufferCell]:
    """Library cells that legally drive ``load`` (max-cap and slew)."""
    out = [cell for cell in tech.buffers
           if load <= cell.max_cap
           and cell.output_slew(load) <= tech.max_slew]
    return out if out else [tech.buffers.largest]


def _select_levels(tree: ClockTree, tech: Technology, max_stage_cap: float,
                   depths: dict[int, int], min_leaf_depth: int) -> list[int]:
    """Choose buffer levels top-down under the stage-capacitance budget."""
    unit_cap = _unit_cap(tech)
    smallest_cin = tech.buffers.smallest.c_in
    levels = [0]
    while True:
        current = levels[-1]
        nodes_at_current = [nid for nid, d in depths.items() if d == current]
        placed = False
        for candidate in range(current + 1, min_leaf_depth):
            cut = {candidate}
            worst = max(
                _stage_cap(tree, nid, cut, current, unit_cap,
                           lambda _nid: smallest_cin, tech.flop_cin)
                for nid in nodes_at_current)
            if worst > max_stage_cap:
                # The stage busts its budget when extended to ``candidate``,
                # so the next buffer level is the last depth that fit (or
                # current+1 when even the shortest stage is over budget).
                next_level = candidate - 1 if candidate - 1 > current else current + 1
                levels.append(next_level)
                placed = True
                break
        if not placed:
            break  # the remaining stage (to the leaves) fits in budget
        if levels[-1] >= min_leaf_depth:
            levels.pop()
            break
    return levels


def insert_buffers(tree: ClockTree, tech: Technology,
                   max_stage_cap: float = 0.0) -> BufferingResult:
    """Insert, size and pad clock buffers in place; returns a summary.

    Parameters
    ----------
    tree:
        An embedded clock tree (locations set).
    tech:
        Technology (buffer library, layers, slew limit).
    max_stage_cap:
        Capacitance budget per buffered stage, fF.  The default (25% of
        the largest buffer's max load) yields 2-4 buffer levels on the
        benchmark suite with comfortable slew headroom.
    """
    library = tech.buffers
    if max_stage_cap <= 0.0:
        max_stage_cap = 0.25 * library.largest.max_cap
    unit_cap = _unit_cap(tech)

    depths = {node.node_id: tree.depth(node.node_id) for node in tree}
    leaf_depths = [depths[n.node_id] for n in tree.leaves()]
    min_leaf_depth = min(leaf_depths)

    levels = _select_levels(tree, tech, max_stage_cap, depths, min_leaf_depth)
    level_set = set(levels)

    # -- per-stage sizing and padding, deepest level first ---------------------
    rule = tech.default_rule
    layer_h = tech.layer_for(horizontal=True)
    snake_r = layer_h.resistance_per_um(rule.width_on(layer_h))
    snake_c = layer_h.isolated_cap_per_um(rule.width_on(layer_h))
    chosen: dict[int, BufferCell] = {}    # node id -> cell
    trims: dict[int, TrimChoice] = {}     # node id -> pad/snake decision
    worst_stage_cap = 0.0
    total_pad = 0.0
    ordered = sorted(levels, reverse=True)
    for i, level in enumerate(ordered):
        deeper = ordered[i - 1] if i > 0 else None
        cut = {deeper} if deeper is not None else set()

        def cin_of(nid: int) -> float:
            return chosen[nid].c_in

        nodes_at = [nid for nid, d in depths.items() if d == level]
        loads = {nid: _stage_cap(tree, nid, cut, level, unit_cap, cin_of,
                                 tech.flop_cin)
                 for nid in nodes_at}
        # Target: the slowest stage's fastest legal option.
        target = max(min(cell.delay(load) for cell in _candidates(tech, load))
                     for load in loads.values())
        for nid in sorted(nodes_at):
            load = loads[nid]
            best_cell = None
            best_trim = None
            best_cost = float("inf")
            for cell in _candidates(tech, load):
                d = cell.delay(load)
                if d > target + 1e-9:
                    continue
                # The missing delay is bought by the cheaper of a dummy
                # load or a series root snake.
                trim = cheapest_trim(target - d, cell.r_drive, load,
                                     snake_r, snake_c)
                padded = load + trim.added_cap
                if padded > cell.max_cap or cell.output_slew(padded) > tech.max_slew:
                    continue
                if trim.added_cap < best_cost:
                    best_cost, best_cell, best_trim = trim.added_cap, cell, trim
            if best_cell is None:
                # No candidate reaches the target within limits; fall
                # back to the fastest legal cell, untrimmed.
                best_cell = min(_candidates(tech, load),
                                key=lambda cell: cell.delay(load))
                best_trim = cheapest_trim(0.0, best_cell.r_drive, load,
                                          snake_r, snake_c)
            chosen[nid] = best_cell
            trims[nid] = best_trim
            total_pad += best_trim.added_cap
            worst_stage_cap = max(worst_stage_cap, load + best_trim.added_cap)

    for nid, cell in chosen.items():
        node = tree.node(nid)
        node.buffer = cell
        trim = trims[nid]
        node.base_pad = trim.pad_cap
        node.base_snake = trim.snake_len
        node.snake_r_per_um = snake_r
        node.snake_c_per_um = snake_c

    tree.validate()
    return BufferingResult(
        buffer_levels=tuple(sorted(level_set)),
        num_buffers=len(chosen),
        worst_stage_cap=worst_stage_cap,
        total_pad_cap=total_pad,
    )
