"""Useful skew: per-sink arrival offsets from datapath slacks.

Zero skew is not actually optimal: a failing setup path gains slack if
its capture flop's clock arrives *later* (or its launch flop's clock
earlier).  Useful-skew flows therefore schedule per-flop arrival
offsets from the datapath slack profile and let CTS balance toward the
offsets instead of toward zero.

This module provides the scheduling half; the trimming half is
:func:`repro.cts.refine.refine_skew` with its ``offsets`` argument
(the trimmer equalises *offset-corrected* arrivals, so a flop with
offset +10 ps ends up 10 ps later than the common base).

The scheduler is the classic iterative relaxation: every failing path
asks its capture flop to move later and its launch flop earlier by half
the remaining deficit, clamped to a window; a few passes converge for
the sparse path sets that matter.  Offsets of flops on no failing path
stay zero, so the clock stays as balanced as possible (offsets cost
trim capacitance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TimingPath:
    """One launch->capture datapath with its setup and hold slacks.

    ``slack`` in ps: negative means the path fails setup by that much
    at zero skew.  ``hold_slack`` is the zero-skew hold margin: moving
    the *capture* clock later eats it one-for-one (the razor edge of
    useful skew), moving the launch later restores it.  The default
    (infinite) means "no hold concern on this path".
    """

    launch_pin: str
    capture_pin: str
    slack: float
    hold_slack: float = math.inf


def path_slack_with_offsets(path: TimingPath,
                            offsets: dict[str, float]) -> float:
    """Setup slack of ``path`` once clock offsets are applied.

    Capture arriving later adds slack; launch arriving later removes it.
    """
    capture = offsets.get(path.capture_pin, 0.0)
    launch = offsets.get(path.launch_pin, 0.0)
    return path.slack + capture - launch


def path_hold_slack_with_offsets(path: TimingPath,
                                 offsets: dict[str, float]) -> float:
    """Hold slack of ``path`` under clock offsets (the setup mirror)."""
    capture = offsets.get(path.capture_pin, 0.0)
    launch = offsets.get(path.launch_pin, 0.0)
    return path.hold_slack - capture + launch


def schedule_offsets(paths: list[TimingPath], max_offset: float = 30.0,
                     passes: int = 25, capture_only: bool = False,
                     min_positive: float = 0.0,
                     hold_margin: float = 0.0) -> dict[str, float]:
    """Per-flop clock arrival offsets repairing failing paths.

    Parameters
    ----------
    paths:
        The datapath slack profile (only near-critical paths matter).
    max_offset:
        Clamp on |offset| per flop, ps — the window CTS can implement
        without excessive trim capacitance.
    passes:
        Relaxation iterations.
    capture_only:
        Only move capture clocks later (positive offsets).  Positive
        offsets are the cheap direction to implement — a delay buffer
        on the offset flop's leaf — whereas a negative offset forces
        every *other* flop to be delayed instead.
    min_positive:
        Implementation quantum: any positive offset is at least this
        (a delay buffer cannot add less).  Pass the value from
        :func:`delay_buffer_quantum` so paths *launched* by an offset
        flop see the offset that will actually be built.
    hold_margin:
        Minimum hold slack every path must retain.  Moving a capture
        clock later eats that flop's incoming hold margins one-for-one;
        the scheduler never takes more than the paths can give.

    Returns a dict mapping flop clock-pin names to offsets (ps);
    unmentioned flops are 0.
    """
    if max_offset <= 0.0:
        raise ValueError("max_offset must be positive")
    if min_positive > max_offset:
        raise ValueError("min_positive exceeds the offset window")
    offsets: dict[str, float] = {}

    captured_at: dict[str, list[TimingPath]] = {}
    launched_at: dict[str, list[TimingPath]] = {}
    for p in paths:
        captured_at.setdefault(p.capture_pin, []).append(p)
        launched_at.setdefault(p.launch_pin, []).append(p)

    def hold_headroom_capture(pin: str) -> float:
        """How much later this capture clock may move before a hold fails."""
        return min((path_hold_slack_with_offsets(q, offsets) - hold_margin
                    for q in captured_at.get(pin, [])), default=math.inf)

    def hold_headroom_launch(pin: str) -> float:
        """How much earlier this launch clock may move before a hold fails."""
        return min((path_hold_slack_with_offsets(q, offsets) - hold_margin
                    for q in launched_at.get(pin, [])), default=math.inf)
    for _ in range(passes):
        worst_fix = 0.0
        for path in paths:
            slack = path_slack_with_offsets(path, offsets)
            if slack >= 0.0:
                continue
            deficit = -slack
            # Ask each side for its share of the deficit, within its
            # remaining window.
            cap_now = offsets.get(path.capture_pin, 0.0)
            lau_now = offsets.get(path.launch_pin, 0.0)
            cap_room = min(max_offset - cap_now,
                           hold_headroom_capture(path.capture_pin))
            lau_room = 0.0 if capture_only else min(
                max_offset + lau_now, hold_headroom_launch(path.launch_pin))
            cap_share = deficit if capture_only else deficit / 2.0
            give_cap = min(cap_share, max(0.0, cap_room))
            give_lau = min(deficit / 2.0, max(0.0, lau_room))
            if give_cap > 0.0:
                new_cap = cap_now + give_cap
                if 0.0 < new_cap < min_positive:
                    # Quantising up must not bust a hold margin either.
                    if min_positive - cap_now <= cap_room + 1e-12:
                        new_cap = min_positive
                    else:
                        new_cap = cap_now  # cannot take this step
                if new_cap != cap_now:
                    offsets[path.capture_pin] = new_cap
            if give_lau > 0.0:
                offsets[path.launch_pin] = lau_now - give_lau
            worst_fix = max(worst_fix, give_cap + give_lau)
        if worst_fix <= 1e-9:
            break
    return offsets


def delay_buffer_quantum(tech, flop_cin: float, leaf_edge: float = 0.0,
                         margin: float = 8.0) -> float:
    """The smallest *reliably implementable* positive offset, ps.

    A leaf delay buffer adds at least its own stage delay — the cell
    delay into the leaf wire plus that wire's Elmore share
    (``leaf_edge`` um of default-rule clock wire).  Offsets are
    quantised up to a bound guaranteed to exceed the realised delay, so
    the offset flop always lands *early* in the corrected frame and its
    private stage pad — which affects no other flop — closes the gap.
    """
    cell = tech.buffers.smallest
    rule = tech.default_rule
    layer = tech.layer_for(horizontal=True)
    r = layer.resistance_per_um(rule.width_on(layer))
    c = layer.isolated_cap_per_um(rule.width_on(layer))
    wire_cap = c * leaf_edge
    wire_elmore = r * leaf_edge * (wire_cap / 2.0 + flop_cin)
    return cell.delay(flop_cin + wire_cap) + wire_elmore + margin


def apply_useful_skew(tree, tech, offsets: dict[str, float]) -> dict[str, float]:
    """Make positive offsets implementable: leaf delay buffers.

    A per-flop offset cannot be realised by stage-level trims when the
    flop shares its driving stage with zero-offset flops — the stage
    trim shifts them all.  The real flows insert a *delay buffer* on
    the offset flop's leaf edge, which (a) adds roughly one buffer
    quantum of delay and (b) gives the flop its own stage, so the
    normal trimmer (:func:`repro.cts.refine.refine_skew` with
    ``offsets``) can fine-tune it with a private pad.

    The buffer is inserted at the *head* of the flop's leaf edge: it
    drives the leaf wire plus the flop, and that wire's Elmore delay is
    part of the added quantum (``delay_buffer_quantum`` accounts for
    it).  Requested offsets below the quantum are quantised *up* to it
    — extra setup slack for the repaired path, never less (hold margins
    are outside this model; see DESIGN.md).

    Call this once before the offset-aware refine, and refine with the
    *returned* effective offsets.  Non-positive offsets are dropped
    (see ``capture_only`` in :func:`schedule_offsets`).
    """
    leaf_by_pin = {node.sink_pin.full_name: node for node in tree.sinks()}
    cell = tech.buffers.smallest
    effective: dict[str, float] = {}
    for pin, offset in offsets.items():
        if pin not in leaf_by_pin:
            raise KeyError(f"no sink pin named {pin!r} in the clock tree")
        if offset <= 0.0:
            continue
        leaf = leaf_by_pin[pin]
        leaf_edge = (tree.edge_length(leaf.node_id)
                     if leaf.parent is not None else 0.0)
        quantum = delay_buffer_quantum(tech, leaf.sink_pin.cap, leaf_edge)
        effective[pin] = max(offset, quantum)
        parent = tree.node(leaf.parent) if leaf.parent is not None else None
        if parent is not None and parent.buffer is not None \
                and len(parent.children) == 1:
            continue  # already has a private delay buffer
        delay_node = tree.insert_above(leaf.node_id)
        delay_node.buffer = cell
    return effective


def worst_path_slack(paths: list[TimingPath],
                     offsets: dict[str, float]) -> float:
    """The minimum setup slack over ``paths`` under ``offsets``."""
    if not paths:
        raise ValueError("no paths given")
    return min(path_slack_with_offsets(p, offsets) for p in paths)


def worst_hold_slack(paths: list[TimingPath],
                     offsets: dict[str, float]) -> float:
    """The minimum hold slack over ``paths`` under ``offsets``."""
    if not paths:
        raise ValueError("no paths given")
    return min(path_hold_slack_with_offsets(p, offsets) for p in paths)
